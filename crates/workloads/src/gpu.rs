//! The GPU application registry: 24 applications from Rodinia, Polybench,
//! and the Tango deep-network suite, profiled for the PPT-GPU-style
//! analytical model in `gpusim`.
//!
//! The paper runs 24 applications totalling 1525 kernels on a modelled
//! NVIDIA A100 and reports (Fig. 9) an average slowdown of ≈5.35% for 35 ns
//! of additional HBM latency, with the slowdown strongly correlated with the
//! L2 miss rate (r ≈ 0.87) and HBM transactions per instruction (r ≈ 0.79)
//! but not with the memory-instruction fraction (Fig. 10). The profiles
//! below reproduce those relationships: Polybench's linear-algebra kernels
//! stress the caches and HBM, the Tango networks are compute-rich and
//! latency-insensitive, and Rodinia spans the range in between.

use gpusim::{ApplicationProfile, KernelProfile};
use serde::{Deserialize, Serialize};
use std::fmt;

/// GPU benchmark suites used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuSuite {
    /// Rodinia (CUDA versions).
    Rodinia,
    /// Polybench-GPU linear algebra kernels.
    Polybench,
    /// Tango deep neural network suite.
    Tango,
}

impl fmt::Display for GpuSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuSuite::Rodinia => f.write_str("Rodinia"),
            GpuSuite::Polybench => f.write_str("Polybench"),
            GpuSuite::Tango => f.write_str("Tango"),
        }
    }
}

/// Descriptor row: (name, suite, kernel launches, total warp instructions,
/// memory fraction, L1 hit rate, L2 hit rate, transactions per memory
/// instruction, active warps per SM, MLP per warp).
struct AppSpec {
    name: &'static str,
    suite: GpuSuite,
    kernel_launches: u32,
    warp_instructions: u64,
    memory_fraction: f64,
    l1_hit: f64,
    l2_hit: f64,
    tx_per_mem: f64,
    warps_per_sm: f64,
    mlp: f64,
}

impl AppSpec {
    fn build(&self) -> ApplicationProfile {
        // Split the application's work across its kernel launches; per-kernel
        // parameters are identical, which is a reasonable first-order model
        // for iterative GPU applications (the paper's per-app results are
        // aggregates over kernels anyway).
        let launches = self.kernel_launches.max(1);
        let per_kernel = (self.warp_instructions / launches as u64).max(1);
        let kernels = (0..launches)
            .map(|i| {
                KernelProfile {
                    name: format!("{}_k{}", self.name, i),
                    warp_instructions: per_kernel,
                    memory_instruction_fraction: self.memory_fraction,
                    l1_hit_rate: self.l1_hit,
                    l2_hit_rate: self.l2_hit,
                    transactions_per_memory_instruction: self.tx_per_mem,
                    active_warps_per_sm: self.warps_per_sm,
                    mlp_per_warp: self.mlp,
                }
                .sanitized()
            })
            .collect();
        ApplicationProfile::new(self.name, self.suite.to_string(), kernels)
    }
}

fn specs() -> Vec<AppSpec> {
    use GpuSuite::*;
    let s = |name,
             suite,
             kernel_launches,
             warp_instructions,
             memory_fraction,
             l1_hit,
             l2_hit,
             tx_per_mem,
             warps_per_sm,
             mlp| AppSpec {
        name,
        suite,
        kernel_launches,
        warp_instructions,
        memory_fraction,
        l1_hit,
        l2_hit,
        tx_per_mem,
        warps_per_sm,
        mlp,
    };
    vec![
        // ---- Rodinia (11 applications) ----
        s(
            "backprop", Rodinia, 40, 16_000_000, 0.32, 0.55, 0.50, 4.0, 32.0, 2.0,
        ),
        s(
            "bfs", Rodinia, 87, 9_000_000, 0.33, 0.25, 0.30, 8.0, 24.0, 1.5,
        ),
        s(
            "gaussian", Rodinia, 240, 12_000_000, 0.30, 0.45, 0.58, 4.0, 16.0, 1.6,
        ),
        s(
            "hotspot", Rodinia, 60, 20_000_000, 0.30, 0.70, 0.60, 4.0, 40.0, 2.5,
        ),
        s(
            "kmeans", Rodinia, 30, 25_000_000, 0.32, 0.50, 0.35, 4.0, 40.0, 2.0,
        ),
        s(
            "lavamd", Rodinia, 10, 30_000_000, 0.34, 0.85, 0.80, 2.0, 48.0, 3.0,
        ),
        s(
            "lud", Rodinia, 150, 14_000_000, 0.33, 0.75, 0.70, 2.0, 24.0, 2.0,
        ),
        s(
            "nn", Rodinia, 8, 4_000_000, 0.34, 0.32, 0.28, 6.0, 20.0, 1.5,
        ),
        s(
            "nw", Rodinia, 250, 10_000_000, 0.33, 0.35, 0.25, 6.0, 12.0, 1.3,
        ),
        s(
            "pathfinder",
            Rodinia,
            25,
            18_000_000,
            0.31,
            0.60,
            0.55,
            4.0,
            32.0,
            2.2,
        ),
        s(
            "srad", Rodinia, 65, 22_000_000, 0.30, 0.55, 0.45, 4.0, 32.0, 2.0,
        ),
        // ---- Polybench (10 applications): linear algebra that stresses the
        // cache hierarchy and main memory ----
        s(
            "2mm", Polybench, 20, 40_000_000, 0.35, 0.60, 0.40, 4.0, 32.0, 2.0,
        ),
        s(
            "3mm", Polybench, 30, 55_000_000, 0.35, 0.60, 0.40, 4.0, 32.0, 2.0,
        ),
        s(
            "atax", Polybench, 12, 8_000_000, 0.34, 0.42, 0.25, 6.0, 20.0, 1.5,
        ),
        s(
            "bicg", Polybench, 12, 8_000_000, 0.34, 0.42, 0.25, 6.0, 20.0, 1.5,
        ),
        s(
            "gemm", Polybench, 15, 45_000_000, 0.35, 0.70, 0.55, 4.0, 40.0, 2.5,
        ),
        s(
            "gesummv", Polybench, 10, 6_000_000, 0.35, 0.40, 0.22, 6.0, 16.0, 1.4,
        ),
        s(
            "mvt", Polybench, 12, 9_000_000, 0.34, 0.42, 0.26, 6.0, 20.0, 1.5,
        ),
        s(
            "syr2k", Polybench, 18, 35_000_000, 0.34, 0.55, 0.35, 4.0, 32.0, 2.0,
        ),
        s(
            "syrk", Polybench, 16, 30_000_000, 0.34, 0.58, 0.38, 4.0, 32.0, 2.0,
        ),
        s(
            "correlation",
            Polybench,
            25,
            28_000_000,
            0.33,
            0.50,
            0.30,
            4.0,
            28.0,
            1.8,
        ),
        // ---- Tango deep networks (3 applications): dense conv/GEMM layers,
        // cache-friendly; their loads mostly hit in the L1/L2 ----
        s(
            "alexnet",
            Tango,
            130,
            120_000_000,
            0.36,
            0.85,
            0.78,
            2.0,
            48.0,
            3.5,
        ),
        s(
            "gru", Tango, 120, 80_000_000, 0.35, 0.80, 0.72, 2.0, 40.0, 3.0,
        ),
        s(
            "lstm", Tango, 140, 90_000_000, 0.35, 0.80, 0.72, 2.0, 40.0, 3.0,
        ),
    ]
}

/// The 24 GPU application profiles used in the paper's GPU evaluation.
pub fn gpu_applications() -> Vec<ApplicationProfile> {
    specs().iter().map(AppSpec::build).collect()
}

/// The GPU applications belonging to one suite.
pub fn suite_applications(suite: GpuSuite) -> Vec<ApplicationProfile> {
    specs()
        .iter()
        .filter(|s| s.suite == suite)
        .map(AppSpec::build)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::{GpuConfig, GpuTimingModel};
    use std::collections::HashSet;

    #[test]
    fn registry_has_24_applications() {
        assert_eq!(gpu_applications().len(), 24);
    }

    #[test]
    fn total_kernel_count_matches_paper() {
        let total: usize = gpu_applications().iter().map(|a| a.kernel_count()).sum();
        assert_eq!(total, 1525, "the paper evaluates 1525 kernels");
    }

    #[test]
    fn suite_breakdown_matches_paper() {
        assert_eq!(suite_applications(GpuSuite::Rodinia).len(), 11);
        assert_eq!(suite_applications(GpuSuite::Polybench).len(), 10);
        assert_eq!(suite_applications(GpuSuite::Tango).len(), 3);
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<String> = gpu_applications().into_iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn average_slowdown_at_35ns_is_near_paper_value() {
        // Paper: "The average slowdown across all 24 GPU applications is
        // 5.35%." Accept a band around it since our model is analytical.
        let model = GpuTimingModel::new(GpuConfig::a100());
        let mut slowdowns = Vec::new();
        for app in gpu_applications() {
            let sweep = model.latency_sweep(&app, &[0.0, 35.0]);
            slowdowns.push(sweep[1].slowdown_vs(&sweep[0]));
        }
        let avg = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
        assert!(
            avg > 3.0 && avg < 8.0,
            "average GPU slowdown {avg:.2}% should be near the paper's 5.35%"
        );
        let max = slowdowns.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > 8.0 && max < 16.0,
            "maximum GPU slowdown {max:.2}% should be near the paper's ~12%"
        );
    }

    #[test]
    fn tango_networks_are_latency_tolerant() {
        let model = GpuTimingModel::new(GpuConfig::a100());
        for app in suite_applications(GpuSuite::Tango) {
            let sweep = model.latency_sweep(&app, &[0.0, 35.0]);
            let slowdown = sweep[1].slowdown_vs(&sweep[0]);
            assert!(
                slowdown < 3.0,
                "{} is a dense DNN and should tolerate latency, got {slowdown:.2}%",
                app.name
            );
        }
    }

    #[test]
    fn slowdown_correlates_with_l2_miss_rate_and_hbm_transactions() {
        // Fig. 10: correlation ≈0.87 with LLC miss rate and ≈0.79 with HBM
        // transactions per instruction.
        let model = GpuTimingModel::new(GpuConfig::a100());
        let mut slowdowns = Vec::new();
        let mut miss_rates = Vec::new();
        let mut hbm_per_instr = Vec::new();
        for app in gpu_applications() {
            let sweep = model.latency_sweep(&app, &[0.0, 35.0]);
            slowdowns.push(sweep[1].slowdown_vs(&sweep[0]));
            miss_rates.push(app.l2_miss_rate());
            hbm_per_instr.push(app.hbm_transactions_per_instruction());
        }
        let r_miss = cpusim::pearson_correlation(&miss_rates, &slowdowns).unwrap();
        let r_hbm = cpusim::pearson_correlation(&hbm_per_instr, &slowdowns).unwrap();
        assert!(r_miss > 0.6, "slowdown vs L2 miss rate r={r_miss:.2}");
        assert!(r_hbm > 0.5, "slowdown vs HBM transactions r={r_hbm:.2}");
    }

    #[test]
    fn rodinia_gpu_set_contains_cpu_intersection() {
        let names: HashSet<String> = suite_applications(GpuSuite::Rodinia)
            .into_iter()
            .map(|a| a.name)
            .collect();
        for b in crate::cpu::rodinia_cpu_gpu_intersection() {
            assert!(names.contains(b), "{b} missing from GPU Rodinia set");
        }
    }
}
