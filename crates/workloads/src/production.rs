//! Production-system utilization distributions (Section II-A of the paper).
//!
//! The paper's bandwidth-sufficiency analysis (Section VI-A1) and
//! iso-performance provisioning study (Section VI-E) are driven by observed
//! resource usage on NERSC's Cori — numbers published in the authors' prior
//! intra-rack-disaggregation study and summarized in Section II-A:
//!
//! * three quarters of the time, Haswell nodes use **< 17.4%** of memory
//!   capacity and **< 0.46 GB/s** of memory bandwidth;
//! * half of the time, nodes use **no more than half** of their compute
//!   cores;
//! * three quarters of the time, nodes use **≤ 1.25%** of NIC bandwidth;
//! * the direct 125 Gbps MCM-to-MCM bandwidth of the AWGR fabric suffices
//!   **> 99.5%** of the time between CPUs and DDR4, and a single 25 Gbps
//!   wavelength suffices **97%** of the time.
//!
//! We do not have the raw Cori telemetry (it is not public), so this module
//! provides log-normal samplers calibrated to those published quantiles.
//! The samplers are seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A sampled per-node utilization snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeUtilization {
    /// Fraction of node memory capacity in use (0..=1).
    pub memory_capacity_fraction: f64,
    /// Memory bandwidth in use, GB/s (per node).
    pub memory_bandwidth_gbs: f64,
    /// Fraction of compute cores in use (0..=1).
    pub core_fraction: f64,
    /// Fraction of NIC bandwidth in use (0..=1).
    pub nic_fraction: f64,
}

/// Summary of many [`NodeUtilization`] samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Number of samples drawn.
    pub samples: usize,
    /// 75th-percentile memory-capacity fraction.
    pub p75_memory_capacity: f64,
    /// 75th-percentile memory bandwidth (GB/s).
    pub p75_memory_bandwidth_gbs: f64,
    /// Median core-usage fraction.
    pub median_core_fraction: f64,
    /// 75th-percentile NIC-bandwidth fraction.
    pub p75_nic_fraction: f64,
    /// Mean memory-capacity fraction.
    pub mean_memory_capacity: f64,
}

/// Log-normal samplers calibrated to the published Cori utilization
/// quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProductionDistributions {
    /// Median of the memory-capacity-fraction distribution.
    pub memory_capacity_median: f64,
    /// Log-space sigma of the memory-capacity-fraction distribution.
    pub memory_capacity_sigma: f64,
    /// Median of the memory-bandwidth distribution (GB/s).
    pub memory_bandwidth_median_gbs: f64,
    /// Log-space sigma of the memory-bandwidth distribution.
    pub memory_bandwidth_sigma: f64,
    /// Median of the NIC-utilization-fraction distribution.
    pub nic_median: f64,
    /// Log-space sigma of the NIC-utilization distribution.
    pub nic_sigma: f64,
}

/// z-score of the 75th percentile of a standard normal.
const Z75: f64 = 0.674_489_75;

/// Draw a standard-normal variate via the Box-Muller transform.
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw a log-normal variate with the given median and log-space sigma.
fn lognormal(rng: &mut impl Rng, median: f64, sigma: f64) -> f64 {
    (median.ln() + sigma * standard_normal(rng)).exp()
}

impl ProductionDistributions {
    /// Distributions calibrated to the Cori (Haswell partition) numbers
    /// quoted in Section II-A.
    pub fn cori_haswell() -> Self {
        // 75th percentiles: memory capacity 17.4%, memory bandwidth
        // 0.46 GB/s, NIC 1.25%. Medians and sigmas chosen so that
        // median * exp(Z75 * sigma) equals the published 75th percentile
        // while keeping a realistically heavy tail.
        ProductionDistributions {
            memory_capacity_median: 0.08,
            memory_capacity_sigma: (0.174f64 / 0.08).ln() / Z75,
            memory_bandwidth_median_gbs: 0.15,
            memory_bandwidth_sigma: (0.46f64 / 0.15).ln() / Z75,
            nic_median: 0.005,
            nic_sigma: (0.0125f64 / 0.005).ln() / Z75,
        }
    }

    /// Sample one node snapshot.
    pub fn sample(&self, rng: &mut impl Rng) -> NodeUtilization {
        let mem_cap =
            lognormal(rng, self.memory_capacity_median, self.memory_capacity_sigma).min(1.0);
        let mem_bw = lognormal(
            rng,
            self.memory_bandwidth_median_gbs,
            self.memory_bandwidth_sigma,
        );
        let nic = lognormal(rng, self.nic_median, self.nic_sigma).min(1.0);
        // Core usage: the paper reports the median is at half the cores;
        // model it as uniform over [0, 1] (median 0.5) which also matches
        // the 28-55% idle range reported for datacenters.
        let cores: f64 = rng.gen_range(0.0..=1.0);

        NodeUtilization {
            memory_capacity_fraction: mem_cap,
            memory_bandwidth_gbs: mem_bw,
            core_fraction: cores,
            nic_fraction: nic,
        }
    }

    /// Draw `n` node snapshots with a seeded RNG.
    pub fn sample_nodes(&self, n: usize, seed: u64) -> Vec<NodeUtilization> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }

    /// Draw `n` node snapshots with a ChaCha RNG (stable across platforms).
    pub fn sample_nodes_stable(&self, n: usize, seed: u64) -> Vec<NodeUtilization> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }

    /// Summarize a sample (used by tests and the bandwidth analysis bench).
    pub fn summarize(samples: &[NodeUtilization]) -> UtilizationSample {
        let pct = |mut v: Vec<f64>, p: f64| -> f64 {
            if v.is_empty() {
                return 0.0;
            }
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((v.len() - 1) as f64 * p).round() as usize;
            v[idx]
        };
        let mem_cap: Vec<f64> = samples.iter().map(|s| s.memory_capacity_fraction).collect();
        let mem_bw: Vec<f64> = samples.iter().map(|s| s.memory_bandwidth_gbs).collect();
        let cores: Vec<f64> = samples.iter().map(|s| s.core_fraction).collect();
        let nic: Vec<f64> = samples.iter().map(|s| s.nic_fraction).collect();
        UtilizationSample {
            samples: samples.len(),
            p75_memory_capacity: pct(mem_cap.clone(), 0.75),
            p75_memory_bandwidth_gbs: pct(mem_bw, 0.75),
            median_core_fraction: pct(cores, 0.5),
            p75_nic_fraction: pct(nic, 0.75),
            mean_memory_capacity: mem_cap.iter().sum::<f64>() / samples.len().max(1) as f64,
        }
    }

    /// Probability that a node's CPU-to-memory bandwidth demand exceeds
    /// `threshold_gbs` (estimated from `n` samples).
    pub fn probability_memory_bandwidth_exceeds(
        &self,
        threshold_gbs: f64,
        n: usize,
        seed: u64,
    ) -> f64 {
        let samples = self.sample_nodes_stable(n, seed);
        samples
            .iter()
            .filter(|s| s.memory_bandwidth_gbs > threshold_gbs)
            .count() as f64
            / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<NodeUtilization> {
        ProductionDistributions::cori_haswell().sample_nodes_stable(50_000, 7)
    }

    #[test]
    fn p75_memory_capacity_matches_published_value() {
        let s = ProductionDistributions::summarize(&sample());
        assert!(
            (s.p75_memory_capacity - 0.174).abs() < 0.02,
            "75th pct memory capacity {} should be ~17.4%",
            s.p75_memory_capacity
        );
    }

    #[test]
    fn p75_memory_bandwidth_matches_published_value() {
        let s = ProductionDistributions::summarize(&sample());
        assert!(
            (s.p75_memory_bandwidth_gbs - 0.46).abs() < 0.06,
            "75th pct memory bandwidth {} should be ~0.46 GB/s",
            s.p75_memory_bandwidth_gbs
        );
    }

    #[test]
    fn median_core_usage_is_about_half() {
        let s = ProductionDistributions::summarize(&sample());
        assert!((s.median_core_fraction - 0.5).abs() < 0.03);
    }

    #[test]
    fn p75_nic_utilization_matches_published_value() {
        let s = ProductionDistributions::summarize(&sample());
        assert!(
            (s.p75_nic_fraction - 0.0125).abs() < 0.003,
            "75th pct NIC utilization {} should be ~1.25%",
            s.p75_nic_fraction
        );
    }

    #[test]
    fn direct_awgr_bandwidth_suffices_99_5_percent_of_the_time() {
        // 125 Gbps = 15.625 GB/s direct MCM-MCM bandwidth.
        let d = ProductionDistributions::cori_haswell();
        let p_exceed = d.probability_memory_bandwidth_exceeds(15.625, 100_000, 11);
        assert!(
            p_exceed < 0.005,
            "P(demand > 125 Gbps) = {p_exceed} should be < 0.5%"
        );
    }

    #[test]
    fn single_wavelength_suffices_about_97_percent_of_the_time() {
        // 25 Gbps = 3.125 GB/s.
        let d = ProductionDistributions::cori_haswell();
        let p_exceed = d.probability_memory_bandwidth_exceeds(3.125, 100_000, 13);
        assert!(
            p_exceed > 0.005 && p_exceed < 0.06,
            "P(demand > 25 Gbps) = {p_exceed} should be ~3%"
        );
    }

    #[test]
    fn samples_are_deterministic_given_seed() {
        let d = ProductionDistributions::cori_haswell();
        let a = d.sample_nodes_stable(100, 3);
        let b = d.sample_nodes_stable(100, 3);
        assert_eq!(a, b);
        let c = d.sample_nodes_stable(100, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn fractions_stay_in_valid_ranges() {
        for s in sample().iter().take(10_000) {
            assert!(s.memory_capacity_fraction >= 0.0 && s.memory_capacity_fraction <= 1.0);
            assert!(s.nic_fraction >= 0.0 && s.nic_fraction <= 1.0);
            assert!(s.core_fraction >= 0.0 && s.core_fraction <= 1.0);
            assert!(s.memory_bandwidth_gbs >= 0.0);
        }
    }

    #[test]
    fn summarize_empty_sample() {
        let s = ProductionDistributions::summarize(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.p75_memory_capacity, 0.0);
    }
}
