//! The CPU benchmark registry: synthetic stand-ins for the PARSEC 3.1,
//! NAS 3.4.1, and Rodinia benchmarks the paper simulates under gem5.
//!
//! The paper evaluates 57 CPU benchmark configurations (25 distinct
//! applications; PARSEC with small/medium/large inputs, NAS with classes
//! A/B/C, Rodinia with its default inputs). Each entry here names the
//! original benchmark and assigns it an access pattern, a working-set size
//! per input, a compute intensity, and a write share chosen so that the
//! synthetic kernel falls in the same *latency-sensitivity class* as the
//! original: LLC-resident benchmarks (e.g. `swaptions`, `streamcluster`
//! small/medium, the NAS suite at these scales) barely notice the added
//! latency, while LLC-thrashing streaming or irregular benchmarks
//! (`streamcluster` large, `canneal`, `nw`) are hit hard — reproducing the
//! relationships of Figs. 6 and 7.

use crate::patterns::{AccessPattern, PatternParams};
use cpusim::MemoryTrace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The benchmark suite a CPU benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuSuite {
    /// PARSEC 3.1.
    Parsec,
    /// NAS Parallel Benchmarks 3.4.1.
    Nas,
    /// Rodinia (CPU/OpenMP versions).
    Rodinia,
}

impl CpuSuite {
    /// All suites, in the order the paper's figures list them.
    pub const ALL: [CpuSuite; 3] = [CpuSuite::Parsec, CpuSuite::Nas, CpuSuite::Rodinia];
}

impl fmt::Display for CpuSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuSuite::Parsec => f.write_str("PARSEC"),
            CpuSuite::Nas => f.write_str("NAS"),
            CpuSuite::Rodinia => f.write_str("Rodinia"),
        }
    }
}

/// Input-set size: PARSEC small/medium/large, NAS classes A/B/C, Rodinia
/// default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputSize {
    /// PARSEC "simsmall" / NAS class A.
    Small,
    /// PARSEC "simmedium" / NAS class B.
    Medium,
    /// PARSEC "simlarge" / NAS class C.
    Large,
    /// The single default input (Rodinia).
    Default,
}

impl InputSize {
    /// The three graded sizes (for PARSEC and NAS).
    pub const GRADED: [InputSize; 3] = [InputSize::Small, InputSize::Medium, InputSize::Large];
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputSize::Small => f.write_str("small"),
            InputSize::Medium => f.write_str("medium"),
            InputSize::Large => f.write_str("large"),
            InputSize::Default => f.write_str("default"),
        }
    }
}

/// A CPU benchmark configuration (application + input size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuBenchmark {
    /// Benchmark name (matches the original suite's binary name).
    pub name: String,
    /// Which suite it comes from.
    pub suite: CpuSuite,
    /// Input-set size.
    pub input: InputSize,
    /// Synthetic access pattern standing in for the benchmark's kernel.
    pub pattern: AccessPattern,
    /// Working-set size in bytes for this input.
    pub working_set_bytes: u64,
    /// Non-memory instructions between memory accesses.
    pub compute_per_access: u32,
    /// Fraction of memory accesses that are writes.
    pub write_fraction: f64,
}

impl CpuBenchmark {
    /// A stable per-benchmark RNG seed derived from the name and input.
    pub fn seed(&self) -> u64 {
        // FNV-1a over the identifying string, so traces are reproducible and
        // distinct across benchmarks.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.id().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Identifier string `suite/name/input`.
    pub fn id(&self) -> String {
        format!("{}/{}/{}", self.suite, self.name, self.input)
    }

    /// Generate the benchmark's memory trace with approximately `accesses`
    /// memory accesses.
    pub fn trace(&self, accesses: usize) -> MemoryTrace {
        let params = PatternParams::new(self.working_set_bytes, accesses)
            .compute_per_access(self.compute_per_access)
            .write_fraction(self.write_fraction)
            .seed(self.seed());
        self.pattern.generate(&params)
    }
}

impl fmt::Display for CpuBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

const MIB: u64 = 1024 * 1024;

fn bench(
    name: &str,
    suite: CpuSuite,
    input: InputSize,
    pattern: AccessPattern,
    working_set_bytes: u64,
    compute_per_access: u32,
    write_fraction: f64,
) -> CpuBenchmark {
    CpuBenchmark {
        name: name.to_string(),
        suite,
        input,
        pattern,
        working_set_bytes,
        compute_per_access,
        write_fraction,
    }
}

/// PARSEC application descriptors: (name, pattern, [small, medium, large]
/// working sets in MiB, compute per access, write fraction).
fn parsec_table() -> Vec<(&'static str, AccessPattern, [u64; 3], u32, f64)> {
    vec![
        // Option pricing: streaming over small option arrays, compute heavy
        // and LLC-resident at all input sizes.
        (
            "blackscholes",
            AccessPattern::Streaming,
            [1, 2, 3],
            40,
            0.15,
        ),
        // Body tracking: blocked image processing with good reuse.
        (
            "bodytrack",
            AccessPattern::BlockedDense,
            [1, 4, 16],
            24,
            0.2,
        ),
        // Simulated annealing over a netlist: random pointer-heavy accesses
        // over a footprint far larger than the LLC.
        (
            "canneal",
            AccessPattern::RandomAccess,
            [16, 64, 256],
            6,
            0.25,
        ),
        // Deduplication: hash-table lookups over a growing footprint.
        ("dedup", AccessPattern::GraphTraversal, [8, 24, 96], 28, 0.3),
        // Content-based similarity search: index walks + random lookups.
        (
            "ferret",
            AccessPattern::GraphTraversal,
            [4, 12, 48],
            30,
            0.2,
        ),
        // SPH fluid simulation: neighbourhood (stencil-like) sweeps.
        (
            "fluidanimate",
            AccessPattern::Stencil2D,
            [4, 16, 64],
            26,
            0.3,
        ),
        // Frequent itemset mining: pointer chasing through an FP-tree.
        (
            "freqmine",
            AccessPattern::PointerChase,
            [4, 16, 64],
            12,
            0.1,
        ),
        // Online clustering: repeated passes over the point set. Small and
        // medium fit in the LLC; large does not (the paper calls this out).
        (
            "streamcluster",
            AccessPattern::RepeatedPasses,
            [1, 3, 16],
            9,
            0.1,
        ),
        // Swaption pricing: Monte-Carlo over small per-thread state.
        ("swaptions", AccessPattern::Streaming, [1, 2, 3], 50, 0.15),
    ]
}

/// NAS application descriptors: (name, pattern, [A, B, C] working sets in
/// MiB, compute per access, write fraction). At gem5-simulatable scales the
/// NAS kernels are cache-friendly and compute-rich; the paper found them
/// negligibly affected by the additional latency.
fn nas_table() -> Vec<(&'static str, AccessPattern, [u64; 3], u32, f64)> {
    vec![
        ("bt", AccessPattern::Stencil2D, [1, 2, 3], 36, 0.3),
        // CG's sparse matrix-vector product is the one NAS kernel whose
        // class-C footprint spills out of the per-core LLC share.
        ("cg", AccessPattern::RandomAccess, [1, 3, 6], 30, 0.1),
        ("ep", AccessPattern::Streaming, [1, 1, 2], 60, 0.1),
        ("ft", AccessPattern::BlockedDense, [2, 3, 3], 32, 0.3),
        ("is", AccessPattern::RandomAccess, [1, 2, 3], 26, 0.4),
        ("lu", AccessPattern::BlockedDense, [1, 2, 3], 34, 0.3),
        ("mg", AccessPattern::Stencil2D, [2, 3, 3], 30, 0.3),
    ]
}

/// Rodinia application descriptors (single default input): (name, pattern,
/// working set in MiB, compute per access, write fraction).
fn rodinia_table() -> Vec<(&'static str, AccessPattern, u64, u32, f64)> {
    vec![
        // Back-propagation: streaming over weight matrices small enough to
        // stay LLC-resident with the default (64k-node) input.
        ("backprop", AccessPattern::Streaming, 3, 20, 0.3),
        // Breadth-first search: irregular neighbour lookups over a graph
        // several times the LLC.
        ("bfs", AccessPattern::GraphTraversal, 16, 12, 0.2),
        // Thermal stencil with neighbour reuse.
        ("hotspot", AccessPattern::Stencil2D, 8, 20, 0.25),
        // K-means clustering: repeated passes over an LLC-resident point set.
        ("kmeans", AccessPattern::RepeatedPasses, 3, 20, 0.1),
        // LU decomposition: blocked with good reuse.
        ("lud", AccessPattern::BlockedDense, 8, 22, 0.3),
        // Needleman-Wunsch: wavefront DP over a large table — the paper's
        // worst-case benchmark (~79% slowdown in-order, ~55% OOO).
        ("nw", AccessPattern::Wavefront, 64, 1, 0.25),
        // Particle filter: scattered particle updates across a footprint
        // larger than the LLC.
        ("particlefilter", AccessPattern::RandomAccess, 16, 8, 0.3),
        // Grid path search: streaming rows of a large grid.
        ("pathfinder", AccessPattern::Streaming, 6, 8, 0.2),
        // Speckle-reducing anisotropic diffusion: image stencil.
        ("srad", AccessPattern::Stencil2D, 24, 12, 0.3),
    ]
}

/// The full CPU benchmark registry: 57 configurations (9 PARSEC x 3 inputs,
/// 7 NAS x 3 classes, 9 Rodinia).
pub fn cpu_benchmarks() -> Vec<CpuBenchmark> {
    let mut v = Vec::new();
    for (name, pattern, ws, compute, wf) in parsec_table() {
        for (i, input) in InputSize::GRADED.iter().enumerate() {
            v.push(bench(
                name,
                CpuSuite::Parsec,
                *input,
                pattern,
                ws[i] * MIB,
                compute,
                wf,
            ));
        }
    }
    for (name, pattern, ws, compute, wf) in nas_table() {
        for (i, input) in InputSize::GRADED.iter().enumerate() {
            v.push(bench(
                name,
                CpuSuite::Nas,
                *input,
                pattern,
                ws[i] * MIB,
                compute,
                wf,
            ));
        }
    }
    for (name, pattern, ws, compute, wf) in rodinia_table() {
        v.push(bench(
            name,
            CpuSuite::Rodinia,
            InputSize::Default,
            pattern,
            ws * MIB,
            compute,
            wf,
        ));
    }
    v
}

/// Benchmarks from one suite (all input sizes).
pub fn suite_benchmarks(suite: CpuSuite) -> Vec<CpuBenchmark> {
    cpu_benchmarks()
        .into_iter()
        .filter(|b| b.suite == suite)
        .collect()
}

/// The Rodinia applications that exist in both the CPU and GPU evaluations
/// and complete correctly on both — the set Fig. 11 compares.
pub fn rodinia_cpu_gpu_intersection() -> Vec<&'static str> {
    vec![
        "backprop",
        "bfs",
        "hotspot",
        "kmeans",
        "lud",
        "nw",
        "pathfinder",
        "srad",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_has_57_configurations() {
        assert_eq!(cpu_benchmarks().len(), 57);
    }

    #[test]
    fn registry_has_25_distinct_applications() {
        let names: HashSet<String> = cpu_benchmarks().into_iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn suite_breakdown_matches_paper_structure() {
        assert_eq!(suite_benchmarks(CpuSuite::Parsec).len(), 27);
        assert_eq!(suite_benchmarks(CpuSuite::Nas).len(), 21);
        assert_eq!(suite_benchmarks(CpuSuite::Rodinia).len(), 9);
    }

    #[test]
    fn ids_are_unique() {
        let ids: HashSet<String> = cpu_benchmarks().iter().map(|b| b.id()).collect();
        assert_eq!(ids.len(), 57);
    }

    #[test]
    fn seeds_are_distinct_across_benchmarks() {
        let seeds: HashSet<u64> = cpu_benchmarks().iter().map(|b| b.seed()).collect();
        assert_eq!(seeds.len(), 57);
    }

    #[test]
    fn parsec_working_sets_grow_with_input_size() {
        for b in suite_benchmarks(CpuSuite::Parsec).chunks(3) {
            assert!(b[0].working_set_bytes <= b[1].working_set_bytes);
            assert!(b[1].working_set_bytes <= b[2].working_set_bytes);
        }
    }

    #[test]
    fn streamcluster_small_fits_llc_but_large_does_not() {
        let llc = 4 * MIB;
        let sc: Vec<CpuBenchmark> = cpu_benchmarks()
            .into_iter()
            .filter(|b| b.name == "streamcluster")
            .collect();
        assert_eq!(sc.len(), 3);
        assert!(sc[0].working_set_bytes <= llc);
        assert!(sc[1].working_set_bytes <= llc);
        assert!(sc[2].working_set_bytes > llc);
    }

    #[test]
    fn nas_benchmarks_are_cache_friendly_or_compute_rich() {
        for b in suite_benchmarks(CpuSuite::Nas) {
            assert!(
                b.working_set_bytes <= 4 * MIB || b.compute_per_access >= 25,
                "{} should be LLC-resident or compute-rich",
                b.id()
            );
        }
    }

    #[test]
    fn nw_is_the_most_memory_intense_rodinia_benchmark() {
        let rodinia = suite_benchmarks(CpuSuite::Rodinia);
        let nw = rodinia.iter().find(|b| b.name == "nw").unwrap();
        for b in &rodinia {
            assert!(nw.compute_per_access <= b.compute_per_access);
        }
        assert!(nw.working_set_bytes >= 32 * MIB);
    }

    #[test]
    fn traces_generate_and_are_deterministic() {
        let b = &cpu_benchmarks()[0];
        let t1 = b.trace(5_000);
        let t2 = b.trace(5_000);
        assert_eq!(t1, t2);
        assert_eq!(t1.accesses(), 5_000);
    }

    #[test]
    fn intersection_is_subset_of_both_suites() {
        let rodinia_names: HashSet<String> = suite_benchmarks(CpuSuite::Rodinia)
            .into_iter()
            .map(|b| b.name)
            .collect();
        for name in rodinia_cpu_gpu_intersection() {
            assert!(
                rodinia_names.contains(name),
                "{name} missing from CPU Rodinia"
            );
        }
        assert_eq!(rodinia_cpu_gpu_intersection().len(), 8);
    }

    #[test]
    fn display_id_format() {
        let b = &cpu_benchmarks()[0];
        assert_eq!(b.to_string(), format!("{}/{}/{}", b.suite, b.name, b.input));
        assert_eq!(CpuSuite::Parsec.to_string(), "PARSEC");
        assert_eq!(InputSize::Large.to_string(), "large");
    }
}
