//! # workloads
//!
//! Synthetic workloads driving the paper's three evaluations:
//!
//! * [`patterns`] + [`cpu`] — memory-access-trace generators and the CPU
//!   benchmark registry standing in for the PARSEC 3.1, NAS 3.4.1, and
//!   Rodinia suites the paper runs under gem5 (57 benchmark configurations
//!   across 25 distinct applications and three input sizes). Each named
//!   benchmark is a parameterized synthetic kernel whose working set,
//!   access pattern, and compute intensity reproduce the *behaviour class*
//!   of the original (LLC-resident vs. thrashing, streaming vs. random vs.
//!   pointer-chasing), which is what determines latency sensitivity.
//! * [`gpu`] — the 24 GPU application profiles (Rodinia, Polybench, Tango)
//!   evaluated with the PPT-GPU-style analytical model in `gpusim`.
//! * [`production`] — samplers reproducing the published NERSC Cori
//!   utilization distributions (memory capacity, memory bandwidth, core
//!   count, NIC bandwidth) used by the bandwidth-sufficiency analysis
//!   (Section VI-A1) and the iso-performance provisioning study
//!   (Section VI-E).
//! * [`traffic`] — rack-level demand-matrix generators (uniform,
//!   permutation, hot-spot, nearest-neighbour, all-to-all) that feed the
//!   flow-level fabric simulator through the `core::sweep` scenario engine
//!   (the Section VI-A1 bandwidth argument generalized to arbitrary
//!   patterns).
//! * [`timeline`] — multi-phase [`DemandTimeline`]s composing the traffic
//!   patterns into phased schedules with ramps, bursts, and shifting hot
//!   spots, consumed per epoch by the `fabric::timeline` simulator and the
//!   `core::sweep` timeline axis (the Section VI-A bandwidth-steering
//!   scenario).
//!
//! All generators take explicit seeds, so every experiment in the harness is
//! reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod gpu;
pub mod patterns;
pub mod production;
pub mod timeline;
pub mod traffic;

pub use cpu::{cpu_benchmarks, rodinia_cpu_gpu_intersection, CpuBenchmark, CpuSuite, InputSize};
pub use gpu::{gpu_applications, GpuSuite};
pub use patterns::{AccessPattern, PatternParams};
pub use production::{NodeUtilization, ProductionDistributions, UtilizationSample};
pub use timeline::{DemandTimeline, Phase, TimelineSignature};
pub use traffic::{DemandSignature, TrafficPattern};
