//! Memory-access-pattern generators.
//!
//! Each pattern produces a [`MemoryTrace`] whose
//! locality characteristics determine how sensitive the workload is to the
//! LLC-to-memory latency the disaggregation fabric adds. The patterns cover
//! the computation classes the paper's benchmark suites contain: streaming,
//! stencils, dense linear algebra, graph traversal, hash-table/random access,
//! pointer chasing, wavefront dynamic programming, and clustering.

use cpusim::MemoryTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The access-pattern families used to synthesize benchmark traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential streaming over the working set (unit-stride reads with a
    /// configurable write share): STREAM, blackscholes, swaptions.
    Streaming,
    /// 5-point 2-D stencil sweeps over a grid: hotspot, srad, NAS BT/SP/MG.
    Stencil2D,
    /// Blocked dense linear algebra (tiled mat-mul style reuse): LU, GEMM.
    BlockedDense,
    /// Uniform random accesses over the working set: canneal, IS, hash
    /// tables.
    RandomAccess,
    /// Dependent pointer chasing through a shuffled ring: linked data
    /// structures, B+-tree descent.
    PointerChase,
    /// Wavefront dynamic programming over a large 2-D table (three
    /// neighbouring reads, one streamed reference read, and one write per
    /// cell): Needleman-Wunsch.
    Wavefront,
    /// Graph traversal: mostly-sequential frontier scan plus random
    /// neighbour lookups: BFS, ferret.
    GraphTraversal,
    /// Repeated full passes over a point set (clustering):
    /// kmeans, streamcluster.
    RepeatedPasses,
}

/// Parameters shared by all pattern generators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternParams {
    /// Working-set size in bytes.
    pub working_set_bytes: u64,
    /// Approximate number of memory accesses to generate.
    pub accesses: usize,
    /// Non-memory instructions between consecutive memory accesses
    /// (compute intensity).
    pub compute_per_access: u32,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// RNG seed (patterns are deterministic given the seed).
    pub seed: u64,
}

impl PatternParams {
    /// Size of one trace element (one cache line).
    pub const ELEMENT_BYTES: u64 = 64;

    /// Reasonable defaults: 8 MiB working set, 100k accesses, 8 compute
    /// instructions per access, 30% writes.
    pub fn new(working_set_bytes: u64, accesses: usize) -> Self {
        PatternParams {
            working_set_bytes,
            accesses,
            compute_per_access: 8,
            write_fraction: 0.3,
            seed: 0x5eed,
        }
    }

    /// Set the compute intensity.
    pub fn compute_per_access(mut self, c: u32) -> Self {
        self.compute_per_access = c;
        self
    }

    /// Set the write fraction.
    pub fn write_fraction(mut self, f: f64) -> Self {
        self.write_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of 64-byte (cache-line sized) elements in the working set.
    /// Traces are generated at line granularity: one access touches one
    /// line, which is the standard trace-reduction granularity for cache
    /// studies and keeps coverage of multi-megabyte working sets tractable.
    fn elements(&self) -> u64 {
        (self.working_set_bytes / Self::ELEMENT_BYTES).max(1)
    }
}

impl AccessPattern {
    /// Generate a trace for this pattern with the given parameters.
    pub fn generate(self, params: &PatternParams) -> MemoryTrace {
        match self {
            AccessPattern::Streaming => streaming(params),
            AccessPattern::Stencil2D => stencil_2d(params),
            AccessPattern::BlockedDense => blocked_dense(params),
            AccessPattern::RandomAccess => random_access(params),
            AccessPattern::PointerChase => pointer_chase(params),
            AccessPattern::Wavefront => wavefront(params),
            AccessPattern::GraphTraversal => graph_traversal(params),
            AccessPattern::RepeatedPasses => repeated_passes(params),
        }
    }

    /// All pattern kinds (useful for property tests and ablations).
    pub const ALL: [AccessPattern; 8] = [
        AccessPattern::Streaming,
        AccessPattern::Stencil2D,
        AccessPattern::BlockedDense,
        AccessPattern::RandomAccess,
        AccessPattern::PointerChase,
        AccessPattern::Wavefront,
        AccessPattern::GraphTraversal,
        AccessPattern::RepeatedPasses,
    ];
}

fn rng_for(params: &PatternParams) -> StdRng {
    StdRng::seed_from_u64(params.seed)
}

fn push(trace: &mut MemoryTrace, rng: &mut StdRng, params: &PatternParams, addr: u64) {
    let is_write = rng.gen_bool(params.write_fraction);
    trace.push(
        params.compute_per_access,
        cpusim::MemAccess { addr, is_write },
    );
}

/// Unit-stride streaming over the working set, wrapping around as needed.
fn streaming(params: &PatternParams) -> MemoryTrace {
    let mut trace = MemoryTrace::with_capacity(params.accesses);
    let mut rng = rng_for(params);
    let elements = params.elements();
    for i in 0..params.accesses as u64 {
        let addr = (i % elements) * PatternParams::ELEMENT_BYTES;
        push(&mut trace, &mut rng, params, addr);
    }
    trace
}

/// 5-point stencil over a square 2-D grid of f64: for each cell, read the
/// north/west/east/south neighbours and write the centre.
fn stencil_2d(params: &PatternParams) -> MemoryTrace {
    let mut trace = MemoryTrace::with_capacity(params.accesses);
    let mut rng = rng_for(params);
    let elements = params.elements();
    let dim = (elements as f64).sqrt().max(4.0) as u64;
    let mut generated = 0usize;
    'outer: loop {
        for row in 1..dim - 1 {
            for col in 1..dim - 1 {
                let center = row * dim + col;
                let neighbours = [center - dim, center - 1, center + 1, center + dim];
                for &n in &neighbours {
                    trace.push_read(params.compute_per_access, n * PatternParams::ELEMENT_BYTES);
                    generated += 1;
                    if generated >= params.accesses {
                        break 'outer;
                    }
                }
                let _ = &mut rng;
                trace.push_write(
                    params.compute_per_access,
                    center * PatternParams::ELEMENT_BYTES,
                );
                generated += 1;
                if generated >= params.accesses {
                    break 'outer;
                }
            }
        }
    }
    trace
}

/// Tiled dense linear algebra: repeatedly sweep a cache-blocked tile of the
/// working set with high reuse, then move to the next tile.
fn blocked_dense(params: &PatternParams) -> MemoryTrace {
    let mut trace = MemoryTrace::with_capacity(params.accesses);
    let mut rng = rng_for(params);
    let elements = params.elements();
    // Tiles sized to fit in the L2 (512 KiB = 8K cache lines).
    let tile_elems: u64 = 6 * 1024;
    let reuse_passes = 12u64;
    let mut generated = 0usize;
    let mut tile_start = 0u64;
    while generated < params.accesses {
        let tile_len = tile_elems.min(elements.saturating_sub(tile_start).max(1));
        for _ in 0..reuse_passes {
            for e in 0..tile_len {
                let addr = (tile_start + e) * PatternParams::ELEMENT_BYTES;
                push(&mut trace, &mut rng, params, addr);
                generated += 1;
                if generated >= params.accesses {
                    return trace;
                }
            }
        }
        tile_start = (tile_start + tile_elems) % elements;
    }
    trace
}

/// Uniform random accesses over the working set.
fn random_access(params: &PatternParams) -> MemoryTrace {
    let mut trace = MemoryTrace::with_capacity(params.accesses);
    let mut rng = rng_for(params);
    let elements = params.elements();
    for _ in 0..params.accesses {
        let addr = rng.gen_range(0..elements) * PatternParams::ELEMENT_BYTES;
        push(&mut trace, &mut rng, params, addr);
    }
    trace
}

/// Dependent pointer chasing: a pseudo-random permutation walked one element
/// at a time. Every access depends on the previous one, so there is no
/// memory-level parallelism for an OOO core to exploit.
fn pointer_chase(params: &PatternParams) -> MemoryTrace {
    let mut trace = MemoryTrace::with_capacity(params.accesses);
    let mut rng = rng_for(params);
    let elements = params.elements();
    // Walk a strided "ring" whose stride is co-prime with the element count,
    // which visits elements in a scattered order without materializing a
    // permutation array.
    let stride = (elements / 2 + 1) | 1;
    let mut pos = rng.gen_range(0..elements);
    for _ in 0..params.accesses {
        pos = (pos + stride) % elements;
        push(
            &mut trace,
            &mut rng,
            params,
            pos * PatternParams::ELEMENT_BYTES,
        );
    }
    trace
}

/// Needleman-Wunsch style wavefront: fill a 2-D score table where each cell
/// reads its west, north, and north-west neighbours and writes itself. Rows
/// are long, so the north neighbours fall out of the small caches for large
/// tables.
fn wavefront(params: &PatternParams) -> MemoryTrace {
    let mut trace = MemoryTrace::with_capacity(params.accesses);
    let mut rng = rng_for(params);
    let elements = params.elements();
    // Half the working set is the score table, half is the reference
    // sequence data that is streamed once per cell (Needleman-Wunsch reads
    // the substitution/reference matrix alongside the DP table).
    let table_elems = (elements / 2).max(4);
    let ref_base = table_elems;
    let ref_elems = (elements - table_elems).max(1);
    let cols = (table_elems as f64).sqrt().max(8.0) as u64;
    let rows = (table_elems / cols).max(2);
    let mut cell = 0u64;
    let mut generated = 0usize;
    'outer: loop {
        for r in 1..rows {
            for c in 1..cols {
                let idx = r * cols + c;
                let west = idx - 1;
                let north = idx - cols;
                let northwest = idx - cols - 1;
                let reference = ref_base + (cell % ref_elems);
                cell += 1;
                for &n in &[west, north, northwest, reference] {
                    trace.push_read(params.compute_per_access, n * PatternParams::ELEMENT_BYTES);
                    generated += 1;
                    if generated >= params.accesses {
                        break 'outer;
                    }
                }
                let _ = &mut rng;
                trace.push_write(
                    params.compute_per_access,
                    idx * PatternParams::ELEMENT_BYTES,
                );
                generated += 1;
                if generated >= params.accesses {
                    break 'outer;
                }
            }
        }
    }
    trace
}

/// Graph traversal: sequential scan of a frontier array interleaved with
/// random accesses into a large neighbour/property array.
fn graph_traversal(params: &PatternParams) -> MemoryTrace {
    let mut trace = MemoryTrace::with_capacity(params.accesses);
    let mut rng = rng_for(params);
    let elements = params.elements();
    // A quarter of the working set is the (sequentially scanned) CSR arrays;
    // the rest is the randomly-indexed property array.
    let frontier_elems = (elements / 4).max(1);
    let property_elems = elements - frontier_elems;
    let mut seq = 0u64;
    for i in 0..params.accesses {
        if i % 3 == 0 {
            // Frontier / offsets scan: sequential.
            let addr = (seq % frontier_elems) * PatternParams::ELEMENT_BYTES;
            seq += 1;
            trace.push_read(params.compute_per_access, addr);
        } else {
            // Neighbour property lookup: random.
            let addr = (frontier_elems + rng.gen_range(0..property_elems.max(1)))
                * PatternParams::ELEMENT_BYTES;
            push(&mut trace, &mut rng, params, addr);
        }
    }
    trace
}

/// Repeated full passes over a point set (kmeans/streamcluster): every pass
/// streams the whole working set; whether it fits in the LLC decides
/// everything.
fn repeated_passes(params: &PatternParams) -> MemoryTrace {
    let mut trace = MemoryTrace::with_capacity(params.accesses);
    let mut rng = rng_for(params);
    let elements = params.elements();
    let mut generated = 0usize;
    loop {
        for e in 0..elements {
            push(
                &mut trace,
                &mut rng,
                params,
                e * PatternParams::ELEMENT_BYTES,
            );
            generated += 1;
            if generated >= params.accesses {
                return trace;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(ws: u64) -> PatternParams {
        PatternParams::new(ws, 20_000).seed(42)
    }

    #[test]
    fn all_patterns_generate_requested_length() {
        for pattern in AccessPattern::ALL {
            let t = pattern.generate(&params(1 << 20));
            assert!(
                t.accesses() >= 20_000 && t.accesses() <= 20_001,
                "{pattern:?} generated {} accesses",
                t.accesses()
            );
        }
    }

    #[test]
    fn all_patterns_stay_within_working_set() {
        for pattern in AccessPattern::ALL {
            let p = params(1 << 20);
            let t = pattern.generate(&p);
            let stats = t.stats();
            assert!(
                stats.address_footprint_bytes <= p.working_set_bytes,
                "{pattern:?} footprint {} exceeds working set {}",
                stats.address_footprint_bytes,
                p.working_set_bytes
            );
        }
    }

    #[test]
    fn patterns_are_deterministic_given_seed() {
        for pattern in AccessPattern::ALL {
            let a = pattern.generate(&params(1 << 20));
            let b = pattern.generate(&params(1 << 20));
            assert_eq!(a, b, "{pattern:?} must be deterministic");
        }
    }

    #[test]
    fn different_seeds_change_random_patterns() {
        let a = AccessPattern::RandomAccess.generate(&params(1 << 20));
        let b = AccessPattern::RandomAccess.generate(&params(1 << 20).seed(43));
        assert_ne!(a, b);
    }

    #[test]
    fn write_fraction_respected_approximately() {
        let p = params(1 << 20).write_fraction(0.5);
        let t = AccessPattern::Streaming.generate(&p);
        let s = t.stats();
        let frac = s.writes as f64 / s.accesses as f64;
        assert!((frac - 0.5).abs() < 0.05, "write fraction {frac}");
        let p0 = params(1 << 20).write_fraction(0.0);
        let t0 = AccessPattern::RandomAccess.generate(&p0);
        assert_eq!(t0.stats().writes, 0);
    }

    #[test]
    fn compute_intensity_respected() {
        let p = params(1 << 16).compute_per_access(50);
        let t = AccessPattern::Streaming.generate(&p);
        // instructions per access = compute + 1.
        let per_access = t.instructions() as f64 / t.accesses() as f64;
        assert!((per_access - 51.0).abs() < 1.0);
    }

    #[test]
    fn streaming_has_line_stride() {
        let t = AccessPattern::Streaming.generate(&params(1 << 20));
        let a0 = t.records[0].access.addr;
        let a1 = t.records[1].access.addr;
        assert_eq!(a1 - a0, PatternParams::ELEMENT_BYTES);
    }

    #[test]
    fn pointer_chase_has_no_short_strides() {
        let t = AccessPattern::PointerChase.generate(&params(1 << 20));
        let mut short_strides = 0;
        for w in t.records.windows(2) {
            let d = (w[1].access.addr as i64 - w[0].access.addr as i64).unsigned_abs();
            if d <= 64 {
                short_strides += 1;
            }
        }
        assert!(short_strides < t.accesses() / 100);
    }

    #[test]
    fn blocked_dense_reuses_lines_heavily() {
        // With 12 reuse passes over an L2-sized tile, the same addresses recur
        // many times: distinct lines << accesses.
        let t =
            AccessPattern::BlockedDense.generate(&PatternParams::new(64 << 20, 60_000).seed(42));
        let mut lines: std::collections::HashSet<u64> =
            std::collections::HashSet::with_capacity(4096);
        for r in &t.records {
            lines.insert(r.access.addr / 64);
        }
        assert!(lines.len() * 4 < t.accesses());
    }

    #[test]
    fn wavefront_reads_four_times_per_write() {
        let t = AccessPattern::Wavefront.generate(&params(1 << 22));
        let s = t.stats();
        let ratio = s.reads as f64 / s.writes.max(1) as f64;
        assert!((ratio - 4.0).abs() < 0.2, "read/write ratio {ratio}");
    }

    #[test]
    fn graph_traversal_mixes_sequential_and_random() {
        let t = AccessPattern::GraphTraversal.generate(&params(8 << 20));
        // Roughly a third of accesses are the sequential frontier scan in the
        // first quarter of the address space.
        let frontier_limit = (8u64 << 20) / 4;
        let frontier_accesses = t
            .records
            .iter()
            .filter(|r| r.access.addr < frontier_limit)
            .count();
        let frac = frontier_accesses as f64 / t.accesses() as f64;
        assert!(frac > 0.25 && frac < 0.6, "frontier fraction {frac}");
    }

    #[test]
    fn repeated_passes_covers_working_set_multiple_times() {
        let p = PatternParams::new(64 * 1024, 40_000).seed(1);
        let t = AccessPattern::RepeatedPasses.generate(&p);
        // 64 KiB = 1024 line-sized elements; 40k accesses = ~39 passes.
        let s = t.stats();
        assert!(s.address_footprint_bytes <= 64 * 1024);
        assert!(t.accesses() == 40_000);
    }
}
