//! Multi-phase demand timelines for the temporal fabric sweeps.
//!
//! The paper's bandwidth-steering argument (Section VI-A) rests on HPC
//! traffic varying over time: an application alternates halo exchanges,
//! all-to-all transposes, and I/O bursts, and the photonic fabric can
//! reallocate wavelengths to follow the shift. This module composes the
//! static [`TrafficPattern`] families into [`DemandTimeline`]s — ordered
//! [`Phase`]s with per-epoch demand ramps, bursts, and destination
//! rotations — which the `fabric::timeline` epoch simulator and the
//! `core::sweep` timeline axis consume.
//!
//! Everything is deterministic given the timeline seed: a phase's base
//! demand matrix is fixed for the phase's whole duration (so a flat phase
//! never spuriously churns a reallocation policy), and only the ramp scale
//! and destination rotation vary epoch to epoch.

use fabric::{DemandMatrix, Flow};
use serde::{Deserialize, Serialize};

use crate::gpu::{gpu_applications, suite_applications, GpuSuite};
use crate::traffic::{DemandSignature, TrafficPattern};
use gpusim::ApplicationProfile;

/// The simulator-free feature summary of a [`DemandTimeline`] expansion:
/// the per-epoch [`DemandSignature`] averaged over the timeline, plus the
/// temporal shape the static signature cannot see. Produced by
/// [`DemandTimeline::demand_signature`] for the `core::sample`
/// representative-scenario sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineSignature {
    /// Epoch-mean demand-matrix signature.
    pub aggregate: DemandSignature,
    /// Number of epochs the timeline spans.
    pub epochs: f64,
    /// Mean epoch-to-epoch change in total offered load, normalized by the
    /// peak epoch load: 0 for a flat timeline, → 1 for full-swing bursts.
    pub churn: f64,
}

/// One contiguous stretch of epochs offering a single traffic pattern,
/// optionally demand-ramped and destination-rotated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// The demand-matrix family offered during the phase.
    pub pattern: TrafficPattern,
    /// Number of epochs the phase lasts (at least 1).
    pub epochs: u32,
    /// Demand multiplier at the phase's first epoch.
    pub start_scale: f64,
    /// Demand multiplier at the phase's last epoch; intermediate epochs
    /// interpolate linearly (a flat phase has `start_scale == end_scale`).
    pub end_scale: f64,
    /// Rotate every destination by this many MCMs (mod rack size), applied
    /// to the phase's own base matrix. For seed-independent patterns like
    /// [`TrafficPattern::HotSpot`] this turns one incast into a *shifting*
    /// hot spot across phases with the same source structure; random
    /// patterns additionally resample per phase (each phase derives its own
    /// seed).
    pub dst_rotation: u32,
}

impl Phase {
    /// A flat phase: constant demand, no rotation.
    pub fn flat(pattern: TrafficPattern, epochs: u32) -> Self {
        Phase {
            pattern,
            epochs: epochs.max(1),
            start_scale: 1.0,
            end_scale: 1.0,
            dst_rotation: 0,
        }
    }

    /// A linear demand ramp from `from` to `to` times the pattern's demand.
    pub fn ramp(pattern: TrafficPattern, epochs: u32, from: f64, to: f64) -> Self {
        Phase {
            start_scale: from.max(0.0),
            end_scale: to.max(0.0),
            ..Phase::flat(pattern, epochs)
        }
    }

    /// Rotate all destinations of this phase by `rotation` MCMs.
    pub fn rotated(mut self, rotation: u32) -> Self {
        self.dst_rotation = rotation;
        self
    }

    /// Demand multiplier at a local epoch index within the phase.
    pub fn scale_at(&self, local_epoch: u32) -> f64 {
        if self.epochs <= 1 {
            return self.start_scale;
        }
        let t = local_epoch.min(self.epochs - 1) as f64 / (self.epochs - 1) as f64;
        self.start_scale + (self.end_scale - self.start_scale) * t
    }
}

/// A named sequence of [`Phase`]s: the temporal analogue of a single
/// [`TrafficPattern`].
///
/// The timeline expands to one demand matrix per epoch via
/// [`flows_at`](DemandTimeline::flows_at). Within a phase the *base* matrix
/// is constant (derived from the timeline seed and the phase index), so
/// only ramps and rotations change what consecutive epochs offer.
///
/// # Example
///
/// ```
/// use workloads::{DemandTimeline, TrafficPattern};
///
/// let tl = DemandTimeline::named("warmup-burst")
///     .ramp(
///         TrafficPattern::Uniform { flows_per_mcm: 2, demand_gbps: 100.0 },
///         3,
///         0.5,
///         1.0,
///     )
///     .burst(TrafficPattern::HotSpot { hot_mcms: 4, demand_gbps: 100.0 }, 2, 2.0);
/// assert_eq!(tl.total_epochs(), 5);
///
/// // Epoch 0 offers half demand, epoch 2 full demand, epochs 3-4 a 2x burst.
/// let early = tl.flows_at(0, 16, 7);
/// let late = tl.flows_at(2, 16, 7);
/// assert_eq!(early.len(), late.len());
/// assert!((early[0].demand_gbps - 50.0).abs() < 1e-9);
/// assert!((late[0].demand_gbps - 100.0).abs() < 1e-9);
///
/// // Same seed, same matrices — timelines are deterministic end to end.
/// assert_eq!(tl.flows_at(4, 16, 7), tl.flows_at(4, 16, 7));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandTimeline {
    /// Short name used in sweep-report rows and CLI parsing.
    pub name: String,
    /// The phase sequence, in temporal order.
    pub phases: Vec<Phase>,
}

impl DemandTimeline {
    /// An empty timeline under a given name.
    pub fn named(name: impl Into<String>) -> Self {
        DemandTimeline {
            name: name.into(),
            phases: Vec::new(),
        }
    }

    /// Append a flat phase.
    pub fn phase(mut self, pattern: TrafficPattern, epochs: u32) -> Self {
        self.phases.push(Phase::flat(pattern, epochs));
        self
    }

    /// Append a linear demand ramp.
    pub fn ramp(mut self, pattern: TrafficPattern, epochs: u32, from: f64, to: f64) -> Self {
        self.phases.push(Phase::ramp(pattern, epochs, from, to));
        self
    }

    /// Append a flat burst at `scale` times the pattern's demand.
    pub fn burst(mut self, pattern: TrafficPattern, epochs: u32, scale: f64) -> Self {
        self.phases.push(Phase::ramp(pattern, epochs, scale, scale));
        self
    }

    /// Append an arbitrary phase.
    pub fn push(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Total number of epochs across all phases.
    pub fn total_epochs(&self) -> u32 {
        self.phases.iter().map(|p| p.epochs).sum()
    }

    /// The phase containing a global epoch index, with the phase's position
    /// and the epoch's local index within it. `None` past the end.
    pub fn phase_at(&self, epoch: u32) -> Option<(usize, &Phase, u32)> {
        let mut start = 0;
        for (i, p) in self.phases.iter().enumerate() {
            if epoch < start + p.epochs {
                return Some((i, p, epoch - start));
            }
            start += p.epochs;
        }
        None
    }

    /// The demand matrix offered at a global epoch, for a rack of
    /// `mcm_count` MCMs.
    ///
    /// The phase's base matrix comes from its pattern expanded with a seed
    /// derived from `seed` and the phase index (stable across the phase's
    /// epochs); the epoch's ramp scale multiplies every demand and the
    /// phase's rotation shifts every destination. Epochs at or beyond
    /// [`total_epochs`](DemandTimeline::total_epochs) yield an empty matrix.
    ///
    /// To expand a whole timeline, prefer
    /// [`epoch_matrices`](DemandTimeline::epoch_matrices), which expands
    /// each phase's base matrix once instead of once per epoch.
    pub fn flows_at(&self, epoch: u32, mcm_count: u32, seed: u64) -> Vec<Flow> {
        let Some((index, phase, local)) = self.phase_at(epoch) else {
            return Vec::new();
        };
        let base = phase_base_matrix(index, phase, mcm_count, seed);
        scale_matrix(&base, phase.scale_at(local))
    }

    /// Every epoch's demand matrix, in temporal order — identical to
    /// calling [`flows_at`](DemandTimeline::flows_at) for `0..total_epochs`
    /// but each phase's (RNG-driven) base matrix is expanded exactly once
    /// and only the per-epoch ramp scale is applied per epoch.
    pub fn epoch_matrices(&self, mcm_count: u32, seed: u64) -> Vec<Vec<Flow>> {
        let mut out = Vec::with_capacity(self.total_epochs() as usize);
        for (index, phase) in self.phases.iter().enumerate() {
            let base = phase_base_matrix(index, phase, mcm_count, seed);
            for local in 0..phase.epochs {
                out.push(scale_matrix(&base, phase.scale_at(local)));
            }
        }
        out
    }

    /// Every epoch's demand as a dense row-major
    /// [`DemandMatrix`] — the flat-array counterpart of
    /// [`epoch_matrices`](DemandTimeline::epoch_matrices), with flows
    /// sharing an ordered pair aggregated per epoch. Same seed derivation,
    /// same per-phase expansion, same temporal order.
    ///
    /// ```
    /// use workloads::{DemandTimeline, TrafficPattern};
    ///
    /// let tl = DemandTimeline::steady(TrafficPattern::AllToAll { demand_gbps: 2.0 }, 3)
    ///     .ramp(TrafficPattern::AllToAll { demand_gbps: 2.0 }, 3, 1.0, 2.0);
    /// let dense = tl.epoch_demand_matrices(8, 7);
    /// let flows = tl.epoch_matrices(8, 7);
    /// assert_eq!(dense.len(), flows.len());
    /// // Each epoch's dense matrix carries exactly the epoch's total load.
    /// for (m, fs) in dense.iter().zip(&flows) {
    ///     let total: f64 = fs.iter().map(|f| f.demand_gbps).sum();
    ///     assert!((m.total_gbps() - total).abs() < 1e-9);
    /// }
    /// ```
    pub fn epoch_demand_matrices(&self, mcm_count: u32, seed: u64) -> Vec<DemandMatrix> {
        self.epoch_matrices(mcm_count, seed)
            .iter()
            .map(|flows| DemandMatrix::from_flows(mcm_count, flows))
            .collect()
    }

    /// Total demand the timeline offers across all epochs (Gbps, summed per
    /// epoch), after the flow simulator's demand sanitization — the
    /// denominator of the energy layer's energy-per-offered-bit figures and
    /// the offered-load context line of the `energy` binary.
    ///
    /// # Example
    ///
    /// ```
    /// use workloads::{DemandTimeline, TrafficPattern};
    ///
    /// let tl = DemandTimeline::steady(
    ///     TrafficPattern::Permutation { demand_gbps: 100.0 },
    ///     3,
    /// );
    /// // A 16-MCM permutation offers 16 x 100 Gbps per epoch, 3 epochs.
    /// assert!((tl.total_offered_gbps(16, 7) - 3.0 * 16.0 * 100.0).abs() < 1e-9);
    /// ```
    pub fn total_offered_gbps(&self, mcm_count: u32, seed: u64) -> f64 {
        self.epoch_matrices(mcm_count, seed)
            .iter()
            .flat_map(|m| m.iter())
            .map(|f| f.sanitized().demand_gbps)
            .sum()
    }

    /// The [`TimelineSignature`] of this timeline's expansion: the
    /// epoch-mean [`DemandSignature`] plus the temporal shape (epoch count
    /// and load churn) — the feature vector the `core::sample`
    /// representative-scenario sampler clusters temporal scenarios on.
    /// Computed from the expanded epoch matrices alone; no simulator runs.
    ///
    /// ```
    /// use workloads::{DemandTimeline, TrafficPattern};
    ///
    /// let steady = DemandTimeline::steady(
    ///     TrafficPattern::Permutation { demand_gbps: 100.0 },
    ///     4,
    /// );
    /// let sig = steady.demand_signature(16, 7);
    /// assert_eq!(sig.epochs, 4.0);
    /// // A flat single-phase timeline has zero epoch-to-epoch churn.
    /// assert_eq!(sig.churn, 0.0);
    /// ```
    pub fn demand_signature(&self, mcm_count: u32, seed: u64) -> TimelineSignature {
        let epochs = self.epoch_matrices(mcm_count, seed);
        if epochs.is_empty() {
            return TimelineSignature {
                aggregate: DemandSignature::zero(),
                epochs: 0.0,
                churn: 0.0,
            };
        }
        let mut sums = [0.0f64; DemandSignature::DIMS];
        let mut totals = Vec::with_capacity(epochs.len());
        for flows in &epochs {
            let sig = DemandSignature::from_flows(mcm_count, flows);
            for (sum, c) in sums.iter_mut().zip(sig.components()) {
                *sum += c;
            }
            totals.push(sig.total_gbps);
        }
        let n = epochs.len() as f64;
        let aggregate = DemandSignature {
            total_gbps: sums[0] / n,
            flow_count: sums[1] / n,
            max_src_share: sums[2] / n,
            max_dst_share: sums[3] / n,
            mean_hop_distance: sums[4] / n,
        };
        let peak = totals.iter().cloned().fold(0.0f64, f64::max);
        let churn = if peak > 0.0 && totals.len() > 1 {
            let delta_sum: f64 = totals.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
            delta_sum / (totals.len() - 1) as f64 / peak
        } else {
            0.0
        };
        TimelineSignature {
            aggregate,
            epochs: n,
            churn,
        }
    }

    /// A stable label covering every demand-defining parameter of the
    /// timeline (phase patterns, durations, scales, rotations). Used by the
    /// sweep engine's seed derivation, so two timelines that offer the same
    /// traffic share a seed regardless of their display `name` — and, for
    /// the same reason, as the memo key under which the `core::sample`
    /// signature cache and the sweep executor's demand-matrix memo share
    /// one [`epoch_matrices`](DemandTimeline::epoch_matrices) expansion
    /// across scenarios: equal labels (plus rack size and seed) guarantee
    /// identical epoch matrices.
    pub fn spec_label(&self) -> String {
        let mut out = String::new();
        for p in &self.phases {
            out.push_str(&format!(
                "[{}x{}:{}..{}r{}:{}]",
                p.pattern.label(),
                p.epochs,
                p.start_scale,
                p.end_scale,
                p.dst_rotation,
                p.pattern.demand_gbps().to_bits(),
            ));
        }
        out
    }

    /// A single-phase steady timeline (the temporal embedding of a static
    /// sweep scenario).
    pub fn steady(pattern: TrafficPattern, epochs: u32) -> Self {
        DemandTimeline::named(format!("steady-{}", pattern.label())).phase(pattern, epochs)
    }

    /// A hot spot whose hot destination set rotates by `stride` MCMs every
    /// phase: the canonical bandwidth-steering stress. A static wavelength
    /// assignment tuned to the first phase goes stale as soon as the hot set
    /// moves; a re-steering policy follows it.
    pub fn shifting_hotspot(
        hot_mcms: u32,
        demand_gbps: f64,
        phases: u32,
        epochs_per_phase: u32,
        stride: u32,
    ) -> Self {
        let pattern = TrafficPattern::HotSpot {
            hot_mcms,
            demand_gbps,
        };
        let mut tl = DemandTimeline::named(format!("shifthot{hot_mcms}"));
        for i in 0..phases.max(1) {
            tl = tl.push(Phase::flat(pattern, epochs_per_phase).rotated(i * stride));
        }
        tl
    }

    /// A spectrum-churn timeline for the flex-grid layer: a uniform
    /// background, a ramp into a doubled permutation, a rotated incast, and
    /// a drain ramp. The per-epoch demand changes under the ramps, so a
    /// keep-in-place spectrum policy must release and re-admit lightpaths
    /// every epoch — exactly the workload that fragments a spectrum board
    /// and separates the admission/defragmentation policies.
    ///
    /// # Example
    ///
    /// ```
    /// use workloads::DemandTimeline;
    ///
    /// let tl = DemandTimeline::elastic_churn(300.0, 2);
    /// assert_eq!(tl.name, "elastic-churn");
    /// assert_eq!(tl.total_epochs(), 8);
    /// // Ramps really change demand epoch to epoch (that's the churn).
    /// let a = tl.flows_at(2, 16, 7)[0].demand_gbps;
    /// let b = tl.flows_at(3, 16, 7)[0].demand_gbps;
    /// assert_ne!(a, b);
    /// ```
    pub fn elastic_churn(demand_gbps: f64, epochs_per_phase: u32) -> Self {
        let uniform = TrafficPattern::Uniform {
            flows_per_mcm: 2,
            demand_gbps,
        };
        let permutation = TrafficPattern::Permutation { demand_gbps };
        let incast = TrafficPattern::HotSpot {
            hot_mcms: 4,
            demand_gbps,
        };
        DemandTimeline::named("elastic-churn")
            .phase(uniform, epochs_per_phase)
            .ramp(permutation, epochs_per_phase, 1.0, 2.0)
            .push(Phase::flat(incast, epochs_per_phase).rotated(3))
            .ramp(permutation, epochs_per_phase, 2.0, 0.5)
    }

    /// A CPU/GPU-mix timeline derived from the workload registries: a
    /// CPU-style halo-exchange phase, a ramp into a GPU-style phase whose
    /// demand scale is the registry's mean HBM transactions per instruction
    /// over all 24 GPU applications relative to the (CPU-shared) Rodinia
    /// subset, an incast burst at that scale toward a pooled-memory hot set,
    /// and a drain ramp back down.
    pub fn hpc_mix(demand_gbps: f64, epochs_per_phase: u32) -> Self {
        let gpu_scale = gpu_demand_scale();
        let halo = TrafficPattern::NearestNeighbor {
            neighbors: 2,
            demand_gbps,
        };
        let uniform = TrafficPattern::Uniform {
            flows_per_mcm: 4,
            demand_gbps,
        };
        let incast = TrafficPattern::HotSpot {
            hot_mcms: 8,
            demand_gbps,
        };
        DemandTimeline::named("hpcmix")
            .phase(halo, epochs_per_phase)
            .ramp(uniform, epochs_per_phase, 1.0, gpu_scale)
            .burst(incast, epochs_per_phase, gpu_scale)
            .ramp(uniform, epochs_per_phase, gpu_scale, 0.5)
    }
}

/// A phase's unscaled demand matrix: the pattern expanded under the
/// phase-derived seed, with the phase's destination rotation applied.
fn phase_base_matrix(index: usize, phase: &Phase, mcm_count: u32, seed: u64) -> Vec<Flow> {
    let phase_seed = seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    phase
        .pattern
        .flows(mcm_count, phase_seed)
        .into_iter()
        .map(|f| {
            let mut dst = (f.dst + phase.dst_rotation) % mcm_count;
            if dst == f.src {
                dst = (dst + 1) % mcm_count;
            }
            Flow::new(f.src, dst, f.demand_gbps)
        })
        .collect()
}

/// Multiply every demand of a matrix by the epoch's ramp scale.
fn scale_matrix(base: &[Flow], scale: f64) -> Vec<Flow> {
    base.iter()
        .map(|f| Flow::new(f.src, f.dst, f.demand_gbps * scale))
        .collect()
}

/// Mean HBM transactions per instruction across the full 24-application GPU
/// registry, relative to its Rodinia subset (the suite shared with the CPU
/// evaluation), clamped to `[1, 4]`. Polybench's linear-algebra kernels push
/// far more HBM traffic than the Rodinia baseline, which is what makes the
/// GPU phases of [`DemandTimeline::hpc_mix`] demand-heavier.
pub fn gpu_demand_scale() -> f64 {
    let mean = |apps: &[ApplicationProfile]| -> f64 {
        if apps.is_empty() {
            return 0.0;
        }
        apps.iter()
            .map(|a| a.hbm_transactions_per_instruction())
            .sum::<f64>()
            / apps.len() as f64
    };
    let all = mean(&gpu_applications());
    let rodinia = mean(&suite_applications(GpuSuite::Rodinia));
    if rodinia > 0.0 {
        (all / rodinia).clamp(1.0, 4.0)
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> DemandTimeline {
        DemandTimeline::named("demo")
            .phase(TrafficPattern::Permutation { demand_gbps: 200.0 }, 2)
            .ramp(
                TrafficPattern::Uniform {
                    flows_per_mcm: 2,
                    demand_gbps: 100.0,
                },
                3,
                0.5,
                1.5,
            )
    }

    #[test]
    fn total_epochs_and_phase_lookup() {
        let tl = demo();
        assert_eq!(tl.total_epochs(), 5);
        assert_eq!(tl.phase_at(0).unwrap().0, 0);
        assert_eq!(tl.phase_at(1).unwrap().2, 1);
        assert_eq!(tl.phase_at(2).unwrap().0, 1);
        assert_eq!(tl.phase_at(4).unwrap().2, 2);
        assert!(tl.phase_at(5).is_none());
        assert!(tl.flows_at(5, 16, 0).is_empty());
    }

    #[test]
    fn flat_phase_offers_identical_matrices_every_epoch() {
        let tl = demo();
        assert_eq!(tl.flows_at(0, 16, 3), tl.flows_at(1, 16, 3));
    }

    #[test]
    fn ramp_scales_demand_linearly() {
        let tl = demo();
        let scales: Vec<f64> = (2..5)
            .map(|e| tl.flows_at(e, 16, 3)[0].demand_gbps / 100.0)
            .collect();
        assert!((scales[0] - 0.5).abs() < 1e-9);
        assert!((scales[1] - 1.0).abs() < 1e-9);
        assert!((scales[2] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rotation_shifts_destinations_without_self_flows() {
        let tl = DemandTimeline::shifting_hotspot(4, 300.0, 3, 2, 4);
        assert_eq!(tl.total_epochs(), 6);
        for epoch in 0..6 {
            for f in tl.flows_at(epoch, 16, 9) {
                assert_ne!(f.src, f.dst);
                assert!(f.dst < 16);
            }
        }
        // The hot set actually moves between phases.
        let first: Vec<u32> = tl.flows_at(0, 16, 9).iter().map(|f| f.dst).collect();
        let third: Vec<u32> = tl.flows_at(4, 16, 9).iter().map(|f| f.dst).collect();
        assert_ne!(first, third);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let tl = demo();
        assert_eq!(tl.flows_at(3, 32, 11), tl.flows_at(3, 32, 11));
        assert_ne!(tl.flows_at(3, 32, 11), tl.flows_at(3, 32, 12));
    }

    #[test]
    fn phases_use_distinct_base_matrices() {
        // Two identical patterns in different phases must not be the same
        // sample, or a "shift" between them would be a no-op.
        let p = TrafficPattern::Uniform {
            flows_per_mcm: 3,
            demand_gbps: 100.0,
        };
        let tl = DemandTimeline::named("x").phase(p, 1).phase(p, 1);
        assert_ne!(tl.flows_at(0, 32, 5), tl.flows_at(1, 32, 5));
    }

    #[test]
    fn spec_label_covers_demand_defining_fields() {
        let a = demo();
        let mut b = demo();
        assert_eq!(a.spec_label(), b.spec_label());
        b.phases[0].dst_rotation = 3;
        assert_ne!(a.spec_label(), b.spec_label());
        let mut c = demo();
        c.phases[1].end_scale = 2.0;
        assert_ne!(a.spec_label(), c.spec_label());
    }

    #[test]
    fn epoch_matrices_match_per_epoch_expansion() {
        for tl in [
            demo(),
            DemandTimeline::shifting_hotspot(4, 300.0, 3, 2, 4),
            DemandTimeline::hpc_mix(150.0, 2),
            DemandTimeline::elastic_churn(300.0, 2),
        ] {
            let all = tl.epoch_matrices(16, 11);
            assert_eq!(all.len(), tl.total_epochs() as usize);
            for (e, matrix) in all.iter().enumerate() {
                assert_eq!(*matrix, tl.flows_at(e as u32, 16, 11), "epoch {e}");
            }
        }
    }

    #[test]
    fn elastic_churn_ramps_change_demand_every_epoch() {
        let tl = DemandTimeline::elastic_churn(300.0, 3);
        assert_eq!(tl.phases.len(), 4);
        assert_eq!(tl.total_epochs(), 12);
        // The ramp phases must produce distinct demand bit patterns epoch to
        // epoch so a keep-in-place consumer sees genuine churn.
        let ramp_epochs: Vec<f64> = (3..6)
            .map(|e| tl.flows_at(e, 16, 7)[0].demand_gbps)
            .collect();
        assert_ne!(ramp_epochs[0].to_bits(), ramp_epochs[1].to_bits());
        assert_ne!(ramp_epochs[1].to_bits(), ramp_epochs[2].to_bits());
        // The incast phase is rotated away from the identity hot set.
        assert_eq!(tl.phases[2].dst_rotation, 3);
    }

    #[test]
    fn gpu_scale_is_in_range_and_mix_uses_it() {
        let s = gpu_demand_scale();
        assert!((1.0..=4.0).contains(&s), "scale {s}");
        let tl = DemandTimeline::hpc_mix(100.0, 2);
        assert_eq!(tl.phases.len(), 4);
        assert_eq!(tl.total_epochs(), 8);
        assert!((tl.phases[2].start_scale - s).abs() < 1e-12);
    }
}
