//! Rack-level traffic patterns for the flow-level fabric sweeps.
//!
//! The paper's bandwidth-sufficiency argument (Section VI-A1) is made over
//! demand matrices between MCM pairs. This module provides the canonical
//! pattern families used by the `core::sweep` engine — uniform random,
//! permutation, incast hot-spot, cyclic nearest-neighbour, and all-to-all —
//! so that a scenario grid can name a pattern instead of hand-rolling flow
//! loops. Every generator is deterministic given its seed, which is what
//! makes whole sweep reports reproducible bit-for-bit.

use fabric::{DemandMatrix, Flow};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A demand-matrix family, parameterized by per-flow demand in Gbps.
///
/// Each variant expands to a concrete list of [`Flow`]s for a rack of
/// `mcm_count` MCMs via [`TrafficPattern::flows`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every MCM sends `flows_per_mcm` flows to uniformly-random distinct
    /// destinations (the paper's random-pairs bandwidth stress).
    Uniform {
        /// Flows originated by each MCM.
        flows_per_mcm: u32,
        /// Demand per flow in Gbps.
        demand_gbps: f64,
    },
    /// A random fixed-point-free permutation: every MCM sends one flow and
    /// receives one flow (worst case for direct wavelength reuse).
    Permutation {
        /// Demand per flow in Gbps.
        demand_gbps: f64,
    },
    /// Incast: every MCM sends one flow to one of `hot_mcms` hot
    /// destinations, chosen round-robin by source index.
    HotSpot {
        /// Number of hot destination MCMs.
        hot_mcms: u32,
        /// Demand per flow in Gbps.
        demand_gbps: f64,
    },
    /// Cyclic nearest-neighbour halo exchange: MCM `i` sends to
    /// `i ± 1..=neighbors` (mod rack size). Deterministic, seed-independent.
    NearestNeighbor {
        /// Neighbour distance on each side.
        neighbors: u32,
        /// Demand per flow in Gbps.
        demand_gbps: f64,
    },
    /// Every ordered MCM pair carries one flow (the full bisection stress;
    /// quadratic in rack size, use with small `mcm_count`).
    AllToAll {
        /// Demand per flow in Gbps.
        demand_gbps: f64,
    },
}

/// A compact, simulator-free summary of a demand matrix, used by the
/// `core::sample` representative-scenario sampler as the load half of its
/// per-scenario feature vector.
///
/// All components are derived from the flow list alone (no fabric, no
/// allocation): total offered load, flow count, the worst source/destination
/// concentration shares, and the mean cyclic src→dst distance normalized to
/// `[0, 1]`. Scenarios whose matrices agree on these five numbers stress a
/// fabric near-identically, which is exactly the similarity the sampler's
/// k-means clustering needs to measure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandSignature {
    /// Total offered load in Gbps.
    pub total_gbps: f64,
    /// Number of flows.
    pub flow_count: f64,
    /// Largest per-source share of the total load (`1/n` for balanced
    /// sources, `→ 1` for a single dominant talker).
    pub max_src_share: f64,
    /// Largest per-destination share of the total load (`→ 1` under
    /// incast).
    pub max_dst_share: f64,
    /// Demand-weighted mean cyclic distance `|src − dst|` (mod rack size),
    /// normalized by `mcm_count / 2`: near 0 for neighbour exchanges, near
    /// the uniform expectation for random traffic.
    pub mean_hop_distance: f64,
}

impl DemandSignature {
    /// Number of feature components [`components`](Self::components) yields.
    pub const DIMS: usize = 5;

    /// An all-zero signature (the empty matrix).
    pub fn zero() -> Self {
        DemandSignature {
            total_gbps: 0.0,
            flow_count: 0.0,
            max_src_share: 0.0,
            max_dst_share: 0.0,
            mean_hop_distance: 0.0,
        }
    }

    /// Compute the signature of a concrete flow list in one O(flows) pass.
    pub fn from_flows(mcm_count: u32, flows: &[Flow]) -> Self {
        if mcm_count == 0 || flows.is_empty() {
            return DemandSignature::zero();
        }
        let n = mcm_count as usize;
        let mut src_gbps = vec![0.0f64; n];
        let mut dst_gbps = vec![0.0f64; n];
        let mut total = 0.0f64;
        let mut distance_weighted = 0.0f64;
        let half = (mcm_count / 2).max(1) as f64;
        for f in flows {
            total += f.demand_gbps;
            src_gbps[f.src as usize % n] += f.demand_gbps;
            dst_gbps[f.dst as usize % n] += f.demand_gbps;
            let d = f.src.abs_diff(f.dst);
            let cyclic = d.min(mcm_count - d) as f64;
            distance_weighted += f.demand_gbps * cyclic / half;
        }
        let max_src = src_gbps.iter().cloned().fold(0.0f64, f64::max);
        let max_dst = dst_gbps.iter().cloned().fold(0.0f64, f64::max);
        if total <= 0.0 {
            return DemandSignature {
                total_gbps: 0.0,
                flow_count: flows.len() as f64,
                max_src_share: 0.0,
                max_dst_share: 0.0,
                mean_hop_distance: 0.0,
            };
        }
        DemandSignature {
            total_gbps: total,
            flow_count: flows.len() as f64,
            max_src_share: max_src / total,
            max_dst_share: max_dst / total,
            mean_hop_distance: distance_weighted / total,
        }
    }

    /// The signature as a fixed-size feature slice, in declaration order.
    pub fn components(&self) -> [f64; Self::DIMS] {
        [
            self.total_gbps,
            self.flow_count,
            self.max_src_share,
            self.max_dst_share,
            self.mean_hop_distance,
        ]
    }
}

impl TrafficPattern {
    /// A short stable label used in sweep-report rows and CLI parsing.
    pub fn label(&self) -> String {
        match self {
            TrafficPattern::Uniform { flows_per_mcm, .. } => format!("uniform{flows_per_mcm}"),
            TrafficPattern::Permutation { .. } => "permutation".to_string(),
            TrafficPattern::HotSpot { hot_mcms, .. } => format!("hotspot{hot_mcms}"),
            TrafficPattern::NearestNeighbor { neighbors, .. } => format!("neighbor{neighbors}"),
            TrafficPattern::AllToAll { .. } => "alltoall".to_string(),
        }
    }

    /// Per-flow demand in Gbps.
    pub fn demand_gbps(&self) -> f64 {
        match *self {
            TrafficPattern::Uniform { demand_gbps, .. }
            | TrafficPattern::Permutation { demand_gbps }
            | TrafficPattern::HotSpot { demand_gbps, .. }
            | TrafficPattern::NearestNeighbor { demand_gbps, .. }
            | TrafficPattern::AllToAll { demand_gbps } => demand_gbps,
        }
    }

    /// Whether the expanded flow list actually depends on the seed.
    /// Hot-spot, nearest-neighbour, and all-to-all matrices are fully
    /// determined by their parameters; only the uniform and permutation
    /// families draw from the RNG. The `core::sample` feature extractor
    /// uses this to share one signature across every replicate of a
    /// seed-insensitive pattern instead of recomputing it per seed.
    pub fn seed_sensitive(&self) -> bool {
        matches!(
            self,
            TrafficPattern::Uniform { .. } | TrafficPattern::Permutation { .. }
        )
    }

    /// A memoization key covering every parameter that defines this
    /// pattern's expanded flow list besides rack size and seed: the family
    /// label (which embeds the per-family shape parameters) plus the exact
    /// demand bits. Two patterns with equal keys expand to identical
    /// matrices at any `(mcm_count, effective seed)` — the contract both
    /// the `core::sample` signature memo and the sweep executor's
    /// demand-matrix memo key on.
    pub fn memo_key(&self) -> String {
        format!("{}@{:016x}", self.label(), self.demand_gbps().to_bits())
    }

    /// The seed that actually selects this pattern's expansion: the
    /// scenario seed for seed-sensitive families, `0` otherwise — so every
    /// replicate of a seed-insensitive pattern memoizes to one entry.
    pub fn effective_seed(&self, seed: u64) -> u64 {
        if self.seed_sensitive() {
            seed
        } else {
            0
        }
    }

    /// The [`DemandSignature`] of this pattern's expansion at `mcm_count`
    /// MCMs under `seed` — the cheap per-scenario feature vector of the
    /// representative-scenario sampler. Equivalent to
    /// `DemandSignature::from_flows(mcm_count, &self.flows(mcm_count, seed))`
    /// but with the quadratic all-to-all family computed in O(rack size)
    /// closed form instead of materializing `n·(n−1)` flows.
    ///
    /// ```
    /// use workloads::traffic::{DemandSignature, TrafficPattern};
    ///
    /// let p = TrafficPattern::AllToAll { demand_gbps: 4.0 };
    /// let fast = p.demand_signature(16, 9);
    /// let slow = DemandSignature::from_flows(16, &p.flows(16, 9));
    /// assert_eq!(fast, slow);
    /// ```
    pub fn demand_signature(&self, mcm_count: u32, seed: u64) -> DemandSignature {
        if mcm_count < 2 {
            return DemandSignature::zero();
        }
        if let TrafficPattern::AllToAll { demand_gbps } = *self {
            // Every ordered pair carries one flow: shares are uniform and
            // the mean cyclic distance is a pure function of rack size.
            let n = mcm_count as f64;
            let flow_count = n * (n - 1.0);
            let half = (mcm_count / 2).max(1) as f64;
            let mut distance_sum = 0.0f64;
            for d in 1..mcm_count {
                distance_sum += d.min(mcm_count - d) as f64;
            }
            return DemandSignature {
                total_gbps: flow_count * demand_gbps,
                flow_count,
                max_src_share: 1.0 / n,
                max_dst_share: 1.0 / n,
                mean_hop_distance: distance_sum / (n - 1.0) / half,
            };
        }
        DemandSignature::from_flows(mcm_count, &self.flows(mcm_count, seed))
    }

    /// Expand the pattern into its dense row-major [`DemandMatrix`]: the
    /// same expansion as [`flows`](TrafficPattern::flows) (same seed, same
    /// RNG draws), with flows sharing an ordered pair aggregated into one
    /// entry. Use this when a consumer wants O(1) pair lookup or flat-array
    /// iteration rather than the per-flow list.
    ///
    /// ```
    /// use workloads::traffic::TrafficPattern;
    ///
    /// let p = TrafficPattern::AllToAll { demand_gbps: 4.0 };
    /// let m = p.demand_matrix(8, 42);
    /// assert_eq!(m.get(0, 7), 4.0);
    /// assert_eq!(m.get(3, 3), 0.0); // self-flows are never generated
    /// assert_eq!(m.total_gbps(), (8.0 * 7.0) * 4.0);
    /// ```
    pub fn demand_matrix(&self, mcm_count: u32, seed: u64) -> DemandMatrix {
        DemandMatrix::from_flows(mcm_count, &self.flows(mcm_count, seed))
    }

    /// Expand the pattern into a concrete demand matrix for a rack of
    /// `mcm_count` MCMs. Deterministic given `seed`; self-flows are never
    /// generated. Racks with fewer than two MCMs yield an empty matrix.
    pub fn flows(&self, mcm_count: u32, seed: u64) -> Vec<Flow> {
        if mcm_count < 2 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        match *self {
            TrafficPattern::Uniform {
                flows_per_mcm,
                demand_gbps,
            } => {
                let mut flows = Vec::with_capacity((mcm_count * flows_per_mcm) as usize);
                for src in 0..mcm_count {
                    for _ in 0..flows_per_mcm {
                        // Sample from [0, n-1) and skip over `src` so the
                        // destination is uniform over the other MCMs.
                        let raw = rng.gen_range(0..mcm_count - 1);
                        let dst = if raw >= src { raw + 1 } else { raw };
                        flows.push(Flow::new(src, dst, demand_gbps));
                    }
                }
                flows
            }
            TrafficPattern::Permutation { demand_gbps } => {
                let mut dsts: Vec<u32> = (0..mcm_count).collect();
                dsts.shuffle(&mut rng);
                // Remove fixed points by swapping with the cyclic successor.
                for i in 0..dsts.len() {
                    if dsts[i] == i as u32 {
                        let j = (i + 1) % dsts.len();
                        dsts.swap(i, j);
                    }
                }
                (0..mcm_count)
                    .zip(dsts)
                    .filter(|&(src, dst)| src != dst)
                    .map(|(src, dst)| Flow::new(src, dst, demand_gbps))
                    .collect()
            }
            TrafficPattern::HotSpot {
                hot_mcms,
                demand_gbps,
            } => {
                let hot = hot_mcms.clamp(1, mcm_count);
                (0..mcm_count)
                    .map(|src| (src, src % hot))
                    .filter(|&(src, dst)| src != dst)
                    .map(|(src, dst)| Flow::new(src, dst, demand_gbps))
                    .collect()
            }
            TrafficPattern::NearestNeighbor {
                neighbors,
                demand_gbps,
            } => {
                let reach = neighbors.clamp(1, mcm_count / 2);
                let mut flows = Vec::with_capacity((mcm_count * 2 * reach) as usize);
                for src in 0..mcm_count {
                    for d in 1..=reach {
                        let forward = (src + d) % mcm_count;
                        let backward = (src + mcm_count - d) % mcm_count;
                        flows.push(Flow::new(src, forward, demand_gbps));
                        // At d == mcm_count/2 the two directions meet on the
                        // same destination; emit it once, not twice.
                        if backward != forward {
                            flows.push(Flow::new(src, backward, demand_gbps));
                        }
                    }
                }
                flows
            }
            TrafficPattern::AllToAll { demand_gbps } => {
                let mut flows = Vec::with_capacity((mcm_count * (mcm_count - 1)) as usize);
                for src in 0..mcm_count {
                    for dst in 0..mcm_count {
                        if src != dst {
                            flows.push(Flow::new(src, dst, demand_gbps));
                        }
                    }
                }
                flows
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PATTERNS: [TrafficPattern; 5] = [
        TrafficPattern::Uniform {
            flows_per_mcm: 4,
            demand_gbps: 100.0,
        },
        TrafficPattern::Permutation { demand_gbps: 100.0 },
        TrafficPattern::HotSpot {
            hot_mcms: 4,
            demand_gbps: 100.0,
        },
        TrafficPattern::NearestNeighbor {
            neighbors: 2,
            demand_gbps: 100.0,
        },
        TrafficPattern::AllToAll { demand_gbps: 100.0 },
    ];

    #[test]
    fn no_pattern_generates_self_flows() {
        for p in PATTERNS {
            for f in p.flows(32, 7) {
                assert_ne!(f.src, f.dst, "{p:?} generated a self flow");
                assert!(f.src < 32 && f.dst < 32);
                assert_eq!(f.demand_gbps, 100.0);
            }
        }
    }

    #[test]
    fn patterns_are_deterministic_given_seed() {
        for p in PATTERNS {
            assert_eq!(p.flows(32, 7), p.flows(32, 7), "{p:?}");
        }
    }

    #[test]
    fn random_patterns_vary_with_seed() {
        let u = TrafficPattern::Uniform {
            flows_per_mcm: 4,
            demand_gbps: 100.0,
        };
        assert_ne!(u.flows(32, 1), u.flows(32, 2));
    }

    #[test]
    fn permutation_is_a_full_fixed_point_free_matching() {
        let flows = TrafficPattern::Permutation { demand_gbps: 50.0 }.flows(64, 3);
        assert_eq!(flows.len(), 64);
        let mut sent = [false; 64];
        let mut received = [false; 64];
        for f in &flows {
            assert!(!sent[f.src as usize] && !received[f.dst as usize]);
            sent[f.src as usize] = true;
            received[f.dst as usize] = true;
        }
    }

    #[test]
    fn expected_flow_counts() {
        assert_eq!(
            TrafficPattern::AllToAll { demand_gbps: 1.0 }
                .flows(8, 0)
                .len(),
            8 * 7
        );
        assert_eq!(
            TrafficPattern::NearestNeighbor {
                neighbors: 2,
                demand_gbps: 1.0
            }
            .flows(8, 0)
            .len(),
            8 * 4
        );
        // Hot-spot: one flow per source except the hot MCMs targeting
        // themselves.
        assert_eq!(
            TrafficPattern::HotSpot {
                hot_mcms: 4,
                demand_gbps: 1.0
            }
            .flows(16, 0)
            .len(),
            12
        );
        // Degenerate racks produce no traffic.
        for p in PATTERNS {
            assert!(p.flows(1, 0).is_empty());
        }
    }

    #[test]
    fn nearest_neighbor_never_duplicates_the_antipodal_destination() {
        // With mcm_count == 2 (and generally d == n/2) the forward and
        // backward neighbours coincide; the flow must be emitted once.
        let p = TrafficPattern::NearestNeighbor {
            neighbors: 1,
            demand_gbps: 10.0,
        };
        assert_eq!(p.flows(2, 0).len(), 2); // 0->1 and 1->0, once each
        let p = TrafficPattern::NearestNeighbor {
            neighbors: 4,
            demand_gbps: 10.0,
        };
        // n=8, reach clamps to 4: d=1..3 give two flows each, d=4 gives one.
        let flows = p.flows(8, 0);
        assert_eq!(flows.len(), 8 * 7);
        let mut pairs: Vec<(u32, u32)> = flows.iter().map(|f| (f.src, f.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), flows.len(), "no duplicate (src, dst) pairs");
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<String> = PATTERNS.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            [
                "uniform4",
                "permutation",
                "hotspot4",
                "neighbor2",
                "alltoall"
            ]
        );
    }
}
