//! Statistics helpers used when aggregating benchmark results: slowdown,
//! Pearson product-moment correlation (Fig. 7 and Fig. 10 of the paper
//! report correlation coefficients), and geometric means.

/// Slowdown of `cycles` relative to `baseline_cycles`, as a percentage.
///
/// 0% means identical execution time; 50% means 1.5x the baseline cycles.
pub fn slowdown_percent(baseline_cycles: u64, cycles: u64) -> f64 {
    if baseline_cycles == 0 {
        return 0.0;
    }
    (cycles as f64 / baseline_cycles as f64 - 1.0) * 100.0
}

/// Pearson product-moment correlation coefficient between two samples.
///
/// Returns `None` if the inputs are empty, of different lengths, or either
/// sample has zero variance.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// Geometric mean of a sample of positive values.
///
/// Returns `None` if the sample is empty or contains non-positive values.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut log_sum = 0.0;
    for &v in values {
        if v <= 0.0 {
            return None;
        }
        log_sum += v.ln();
    }
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum of a slice; 0.0 for an empty slice.
pub fn max(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_basics() {
        assert_eq!(slowdown_percent(100, 100), 0.0);
        assert!((slowdown_percent(100, 150) - 50.0).abs() < 1e-12);
        assert!((slowdown_percent(200, 100) + 50.0).abs() < 1e-12);
        assert_eq!(slowdown_percent(0, 100), 0.0);
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let ys_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&xs, &ys_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!(r.abs() < 0.3);
    }

    #[test]
    fn pearson_degenerate_inputs() {
        assert!(pearson_correlation(&[], &[]).is_none());
        assert!(pearson_correlation(&[1.0], &[1.0, 2.0]).is_none());
        assert!(pearson_correlation(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn pearson_known_value() {
        // Hand-computed example.
        let xs = [1.0, 2.0, 3.0, 5.0, 8.0];
        let ys = [0.11, 0.12, 0.13, 0.15, 0.18];
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!(
            (r - 1.0).abs() < 1e-9,
            "linear relation should give r=1, got {r}"
        );
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0, 3.0, 3.0]).unwrap() - 3.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn mean_and_max() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(max(&[]), 0.0);
        assert!((max(&[1.0, 5.0, 3.0]) - 5.0).abs() < 1e-12);
    }
}
