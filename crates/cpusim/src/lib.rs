//! # cpusim
//!
//! A trace-driven CPU timing simulator used as the substrate for the paper's
//! CPU evaluation (Section VI-B). The authors used gem5 full-system
//! simulation of x86 cores running PARSEC, NAS, and Rodinia; this crate
//! provides the equivalent *mechanism* — a cache hierarchy in front of a
//! latency-configurable main memory, driven by memory-access traces, timed
//! with either an in-order or an out-of-order core model — so that the
//! paper's experiments (added 25/30/35/85 ns of LLC-to-memory latency) can be
//! reproduced end to end.
//!
//! Design:
//!
//! * [`trace`] — memory access traces: interleaved compute and memory
//!   records, produced by the `workloads` crate's synthetic kernels.
//! * [`cache`] — a set-associative, write-back, write-allocate cache with LRU
//!   replacement.
//! * [`hierarchy`] — a three-level hierarchy (L1D, L2, LLC) in front of DRAM,
//!   with an additive "disaggregation latency" knob between the LLC and
//!   memory, exactly where the paper adds its photonic/electronic latency.
//! * [`core`] — timing models: an in-order core that exposes the full memory
//!   latency, and an out-of-order core that hides part of it using a
//!   ROB/MLP (memory-level parallelism) model.
//! * [`simulator`] — glue that runs a trace through a core + hierarchy and
//!   reports cycles, miss rates, and miss-cycle accounting.
//! * [`stats`] — slowdown and Pearson-correlation helpers used by the
//!   figure-regeneration harness (Fig. 7 and 10 report correlations).
//!
//! Traces come from the `workloads` crate; the `disagg_core` experiment
//! drivers run this simulator over the Fig. 6/7/8/12 latency sweeps in
//! parallel through the `core::sweep` engine. See the repository's
//! `ARCHITECTURE.md` for the full crate DAG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod core;
pub mod hierarchy;
pub mod simulator;
pub mod stats;
pub mod trace;

pub use cache::{Cache, CacheStats};
pub use config::{CacheConfig, CoreConfig, CoreKind, CpuConfig, MemoryConfig};
pub use core::{InOrderCore, OutOfOrderCore, TimingCore};
pub use hierarchy::{AccessOutcome, CacheHierarchy, HierarchyLevel, HierarchyStats};
pub use simulator::{SimResult, Simulator};
pub use stats::{geometric_mean, pearson_correlation, slowdown_percent};
pub use trace::{MemAccess, MemoryTrace, TraceRecord, TraceStats};
