//! Simulator configuration: cache geometry, core model, and memory latency.
//!
//! The default configuration mirrors the paper's model rack CPU — an AMD
//! Milan-class core with a three-level cache hierarchy and ~90 ns DDR4
//! access latency — with the disaggregation latency added *between the LLC
//! and main memory*, exactly where the paper inserts it.

use serde::{Deserialize, Serialize};

/// Geometry and latency of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Access (hit) latency in core cycles.
    pub hit_latency_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.associativity as u64 * self.line_bytes as u64)
    }

    /// Validate that the geometry is internally consistent (power-of-two
    /// sets and line size, capacity divisible by way size).
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line size {} must be a power of two",
                self.line_bytes
            ));
        }
        if self.associativity == 0 {
            return Err("associativity must be non-zero".to_string());
        }
        let way_bytes = self.associativity as u64 * self.line_bytes as u64;
        if self.capacity_bytes == 0 || !self.capacity_bytes.is_multiple_of(way_bytes) {
            return Err(format!(
                "capacity {} is not a multiple of associativity*line ({})",
                self.capacity_bytes, way_bytes
            ));
        }
        let sets = self.sets();
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} must be a power of two"));
        }
        Ok(())
    }

    /// A 32 KiB, 8-way L1 data cache (4-cycle hit).
    pub fn l1d_default() -> Self {
        CacheConfig {
            capacity_bytes: 32 * 1024,
            associativity: 8,
            line_bytes: 64,
            hit_latency_cycles: 4,
        }
    }

    /// A 512 KiB, 8-way private L2 (14-cycle hit).
    pub fn l2_default() -> Self {
        CacheConfig {
            capacity_bytes: 512 * 1024,
            associativity: 8,
            line_bytes: 64,
            hit_latency_cycles: 14,
        }
    }

    /// A 4 MiB, 16-way LLC slice (40-cycle hit) — the per-core share of a
    /// Milan-class 32 MiB CCX L3 shared by eight cores. The paper simulates a
    /// single core, so the per-core LLC share is the capacity that matters
    /// for working-set fit.
    pub fn llc_default() -> Self {
        CacheConfig {
            capacity_bytes: 4 * 1024 * 1024,
            associativity: 16,
            line_bytes: 64,
            hit_latency_cycles: 40,
        }
    }
}

/// Main-memory (DDR4/HBM) timing with a simple open-page row-buffer model.
///
/// Consecutive accesses that land in the same DRAM row (an open page) see a
/// much lower device latency than accesses that open a new row. Streaming
/// workloads therefore have a *lower* baseline memory latency than
/// pointer-chasing workloads — which is exactly why the fixed additional
/// disaggregation latency hurts streaming, LLC-thrashing benchmarks (like
/// Rodinia's `nw`) proportionally more, as the paper observes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Response latency when the access misses the open row (row activate +
    /// column access): ≈90 ns for DDR4, 90–140 ns for HBM.
    pub base_latency_ns: f64,
    /// Response latency when the access hits the currently open row.
    pub row_hit_latency_ns: f64,
    /// Size of a DRAM row (open page) in bytes.
    pub row_bytes: u64,
    /// Additional latency between the LLC and memory introduced by the
    /// disaggregation fabric (0 for the non-disaggregated baseline, 35 ns
    /// for the photonic rack, 85 ns for the electronic-switch rack).
    pub extra_latency_ns: f64,
}

impl MemoryConfig {
    /// DDR4 with no disaggregation latency (the baseline system).
    pub fn ddr4_baseline() -> Self {
        MemoryConfig {
            base_latency_ns: 90.0,
            row_hit_latency_ns: 45.0,
            row_bytes: 2048,
            extra_latency_ns: 0.0,
        }
    }

    /// DDR4 behind the photonic fabric (35 ns additional).
    pub fn ddr4_photonic() -> Self {
        Self::ddr4_baseline().with_extra_latency_ns(35.0)
    }

    /// DDR4 behind the electronic-switch fabric (85 ns additional).
    pub fn ddr4_electronic() -> Self {
        Self::ddr4_baseline().with_extra_latency_ns(85.0)
    }

    /// Replace the extra latency, keeping the device timings.
    pub fn with_extra_latency_ns(mut self, extra: f64) -> Self {
        self.extra_latency_ns = extra;
        self
    }

    /// Total row-miss memory latency in nanoseconds.
    pub fn total_latency_ns(&self) -> f64 {
        self.base_latency_ns + self.extra_latency_ns
    }

    /// Total row-hit memory latency in nanoseconds.
    pub fn total_row_hit_latency_ns(&self) -> f64 {
        self.row_hit_latency_ns + self.extra_latency_ns
    }

    /// Total row-miss memory latency in core cycles at the given clock.
    pub fn total_latency_cycles(&self, clock_ghz: f64) -> u64 {
        (self.total_latency_ns() * clock_ghz).round() as u64
    }

    /// Total row-hit memory latency in core cycles at the given clock.
    pub fn total_row_hit_latency_cycles(&self, clock_ghz: f64) -> u64 {
        (self.total_row_hit_latency_ns() * clock_ghz).round() as u64
    }
}

/// Which timing model the core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// In-order pipeline: every memory access stalls the core for its full
    /// latency. Gives the clearest view of memory-latency sensitivity.
    InOrder,
    /// Out-of-order core: overlaps independent misses (MLP) and hides part
    /// of the latency behind the reorder buffer.
    OutOfOrder,
}

impl CoreKind {
    /// Both core kinds, in the order the paper's figures present them.
    pub const ALL: [CoreKind; 2] = [CoreKind::InOrder, CoreKind::OutOfOrder];
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreKind::InOrder => f.write_str("in-order"),
            CoreKind::OutOfOrder => f.write_str("OOO"),
        }
    }
}

/// Core microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Timing model.
    pub kind: CoreKind,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Issue width in instructions per cycle (non-memory work).
    pub issue_width: u32,
    /// Reorder-buffer size in instructions (OOO only).
    pub rob_size: u32,
    /// Maximum outstanding LLC misses (MSHRs / memory-level parallelism).
    pub max_outstanding_misses: u32,
}

impl CoreConfig {
    /// In-order core at 2 GHz, single-issue for memory clarity (the paper
    /// uses in-order cores precisely because they do not mask latency).
    pub fn in_order_default() -> Self {
        CoreConfig {
            kind: CoreKind::InOrder,
            clock_ghz: 2.0,
            issue_width: 1,
            rob_size: 1,
            max_outstanding_misses: 1,
        }
    }

    /// A Milan-class out-of-order core: 4-wide, 256-entry ROB, up to 10
    /// outstanding misses.
    pub fn out_of_order_default() -> Self {
        CoreConfig {
            kind: CoreKind::OutOfOrder,
            clock_ghz: 2.0,
            issue_width: 4,
            rob_size: 256,
            max_outstanding_misses: 10,
        }
    }

    /// Default config for a [`CoreKind`].
    pub fn for_kind(kind: CoreKind) -> Self {
        match kind {
            CoreKind::InOrder => Self::in_order_default(),
            CoreKind::OutOfOrder => Self::out_of_order_default(),
        }
    }
}

/// Full simulator configuration: cache hierarchy + memory + core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache (per-core share).
    pub llc: CacheConfig,
    /// Main memory timing.
    pub memory: MemoryConfig,
    /// Core model.
    pub core: CoreConfig,
}

impl CpuConfig {
    /// The paper's model-rack CPU (Milan-like) with an in-order core and no
    /// disaggregation latency.
    pub fn baseline_in_order() -> Self {
        CpuConfig {
            l1d: CacheConfig::l1d_default(),
            l2: CacheConfig::l2_default(),
            llc: CacheConfig::llc_default(),
            memory: MemoryConfig::ddr4_baseline(),
            core: CoreConfig::in_order_default(),
        }
    }

    /// The paper's model-rack CPU with an out-of-order core.
    pub fn baseline_out_of_order() -> Self {
        CpuConfig {
            core: CoreConfig::out_of_order_default(),
            ..Self::baseline_in_order()
        }
    }

    /// Baseline config for a core kind.
    pub fn baseline(kind: CoreKind) -> Self {
        match kind {
            CoreKind::InOrder => Self::baseline_in_order(),
            CoreKind::OutOfOrder => Self::baseline_out_of_order(),
        }
    }

    /// The same configuration with a different extra LLC-to-memory latency.
    pub fn with_extra_latency_ns(mut self, extra_ns: f64) -> Self {
        self.memory.extra_latency_ns = extra_ns;
        self
    }

    /// Validate all cache geometries.
    pub fn validate(&self) -> Result<(), String> {
        self.l1d.validate()?;
        self.l2.validate()?;
        self.llc.validate()?;
        if self.core.issue_width == 0 {
            return Err("issue width must be non-zero".into());
        }
        if self.core.clock_ghz <= 0.0 {
            return Err("clock must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometries_are_valid() {
        assert!(CpuConfig::baseline_in_order().validate().is_ok());
        assert!(CpuConfig::baseline_out_of_order().validate().is_ok());
    }

    #[test]
    fn cache_set_counts() {
        assert_eq!(CacheConfig::l1d_default().sets(), 64);
        assert_eq!(CacheConfig::l2_default().sets(), 1024);
        assert_eq!(CacheConfig::llc_default().sets(), 4096);
    }

    #[test]
    fn invalid_geometries_rejected() {
        let mut c = CacheConfig::l1d_default();
        c.line_bytes = 48;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::l1d_default();
        c.associativity = 0;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::l1d_default();
        c.capacity_bytes = 33 * 1024;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::l1d_default();
        c.capacity_bytes = 3 * 8 * 64; // 3 sets: not a power of two
        assert!(c.validate().is_err());
    }

    #[test]
    fn memory_latency_points_match_paper() {
        assert_eq!(MemoryConfig::ddr4_baseline().total_latency_ns(), 90.0);
        assert_eq!(MemoryConfig::ddr4_photonic().total_latency_ns(), 125.0);
        assert_eq!(MemoryConfig::ddr4_electronic().total_latency_ns(), 175.0);
    }

    #[test]
    fn memory_latency_in_cycles() {
        // 125 ns at 2 GHz = 250 cycles.
        assert_eq!(MemoryConfig::ddr4_photonic().total_latency_cycles(2.0), 250);
        assert_eq!(MemoryConfig::ddr4_baseline().total_latency_cycles(2.0), 180);
    }

    #[test]
    fn with_extra_latency_builder() {
        let cfg = CpuConfig::baseline_in_order().with_extra_latency_ns(35.0);
        assert_eq!(cfg.memory.extra_latency_ns, 35.0);
        assert_eq!(cfg.memory.base_latency_ns, 90.0);
        let m = MemoryConfig::ddr4_baseline().with_extra_latency_ns(85.0);
        assert_eq!(m.total_latency_ns(), 175.0);
    }

    #[test]
    fn core_kind_display_and_defaults() {
        assert_eq!(CoreKind::InOrder.to_string(), "in-order");
        assert_eq!(CoreKind::OutOfOrder.to_string(), "OOO");
        assert_eq!(
            CoreConfig::for_kind(CoreKind::InOrder).kind,
            CoreKind::InOrder
        );
        assert_eq!(
            CoreConfig::for_kind(CoreKind::OutOfOrder).kind,
            CoreKind::OutOfOrder
        );
        assert!(CoreConfig::out_of_order_default().rob_size > 1);
    }

    #[test]
    fn baseline_selector_matches_kind() {
        for kind in CoreKind::ALL {
            assert_eq!(CpuConfig::baseline(kind).core.kind, kind);
        }
    }
}
