//! Memory access traces.
//!
//! A trace is a sequence of [`TraceRecord`]s, each of which represents a run
//! of non-memory instructions followed by a single memory access. This is the
//! interface between the synthetic benchmark kernels (the `workloads` crate)
//! and the timing simulator: the kernels decide *which addresses* are touched
//! and *how much compute* separates the accesses, and the simulator decides
//! *how long* that takes on a given core and cache hierarchy.

use serde::{Deserialize, Serialize};

/// A single memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Byte address accessed.
    pub addr: u64,
    /// True for stores, false for loads.
    pub is_write: bool,
}

impl MemAccess {
    /// A load at `addr`.
    pub fn read(addr: u64) -> Self {
        MemAccess {
            addr,
            is_write: false,
        }
    }

    /// A store at `addr`.
    pub fn write(addr: u64) -> Self {
        MemAccess {
            addr,
            is_write: true,
        }
    }
}

/// A run of non-memory instructions followed by one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Number of non-memory (ALU/branch/FP) instructions executed before the
    /// access.
    pub compute_instructions: u32,
    /// The memory access.
    pub access: MemAccess,
}

impl TraceRecord {
    /// Convenience constructor.
    pub fn new(compute_instructions: u32, access: MemAccess) -> Self {
        TraceRecord {
            compute_instructions,
            access,
        }
    }
}

/// An in-memory trace plus a trailing run of compute instructions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryTrace {
    /// The interleaved compute/memory records.
    pub records: Vec<TraceRecord>,
    /// Compute instructions after the last memory access.
    pub trailing_compute: u64,
}

impl MemoryTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a trace with pre-allocated capacity for `n` records.
    pub fn with_capacity(n: usize) -> Self {
        MemoryTrace {
            records: Vec::with_capacity(n),
            trailing_compute: 0,
        }
    }

    /// Append a record.
    pub fn push(&mut self, compute_instructions: u32, access: MemAccess) {
        self.records
            .push(TraceRecord::new(compute_instructions, access));
    }

    /// Append a load.
    pub fn push_read(&mut self, compute_instructions: u32, addr: u64) {
        self.push(compute_instructions, MemAccess::read(addr));
    }

    /// Append a store.
    pub fn push_write(&mut self, compute_instructions: u32, addr: u64) {
        self.push(compute_instructions, MemAccess::write(addr));
    }

    /// Number of memory accesses in the trace.
    pub fn accesses(&self) -> usize {
        self.records.len()
    }

    /// True if the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total instruction count (compute + one instruction per memory access).
    pub fn instructions(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.compute_instructions as u64 + 1)
            .sum::<u64>()
            + self.trailing_compute
    }

    /// Ratio of memory accesses to total instructions — a key factor the
    /// paper identifies for slowdown sensitivity.
    pub fn memory_intensity(&self) -> f64 {
        let instr = self.instructions();
        if instr == 0 {
            0.0
        } else {
            self.accesses() as f64 / instr as f64
        }
    }

    /// Summary statistics of the trace.
    pub fn stats(&self) -> TraceStats {
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut min_addr = u64::MAX;
        let mut max_addr = 0u64;
        for r in &self.records {
            if r.access.is_write {
                writes += 1;
            } else {
                reads += 1;
            }
            min_addr = min_addr.min(r.access.addr);
            max_addr = max_addr.max(r.access.addr);
        }
        let footprint = if self.records.is_empty() {
            0
        } else {
            max_addr - min_addr + 1
        };
        TraceStats {
            accesses: self.accesses() as u64,
            reads,
            writes,
            instructions: self.instructions(),
            address_footprint_bytes: footprint,
            memory_intensity: self.memory_intensity(),
        }
    }

    /// Concatenate another trace onto this one.
    pub fn extend_from(&mut self, other: &MemoryTrace) {
        // The other trace's records follow our trailing compute; fold it into
        // the first appended record to keep instruction counts exact.
        let mut iter = other.records.iter();
        if let Some(first) = iter.next() {
            let lead = self.trailing_compute.min(u32::MAX as u64) as u32;
            self.records.push(TraceRecord::new(
                first.compute_instructions.saturating_add(lead),
                first.access,
            ));
            self.trailing_compute = 0;
            self.records.extend(iter.copied());
            self.trailing_compute = other.trailing_compute;
        } else {
            self.trailing_compute += other.trailing_compute;
        }
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of memory accesses.
    pub accesses: u64,
    /// Number of loads.
    pub reads: u64,
    /// Number of stores.
    pub writes: u64,
    /// Total instructions.
    pub instructions: u64,
    /// Span between the lowest and highest byte address touched.
    pub address_footprint_bytes: u64,
    /// Accesses per instruction.
    pub memory_intensity: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> MemoryTrace {
        let mut t = MemoryTrace::new();
        t.push_read(10, 0x1000);
        t.push_write(5, 0x1040);
        t.push_read(0, 0x2000);
        t.trailing_compute = 7;
        t
    }

    #[test]
    fn instruction_accounting() {
        let t = sample_trace();
        // (10+1) + (5+1) + (0+1) + 7 trailing = 25.
        assert_eq!(t.instructions(), 25);
        assert_eq!(t.accesses(), 3);
    }

    #[test]
    fn memory_intensity() {
        let t = sample_trace();
        assert!((t.memory_intensity() - 3.0 / 25.0).abs() < 1e-12);
        assert_eq!(MemoryTrace::new().memory_intensity(), 0.0);
    }

    #[test]
    fn stats_reads_writes_footprint() {
        let s = sample_trace().stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.address_footprint_bytes, 0x2000 - 0x1000 + 1);
    }

    #[test]
    fn empty_trace_stats() {
        let s = MemoryTrace::new().stats();
        assert_eq!(s.accesses, 0);
        assert_eq!(s.address_footprint_bytes, 0);
        assert_eq!(s.instructions, 0);
    }

    #[test]
    fn extend_from_preserves_instruction_count() {
        let mut a = sample_trace();
        let b = sample_trace();
        let expect = a.instructions() + b.instructions();
        a.extend_from(&b);
        assert_eq!(a.instructions(), expect);
        assert_eq!(a.accesses(), 6);
    }

    #[test]
    fn extend_from_empty_accumulates_trailing_compute() {
        let mut a = sample_trace();
        let mut empty = MemoryTrace::new();
        empty.trailing_compute = 3;
        let expect = a.instructions() + 3;
        a.extend_from(&empty);
        assert_eq!(a.instructions(), expect);
    }

    #[test]
    fn access_constructors() {
        assert!(!MemAccess::read(0x10).is_write);
        assert!(MemAccess::write(0x10).is_write);
        assert_eq!(MemAccess::read(0x10).addr, 0x10);
    }

    #[test]
    fn with_capacity_reserves() {
        let t = MemoryTrace::with_capacity(128);
        assert!(t.records.capacity() >= 128);
        assert!(t.is_empty());
    }
}
