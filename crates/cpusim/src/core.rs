//! Core timing models: in-order and out-of-order.
//!
//! The paper evaluates both because they bracket the latency-sensitivity
//! spectrum: in-order cores expose the full memory latency on every access,
//! while out-of-order cores hide part of it behind the reorder buffer and by
//! overlapping independent misses (memory-level parallelism). Both models
//! consume the same [`AccessOutcome`] stream
//! from the cache hierarchy, so the cache behaviour (and hence LLC miss rate)
//! is identical across core models — exactly as the paper observes
//! ("OOO cores do not substantially change the LLC access patterns").

use crate::config::CoreConfig;
use crate::hierarchy::AccessOutcome;
use serde::{Deserialize, Serialize};

/// A core timing model: consumes compute-instruction runs and memory-access
/// outcomes, and accumulates cycles.
pub trait TimingCore {
    /// Account for `n` non-memory instructions.
    fn execute_compute(&mut self, n: u64);
    /// Account for one memory access with the given hierarchy outcome.
    fn execute_access(&mut self, outcome: AccessOutcome);
    /// Total cycles accumulated so far.
    fn cycles(&self) -> u64;
    /// Cycles the core spent stalled on memory (exposed latency only).
    fn stall_cycles(&self) -> u64;
}

/// Breakdown of where an execution's cycles went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycles issuing compute instructions.
    pub compute_cycles: u64,
    /// Cycles stalled on cache hits (L1/L2/LLC latency).
    pub cache_stall_cycles: u64,
    /// Cycles stalled on main-memory accesses (LLC misses).
    pub memory_stall_cycles: u64,
}

impl CycleBreakdown {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.compute_cycles + self.cache_stall_cycles + self.memory_stall_cycles
    }
}

/// In-order, blocking core: every access stalls for its full latency.
#[derive(Debug, Clone)]
pub struct InOrderCore {
    config: CoreConfig,
    breakdown: CycleBreakdown,
}

impl InOrderCore {
    /// Create an in-order core with the given configuration.
    pub fn new(config: CoreConfig) -> Self {
        InOrderCore {
            config,
            breakdown: CycleBreakdown::default(),
        }
    }

    /// The cycle breakdown so far.
    pub fn breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }
}

impl TimingCore for InOrderCore {
    fn execute_compute(&mut self, n: u64) {
        // Issue-width-limited compute throughput.
        let width = self.config.issue_width.max(1) as u64;
        self.breakdown.compute_cycles += n.div_ceil(width);
    }

    fn execute_access(&mut self, outcome: AccessOutcome) {
        // One cycle to issue the access itself plus the full blocking latency.
        self.breakdown.compute_cycles += 1;
        if outcome.is_llc_miss {
            self.breakdown.memory_stall_cycles += outcome.latency_cycles;
        } else {
            self.breakdown.cache_stall_cycles += outcome.latency_cycles;
        }
    }

    fn cycles(&self) -> u64 {
        self.breakdown.total()
    }

    fn stall_cycles(&self) -> u64 {
        self.breakdown.cache_stall_cycles + self.breakdown.memory_stall_cycles
    }
}

/// Out-of-order core with ROB-based latency hiding and a bounded number of
/// outstanding misses (MLP).
///
/// The model is intentionally simple but captures the two first-order
/// effects the paper relies on:
///
/// 1. **Latency hiding**: a miss's latency can be overlapped with the
///    compute work that follows it, up to what the ROB can hold
///    (`rob_size / issue_width` cycles of independent work).
/// 2. **Miss overlapping (MLP)**: misses that issue within one ROB window of
///    an outstanding miss are serviced concurrently, up to
///    `max_outstanding_misses` at a time, so a burst of `k` clustered misses
///    costs roughly `ceil(k / mlp)` memory round trips rather than `k`.
///
/// Cache hits (L1/L2/LLC) are assumed fully pipelined and cost a single
/// issue slot plus a small fraction of their latency.
#[derive(Debug, Clone)]
pub struct OutOfOrderCore {
    config: CoreConfig,
    breakdown: CycleBreakdown,
    /// Instructions executed since the head of the current miss cluster.
    instructions_since_cluster_start: u64,
    /// Number of misses currently overlapped in the cluster.
    cluster_outstanding: u32,
    /// Fraction of a cache-hit latency that is exposed (not hidden) on an
    /// OOO core.
    hit_exposure: f64,
}

impl OutOfOrderCore {
    /// Create an out-of-order core with the given configuration.
    pub fn new(config: CoreConfig) -> Self {
        OutOfOrderCore {
            config,
            breakdown: CycleBreakdown::default(),
            instructions_since_cluster_start: u64::MAX / 2,
            cluster_outstanding: 0,
            hit_exposure: 0.15,
        }
    }

    /// The cycle breakdown so far.
    pub fn breakdown(&self) -> CycleBreakdown {
        self.breakdown
    }

    /// Cycles of independent work the ROB can use to hide a miss.
    fn rob_hide_cycles(&self) -> u64 {
        (self.config.rob_size as u64) / (self.config.issue_width.max(1) as u64)
    }
}

impl TimingCore for OutOfOrderCore {
    fn execute_compute(&mut self, n: u64) {
        let width = self.config.issue_width.max(1) as u64;
        self.breakdown.compute_cycles += n.div_ceil(width);
        self.instructions_since_cluster_start =
            self.instructions_since_cluster_start.saturating_add(n);
    }

    fn execute_access(&mut self, outcome: AccessOutcome) {
        self.breakdown.compute_cycles += 1;
        self.instructions_since_cluster_start =
            self.instructions_since_cluster_start.saturating_add(1);

        if !outcome.is_llc_miss {
            // Pipelined cache hit: only a small fraction of the latency is
            // exposed on an OOO core.
            let exposed = (outcome.latency_cycles as f64 * self.hit_exposure).round() as u64;
            self.breakdown.cache_stall_cycles += exposed;
            return;
        }

        let within_rob_window =
            self.instructions_since_cluster_start <= self.config.rob_size as u64;
        let can_overlap = within_rob_window
            && self.cluster_outstanding > 0
            && self.cluster_outstanding < self.config.max_outstanding_misses;

        if can_overlap {
            // Overlapped with an already-outstanding miss: essentially free
            // (its latency is covered by the cluster leader's round trip).
            self.cluster_outstanding += 1;
            return;
        }

        // Cluster leader (or MLP exhausted): pay the exposed latency after
        // the ROB hides what it can behind the compute issued since the last
        // stall.
        let hideable = self
            .rob_hide_cycles()
            .min(self.instructions_since_cluster_start / self.config.issue_width.max(1) as u64);
        let exposed = outcome.latency_cycles.saturating_sub(hideable);
        self.breakdown.memory_stall_cycles += exposed;
        self.cluster_outstanding = 1;
        self.instructions_since_cluster_start = 0;
    }

    fn cycles(&self) -> u64 {
        self.breakdown.total()
    }

    fn stall_cycles(&self) -> u64 {
        self.breakdown.cache_stall_cycles + self.breakdown.memory_stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::hierarchy::HierarchyLevel;

    fn hit(latency: u64) -> AccessOutcome {
        AccessOutcome {
            level: HierarchyLevel::L1,
            latency_cycles: latency,
            is_llc_miss: false,
        }
    }

    fn miss(latency: u64) -> AccessOutcome {
        AccessOutcome {
            level: HierarchyLevel::Memory,
            latency_cycles: latency,
            is_llc_miss: true,
        }
    }

    #[test]
    fn in_order_pays_full_latency() {
        let mut core = InOrderCore::new(CoreConfig::in_order_default());
        core.execute_compute(10);
        core.execute_access(miss(250));
        // 10 compute + 1 issue + 250 stall.
        assert_eq!(core.cycles(), 261);
        assert_eq!(core.stall_cycles(), 250);
    }

    #[test]
    fn in_order_cache_hits_counted_separately() {
        let mut core = InOrderCore::new(CoreConfig::in_order_default());
        core.execute_access(hit(4));
        let b = core.breakdown();
        assert_eq!(b.cache_stall_cycles, 4);
        assert_eq!(b.memory_stall_cycles, 0);
    }

    #[test]
    fn in_order_issue_width_divides_compute() {
        let mut cfg = CoreConfig::in_order_default();
        cfg.issue_width = 2;
        let mut core = InOrderCore::new(cfg);
        core.execute_compute(10);
        assert_eq!(core.cycles(), 5);
    }

    #[test]
    fn ooo_hides_latency_behind_rob() {
        let cfg = CoreConfig::out_of_order_default();
        let mut core = OutOfOrderCore::new(cfg);
        // Plenty of independent work before the miss: the ROB hides
        // rob_size/issue_width = 64 cycles of the 180-cycle latency.
        core.execute_compute(1000);
        core.execute_access(miss(180));
        let b = core.breakdown();
        assert_eq!(b.memory_stall_cycles, 180 - 64);
    }

    #[test]
    fn ooo_overlaps_clustered_misses() {
        let cfg = CoreConfig::out_of_order_default();
        let mut ooo = OutOfOrderCore::new(cfg);
        let mut ino = InOrderCore::new(CoreConfig::in_order_default());
        // A burst of 8 misses with little compute between them.
        for _ in 0..8 {
            ooo.execute_compute(4);
            ooo.execute_access(miss(180));
            ino.execute_compute(4);
            ino.execute_access(miss(180));
        }
        assert!(
            ooo.stall_cycles() * 4 < ino.stall_cycles(),
            "OOO ({}) should hide most of the clustered-miss latency vs in-order ({})",
            ooo.stall_cycles(),
            ino.stall_cycles()
        );
    }

    #[test]
    fn ooo_mlp_limit_caps_overlap() {
        // The same burst of 8 misses costs more with MLP=2 than with MLP=8,
        // because fewer misses can be overlapped per round trip.
        let run = |mlp: u32| {
            let mut cfg = CoreConfig::out_of_order_default();
            cfg.max_outstanding_misses = mlp;
            let mut core = OutOfOrderCore::new(cfg);
            for _ in 0..8 {
                core.execute_access(miss(200));
            }
            core.breakdown().memory_stall_cycles
        };
        let narrow = run(2);
        let wide = run(8);
        assert!(
            narrow > wide,
            "MLP=2 ({narrow}) should stall more than MLP=8 ({wide})"
        );
        // With MLP=2, at least 4 of the 8 misses are cluster leaders; even
        // after ROB hiding that is several full round trips of stall.
        assert!(narrow >= 3 * 200, "got {narrow}");
    }

    #[test]
    fn ooo_added_latency_increases_stall_one_for_one_when_exposed() {
        // When misses are isolated (lots of compute between them), the extra
        // disaggregation latency shows up fully in the exposed stall.
        let cfg = CoreConfig::out_of_order_default();
        let mut base = OutOfOrderCore::new(cfg);
        let mut extra = OutOfOrderCore::new(cfg);
        for _ in 0..10 {
            base.execute_compute(5000);
            base.execute_access(miss(180));
            extra.execute_compute(5000);
            extra.execute_access(miss(250));
        }
        let diff = extra.stall_cycles() - base.stall_cycles();
        assert_eq!(diff, 10 * 70);
    }

    #[test]
    fn ooo_hits_mostly_hidden() {
        let cfg = CoreConfig::out_of_order_default();
        let mut core = OutOfOrderCore::new(cfg);
        core.execute_access(hit(40));
        assert!(core.breakdown().cache_stall_cycles <= 6);
    }

    #[test]
    fn cycle_breakdown_total_consistent() {
        let mut core = InOrderCore::new(CoreConfig::in_order_default());
        core.execute_compute(100);
        core.execute_access(miss(180));
        core.execute_access(hit(4));
        assert_eq!(core.cycles(), core.breakdown().total());
    }
}
