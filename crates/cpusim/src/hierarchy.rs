//! Three-level cache hierarchy in front of a latency-configurable memory.
//!
//! The hierarchy is mostly-inclusive and write-back: demand accesses walk
//! L1D → L2 → LLC → memory; lines are allocated in every level on the way
//! back, and dirty victims are written back to the level below. The
//! disaggregation latency of the paper is applied on every LLC miss (the
//! request crosses the photonic/electronic fabric to the disaggregated
//! memory module and the response crosses back).

use crate::cache::{Cache, CacheStats, LookupResult};
use crate::config::CpuConfig;
use serde::{Deserialize, Serialize};

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HierarchyLevel {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the unified L2.
    L2,
    /// Hit in the last-level cache.
    Llc,
    /// Missed everywhere and went to main memory.
    Memory,
}

/// Outcome of one access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// The level that serviced the access.
    pub level: HierarchyLevel,
    /// Unloaded latency of the access in core cycles (hit latency of the
    /// servicing level, plus the memory latency for LLC misses).
    pub latency_cycles: u64,
    /// True if the access left the package (LLC miss): these are the
    /// accesses the disaggregation fabric sees.
    pub is_llc_miss: bool,
}

/// Per-level and memory statistics for a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 data cache statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// LLC statistics.
    pub llc: CacheStats,
    /// Number of demand accesses that reached main memory.
    pub memory_accesses: u64,
    /// Number of memory accesses that hit the open DRAM row.
    pub memory_row_hits: u64,
    /// Number of dirty LLC lines written back to memory.
    pub memory_writebacks: u64,
}

impl HierarchyStats {
    /// LLC miss rate (the quantity Fig. 7 correlates with slowdown).
    pub fn llc_miss_rate(&self) -> f64 {
        self.llc.miss_rate()
    }

    /// Fraction of memory accesses that hit the open DRAM row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.memory_accesses == 0 {
            0.0
        } else {
            self.memory_row_hits as f64 / self.memory_accesses as f64
        }
    }
}

/// The cache hierarchy plus memory timing.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    llc: Cache,
    /// Row-miss memory latency in core cycles.
    row_miss_latency_cycles: u64,
    /// Row-hit memory latency in core cycles.
    row_hit_latency_cycles: u64,
    /// DRAM row size in bytes (open-page granule).
    row_bytes: u64,
    /// The currently open DRAM row (address / row_bytes), if any.
    open_row: Option<u64>,
    memory_accesses: u64,
    memory_row_hits: u64,
    memory_writebacks: u64,
}

impl CacheHierarchy {
    /// Build the hierarchy described by `config`.
    pub fn new(config: &CpuConfig) -> Self {
        CacheHierarchy {
            l1: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            llc: Cache::new(config.llc),
            row_miss_latency_cycles: config.memory.total_latency_cycles(config.core.clock_ghz),
            row_hit_latency_cycles: config
                .memory
                .total_row_hit_latency_cycles(config.core.clock_ghz),
            row_bytes: config.memory.row_bytes.max(1),
            open_row: None,
            memory_accesses: 0,
            memory_row_hits: 0,
            memory_writebacks: 0,
        }
    }

    /// Row-miss memory latency (base + disaggregation) in core cycles.
    pub fn memory_latency_cycles(&self) -> u64 {
        self.row_miss_latency_cycles
    }

    /// Latency of a memory access to `addr`, applying the open-page model,
    /// and update the open-row state.
    fn memory_access_latency(&mut self, addr: u64) -> u64 {
        let row = addr / self.row_bytes;
        let hit = self.open_row == Some(row);
        self.open_row = Some(row);
        if hit {
            self.memory_row_hits += 1;
            self.row_hit_latency_cycles
        } else {
            self.row_miss_latency_cycles
        }
    }

    /// Perform one demand access.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        let l1_hit_latency = self.l1.config().hit_latency_cycles;
        let l2_hit_latency = self.l2.config().hit_latency_cycles;
        let llc_hit_latency = self.llc.config().hit_latency_cycles;

        // L1 lookup.
        match self.l1.access(addr, is_write) {
            LookupResult::Hit => {
                return AccessOutcome {
                    level: HierarchyLevel::L1,
                    latency_cycles: l1_hit_latency,
                    is_llc_miss: false,
                }
            }
            LookupResult::Miss { writeback } => {
                if let Some(wb) = writeback {
                    // L1 victim is written back into L2.
                    if let Some(wb2) = self.l2.install_writeback(wb) {
                        if let Some(wb3) = self.llc.install_writeback(wb2) {
                            self.memory_writebacks += 1;
                            let _ = wb3;
                        }
                    }
                }
            }
        }

        // L2 lookup. The fill into L1 happens regardless of where the line
        // comes from; allocation was already done by the L1 miss handling
        // above (the line was installed on the miss), so only timing and the
        // lower levels remain.
        match self.l2.access(addr, is_write) {
            LookupResult::Hit => {
                return AccessOutcome {
                    level: HierarchyLevel::L2,
                    latency_cycles: l1_hit_latency + l2_hit_latency,
                    is_llc_miss: false,
                }
            }
            LookupResult::Miss { writeback } => {
                if let Some(wb) = writeback {
                    if let Some(wb2) = self.llc.install_writeback(wb) {
                        self.memory_writebacks += 1;
                        let _ = wb2;
                    }
                }
            }
        }

        // LLC lookup.
        match self.llc.access(addr, is_write) {
            LookupResult::Hit => AccessOutcome {
                level: HierarchyLevel::Llc,
                latency_cycles: l1_hit_latency + l2_hit_latency + llc_hit_latency,
                is_llc_miss: false,
            },
            LookupResult::Miss { writeback } => {
                if writeback.is_some() {
                    self.memory_writebacks += 1;
                }
                self.memory_accesses += 1;
                let memory_latency = self.memory_access_latency(addr);
                AccessOutcome {
                    level: HierarchyLevel::Memory,
                    latency_cycles: l1_hit_latency
                        + l2_hit_latency
                        + llc_hit_latency
                        + memory_latency,
                    is_llc_miss: true,
                }
            }
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            llc: self.llc.stats(),
            memory_accesses: self.memory_accesses,
            memory_row_hits: self.memory_row_hits,
            memory_writebacks: self.memory_writebacks,
        }
    }

    /// Reset statistics but keep cache contents (for warm-up runs).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.memory_accesses = 0;
        self.memory_row_hits = 0;
        self.memory_writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, CpuConfig};

    fn small_config(extra_latency_ns: f64) -> CpuConfig {
        let mut cfg = CpuConfig::baseline_in_order();
        cfg.l1d = CacheConfig {
            capacity_bytes: 1024,
            associativity: 2,
            line_bytes: 64,
            hit_latency_cycles: 4,
        };
        cfg.l2 = CacheConfig {
            capacity_bytes: 4 * 1024,
            associativity: 4,
            line_bytes: 64,
            hit_latency_cycles: 14,
        };
        cfg.llc = CacheConfig {
            capacity_bytes: 16 * 1024,
            associativity: 8,
            line_bytes: 64,
            hit_latency_cycles: 40,
        };
        cfg.memory.extra_latency_ns = extra_latency_ns;
        cfg
    }

    #[test]
    fn cold_access_goes_to_memory_then_hits_in_l1() {
        let mut h = CacheHierarchy::new(&small_config(0.0));
        let first = h.access(0x1_0000, false);
        assert_eq!(first.level, HierarchyLevel::Memory);
        assert!(first.is_llc_miss);
        let second = h.access(0x1_0000, false);
        assert_eq!(second.level, HierarchyLevel::L1);
        assert!(!second.is_llc_miss);
        assert_eq!(second.latency_cycles, 4);
    }

    #[test]
    fn memory_latency_includes_extra_disaggregation_latency() {
        let base = CacheHierarchy::new(&small_config(0.0));
        let photonic = CacheHierarchy::new(&small_config(35.0));
        // 90 ns vs 125 ns at 2 GHz: 180 vs 250 cycles.
        assert_eq!(base.memory_latency_cycles(), 180);
        assert_eq!(photonic.memory_latency_cycles(), 250);
    }

    #[test]
    fn miss_latency_is_sum_of_level_latencies_plus_memory() {
        let mut h = CacheHierarchy::new(&small_config(35.0));
        let out = h.access(0x5000, false);
        assert_eq!(out.latency_cycles, 4 + 14 + 40 + 250);
    }

    #[test]
    fn llc_hit_after_l1_l2_eviction() {
        let mut h = CacheHierarchy::new(&small_config(0.0));
        // Touch enough distinct lines to overflow L1 (16 lines) and L2 (64
        // lines) but not the LLC (256 lines).
        for line in 0..128u64 {
            h.access(line * 64, false);
        }
        // Re-touch the first line: it has been evicted from L1 and L2 but is
        // still in the LLC.
        let out = h.access(0, false);
        assert_eq!(out.level, HierarchyLevel::Llc);
    }

    #[test]
    fn stats_track_levels_and_memory() {
        let mut h = CacheHierarchy::new(&small_config(0.0));
        for line in 0..32u64 {
            h.access(line * 64, false);
        }
        for line in 0..32u64 {
            h.access(line * 64, false);
        }
        let s = h.stats();
        assert_eq!(s.l1.accesses, 64);
        assert_eq!(s.memory_accesses, 32);
        // Second pass: 32 lines > L1 capacity (16 lines) so L1 misses again,
        // but L2 (64 lines) holds them all.
        assert!(s.l2.hits >= 32);
        assert!(s.llc_miss_rate() > 0.0);
    }

    #[test]
    fn dirty_lines_eventually_write_back_to_memory() {
        let mut h = CacheHierarchy::new(&small_config(0.0));
        // Write a large streaming footprint so dirty lines cascade out of the
        // LLC (256 lines): 1024 distinct lines.
        for line in 0..1024u64 {
            h.access(line * 64, true);
        }
        let s = h.stats();
        assert!(
            s.memory_writebacks > 0,
            "streaming writes must push dirty lines back to memory"
        );
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = CacheHierarchy::new(&small_config(0.0));
        h.access(0x100, false);
        h.reset_stats();
        assert_eq!(h.stats().l1.accesses, 0);
        let out = h.access(0x100, false);
        assert_eq!(out.level, HierarchyLevel::L1);
    }

    #[test]
    fn streaming_misses_hit_the_open_dram_row() {
        let mut h = CacheHierarchy::new(&small_config(0.0));
        // Stream 32 consecutive lines (2 KiB = one DRAM row): after the first
        // row activation, subsequent misses in the same row are row hits.
        let mut latencies = Vec::new();
        for line in 0..32u64 {
            latencies.push(h.access(line * 64, false).latency_cycles);
        }
        assert!(latencies[1] < latencies[0]);
        let s = h.stats();
        assert_eq!(s.memory_accesses, 32);
        assert_eq!(s.memory_row_hits, 31);
        assert!((s.row_hit_rate() - 31.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn scattered_misses_miss_the_dram_row() {
        let mut h = CacheHierarchy::new(&small_config(0.0));
        // Accesses 1 MiB apart never share a 2 KiB row.
        for i in 0..16u64 {
            h.access(i * 1024 * 1024, false);
        }
        let s = h.stats();
        assert_eq!(s.memory_row_hits, 0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn extra_latency_applies_to_row_hits_and_misses_alike() {
        let run = |extra: f64| {
            let mut h = CacheHierarchy::new(&small_config(extra));
            let miss = h.access(0, false).latency_cycles;
            let hit = h.access(64, false).latency_cycles;
            (miss, hit)
        };
        let (m0, h0) = run(0.0);
        let (m35, h35) = run(35.0);
        assert_eq!(m35 - m0, 70);
        assert_eq!(h35 - h0, 70);
    }

    #[test]
    fn writes_and_reads_to_same_line_hit() {
        let mut h = CacheHierarchy::new(&small_config(0.0));
        h.access(0x40, true);
        let out = h.access(0x40, false);
        assert_eq!(out.level, HierarchyLevel::L1);
    }
}
