//! A set-associative, write-back, write-allocate cache with LRU replacement.
//!
//! The model tracks tags only (no data), which is all a timing study needs.
//! Dirty lines are tracked so that writeback traffic can be accounted for by
//! the hierarchy and (in the fabric crate) translated into additional
//! LLC-to-memory bandwidth demand.

use crate::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// One cache way within a set: a tag plus LRU and dirty metadata.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Monotonic counter value of the most recent touch (larger = more
    /// recently used).
    last_use: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The line was present.
    Hit,
    /// The line was absent; if an existing dirty line had to be evicted to
    /// make room, `writeback` carries its address.
    Miss {
        /// Address of the evicted dirty line (aligned to the line size), if
        /// any.
        writeback: Option<u64>,
    },
}

impl LookupResult {
    /// True if the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, LookupResult::Hit)
    }
}

/// Aggregate statistics for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions (writebacks to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1]; zero if there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A single cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    line_shift: u32,
    use_counter: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache from its configuration. Panics if the geometry is
    /// invalid (use [`CacheConfig::validate`] to check first).
    pub fn new(config: CacheConfig) -> Self {
        config
            .validate()
            .expect("invalid cache geometry passed to Cache::new");
        let set_count = config.sets();
        Cache {
            config,
            sets: vec![vec![Way::default(); config.associativity as usize]; set_count as usize],
            set_mask: set_count - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            use_counter: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (but keep cache contents, e.g. after a warm-up pass).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Clear contents and statistics.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                *way = Way::default();
            }
        }
        self.stats = CacheStats::default();
        self.use_counter = 0;
    }

    #[inline]
    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Access the cache. On a miss the line is allocated (write-allocate) and
    /// the LRU victim is evicted; if the victim was dirty its address is
    /// returned for writeback to the next level.
    pub fn access(&mut self, addr: u64, is_write: bool) -> LookupResult {
        self.use_counter += 1;
        self.stats.accesses += 1;
        let (set_idx, tag) = self.index_and_tag(addr);
        let set_bits = self.set_mask.count_ones();
        let line_shift = self.line_shift;
        let use_counter = self.use_counter;
        let set = &mut self.sets[set_idx];

        // Hit path.
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = use_counter;
            if is_write {
                way.dirty = true;
            }
            self.stats.hits += 1;
            return LookupResult::Hit;
        }

        // Miss: find the victim (an invalid way if present, else the LRU way).
        self.stats.misses += 1;
        let victim_idx = set
            .iter()
            .enumerate()
            .find(|(_, w)| !w.valid)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.last_use)
                    .map(|(i, _)| i)
                    .expect("cache set has at least one way")
            });

        let victim = set[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(((victim.tag << set_bits) | set_idx as u64) << line_shift)
        } else {
            None
        };

        set[victim_idx] = Way {
            valid: true,
            dirty: is_write,
            tag,
            last_use: use_counter,
        };
        LookupResult::Miss { writeback }
    }

    /// Probe without modifying state or statistics: is the line present?
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index_and_tag(addr);
        self.sets[set_idx].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Install a line without counting it as a demand access (used for
    /// writebacks arriving from an upper level). Returns the evicted dirty
    /// line's address, if any.
    pub fn install_writeback(&mut self, addr: u64) -> Option<u64> {
        self.use_counter += 1;
        let (set_idx, tag) = self.index_and_tag(addr);
        let set_bits = self.set_mask.count_ones();
        let line_shift = self.line_shift;
        let use_counter = self.use_counter;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.dirty = true;
            way.last_use = use_counter;
            return None;
        }
        let victim_idx = set
            .iter()
            .enumerate()
            .find(|(_, w)| !w.valid)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.last_use)
                    .map(|(i, _)| i)
                    .expect("cache set has at least one way")
            });
        let victim = set[victim_idx];
        let evicted = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(((victim.tag << set_bits) | set_idx as u64) << line_shift)
        } else {
            None
        };
        set[victim_idx] = Way {
            valid: true,
            dirty: true,
            tag,
            last_use: use_counter,
        };
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> Cache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny_cache();
        assert!(!c.access(0x1000, false).is_hit());
        assert!(c.access(0x1000, false).is_hit());
        assert!(c.access(0x103F, false).is_hit()); // same line
        assert!(!c.access(0x1040, false).is_hit()); // next line
        let s = c.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny_cache();
        // Three lines mapping to the same set (set stride = 4 lines = 256 B).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a, false);
        c.access(b, false);
        // Touch `a` so `b` becomes the LRU.
        c.access(a, false);
        c.access(d, false); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = tiny_cache();
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a, true); // dirty
        c.access(b, false);
        c.access(d, false); // evicts a (LRU), which is dirty
        match c.access(b, false) {
            LookupResult::Hit => {}
            _ => panic!("b should still be resident"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn writeback_address_is_line_aligned_original_line() {
        let mut c = tiny_cache();
        let a = 0x1010; // line base 0x1000, set (0x1000>>6)&3 = 0
        let conflict1 = 0x2000; // same set 0
        let conflict2 = 0x3000; // same set 0
        c.access(a, true);
        c.access(conflict1, false);
        let res = c.access(conflict2, false);
        match res {
            LookupResult::Miss { writeback } => assert_eq!(writeback, Some(0x1000)),
            _ => panic!("expected a miss with writeback"),
        }
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny_cache();
        c.access(0x0000, false);
        c.access(0x0100, false);
        match c.access(0x0200, false) {
            LookupResult::Miss { writeback } => assert_eq!(writeback, None),
            _ => panic!("expected a miss"),
        }
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn working_set_larger_than_cache_always_misses_on_streaming() {
        let mut c = tiny_cache();
        // Stream over 8 KiB (16x the cache) twice: second pass still misses
        // every line because LRU evicted them.
        let mut second_pass_hits = 0;
        for pass in 0..2 {
            for line in 0..(8192 / 64) {
                let hit = c.access(line * 64, false).is_hit();
                if pass == 1 && hit {
                    second_pass_hits += 1;
                }
            }
        }
        assert_eq!(second_pass_hits, 0);
    }

    #[test]
    fn working_set_smaller_than_cache_hits_on_second_pass() {
        let mut c = tiny_cache();
        // 512 B working set = exactly the cache.
        for _ in 0..2 {
            for line in 0..8 {
                c.access(line * 64, false);
            }
        }
        let s = c.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.hits, 8);
    }

    #[test]
    fn flush_and_reset_stats() {
        let mut c = tiny_cache();
        c.access(0x0, true);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains(0x0));
        c.flush();
        assert!(!c.contains(0x0));
    }

    #[test]
    fn install_writeback_marks_dirty_without_demand_stats() {
        let mut c = tiny_cache();
        c.install_writeback(0x1000);
        assert!(c.contains(0x1000));
        assert_eq!(c.stats().accesses, 0);
        // Evicting it later must produce a writeback since it is dirty.
        c.access(0x2000, false);
        c.access(0x3000, false);
        // Set 0 now holds 0x2000/0x3000; 0x1000 was evicted dirty.
        assert!(!c.contains(0x1000));
        assert!(c.stats().writebacks >= 1);
    }

    #[test]
    fn install_writeback_on_resident_line_no_eviction() {
        let mut c = tiny_cache();
        c.access(0x1000, false);
        assert_eq!(c.install_writeback(0x1000), None);
        assert!(c.contains(0x1000));
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = tiny_cache();
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x40, false);
        let s = c.stats();
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn invalid_geometry_panics() {
        Cache::new(CacheConfig {
            capacity_bytes: 100,
            associativity: 3,
            line_bytes: 48,
            hit_latency_cycles: 1,
        });
    }
}
