//! The trace simulator: runs a [`MemoryTrace`] through a core timing model
//! and a cache hierarchy, and reports the metrics the paper's figures use.

use crate::config::{CoreKind, CpuConfig};
use crate::core::{InOrderCore, OutOfOrderCore, TimingCore};
use crate::hierarchy::{CacheHierarchy, HierarchyStats};
use crate::trace::MemoryTrace;
use serde::{Deserialize, Serialize};

/// Result of simulating one trace on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Total execution cycles.
    pub cycles: u64,
    /// Total instructions (compute + memory).
    pub instructions: u64,
    /// Cycles spent stalled on main memory (LLC misses).
    pub memory_stall_cycles: u64,
    /// Cycles spent stalled on cache hits.
    pub cache_stall_cycles: u64,
    /// Hierarchy statistics (per-level hit/miss counts).
    pub hierarchy: HierarchyStats,
    /// The configured extra LLC-to-memory latency in nanoseconds.
    pub extra_latency_ns: f64,
    /// The core model used.
    pub core_kind: CoreKind,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC miss rate (misses / LLC accesses).
    pub fn llc_miss_rate(&self) -> f64 {
        self.hierarchy.llc_miss_rate()
    }

    /// LLC misses per thousand instructions.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.hierarchy.llc.misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Fraction of all cycles spent waiting on main memory.
    pub fn memory_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.memory_stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Slowdown of this run relative to a baseline run (ratio of cycles),
    /// expressed as a percentage (0% = identical, 50% = 1.5x cycles).
    pub fn slowdown_vs(&self, baseline: &SimResult) -> f64 {
        if baseline.cycles == 0 {
            return 0.0;
        }
        (self.cycles as f64 / baseline.cycles as f64 - 1.0) * 100.0
    }

    /// Speedup of this run relative to another run (other.cycles / cycles),
    /// expressed as a percentage (0% = identical, 50% = other takes 1.5x).
    pub fn speedup_vs(&self, other: &SimResult) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (other.cycles as f64 / self.cycles as f64 - 1.0) * 100.0
    }
}

/// The simulator: a configuration plus the machinery to run traces.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: CpuConfig,
    warmup: bool,
}

impl Simulator {
    /// Create a simulator for a configuration.
    pub fn new(config: CpuConfig) -> Self {
        config
            .validate()
            .expect("invalid CPU configuration passed to Simulator::new");
        Simulator {
            config,
            warmup: false,
        }
    }

    /// Enable or disable a cache warm-up pass: the trace is first replayed
    /// once purely to populate the caches (no timing), then replayed again
    /// for measurement. This removes cold-start (compulsory) misses, which
    /// would otherwise dominate short traces and make LLC-resident workloads
    /// look memory-bound — the measured run then reflects steady-state
    /// behaviour, which is what the paper's long gem5 runs observe.
    pub fn with_warmup(mut self, warmup: bool) -> Self {
        self.warmup = warmup;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Run a trace to completion and return the timing result.
    pub fn run(&self, trace: &MemoryTrace) -> SimResult {
        let mut hierarchy = CacheHierarchy::new(&self.config);
        if self.warmup {
            for record in &trace.records {
                hierarchy.access(record.access.addr, record.access.is_write);
            }
            hierarchy.reset_stats();
        }
        match self.config.core.kind {
            CoreKind::InOrder => {
                let mut core = InOrderCore::new(self.config.core);
                self.drive(trace, &mut hierarchy, &mut core);
                self.finish(
                    trace,
                    &hierarchy,
                    core.breakdown().memory_stall_cycles,
                    core.breakdown().cache_stall_cycles,
                    core.cycles(),
                )
            }
            CoreKind::OutOfOrder => {
                let mut core = OutOfOrderCore::new(self.config.core);
                self.drive(trace, &mut hierarchy, &mut core);
                self.finish(
                    trace,
                    &hierarchy,
                    core.breakdown().memory_stall_cycles,
                    core.breakdown().cache_stall_cycles,
                    core.cycles(),
                )
            }
        }
    }

    fn drive<C: TimingCore>(
        &self,
        trace: &MemoryTrace,
        hierarchy: &mut CacheHierarchy,
        core: &mut C,
    ) {
        for record in &trace.records {
            core.execute_compute(record.compute_instructions as u64);
            let outcome = hierarchy.access(record.access.addr, record.access.is_write);
            core.execute_access(outcome);
        }
        core.execute_compute(trace.trailing_compute);
    }

    fn finish(
        &self,
        trace: &MemoryTrace,
        hierarchy: &CacheHierarchy,
        memory_stall_cycles: u64,
        cache_stall_cycles: u64,
        cycles: u64,
    ) -> SimResult {
        SimResult {
            cycles,
            instructions: trace.instructions(),
            memory_stall_cycles,
            cache_stall_cycles,
            hierarchy: hierarchy.stats(),
            extra_latency_ns: self.config.memory.extra_latency_ns,
            core_kind: self.config.core.kind,
        }
    }

    /// Run the same trace across several extra-latency points (the paper's
    /// 0 / 25 / 30 / 35 / 85 ns sweep) and return one result per point.
    pub fn latency_sweep(&self, trace: &MemoryTrace, extra_latencies_ns: &[f64]) -> Vec<SimResult> {
        extra_latencies_ns
            .iter()
            .map(|&extra| {
                Simulator::new(self.config.with_extra_latency_ns(extra))
                    .with_warmup(self.warmup)
                    .run(trace)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;
    use crate::trace::MemoryTrace;

    /// A streaming trace over `lines` distinct cache lines, `passes` times.
    fn streaming_trace(lines: u64, passes: u32, compute_per_access: u32) -> MemoryTrace {
        let mut t = MemoryTrace::with_capacity((lines * passes as u64) as usize);
        for _ in 0..passes {
            for line in 0..lines {
                t.push_read(compute_per_access, line * 64);
            }
        }
        t
    }

    /// A small working-set trace that fits comfortably in the LLC.
    fn resident_trace() -> MemoryTrace {
        // 1024 lines = 64 KiB; fits in the 4 MiB LLC (and even in L2). Enough
        // passes that cold-start misses are amortized away.
        streaming_trace(1024, 100, 10)
    }

    /// A large working-set trace that does not fit in the LLC.
    fn thrashing_trace() -> MemoryTrace {
        // 128K lines = 8 MiB > 4 MiB LLC.
        streaming_trace(128 * 1024, 2, 10)
    }

    #[test]
    fn resident_workload_insensitive_to_extra_latency() {
        let base = Simulator::new(CpuConfig::baseline_in_order()).run(&resident_trace());
        let slow = Simulator::new(CpuConfig::baseline_in_order().with_extra_latency_ns(35.0))
            .run(&resident_trace());
        let slowdown = slow.slowdown_vs(&base);
        assert!(
            slowdown < 3.0,
            "LLC-resident workload should barely slow down, got {slowdown}%"
        );
    }

    #[test]
    fn thrashing_workload_sensitive_to_extra_latency() {
        let base = Simulator::new(CpuConfig::baseline_in_order()).run(&thrashing_trace());
        let slow = Simulator::new(CpuConfig::baseline_in_order().with_extra_latency_ns(35.0))
            .run(&thrashing_trace());
        let slowdown = slow.slowdown_vs(&base);
        assert!(
            slowdown > 10.0,
            "LLC-thrashing workload should slow down noticeably, got {slowdown}%"
        );
        assert!(base.llc_miss_rate() > 0.9);
    }

    #[test]
    fn ooo_faster_than_in_order_on_same_trace() {
        let trace = thrashing_trace();
        let ino = Simulator::new(CpuConfig::baseline_in_order()).run(&trace);
        let ooo = Simulator::new(CpuConfig::baseline_out_of_order()).run(&trace);
        assert!(ooo.cycles < ino.cycles);
        // The cache behaviour is identical regardless of the core model.
        assert_eq!(ino.hierarchy.llc.misses, ooo.hierarchy.llc.misses);
    }

    #[test]
    fn slowdown_monotonic_in_latency() {
        let trace = thrashing_trace();
        let sim = Simulator::new(CpuConfig::baseline_in_order());
        let sweep = sim.latency_sweep(&trace, &[0.0, 25.0, 30.0, 35.0, 85.0]);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].cycles >= pair[0].cycles,
                "cycles must be monotonically non-decreasing in latency"
            );
        }
        let s35 = sweep[3].slowdown_vs(&sweep[0]);
        let s85 = sweep[4].slowdown_vs(&sweep[0]);
        assert!(s85 > s35);
    }

    #[test]
    fn electronic_latency_hurts_more_than_photonic() {
        let trace = thrashing_trace();
        let sim = Simulator::new(CpuConfig::baseline_in_order());
        let sweep = sim.latency_sweep(&trace, &[0.0, 35.0, 85.0]);
        let photonic = sweep[1].slowdown_vs(&sweep[0]);
        let electronic = sweep[2].slowdown_vs(&sweep[0]);
        // 85 ns should cost roughly 85/35 = 2.4x the slowdown of 35 ns for a
        // fully memory-bound in-order workload.
        assert!(electronic / photonic > 1.8 && electronic / photonic < 3.0);
    }

    #[test]
    fn ipc_and_mpki_reported() {
        let trace = resident_trace();
        let r = Simulator::new(CpuConfig::baseline_in_order()).run(&trace);
        assert!(r.ipc() > 0.0);
        assert!(r.llc_mpki() >= 0.0);
        assert!(r.memory_stall_fraction() >= 0.0 && r.memory_stall_fraction() <= 1.0);
    }

    #[test]
    fn speedup_and_slowdown_are_inverse_ish() {
        let trace = thrashing_trace();
        let sim = Simulator::new(CpuConfig::baseline_in_order());
        let sweep = sim.latency_sweep(&trace, &[35.0, 85.0]);
        let speedup_of_photonic = sweep[0].speedup_vs(&sweep[1]);
        assert!(speedup_of_photonic > 0.0);
    }

    #[test]
    fn instructions_match_trace() {
        let trace = resident_trace();
        let r = Simulator::new(CpuConfig::baseline_in_order()).run(&trace);
        assert_eq!(r.instructions, trace.instructions());
    }

    #[test]
    #[should_panic(expected = "invalid CPU configuration")]
    fn invalid_config_panics() {
        let mut cfg = CpuConfig::baseline_in_order();
        cfg.l1d.line_bytes = 100;
        Simulator::new(cfg);
    }
}
