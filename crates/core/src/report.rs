//! Plain-text report formatting for the bench binaries and examples.
//!
//! The harness prints the same rows/series the paper's tables and figures
//! report, so a reader can diff them against the paper side by side.

use crate::cpu_experiments::{CpuBenchmarkResult, SuiteSummary};
use crate::energy::EnergyStats;
use crate::gpu_experiments::GpuBenchmarkResult;
use crate::rack_analysis::RackAnalysis;
use serde::{Deserialize, Serialize};

/// One row of a [`SweepReport`]: a labeled scenario with its input
/// parameters (as display strings) and its output metrics.
///
/// `params` and `metrics` are ordered association lists rather than maps so
/// that serialization order — and therefore the report's JSON byte stream —
/// is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Short scenario label (unique within a report).
    pub label: String,
    /// Input parameters, in declaration order.
    pub params: Vec<(String, String)>,
    /// Output metrics, in declaration order. Non-finite values serialize as
    /// JSON `null`.
    pub metrics: Vec<(String, f64)>,
}

impl SweepRow {
    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// Execution-throughput metadata of one sweep run: how many scenarios were
/// executed, how long the wall clock took, and the resulting scenarios/sec.
///
/// This is *measurement* metadata, not a simulation result: it varies run
/// to run with machine load, so it is deliberately excluded from both
/// [`SweepReport`] equality and [`SweepReport::to_json`] — the engine's
/// byte-identical determinism contract is stated over results only. The
/// `sweep --bench` trajectory (`BENCH_sweep.json`) is where throughput
/// numbers get versioned.
///
/// # Example
///
/// ```
/// use disagg_core::sweep::SweepGrid;
///
/// let grid = || SweepGrid::named("t").mcm_counts([16]).replicates(4);
/// let report = grid().run();
/// let t = report.throughput.expect("sweep runs measure throughput");
/// assert_eq!(t.scenarios, 4);
/// assert!(t.scenarios_per_sec() >= 0.0);
/// // Wall-clock metadata never affects result equality or the JSON bytes.
/// assert_eq!(report, grid().run());
/// assert!(!report.to_json().contains("throughput"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputStats {
    /// Scenarios executed (including ones a row cap streamed past).
    pub scenarios: usize,
    /// Wall-clock duration of the execution phase in seconds.
    pub wall_s: f64,
    /// Thread count the run executed with.
    pub threads: usize,
}

impl ThroughputStats {
    /// Scenarios executed per wall-clock second; `0.0` for an instant run.
    pub fn scenarios_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.scenarios as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Computation-reuse metadata of one sweep run: how much solver work the
/// executor's dedup-planned reuse layer avoided.
///
/// During lazy expansion the executor keys every scenario of a batch by its
/// *physical* solve inputs (fabric topology, load + policy, latency, seed)
/// — axes that only change how a solve is *accounted* (energy mode, FEC
/// energy settings) are factored out. The first scenario of each physical
/// group is solved normally (a **leader**); the rest (**followers**) are
/// materialized by replaying the leader's retained report through their own
/// `EnergyModel`, which is bit-identical because energy accounting is a
/// pure function of the report. Independently, a per-worker demand-matrix
/// memo reuses `TrafficPattern::flows` / `DemandTimeline::epoch_matrices`
/// expansions across scenarios that share one (`matrices_reused`).
///
/// Like [`ThroughputStats`], this block is *metadata about how the report
/// was produced*, not a simulation result: reuse never changes a single
/// output byte, and the stats themselves may vary with batch size (dedup is
/// planned per batch), so the block is deliberately excluded from both
/// [`SweepReport`] equality and [`SweepReport::to_json`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReuseStats {
    /// Physical groups that actually had ≥ 2 members (i.e. produced at
    /// least one follower). Singleton groups are not counted.
    pub groups: usize,
    /// Scenarios solved for real — one per distinct physical key per batch,
    /// including singletons.
    pub leaders_solved: usize,
    /// Scenarios materialized by replaying a leader's retained report
    /// instead of solving.
    pub followers_replayed: usize,
    /// Demand-matrix expansions served from the per-worker memo instead of
    /// being regenerated.
    pub matrices_reused: usize,
    /// Estimated solver wall-clock avoided, in seconds: each replayed
    /// follower is credited its leader's measured solve time.
    pub solver_s_saved: f64,
}

impl ReuseStats {
    /// Total scenarios the stats cover. On an uninterrupted run this equals
    /// the executed scenario count (leaders and followers partition the
    /// grid); on a resumed job it covers only the shards executed fresh.
    pub fn scenarios(&self) -> usize {
        self.leaders_solved + self.followers_replayed
    }

    /// Fraction of covered scenarios that were replayed rather than solved
    /// (`followers / (leaders + followers)`); `0.0` when nothing ran.
    pub fn hit_rate(&self) -> f64 {
        if self.scenarios() > 0 {
            self.followers_replayed as f64 / self.scenarios() as f64
        } else {
            0.0
        }
    }
}

/// Provenance and accuracy metadata of a representative-scenario sampled
/// sweep (`SweepGrid::run_sampled`): how many clusters the grid was
/// collapsed into, how many scenarios were actually evaluated, the
/// within-cluster feature dispersion, and the per-metric error bounds the
/// sampler declares for its reconstructed summary.
///
/// Like [`ThroughputStats`], this block is *metadata about how the report
/// was produced*, not a simulation result: it is deliberately excluded from
/// both [`SweepReport`] equality and [`SweepReport::to_json`], so the
/// degenerate sampled run (every scenario its own cluster) stays
/// byte-identical to the exhaustive oracle. The accuracy contract the
/// bounds state is pinned against `SweepGrid::run` by
/// `tests/sampling_accuracy.rs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingStats {
    /// True when sampling degenerated to the exhaustive path (cluster
    /// budget ≥ scenario count, or the grid too small to pay for
    /// clustering): the report is byte-identical to `run()`.
    pub exact: bool,
    /// Cluster count the sampler was configured with.
    pub clusters: usize,
    /// Scenarios actually simulated (one weighted representative per
    /// non-empty cluster; the full grid in exact mode).
    pub evaluated: usize,
    /// Scenarios the full grid expands to — what the reconstructed summary
    /// estimates.
    pub total: usize,
    /// Weight-averaged RMS distance of scenarios to their cluster centroid
    /// in the normalized feature space (0 = every cluster collapsed onto
    /// identical feature vectors).
    pub mean_dispersion: f64,
    /// Declared absolute error bounds for the reconstructed summary
    /// metrics, in summary order.
    pub error_bounds: Vec<(String, f64)>,
}

impl SamplingStats {
    /// Evaluated-scenario reduction factor (`total / evaluated`); 1.0 in
    /// exact mode.
    pub fn reduction(&self) -> f64 {
        if self.evaluated > 0 {
            self.total as f64 / self.evaluated as f64
        } else {
            1.0
        }
    }

    /// The declared absolute error bound for a summary metric.
    pub fn bound(&self, metric: &str) -> Option<f64> {
        self.error_bounds
            .iter()
            .find(|(k, _)| k == metric)
            .map(|(_, v)| *v)
    }

    /// Serialize the block as one standalone JSON object (the `sweep
    /// --sample-report` side channel — deliberately *not* part of
    /// [`SweepReport::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str(&format!(
            "{{\"exact\":{},\"clusters\":{},\"evaluated\":{},\"total\":{},\
             \"reduction\":",
            self.exact, self.clusters, self.evaluated, self.total
        ));
        json_number(&mut out, self.reduction());
        out.push_str(",\"mean_dispersion\":");
        json_number(&mut out, self.mean_dispersion);
        out.push_str(",\"error_bounds\":{");
        for (i, (k, v)) in self.error_bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, k);
            out.push(':');
            json_number(&mut out, *v);
        }
        out.push_str("}}");
        out
    }
}

/// The unified result schema every sweep and ported paper artifact produces:
/// a named collection of scenario rows plus report-level summary metrics.
///
/// The report is the JSON-able interchange format of the harness: the
/// `sweep` binary emits it with `--json`, and the determinism contract of
/// the sweep engine is stated over it (the same grid run twice yields
/// byte-identical [`SweepReport::to_json`] output).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Report name (e.g. `"fig9"` or `"sweep"`).
    pub name: String,
    /// One row per executed scenario, in grid-expansion order.
    pub rows: Vec<SweepRow>,
    /// Report-level summary metrics (averages, correlations, totals), in
    /// declaration order.
    pub summary: Vec<(String, f64)>,
    /// Per-scenario energy accounting (`(scenario label, stats)` pairs, in
    /// row order). Empty — and absent from the JSON — unless the producing
    /// grid set an energy axis
    /// ([`SweepGrid::energy_modes`](crate::sweep::SweepGrid::energy_modes)).
    pub energy: Vec<(String, EnergyStats)>,
    /// Wall-clock throughput of the run that produced this report, when the
    /// producer measured one (the sweep engine's `run*` entry points do).
    /// Excluded from equality and from [`to_json`](SweepReport::to_json):
    /// see [`ThroughputStats`].
    pub throughput: Option<ThroughputStats>,
    /// Sampling provenance when the report was reconstructed by
    /// `SweepGrid::run_sampled`, `None` for exhaustive runs. Excluded from
    /// equality and from [`to_json`](SweepReport::to_json): see
    /// [`SamplingStats`].
    pub sampling: Option<SamplingStats>,
    /// Computation-reuse accounting of the run that produced this report,
    /// when the executor ran with reuse enabled (the default); `None` with
    /// `--no-reuse` or for reports not produced by the sweep executor.
    /// Excluded from equality and from [`to_json`](SweepReport::to_json):
    /// see [`ReuseStats`].
    pub reuse: Option<ReuseStats>,
}

/// Result equality only — [`ThroughputStats`] is run-to-run wall-clock
/// metadata and deliberately ignored, so "same grid ⇒ equal reports" holds
/// at any thread count and machine speed.
impl PartialEq for SweepReport {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.rows == other.rows
            && self.summary == other.summary
            && self.energy == other.energy
    }
}

impl SweepReport {
    /// Create an empty report.
    pub fn new(name: impl Into<String>) -> Self {
        SweepReport {
            name: name.into(),
            rows: Vec::new(),
            summary: Vec::new(),
            energy: Vec::new(),
            throughput: None,
            sampling: None,
            reuse: None,
        }
    }

    /// Look up a scenario's energy stats by row label.
    pub fn energy_for(&self, label: &str) -> Option<&EnergyStats> {
        self.energy.iter().find(|(l, _)| l == label).map(|(_, e)| e)
    }

    /// Number of scenario rows.
    pub fn scenario_count(&self) -> usize {
        self.rows.len()
    }

    /// Look up a summary metric by name.
    pub fn summary_metric(&self, name: &str) -> Option<f64> {
        self.summary
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Serialize the report to a single-line JSON string.
    ///
    /// The vendored offline `serde` shim cannot serialize, so the writer is
    /// hand-rolled; output is deterministic because all collections are
    /// ordered and float formatting uses Rust's shortest-round-trip
    /// representation. Non-finite metric values become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.rows.len() * 128);
        out.push_str("{\"name\":");
        json_string(&mut out, &self.name);
        out.push_str(",\"scenarios\":");
        out.push_str(&self.rows.len().to_string());
        out.push_str(",\"summary\":{");
        for (i, (k, v)) in self.summary.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, k);
            out.push(':');
            json_number(&mut out, *v);
        }
        out.push('}');
        if !self.energy.is_empty() {
            out.push_str(",\"energy\":[");
            for (i, (label, e)) in self.energy.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"label\":");
                json_string(&mut out, label);
                out.push_str(",\"mode\":");
                json_string(&mut out, e.mode.label());
                for (k, v) in [
                    ("duration_s", e.duration_s),
                    ("payload_gigabits", e.payload_gigabits),
                    ("joules", e.total_joules()),
                    ("watts", e.watts()),
                    ("pj_per_bit", e.pj_per_bit()),
                    ("photonic_compute_ratio", e.photonic_compute_ratio()),
                    ("transceiver_j", e.transceiver_energy_j),
                    ("fec_j", e.fec_energy_j),
                    ("reconfiguration_j", e.reconfiguration_energy_j),
                    ("idle_j", e.idle_energy_j),
                    // The one raw field the derived metrics above don't
                    // determine; emitting it makes the block a lossless
                    // round-trip for `from_json`.
                    ("compute_power_w", e.compute_power_w),
                ] {
                    out.push(',');
                    json_string(&mut out, k);
                    out.push(':');
                    json_number(&mut out, v);
                }
                out.push('}');
            }
            out.push(']');
        }
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            json_string(&mut out, &row.label);
            out.push_str(",\"params\":{");
            for (j, (k, v)) in row.params.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, k);
                out.push(':');
                json_string(&mut out, v);
            }
            out.push_str("},\"metrics\":{");
            for (j, (k, v)) in row.metrics.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, k);
                out.push(':');
                json_number(&mut out, *v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Parse a report serialized by [`SweepReport::to_json`].
    ///
    /// The inverse of the writer through the vendored `serde::json`
    /// deserializer: every retained field round-trips **byte-identically**
    /// (`to_json` → `from_json` → `to_json` reproduces the input bytes).
    /// Floats survive because the writer emits shortest-round-trip literals
    /// and the parser re-parses them to identical bits; `null` metrics come
    /// back as NaN and re-serialize as `null`. [`ThroughputStats`] is
    /// wall-clock metadata excluded from the JSON, so a parsed report has
    /// `throughput: None` — which [`PartialEq`] ignores.
    ///
    /// ```
    /// use disagg_core::sweep::SweepGrid;
    /// use disagg_core::SweepReport;
    ///
    /// let report = SweepGrid::named("rt").mcm_counts([16]).replicates(2).run();
    /// let json = report.to_json();
    /// let parsed = SweepReport::from_json(&json).unwrap();
    /// assert_eq!(parsed, report);
    /// assert_eq!(parsed.to_json(), json);
    /// ```
    pub fn from_json(text: &str) -> Result<Self, crate::codec::DecodeError> {
        let doc = serde::json::parse(text).map_err(|e| format!("report: {e}"))?;
        let mut report = SweepReport::new(codec::str_field(&doc, "name", "report")?);
        report.summary = codec::as_object(codec::field(&doc, "summary", "report")?, "summary")?
            .iter()
            .map(|(k, v)| Ok((k.clone(), codec::as_f64(v, &format!("summary.{k}"))?)))
            .collect::<Result<_, crate::codec::DecodeError>>()?;
        if let Some(energy) = doc.get("energy") {
            for (i, entry) in codec::as_array(energy, "energy")?.iter().enumerate() {
                let ctx = format!("energy[{i}]");
                report.energy.push((
                    codec::str_field(entry, "label", &ctx)?.to_string(),
                    decode_energy_stats(entry, &ctx)?,
                ));
            }
        }
        for (i, row) in codec::as_array(codec::field(&doc, "rows", "report")?, "rows")?
            .iter()
            .enumerate()
        {
            let ctx = format!("rows[{i}]");
            report.rows.push(SweepRow {
                label: codec::str_field(row, "label", &ctx)?.to_string(),
                params: codec::as_object(codec::field(row, "params", &ctx)?, &ctx)?
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), codec::as_str(v, &format!("{ctx}.{k}"))?.into())))
                    .collect::<Result<_, crate::codec::DecodeError>>()?,
                metrics: codec::as_object(codec::field(row, "metrics", &ctx)?, &ctx)?
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), codec::as_f64(v, &format!("{ctx}.{k}"))?)))
                    .collect::<Result<_, crate::codec::DecodeError>>()?,
            });
        }
        let declared = codec::as_usize(codec::field(&doc, "scenarios", "report")?, "scenarios")?;
        if declared != report.rows.len() {
            return Err(format!(
                "report: scenarios field says {declared} but {} rows present",
                report.rows.len()
            ));
        }
        Ok(report)
    }
}

use crate::codec;

/// Decode one `energy` array entry back into [`EnergyStats`]. Only the raw
/// fields are read; the derived metrics the writer also emits (`joules`,
/// `watts`, `pj_per_bit`, `photonic_compute_ratio`) are recomputed from
/// them bit-identically on re-serialization.
fn decode_energy_stats(
    entry: &serde::json::Value,
    ctx: &str,
) -> Result<EnergyStats, crate::codec::DecodeError> {
    let mode_label = codec::str_field(entry, "mode", ctx)?;
    let mode = crate::energy::EnergyMode::parse(mode_label)
        .ok_or_else(|| format!("{ctx}.mode: unknown energy mode {mode_label:?}"))?;
    Ok(EnergyStats {
        mode,
        duration_s: codec::f64_field(entry, "duration_s", ctx)?,
        payload_gigabits: codec::f64_field(entry, "payload_gigabits", ctx)?,
        transceiver_energy_j: codec::f64_field(entry, "transceiver_j", ctx)?,
        fec_energy_j: codec::f64_field(entry, "fec_j", ctx)?,
        reconfiguration_energy_j: codec::f64_field(entry, "reconfiguration_j", ctx)?,
        idle_energy_j: codec::f64_field(entry, "idle_j", ctx)?,
        compute_power_w: codec::f64_field(entry, "compute_power_w", ctx)?,
    })
}

/// Append a JSON string literal (shared with the grid/job writers).
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number: shortest-round-trip for finite values (so parsing
/// recovers identical bits), `null` for non-finite.
pub(crate) fn json_number(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Format a [`SweepReport`] as an aligned plain-text table: one line per
/// row, metrics as `name=value` columns, followed by the summary metrics.
pub fn format_sweep_report(report: &SweepReport) -> String {
    let mut out = String::new();
    let title = format!(
        "{} — {} scenario{}",
        report.name,
        report.rows.len(),
        if report.rows.len() == 1 { "" } else { "s" }
    );
    out.push_str(&title);
    out.push('\n');
    out.push_str(&"-".repeat(title.chars().count().max(20)));
    out.push('\n');
    let label_width = report
        .rows
        .iter()
        .map(|r| r.label.chars().count())
        .max()
        .unwrap_or(8)
        .max(8);
    for row in &report.rows {
        out.push_str(&format!("{:<label_width$} ", row.label));
        for (k, v) in &row.metrics {
            out.push_str(&format!(" {k}={v:.4}"));
        }
        out.push('\n');
    }
    if !report.energy.is_empty() {
        out.push_str("energy:\n");
        for (label, e) in &report.energy {
            out.push_str(&format!(
                "  {label:<label_width$}  {:>12.1} J {:>10.1} W  pJ/bit={:.3}  \
                 photonic/compute={:.2}%  (xcvr {:.1} fec {:.3} reconf {:.1} idle {:.1})\n",
                e.total_joules(),
                e.watts(),
                e.pj_per_bit(),
                e.photonic_compute_ratio() * 100.0,
                e.transceiver_energy_j,
                e.fec_energy_j,
                e.reconfiguration_energy_j,
                e.idle_energy_j,
            ));
        }
    }
    if !report.summary.is_empty() {
        out.push_str("summary:");
        for (k, v) in &report.summary {
            out.push_str(&format!(" {k}={v:.4}"));
        }
        out.push('\n');
    }
    if let Some(r) = &report.reuse {
        out.push_str(&format!(
            "reuse: {} solved + {} replayed across {} dedup group{} ({:.1}% hit), \
             {} matrices reused, ~{:.3} s solver saved\n",
            r.leaders_solved,
            r.followers_replayed,
            r.groups,
            if r.groups == 1 { "" } else { "s" },
            r.hit_rate() * 100.0,
            r.matrices_reused,
            r.solver_s_saved,
        ));
    }
    if let Some(t) = &report.throughput {
        out.push_str(&format!(
            "throughput: {} scenarios in {:.3} s on {} thread{} ({:.0} scenarios/s)\n",
            t.scenarios,
            t.wall_s,
            t.threads,
            if t.threads == 1 { "" } else { "s" },
            t.scenarios_per_sec(),
        ));
    }
    out
}

/// Format a simple two-column table with a title.
pub fn format_table(title: &str, rows: &[(String, String)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"-".repeat(title.len().max(20)));
    out.push('\n');
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        out.push_str(&format!("{k:<width$}  {v}\n"));
    }
    out
}

/// Format the Fig. 6 / Fig. 8 style suite summaries.
pub fn format_suite_summaries(title: &str, summaries: &[SuiteSummary]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<10} {:<8} {:<9} {:>8} {:>10} {:>10}\n",
        "suite", "input", "core", "latency", "avg slow%", "max slow%"
    ));
    for s in summaries {
        out.push_str(&format!(
            "{:<10} {:<8} {:<9} {:>6}ns {:>9.1}% {:>9.1}%\n",
            s.suite.to_string(),
            s.input.map_or("all".to_string(), |i| i.to_string()),
            s.core_kind.to_string(),
            s.latency_ns,
            s.average_slowdown,
            s.max_slowdown
        ));
    }
    out
}

/// Format the Fig. 7 style per-benchmark slowdown / miss-rate rows.
pub fn format_miss_rate_rows(title: &str, rows: &[(String, f64, f64)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<38} {:>10} {:>12}\n",
        "benchmark", "slowdown%", "LLC miss%"
    ));
    for (name, slowdown, miss) in rows {
        out.push_str(&format!(
            "{:<38} {:>9.1}% {:>11.1}%\n",
            name,
            slowdown,
            miss * 100.0
        ));
    }
    out
}

/// Format per-benchmark CPU results at a single latency (Fig. 8 / Fig. 12
/// series).
pub fn format_cpu_results(
    title: &str,
    results: &[CpuBenchmarkResult],
    latencies_ns: &[f64],
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<38} {:<9}", "benchmark", "core"));
    for l in latencies_ns {
        out.push_str(&format!(" {:>8}", format!("+{l}ns")));
    }
    out.push('\n');
    for r in results {
        out.push_str(&format!(
            "{:<38} {:<9}",
            r.benchmark.id(),
            r.core_kind.to_string()
        ));
        for &l in latencies_ns {
            match r.slowdown_at(l) {
                Some(s) => out.push_str(&format!(" {s:>7.1}%")),
                None => out.push_str(&format!(" {:>8}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Format per-application GPU results (Fig. 9 series).
pub fn format_gpu_results(
    title: &str,
    results: &[GpuBenchmarkResult],
    latencies_ns: &[f64],
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<20} {:<12}", "application", "suite"));
    for l in latencies_ns {
        out.push_str(&format!(" {:>8}", format!("+{l}ns")));
    }
    out.push('\n');
    for r in results {
        out.push_str(&format!("{:<20} {:<12}", r.name, r.suite));
        for &l in latencies_ns {
            match r.slowdown_at(l) {
                Some(s) => out.push_str(&format!(" {s:>7.2}%")),
                None => out.push_str(&format!(" {:>8}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Format the analytical results as a multi-section report.
pub fn format_rack_analysis(analysis: &RackAnalysis) -> String {
    let mut out = String::new();

    out.push_str("Table I — WDM link technologies (2 TB/s escape target)\n");
    for row in &analysis.table_i {
        out.push_str(&format!("  {row}\n"));
    }

    out.push_str("\nTable II — high-radix photonic switches\n");
    for sw in &analysis.table_ii {
        out.push_str(&format!(
            "  {:<22} {:>4}x{:<4} {:>4} wl/port {:>6.0} Gbps/wl  IL {:>5.1} dB\n",
            sw.kind.to_string(),
            sw.radix,
            sw.radix,
            sw.wavelengths_per_port,
            sw.channel_bandwidth.gbps(),
            sw.insertion_loss.db()
        ));
    }

    out.push_str("\nTable III — chips per MCM and MCMs per rack\n");
    for p in &analysis.table_iii.packings {
        out.push_str(&format!("  {p}\n"));
    }
    out.push_str(&format!(
        "  Total MCMs: {}\n",
        analysis.table_iii.total_mcms()
    ));

    out.push_str("\nFig. 5 — fabric connectivity\n");
    out.push_str(&format!(
        "  AWGR: {} planes, min {} / max {} direct wavelengths, {} Gbps min direct BW, scheduler: {}\n",
        analysis.awgr_connectivity.planes,
        analysis.awgr_connectivity.min_direct_wavelengths,
        analysis.awgr_connectivity.max_direct_wavelengths,
        analysis.awgr_connectivity.min_direct_bandwidth_gbps,
        analysis.awgr_connectivity.needs_scheduler
    ));
    out.push_str(&format!(
        "  Wave-selective: {} switches, min {} direct wavelengths, scheduler: {}\n",
        analysis.wave_selective_connectivity.planes,
        analysis.wave_selective_connectivity.min_direct_wavelengths,
        analysis.wave_selective_connectivity.needs_scheduler
    ));

    out.push_str("\nPower (Sec. VI-C)\n");
    out.push_str(&format!(
        "  photonic power {:.1} kW, overhead {:.1}%\n",
        analysis.power.photonic_power_w / 1000.0,
        analysis.power.overhead_percent()
    ));

    out.push_str("\nBandwidth sufficiency (Sec. VI-A1)\n");
    out.push_str(&format!(
        "  direct 125 Gbps sufficient: {:.2}%   single wavelength sufficient: {:.2}%\n",
        analysis.bandwidth.direct_125gbps_sufficient * 100.0,
        analysis.bandwidth.single_wavelength_sufficient * 100.0
    ));
    out.push_str(&format!(
        "  GPU indirect reach {:.0} GB/s, headroom after HBM {:.1} GB/s, after GPU-GPU {:.1} GB/s\n",
        analysis.gpu_budget.indirect_reach_gbs,
        analysis.gpu_budget.headroom_after_hbm_gbs,
        analysis.gpu_budget.headroom_after_gpu_traffic_gbs
    ));

    out.push_str("\nIso-performance (Sec. VI-E)\n");
    out.push_str(&format!(
        "  baseline modules {} -> disaggregated {} ({:.1}% reduction)\n",
        analysis.iso_performance.baseline.total(),
        analysis.iso_performance.disaggregated.total(),
        analysis.iso_performance.chip_reduction() * 100.0
    ));

    out.push_str("\nElectronic baselines (Sec. VI-D)\n");
    for (name, ns) in &analysis.electronic_baselines {
        out.push_str(&format!("  {name:<20} +{ns:.0} ns\n"));
    }

    out.push_str("\nHeadline claims\n");
    for (claim, holds) in analysis.headline_claims() {
        out.push_str(&format!(
            "  [{}] {claim}\n",
            if holds { "ok" } else { "FAIL" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu_experiments::{run_cpu_experiment_subset, CpuExperimentConfig};
    use crate::gpu_experiments::{run_gpu_experiment, GpuExperimentConfig};

    #[test]
    fn format_table_aligns_columns() {
        let s = format_table(
            "Test",
            &[
                ("short".to_string(), "1".to_string()),
                ("much longer key".to_string(), "2".to_string()),
            ],
        );
        assert!(s.contains("Test"));
        assert!(s.contains("short            1"));
    }

    #[test]
    fn rack_analysis_report_contains_all_sections() {
        let analysis = RackAnalysis::paper();
        let s = format_rack_analysis(&analysis);
        for section in [
            "Table I",
            "Table II",
            "Table III",
            "Fig. 5",
            "Power",
            "Bandwidth sufficiency",
            "Iso-performance",
            "Electronic baselines",
            "Headline claims",
        ] {
            assert!(s.contains(section), "missing section {section}");
        }
        assert!(s.contains("Total MCMs: 350"));
    }

    #[test]
    fn sweep_report_json_is_deterministic_and_escaped() {
        let mut r = SweepReport::new("demo");
        r.summary.push(("avg".to_string(), 1.5));
        r.rows.push(SweepRow {
            label: "a\"b".to_string(),
            params: vec![("fabric".to_string(), "awgr".to_string())],
            metrics: vec![("sat".to_string(), 0.25), ("nan".to_string(), f64::NAN)],
        });
        let json = r.to_json();
        assert_eq!(json, r.clone().to_json());
        assert!(json.contains("\"a\\\"b\""));
        assert!(json.contains("\"nan\":null"));
        assert!(json.contains("\"scenarios\":1"));
        assert!(json.contains("\"sat\":0.25"));
        assert_eq!(r.scenario_count(), 1);
        assert_eq!(r.summary_metric("avg"), Some(1.5));
        assert_eq!(r.rows[0].metric("sat"), Some(0.25));
        let text = format_sweep_report(&r);
        assert!(text.contains("demo — 1 scenario"));
        assert!(text.contains("sat=0.2500"));
    }

    #[test]
    fn energy_block_serializes_deterministically_with_null_for_nan() {
        use crate::energy::EnergyMode;
        let mut r = SweepReport::new("e");
        r.energy.push((
            "row".to_string(),
            EnergyStats {
                mode: EnergyMode::UtilizationScaled,
                duration_s: 0.0,
                payload_gigabits: 0.0,
                transceiver_energy_j: 0.0,
                fec_energy_j: 0.0,
                reconfiguration_energy_j: 0.0,
                idle_energy_j: 0.0,
                compute_power_w: 0.0,
            },
        ));
        let json = r.to_json();
        assert!(json.contains("\"energy\":[{\"label\":\"row\",\"mode\":\"util\""));
        // A zero-bit scenario has no defined pJ/bit: serialized as null.
        assert!(json.contains("\"pj_per_bit\":null"));
        assert_eq!(json, r.clone().to_json());
        assert!(r.energy_for("row").is_some());
        assert!(r.energy_for("missing").is_none());
        let text = format_sweep_report(&r);
        assert!(text.contains("energy:"));
    }

    #[test]
    fn report_round_trips_writer_parser_writer_byte_identically() {
        use crate::energy::EnergyMode;
        let mut r = SweepReport::new("rt \"quoted\"\n");
        r.summary.push(("mean".to_string(), 1.0 / 3.0));
        r.rows.push(SweepRow {
            label: "row0".to_string(),
            params: vec![("fabric".to_string(), "awgr".to_string())],
            metrics: vec![("satisfaction".to_string(), 0.1 + 0.2)],
        });
        r.energy.push((
            "row0".to_string(),
            EnergyStats {
                mode: EnergyMode::AlwaysOn,
                duration_s: 1e-3,
                payload_gigabits: 123.456,
                transceiver_energy_j: 1.5e-9,
                fec_energy_j: 0.25,
                reconfiguration_energy_j: 0.0,
                idle_energy_j: 9.75,
                compute_power_w: 602.857,
            },
        ));
        let json = r.to_json();
        let parsed = SweepReport::from_json(&json).expect("parses");
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), json);
        // Throughput is wall-clock metadata: never serialized, never parsed.
        assert!(parsed.throughput.is_none());

        // Every non-finite value is written as `null` and parsed back as
        // NaN, so an infinity collapses to NaN (and NaN-carrying reports
        // can't be compared with `==` at all) — but the re-emitted bytes
        // are still identical.
        let mut nonfinite = SweepReport::new("nonfinite");
        nonfinite.summary.extend([
            ("inf".to_string(), f64::INFINITY),
            ("nan".to_string(), f64::NAN),
        ]);
        let json = nonfinite.to_json();
        let parsed = SweepReport::from_json(&json).expect("parses");
        assert!(parsed.summary.iter().all(|(_, v)| v.is_nan()));
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn report_parser_rejects_malformed_documents() {
        assert!(SweepReport::from_json("not json").is_err());
        assert!(SweepReport::from_json("{\"name\":\"x\"}").is_err());
        // Row count must match the declared scenarios field.
        let lie = "{\"name\":\"x\",\"scenarios\":2,\"summary\":{},\"rows\":[]}";
        assert!(SweepReport::from_json(lie).unwrap_err().contains("2"));
        let bad_mode = "{\"name\":\"x\",\"scenarios\":0,\"summary\":{},\
                        \"energy\":[{\"label\":\"r\",\"mode\":\"solar\"}],\"rows\":[]}";
        assert!(SweepReport::from_json(bad_mode)
            .unwrap_err()
            .contains("solar"));
    }

    #[test]
    fn cpu_and_gpu_formatting_smoke() {
        let cfg = CpuExperimentConfig {
            accesses_per_benchmark: 20_000,
            ..CpuExperimentConfig::quick()
        };
        let cpu = run_cpu_experiment_subset(&cfg, |b| b.name == "nw");
        let s = format_cpu_results("CPU", &cpu, &[35.0]);
        assert!(s.contains("nw"));
        let gpu = run_gpu_experiment(&GpuExperimentConfig::default());
        let s = format_gpu_results("GPU", &gpu, &[25.0, 30.0, 35.0]);
        assert!(s.contains("alexnet"));
        let rows: Vec<(String, f64, f64)> = vec![("x".into(), 10.0, 0.5)];
        assert!(format_miss_rate_rows("F7", &rows).contains("50.0%"));
    }
}
