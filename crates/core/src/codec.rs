//! Shared helpers for decoding `serde::json::Value` trees into typed
//! structures, used by the [`SweepReport`](crate::report::SweepReport) and
//! [`SweepGrid`](crate::sweep::SweepGrid) parse paths and the
//! [`jobs`](crate::jobs) layer.
//!
//! All decoders report errors as plain strings carrying the field path that
//! failed — good enough to debug a malformed job file, with no error-type
//! machinery to maintain.

use serde::json::Value;

/// A decode failure: the field path and what was wrong with it.
pub type DecodeError = String;

/// Required object field.
pub(crate) fn field<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, DecodeError> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing field {key:?}"))
}

/// A JSON string.
pub(crate) fn as_str<'a>(v: &'a Value, ctx: &str) -> Result<&'a str, DecodeError> {
    v.as_str().ok_or_else(|| format!("{ctx}: expected string"))
}

/// A finite-or-NaN number: JSON `null` decodes as NaN, mirroring the
/// writers' convention of emitting `null` for non-finite values.
pub(crate) fn as_f64(v: &Value, ctx: &str) -> Result<f64, DecodeError> {
    if v.is_null() {
        return Ok(f64::NAN);
    }
    v.as_f64().ok_or_else(|| format!("{ctx}: expected number"))
}

/// A non-negative integer in `u64` range.
pub(crate) fn as_u64(v: &Value, ctx: &str) -> Result<u64, DecodeError> {
    v.as_u64()
        .ok_or_else(|| format!("{ctx}: expected unsigned integer"))
}

/// A non-negative integer in `u32` range.
pub(crate) fn as_u32(v: &Value, ctx: &str) -> Result<u32, DecodeError> {
    u32::try_from(as_u64(v, ctx)?).map_err(|_| format!("{ctx}: integer out of u32 range"))
}

/// A non-negative integer in `usize` range.
pub(crate) fn as_usize(v: &Value, ctx: &str) -> Result<usize, DecodeError> {
    usize::try_from(as_u64(v, ctx)?).map_err(|_| format!("{ctx}: integer out of usize range"))
}

/// A JSON boolean.
pub(crate) fn as_bool(v: &Value, ctx: &str) -> Result<bool, DecodeError> {
    v.as_bool().ok_or_else(|| format!("{ctx}: expected bool"))
}

/// A JSON array.
pub(crate) fn as_array<'a>(v: &'a Value, ctx: &str) -> Result<&'a [Value], DecodeError> {
    v.as_array().ok_or_else(|| format!("{ctx}: expected array"))
}

/// A JSON object (ordered field list).
pub(crate) fn as_object<'a>(v: &'a Value, ctx: &str) -> Result<&'a [(String, Value)], DecodeError> {
    v.as_object()
        .ok_or_else(|| format!("{ctx}: expected object"))
}

/// Required `f64` field of an object.
pub(crate) fn f64_field(v: &Value, key: &str, ctx: &str) -> Result<f64, DecodeError> {
    as_f64(field(v, key, ctx)?, &format!("{ctx}.{key}"))
}

/// Required `u32` field of an object.
pub(crate) fn u32_field(v: &Value, key: &str, ctx: &str) -> Result<u32, DecodeError> {
    as_u32(field(v, key, ctx)?, &format!("{ctx}.{key}"))
}

/// Required string field of an object.
pub(crate) fn str_field<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a str, DecodeError> {
    as_str(field(v, key, ctx)?, &format!("{ctx}.{key}"))
}
