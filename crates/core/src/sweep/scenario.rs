//! One expanded grid point: the [`Scenario`] itself, its load axis
//! ([`ScenarioLoad`]), its executed result ([`ScenarioResult`]), and the
//! position-independent seed derivation shared by every axis sweep.

use fabric::{FabricKind, RackFabricConfig, ReallocationPolicy, SpectrumPolicy};
use photonics::fec::FecConfig;
use serde::{Deserialize, Serialize};
use workloads::{DemandTimeline, TrafficPattern};

use crate::energy::{EnergyMode, EnergyStats};
use crate::report::SweepRow;

/// The offered load of one scenario: a single static demand matrix, or a
/// phased [`DemandTimeline`] executed under a wavelength-reallocation
/// policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioLoad {
    /// A static demand matrix drawn from a traffic pattern.
    Pattern(TrafficPattern),
    /// A temporal demand timeline with its reallocation policy.
    Timeline(TimelineCase),
    /// A temporal demand timeline executed on the flex-grid spectrum layer
    /// under a spectrum admission/defragmentation policy.
    FlexGrid(FlexGridCase),
}

impl ScenarioLoad {
    /// Short stable label for scenario labels and report rows.
    pub fn label(&self) -> String {
        match self {
            ScenarioLoad::Pattern(p) => p.label(),
            ScenarioLoad::Timeline(tc) => {
                format!("{}~{}", tc.timeline.name, tc.policy.label())
            }
            ScenarioLoad::FlexGrid(fc) => {
                format!("{}~{}", fc.timeline.name, fc.policy.label())
            }
        }
    }

    /// The load half of the executor's physical solve key: a kind ordinal
    /// plus a string covering every load parameter that reaches the solver.
    ///
    /// Patterns key on [`TrafficPattern::memo_key`] (family, shape
    /// parameters, demand bits); temporal loads key on the timeline's
    /// [`spec_label`](workloads::DemandTimeline::spec_label) (every
    /// demand-defining phase parameter) *plus* the policy label, because —
    /// unlike the scenario seed, which excludes policies so they share
    /// demand — the policy changes what the solver computes. Display names
    /// (`DemandTimeline::name`) are deliberately absent: renaming a
    /// timeline must not split a dedup group.
    pub(crate) fn solve_key(&self) -> (u8, String) {
        match self {
            ScenarioLoad::Pattern(p) => (0, p.memo_key()),
            ScenarioLoad::Timeline(tc) => (
                1,
                format!("{}~{}", tc.timeline.spec_label(), tc.policy.label()),
            ),
            ScenarioLoad::FlexGrid(fc) => (
                2,
                format!("{}~{}", fc.timeline.spec_label(), fc.policy.label()),
            ),
        }
    }
}

/// One point on the temporal load axis: a timeline and the policy it runs
/// under. Policies are *excluded* from the scenario seed, so every policy
/// is evaluated against the identical epoch-by-epoch demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineCase {
    /// The phased demand schedule.
    pub timeline: DemandTimeline,
    /// The wavelength-reallocation policy.
    pub policy: ReallocationPolicy,
}

/// One point on the flex-grid load axis: a timeline and the spectrum policy
/// it runs under. Like [`TimelineCase`] policies, spectrum policies are
/// *excluded* from the scenario seed — every policy (and the wavelength
/// layer itself) is graded against the identical epoch-by-epoch demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlexGridCase {
    /// The phased demand schedule.
    pub timeline: DemandTimeline,
    /// The spectrum admission/defragmentation policy.
    pub policy: SpectrumPolicy,
}

/// Flex-grid-specific per-row metrics carried by [`ScenarioResult`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlexGridRowMetrics {
    /// Blocked requests / non-trivial requests across the timeline.
    pub blocking_probability: f64,
    /// Mean over epochs of the per-link external fragmentation index.
    pub fragmentation_index: f64,
    /// Mean over epochs of frequency slots booked across all links.
    pub slots_in_use: f64,
    /// Number of epochs that triggered a full spectrum repack.
    pub defrag_events: f64,
}

/// One expanded grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Position in grid-expansion order.
    pub index: usize,
    /// Rack fabric configuration (wavelength rate already FEC-derated).
    pub fabric: RackFabricConfig,
    /// FEC pipeline applied to the wavelength rate.
    pub fec: FecConfig,
    /// Offered load: a static pattern or a demand timeline with its policy.
    pub load: ScenarioLoad,
    /// One-way direct fabric latency (ns).
    pub direct_latency_ns: f64,
    /// Energy-accounting mode, `None` when the grid's energy axis is unset.
    /// Excluded from the scenario seed: both modes see identical demand.
    pub energy_mode: Option<EnergyMode>,
    /// Replicate number within the grid point.
    pub replicate: u32,
    /// Deterministic seed derived from the traffic-defining parameters
    /// (load, rack size, replicate) — shared across the fabric, DWDM,
    /// FEC, latency, and reallocation-policy axes so those sweeps compare
    /// under identical load.
    pub seed: u64,
}

impl Scenario {
    /// Short human-readable label covering every grid axis, so rows stay
    /// distinguishable whichever axes a grid varies. (Two FEC configs that
    /// differ only in fields other than `bandwidth_overhead` execute
    /// identically and share a label.)
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}-n{}-f{}w{}g{}-{}-l{}-r{}",
            fabric_kind_label(self.fabric.kind),
            self.fabric.mcm_count,
            self.fabric.fibers_per_mcm,
            self.fabric.wavelengths_per_fiber,
            self.fabric.gbps_per_wavelength,
            self.load.label(),
            self.direct_latency_ns,
            self.replicate
        );
        if let Some(mode) = self.energy_mode {
            label.push('-');
            label.push_str(mode.label());
        }
        label
    }

    /// The scenario's input parameters as display pairs for report rows.
    pub fn params(&self) -> Vec<(String, String)> {
        let mut params = vec![
            ("fabric".into(), fabric_kind_label(self.fabric.kind).into()),
            ("mcms".into(), self.fabric.mcm_count.to_string()),
            ("fibers".into(), self.fabric.fibers_per_mcm.to_string()),
            (
                "wavelengths".into(),
                self.fabric.wavelengths_per_fiber.to_string(),
            ),
            (
                "gbps_per_wavelength".into(),
                format!("{}", self.fabric.gbps_per_wavelength),
            ),
            (
                "fec_overhead".into(),
                format!("{}", self.fec.bandwidth_overhead),
            ),
        ];
        match &self.load {
            ScenarioLoad::Pattern(p) => params.push(("pattern".into(), p.label())),
            ScenarioLoad::Timeline(tc) => {
                params.push(("timeline".into(), tc.timeline.name.clone()));
                params.push(("policy".into(), tc.policy.label()));
                params.push(("epochs".into(), tc.timeline.total_epochs().to_string()));
            }
            ScenarioLoad::FlexGrid(fc) => {
                params.push(("timeline".into(), fc.timeline.name.clone()));
                params.push(("spectrum".into(), fc.policy.label()));
                params.push(("epochs".into(), fc.timeline.total_epochs().to_string()));
            }
        }
        if let Some(mode) = self.energy_mode {
            params.push(("energy".into(), mode.label().into()));
        }
        params.extend([
            ("latency_ns".into(), format!("{}", self.direct_latency_ns)),
            ("replicate".into(), self.replicate.to_string()),
            ("seed".into(), self.seed.to_string()),
        ]);
        params
    }
}

/// Short stable label for a fabric construction.
pub fn fabric_kind_label(kind: FabricKind) -> &'static str {
    match kind {
        FabricKind::ParallelAwgrs => "awgr",
        FabricKind::WaveSelective => "wave",
        FabricKind::Spatial => "spatial",
    }
}

/// Result of one executed scenario (the flow-level aggregates of
/// [`fabric::FlowSimReport`] without the per-flow allocations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario that produced this result.
    pub scenario: Scenario,
    /// Number of flows in the demand matrix.
    pub flows: usize,
    /// Total offered demand (Gbps).
    pub offered_gbps: f64,
    /// Total satisfied demand (Gbps).
    pub satisfied_gbps: f64,
    /// Overall throughput satisfaction in `[0, 1]`.
    pub satisfaction: f64,
    /// Fraction of flows fully served by direct wavelengths.
    pub direct_only_fraction: f64,
    /// Fraction of flows that needed indirect routing.
    pub indirect_fraction: f64,
    /// Fraction of flows with unmet demand.
    pub unsatisfied_fraction: f64,
    /// Demand-weighted mean latency (ns).
    pub mean_latency_ns: f64,
    /// Number of epochs executed (1 for static pattern scenarios).
    pub epochs: usize,
    /// Wavelength reconfigurations performed after the initial assignment
    /// (always 0 for static pattern scenarios).
    pub reconfigurations: usize,
    /// Energy accounting, present iff the scenario carries an energy mode.
    pub energy: Option<EnergyStats>,
    /// Flex-grid spectrum metrics, present iff the load is a
    /// [`ScenarioLoad::FlexGrid`].
    pub flexgrid: Option<FlexGridRowMetrics>,
}

impl ScenarioResult {
    /// Convert to the unified report-row schema. Temporal scenarios gain
    /// `epochs` and `reconfigurations` metrics; static pattern rows keep
    /// the original metric set.
    pub fn to_row(&self) -> SweepRow {
        let mut metrics = vec![
            ("flows".to_string(), self.flows as f64),
            ("offered_gbps".to_string(), self.offered_gbps),
            ("satisfied_gbps".to_string(), self.satisfied_gbps),
            ("satisfaction".to_string(), self.satisfaction),
            (
                "direct_only_fraction".to_string(),
                self.direct_only_fraction,
            ),
            ("indirect_fraction".to_string(), self.indirect_fraction),
            (
                "unsatisfied_fraction".to_string(),
                self.unsatisfied_fraction,
            ),
            ("mean_latency_ns".to_string(), self.mean_latency_ns),
        ];
        if matches!(self.scenario.load, ScenarioLoad::Timeline(_)) {
            metrics.push(("epochs".to_string(), self.epochs as f64));
            metrics.push(("reconfigurations".to_string(), self.reconfigurations as f64));
        }
        if let Some(fg) = &self.flexgrid {
            metrics.push(("epochs".to_string(), self.epochs as f64));
            metrics.push(("blocking_probability".to_string(), fg.blocking_probability));
            metrics.push(("fragmentation_index".to_string(), fg.fragmentation_index));
            metrics.push(("slots_in_use".to_string(), fg.slots_in_use));
            metrics.push(("defrag_events".to_string(), fg.defrag_events));
        }
        if let Some(e) = &self.energy {
            metrics.push(("energy_j".to_string(), e.total_joules()));
            metrics.push(("mean_power_w".to_string(), e.watts()));
            metrics.push(("pj_per_bit".to_string(), e.pj_per_bit()));
            metrics.push((
                "photonic_compute_ratio".to_string(),
                e.photonic_compute_ratio(),
            ));
            metrics.push((
                "reconfiguration_energy_j".to_string(),
                e.reconfiguration_energy_j,
            ));
        }
        SweepRow {
            label: self.scenario.label(),
            params: self.scenario.params(),
            metrics,
        }
    }
}

/// Derive the per-scenario seed by hashing (FNV-1a) into the grid's base
/// seed exactly the parameters that define the offered traffic: the
/// pattern (or the timeline's full phase spec), the rack size it expands
/// over, and the replicate number.
///
/// Deliberately excluded: fabric kind, fibers, wavelengths, data rate, FEC,
/// latency, and — in temporal mode — the reallocation policy. Scenarios
/// that differ only along those axes therefore offer the *same* demand
/// (matrix or epoch sequence), so an axis sweep compares fabrics and
/// policies under identical load instead of attributing traffic-sampling
/// noise to the swept axis. The hash is position-independent: extending an
/// axis never changes the seeds of existing scenarios.
pub(super) fn scenario_seed(base: u64, mcm_count: u32, load: &ScenarioLoad, replicate: u32) -> u64 {
    let mut h = Fnv1a::new(base);
    h.write_u64(mcm_count as u64);
    match load {
        ScenarioLoad::Pattern(pattern) => {
            h.write_str(&pattern.label());
            h.write_u64(pattern.demand_gbps().to_bits());
        }
        ScenarioLoad::Timeline(tc) => {
            h.write_str("timeline:");
            h.write_str(&tc.timeline.spec_label());
        }
        // Flex-grid cases hash exactly like wavelength-timeline cases (the
        // spectrum policy is excluded, like the reallocation policy), so the
        // two layers — and every policy within each — share each timeline's
        // epoch-by-epoch demand.
        ScenarioLoad::FlexGrid(fc) => {
            h.write_str("timeline:");
            h.write_str(&fc.timeline.spec_label());
        }
    }
    h.write_u64(replicate as u64);
    h.finish()
}

struct Fnv1a(u64);

impl Fnv1a {
    fn new(base: u64) -> Self {
        let mut h = Fnv1a(0xCBF2_9CE4_8422_2325);
        h.write_u64(base);
        h
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_str(&mut self, s: &str) {
        for byte in s.as_bytes() {
            self.0 ^= *byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
