//! The declarative grid: axis builders and the lazy, O(1)-indexed
//! [`ScenarioIter`] expansion.

use fabric::{FabricKind, RackFabricConfig, ReallocationPolicy, SpectrumPolicy};
use photonics::fec::FecConfig;
use serde::{Deserialize, Serialize};
use workloads::{DemandTimeline, TrafficPattern};

use crate::energy::{EnergyConfig, EnergyMode};
use crate::sweep::scenario::{scenario_seed, FlexGridCase, Scenario, ScenarioLoad, TimelineCase};

/// A declarative cartesian scenario grid.
///
/// Axes default to the paper's design point (350-MCM AWGR rack, 32 fibers of
/// 64 x 25 Gbps wavelengths, CXL-lightweight FEC, a uniform 4-flows-per-MCM
/// pattern at 100 Gbps, 35 ns direct latency, one replicate), so a grid
/// definition only states what it varies. An axis set to an empty list
/// expands to zero scenarios.
///
/// # Example
///
/// ```
/// use disagg_core::sweep::SweepGrid;
/// use fabric::FabricKind;
/// use workloads::TrafficPattern;
///
/// let grid = SweepGrid::named("example")
///     .mcm_counts([16, 32])
///     .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
///     .patterns([TrafficPattern::Permutation { demand_gbps: 200.0 }])
///     .direct_latencies_ns([35.0]);
/// assert_eq!(grid.scenario_count(), 4);
///
/// let report = grid.run();
/// assert_eq!(report.rows.len(), 4);
/// // Same grid, same bytes — serial or parallel.
/// assert_eq!(report.to_json(), grid.run_serial().to_json());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Report name.
    pub name: String,
    /// Fabric constructions to instantiate.
    pub fabric_kinds: Vec<FabricKind>,
    /// Rack sizes (MCMs per rack).
    pub mcm_counts: Vec<u32>,
    /// Escape fibers per MCM.
    pub fibers_per_mcm: Vec<u32>,
    /// DWDM wavelengths per fiber.
    pub wavelengths_per_fiber: Vec<u32>,
    /// Raw data rate per wavelength in Gbps (before FEC overhead).
    pub gbps_per_wavelength: Vec<f64>,
    /// FEC pipelines; each derates the effective wavelength rate by its
    /// bandwidth overhead. (Latency budgets in `direct_latencies_ns` are
    /// totals — the paper's 35 ns point already includes ~2.5 ns of FEC.)
    pub fec_configs: Vec<FecConfig>,
    /// Traffic patterns to offer. Ignored when `timelines` is non-empty
    /// (the grid then sweeps the temporal axis instead).
    pub patterns: Vec<TrafficPattern>,
    /// Demand timelines to offer. When non-empty, the load axis becomes the
    /// cartesian product `timelines x realloc_policies` and the `patterns`
    /// axis is ignored.
    pub timelines: Vec<DemandTimeline>,
    /// Wavelength-reallocation policies swept against each timeline. Only
    /// meaningful when `timelines` is non-empty and `spectrum_policies` is
    /// empty.
    pub realloc_policies: Vec<ReallocationPolicy>,
    /// Flex-grid spectrum policies. When non-empty (and `timelines` is too),
    /// the grid switches to the elastic-optical layer: the load axis becomes
    /// `timelines x spectrum_policies` and `realloc_policies` is ignored.
    pub spectrum_policies: Vec<SpectrumPolicy>,
    /// One-way direct fabric latencies in nanoseconds.
    pub direct_latencies_ns: Vec<f64>,
    /// Energy-accounting modes to sweep (always-on vs utilization-scaled
    /// transceivers). Empty (the default) disables energy accounting
    /// entirely: no extra scenarios, no energy metrics, and no `energy`
    /// block in the report.
    pub energy_modes: Vec<EnergyMode>,
    /// Knobs of the energy layer shared by every scenario (pJ/bit, per-MCM
    /// switch and compute power floors, epoch duration, per-event
    /// reconfiguration energy). Only read when `energy_modes` is non-empty.
    pub energy_config: EnergyConfig,
    /// Replicates per grid point (each gets an independent derived seed).
    pub replicates: u32,
    /// Base seed all per-scenario seeds are derived from.
    pub base_seed: u64,
    /// Additional latency per indirect hop in nanoseconds.
    pub indirect_hop_latency_ns: f64,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid {
            name: "sweep".to_string(),
            fabric_kinds: vec![FabricKind::ParallelAwgrs],
            mcm_counts: vec![350],
            fibers_per_mcm: vec![32],
            wavelengths_per_fiber: vec![64],
            gbps_per_wavelength: vec![25.0],
            fec_configs: vec![FecConfig::cxl_lightweight()],
            patterns: vec![TrafficPattern::Uniform {
                flows_per_mcm: 4,
                demand_gbps: 100.0,
            }],
            timelines: Vec::new(),
            realloc_policies: vec![ReallocationPolicy::GreedyResteer],
            spectrum_policies: Vec::new(),
            direct_latencies_ns: vec![35.0],
            energy_modes: Vec::new(),
            energy_config: EnergyConfig::default(),
            replicates: 1,
            base_seed: 0xD15A66,
            indirect_hop_latency_ns: 8.0,
        }
    }
}

impl SweepGrid {
    /// The default (paper design point) grid under a given report name.
    pub fn named(name: impl Into<String>) -> Self {
        SweepGrid {
            name: name.into(),
            ..SweepGrid::default()
        }
    }

    /// Set the fabric-construction axis.
    pub fn fabric_kinds(mut self, kinds: impl IntoIterator<Item = FabricKind>) -> Self {
        self.fabric_kinds = kinds.into_iter().collect();
        self
    }

    /// Set the rack-size axis.
    pub fn mcm_counts(mut self, counts: impl IntoIterator<Item = u32>) -> Self {
        self.mcm_counts = counts.into_iter().collect();
        self
    }

    /// Set the fibers-per-MCM axis.
    pub fn fibers_per_mcm(mut self, fibers: impl IntoIterator<Item = u32>) -> Self {
        self.fibers_per_mcm = fibers.into_iter().collect();
        self
    }

    /// Set the DWDM wavelengths-per-fiber axis.
    pub fn wavelengths_per_fiber(mut self, wavelengths: impl IntoIterator<Item = u32>) -> Self {
        self.wavelengths_per_fiber = wavelengths.into_iter().collect();
        self
    }

    /// Set the per-wavelength data-rate axis (Gbps).
    pub fn gbps_per_wavelength(mut self, gbps: impl IntoIterator<Item = f64>) -> Self {
        self.gbps_per_wavelength = gbps.into_iter().collect();
        self
    }

    /// Set the FEC-configuration axis.
    pub fn fec_configs(mut self, fecs: impl IntoIterator<Item = FecConfig>) -> Self {
        self.fec_configs = fecs.into_iter().collect();
        self
    }

    /// Set the traffic-pattern axis.
    pub fn patterns(mut self, patterns: impl IntoIterator<Item = TrafficPattern>) -> Self {
        self.patterns = patterns.into_iter().collect();
        self
    }

    /// Set the demand-timeline axis. A non-empty timeline axis switches the
    /// grid into temporal mode: the load axis becomes
    /// `timelines x realloc_policies` and `patterns` is ignored.
    pub fn timelines(mut self, timelines: impl IntoIterator<Item = DemandTimeline>) -> Self {
        self.timelines = timelines.into_iter().collect();
        self
    }

    /// Set the wavelength-reallocation-policy axis (temporal mode only).
    pub fn realloc_policies(
        mut self,
        policies: impl IntoIterator<Item = ReallocationPolicy>,
    ) -> Self {
        self.realloc_policies = policies.into_iter().collect();
        self
    }

    /// Set the flex-grid spectrum-policy axis. With a non-empty timeline
    /// axis this switches the grid onto the elastic-optical spectrum layer:
    /// the load axis becomes `timelines x spectrum_policies`, rows gain
    /// blocking-probability / fragmentation / slots-in-use metrics, and
    /// `realloc_policies` is ignored.
    ///
    /// # Example
    ///
    /// ```
    /// use disagg_core::sweep::SweepGrid;
    /// use fabric::SpectrumPolicy;
    /// use workloads::DemandTimeline;
    ///
    /// let report = SweepGrid::named("fg")
    ///     .mcm_counts([16])
    ///     .timelines([DemandTimeline::elastic_churn(300.0, 2)])
    ///     .spectrum_policies([SpectrumPolicy::parse("firstfit").unwrap()])
    ///     .run();
    /// assert_eq!(report.rows.len(), 1);
    /// assert!(report.rows[0].metric("blocking_probability").is_some());
    /// ```
    pub fn spectrum_policies(mut self, policies: impl IntoIterator<Item = SpectrumPolicy>) -> Self {
        self.spectrum_policies = policies.into_iter().collect();
        self
    }

    /// Set the direct-latency axis (ns).
    pub fn direct_latencies_ns(mut self, latencies: impl IntoIterator<Item = f64>) -> Self {
        self.direct_latencies_ns = latencies.into_iter().collect();
        self
    }

    /// Set the energy-accounting axis. Energy modes are excluded from the
    /// per-scenario seed (they never change the offered traffic), so both
    /// modes of a grid point are accounted against the identical demand.
    ///
    /// # Example
    ///
    /// ```
    /// use disagg_core::energy::EnergyMode;
    /// use disagg_core::sweep::SweepGrid;
    ///
    /// let report = SweepGrid::named("e")
    ///     .mcm_counts([16])
    ///     .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
    ///     .run();
    /// assert_eq!(report.rows.len(), 2);
    /// assert_eq!(report.energy.len(), 2);
    /// // Always-on transceivers never draw less than utilization-scaled.
    /// assert!(
    ///     report.rows[0].metric("energy_j").unwrap()
    ///         >= report.rows[1].metric("energy_j").unwrap()
    /// );
    /// ```
    pub fn energy_modes(mut self, modes: impl IntoIterator<Item = EnergyMode>) -> Self {
        self.energy_modes = modes.into_iter().collect();
        self
    }

    /// Override the energy layer's shared knobs (pJ/bit, floors, epoch
    /// duration, reconfiguration energy).
    pub fn energy_config(mut self, config: EnergyConfig) -> Self {
        self.energy_config = config;
        self
    }

    /// Set the number of replicates per grid point.
    pub fn replicates(mut self, replicates: u32) -> Self {
        self.replicates = replicates.max(1);
        self
    }

    /// Set the base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// The load axis the grid sweeps: the traffic patterns, or — in
    /// temporal mode — every timeline under every reallocation policy (or,
    /// when the spectrum axis is set, every flex-grid spectrum policy).
    pub fn loads(&self) -> Vec<ScenarioLoad> {
        if self.timelines.is_empty() {
            self.patterns
                .iter()
                .map(|&p| ScenarioLoad::Pattern(p))
                .collect()
        } else if !self.spectrum_policies.is_empty() {
            self.timelines
                .iter()
                .flat_map(|t| {
                    self.spectrum_policies.iter().map(move |&policy| {
                        ScenarioLoad::FlexGrid(FlexGridCase {
                            timeline: t.clone(),
                            policy,
                        })
                    })
                })
                .collect()
        } else {
            self.timelines
                .iter()
                .flat_map(|t| {
                    self.realloc_policies.iter().map(move |&policy| {
                        ScenarioLoad::Timeline(TimelineCase {
                            timeline: t.clone(),
                            policy,
                        })
                    })
                })
                .collect()
        }
    }

    /// Number of scenarios the grid expands to (the product of all axis
    /// lengths times the replicate count).
    pub fn scenario_count(&self) -> usize {
        let loads = if self.timelines.is_empty() {
            self.patterns.len()
        } else if !self.spectrum_policies.is_empty() {
            self.timelines.len() * self.spectrum_policies.len()
        } else {
            self.timelines.len() * self.realloc_policies.len()
        };
        self.fabric_kinds.len()
            * self.mcm_counts.len()
            * self.fibers_per_mcm.len()
            * self.wavelengths_per_fiber.len()
            * self.gbps_per_wavelength.len()
            * self.fec_configs.len()
            * loads
            * self.direct_latencies_ns.len()
            * self.energy_modes.len().max(1)
            * self.replicates.max(1) as usize
    }

    /// The energy axis as expanded: `[None]` (accounting off) when no modes
    /// are set, otherwise one `Some` per configured mode.
    pub(super) fn energy_axis(&self) -> Vec<Option<EnergyMode>> {
        if self.energy_modes.is_empty() {
            vec![None]
        } else {
            self.energy_modes.iter().copied().map(Some).collect()
        }
    }

    /// Lazily iterate the grid's scenarios in axis-declaration order
    /// (fabric kind outermost, replicate innermost) without materializing
    /// them: each scenario is decoded O(1) from its cartesian-product row
    /// index. This is the streaming substrate `run` executes on — a
    /// multi-million-row grid never exists as a `Vec<Scenario>`.
    ///
    /// ```
    /// use disagg_core::sweep::SweepGrid;
    ///
    /// let grid = SweepGrid::named("lazy").mcm_counts([16, 24]).replicates(500_000);
    /// let scenarios = grid.scenarios();
    /// assert_eq!(scenarios.len(), 1_000_000);
    /// // Random access decodes without expanding the million rows.
    /// assert_eq!(scenarios.get(999_999).unwrap().replicate, 499_999);
    /// ```
    pub fn scenarios(&self) -> ScenarioIter<'_> {
        ScenarioIter {
            len: self.scenario_count(),
            loads: self.loads(),
            energy_axis: self.energy_axis(),
            grid: self,
            next: 0,
        }
    }

    /// Expand the grid into concrete scenarios, in axis-declaration order
    /// (fabric kind outermost, replicate innermost).
    ///
    /// This materializes the whole grid; prefer [`SweepGrid::scenarios`]
    /// (or the streaming runners built on it) for large grids.
    pub fn expand(&self) -> Vec<Scenario> {
        self.scenarios().collect()
    }
}

/// Lazy, indexed iterator over a grid's scenarios (from
/// [`SweepGrid::scenarios`]).
///
/// Every scenario is decoded on demand from its row index by peeling
/// mixed-radix digits off the cartesian product — replicate innermost,
/// fabric kind outermost — so both sequential iteration and random access
/// ([`ScenarioIter::get`]) are O(1) per scenario in the grid size. Only the
/// small load axis (`patterns` or `timelines x policies`) is materialized
/// up front.
#[derive(Debug, Clone)]
pub struct ScenarioIter<'g> {
    grid: &'g SweepGrid,
    loads: Vec<ScenarioLoad>,
    energy_axis: Vec<Option<EnergyMode>>,
    next: usize,
    len: usize,
}

impl ScenarioIter<'_> {
    /// Decode the scenario at `index` in grid-expansion order, without
    /// advancing the iterator. `None` past the end.
    pub fn get(&self, index: usize) -> Option<Scenario> {
        (index < self.len).then(|| self.decode(index))
    }

    fn decode(&self, index: usize) -> Scenario {
        let g = self.grid;
        let mut rem = index;
        let mut digit = |len: usize| {
            let d = rem % len;
            rem /= len;
            d
        };
        // Innermost (fastest-varying) axis first: the mirror image of the
        // nested expansion loops this decoder replaced.
        let replicate = digit(g.replicates.max(1) as usize) as u32;
        let energy_mode = self.energy_axis[digit(self.energy_axis.len())];
        let latency = g.direct_latencies_ns[digit(g.direct_latencies_ns.len())];
        let load = &self.loads[digit(self.loads.len())];
        let fec = g.fec_configs[digit(g.fec_configs.len())];
        let gbps = g.gbps_per_wavelength[digit(g.gbps_per_wavelength.len())];
        let wavelengths = g.wavelengths_per_fiber[digit(g.wavelengths_per_fiber.len())];
        let fibers = g.fibers_per_mcm[digit(g.fibers_per_mcm.len())];
        let mcm_count = g.mcm_counts[digit(g.mcm_counts.len())];
        let kind = g.fabric_kinds[digit(g.fabric_kinds.len())];
        debug_assert_eq!(rem, 0, "index {index} exceeds the grid");
        Scenario {
            index,
            fabric: RackFabricConfig {
                mcm_count,
                fibers_per_mcm: fibers,
                wavelengths_per_fiber: wavelengths,
                gbps_per_wavelength: gbps * (1.0 - fec.bandwidth_overhead),
                kind,
            },
            fec,
            load: load.clone(),
            direct_latency_ns: latency,
            energy_mode,
            replicate,
            seed: scenario_seed(g.base_seed, mcm_count, load, replicate),
        }
    }
}

impl Iterator for ScenarioIter<'_> {
    type Item = Scenario;

    fn next(&mut self) -> Option<Scenario> {
        let scenario = self.get(self.next)?;
        self.next += 1;
        Some(scenario)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.len - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ScenarioIter<'_> {}
