//! JSON serialization of [`SweepGrid`]: the deterministic writer, the
//! parser (through the vendored `serde::json` deserializer), and the
//! content hash the [`jobs`](crate::jobs) layer keys its shard cache on.
//!
//! The writer emits every axis in a fixed field order with the same
//! shortest-round-trip number formatting as
//! [`SweepReport::to_json`](crate::report::SweepReport::to_json), so
//! `to_json` → `from_json` → `to_json` reproduces the input bytes and the
//! grid hash is stable across submissions. The parser is *defaulting*:
//! absent fields keep their [`SweepGrid::default`] value, so a job spec
//! only states what it varies — exactly like the builder API — while
//! unknown fields are rejected (a typoed axis must not silently expand to
//! the default grid).

use fabric::{FabricKind, ReallocationPolicy, SpectrumPolicy};
use photonics::fec::FecConfig;
use workloads::timeline::Phase;
use workloads::{DemandTimeline, TrafficPattern};

use crate::codec::{self, DecodeError};
use crate::energy::{EnergyConfig, EnergyMode};
use crate::report::{json_number, json_string};
use crate::sweep::grid::SweepGrid;
use crate::sweep::scenario::fabric_kind_label;
use serde::json::Value;

impl SweepGrid {
    /// Serialize the grid to a single-line JSON string: every axis, in
    /// fixed declaration order, with shortest-round-trip float formatting.
    /// Deterministic — equal grids produce identical bytes, which is what
    /// [`SweepGrid::grid_hash`] and the `sweepd` shard cache rely on.
    ///
    /// ```
    /// use disagg_core::sweep::SweepGrid;
    ///
    /// let grid = SweepGrid::named("g").mcm_counts([16, 24]).replicates(3);
    /// let json = grid.to_json();
    /// assert!(json.contains("\"mcm_counts\":[16,24]"));
    /// assert_eq!(SweepGrid::from_json(&json).unwrap(), grid);
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"name\":");
        json_string(&mut out, &self.name);
        out.push_str(",\"fabric_kinds\":[");
        for (i, &kind) in self.fabric_kinds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, fabric_kind_label(kind));
        }
        out.push_str("],");
        write_u32_axis(&mut out, "mcm_counts", &self.mcm_counts);
        write_u32_axis(&mut out, "fibers_per_mcm", &self.fibers_per_mcm);
        write_u32_axis(
            &mut out,
            "wavelengths_per_fiber",
            &self.wavelengths_per_fiber,
        );
        write_f64_axis(&mut out, "gbps_per_wavelength", &self.gbps_per_wavelength);
        out.push_str("\"fec_configs\":[");
        for (i, fec) in self.fec_configs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_fec(&mut out, fec);
        }
        out.push_str("],\"patterns\":[");
        for (i, pattern) in self.patterns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_pattern(&mut out, pattern);
        }
        out.push_str("],\"timelines\":[");
        for (i, timeline) in self.timelines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_timeline(&mut out, timeline);
        }
        out.push_str("],\"realloc_policies\":[");
        for (i, policy) in self.realloc_policies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, &policy.label());
        }
        out.push_str("],\"spectrum_policies\":[");
        for (i, policy) in self.spectrum_policies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, &policy.label());
        }
        out.push_str("],");
        write_f64_axis(&mut out, "direct_latencies_ns", &self.direct_latencies_ns);
        out.push_str("\"energy_modes\":[");
        for (i, mode) in self.energy_modes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, mode.label());
        }
        out.push_str("],\"energy_config\":{");
        for (i, (k, v)) in [
            (
                "transceiver_pj_per_bit",
                self.energy_config.transceiver_pj_per_bit,
            ),
            (
                "switch_power_per_mcm_w",
                self.energy_config.switch_power_per_mcm_w,
            ),
            (
                "compute_power_per_mcm_w",
                self.energy_config.compute_power_per_mcm_w,
            ),
            ("epoch_duration_s", self.energy_config.epoch_duration_s),
            (
                "reconfiguration_energy_j",
                self.energy_config.reconfiguration_energy_j,
            ),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, k);
            out.push(':');
            json_number(&mut out, *v);
        }
        out.push_str("},\"replicates\":");
        out.push_str(&self.replicates.to_string());
        out.push_str(",\"base_seed\":");
        // u64 as an integer literal: the raw-text Number on the parse side
        // preserves seeds beyond 2^53 exactly.
        out.push_str(&self.base_seed.to_string());
        out.push_str(",\"indirect_hop_latency_ns\":");
        json_number(&mut out, self.indirect_hop_latency_ns);
        out.push('}');
        out
    }

    /// Parse a grid from JSON. Fields absent from the document keep their
    /// [`SweepGrid::default`] value (so a job spec states only what it
    /// varies); unknown fields are errors.
    ///
    /// ```
    /// use disagg_core::sweep::SweepGrid;
    ///
    /// let grid = SweepGrid::from_json(r#"{"mcm_counts":[16],"replicates":2}"#).unwrap();
    /// assert_eq!(grid.mcm_counts, vec![16]);
    /// assert_eq!(grid.replicates, 2);
    /// assert_eq!(grid.name, "sweep"); // defaulted
    /// assert!(SweepGrid::from_json(r#"{"mcms":[16]}"#).is_err()); // typo caught
    /// ```
    pub fn from_json(text: &str) -> Result<Self, DecodeError> {
        let doc = serde::json::parse(text).map_err(|e| format!("grid: {e}"))?;
        Self::from_json_value(&doc)
    }

    /// [`SweepGrid::from_json`] over an already-parsed [`Value`] (the
    /// `jobs` layer parses the enclosing job document once).
    pub(crate) fn from_json_value(doc: &Value) -> Result<Self, DecodeError> {
        let mut grid = SweepGrid::default();
        for (key, value) in codec::as_object(doc, "grid")? {
            let ctx = format!("grid.{key}");
            match key.as_str() {
                "name" => grid.name = codec::as_str(value, &ctx)?.to_string(),
                "fabric_kinds" => {
                    grid.fabric_kinds = decode_each(value, &ctx, |v, c| {
                        let label = codec::as_str(v, c)?;
                        parse_fabric_kind(label).ok_or_else(|| {
                            format!("{c}: unknown fabric kind {label:?} (awgr|wave|spatial)")
                        })
                    })?
                }
                "mcm_counts" => grid.mcm_counts = decode_each(value, &ctx, codec::as_u32)?,
                "fibers_per_mcm" => grid.fibers_per_mcm = decode_each(value, &ctx, codec::as_u32)?,
                "wavelengths_per_fiber" => {
                    grid.wavelengths_per_fiber = decode_each(value, &ctx, codec::as_u32)?
                }
                "gbps_per_wavelength" => {
                    grid.gbps_per_wavelength = decode_each(value, &ctx, codec::as_f64)?
                }
                "fec_configs" => grid.fec_configs = decode_each(value, &ctx, decode_fec)?,
                "patterns" => grid.patterns = decode_each(value, &ctx, decode_pattern)?,
                "timelines" => grid.timelines = decode_each(value, &ctx, decode_timeline)?,
                "realloc_policies" => {
                    grid.realloc_policies = decode_each(value, &ctx, |v, c| {
                        let label = codec::as_str(v, c)?;
                        parse_realloc_policy(label).ok_or_else(|| {
                            format!("{c}: unknown policy {label:?} (static|greedy|hystX)")
                        })
                    })?
                }
                "spectrum_policies" => {
                    grid.spectrum_policies = decode_each(value, &ctx, |v, c| {
                        let label = codec::as_str(v, c)?;
                        SpectrumPolicy::parse(label)
                            .ok_or_else(|| format!("{c}: unknown spectrum policy {label:?}"))
                    })?
                }
                "direct_latencies_ns" => {
                    grid.direct_latencies_ns = decode_each(value, &ctx, codec::as_f64)?
                }
                "energy_modes" => {
                    grid.energy_modes = decode_each(value, &ctx, |v, c| {
                        let label = codec::as_str(v, c)?;
                        EnergyMode::parse(label)
                            .ok_or_else(|| format!("{c}: unknown energy mode {label:?}"))
                    })?
                }
                "energy_config" => grid.energy_config = decode_energy_config(value, &ctx)?,
                "replicates" => grid.replicates = codec::as_u32(value, &ctx)?.max(1),
                "base_seed" => grid.base_seed = codec::as_u64(value, &ctx)?,
                "indirect_hop_latency_ns" => {
                    grid.indirect_hop_latency_ns = codec::as_f64(value, &ctx)?
                }
                _ => return Err(format!("grid: unknown field {key:?}")),
            }
        }
        Ok(grid)
    }

    /// Content hash of the grid (FNV-1a over the canonical
    /// [`SweepGrid::to_json`] bytes, as 16 hex digits): equal grids — no
    /// matter how they were built or spelled in a job file — share a hash,
    /// which is the key of the `sweepd` on-disk shard cache.
    ///
    /// ```
    /// use disagg_core::sweep::SweepGrid;
    ///
    /// let a = SweepGrid::named("g").mcm_counts([16, 24]);
    /// let b = SweepGrid::from_json(&a.to_json()).unwrap();
    /// assert_eq!(a.grid_hash(), b.grid_hash());
    /// assert_ne!(a.grid_hash(), a.clone().replicates(2).grid_hash());
    /// ```
    pub fn grid_hash(&self) -> String {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in self.to_json().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("{hash:016x}")
    }
}

fn write_u32_axis(out: &mut String, key: &str, values: &[u32]) {
    json_string(out, key);
    out.push_str(":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push_str("],");
}

fn write_f64_axis(out: &mut String, key: &str, values: &[f64]) {
    json_string(out, key);
    out.push_str(":[");
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_number(out, v);
    }
    out.push_str("],");
}

fn write_fec(out: &mut String, fec: &FecConfig) {
    out.push_str(&format!(
        "{{\"flit_bits\":{},\"correctable_burst_bits\":{},\"crc_group_flits\":{},",
        fec.flit_bits, fec.correctable_burst_bits, fec.crc_group_flits
    ));
    out.push_str("\"crc_escape_probability\":");
    json_number(out, fec.crc_escape_probability);
    out.push_str(",\"latency_ns\":");
    json_number(out, fec.latency_ns);
    out.push_str(",\"bandwidth_overhead\":");
    json_number(out, fec.bandwidth_overhead);
    out.push('}');
}

fn write_pattern(out: &mut String, pattern: &TrafficPattern) {
    let (kind, extra): (&str, Option<(&str, u32)>) = match pattern {
        TrafficPattern::Uniform { flows_per_mcm, .. } => {
            ("uniform", Some(("flows_per_mcm", *flows_per_mcm)))
        }
        TrafficPattern::Permutation { .. } => ("permutation", None),
        TrafficPattern::HotSpot { hot_mcms, .. } => ("hotspot", Some(("hot_mcms", *hot_mcms))),
        TrafficPattern::NearestNeighbor { neighbors, .. } => {
            ("neighbor", Some(("neighbors", *neighbors)))
        }
        TrafficPattern::AllToAll { .. } => ("alltoall", None),
    };
    out.push_str("{\"kind\":");
    json_string(out, kind);
    if let Some((key, value)) = extra {
        out.push(',');
        json_string(out, key);
        out.push(':');
        out.push_str(&value.to_string());
    }
    out.push_str(",\"demand_gbps\":");
    json_number(out, pattern.demand_gbps());
    out.push('}');
}

fn write_timeline(out: &mut String, timeline: &DemandTimeline) {
    out.push_str("{\"name\":");
    json_string(out, &timeline.name);
    out.push_str(",\"phases\":[");
    for (i, phase) in timeline.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"pattern\":");
        write_pattern(out, &phase.pattern);
        out.push_str(&format!(",\"epochs\":{}", phase.epochs));
        out.push_str(",\"start_scale\":");
        json_number(out, phase.start_scale);
        out.push_str(",\"end_scale\":");
        json_number(out, phase.end_scale);
        out.push_str(&format!(",\"dst_rotation\":{}}}", phase.dst_rotation));
    }
    out.push_str("]}");
}

pub(crate) fn parse_fabric_kind(label: &str) -> Option<FabricKind> {
    match label {
        "awgr" => Some(FabricKind::ParallelAwgrs),
        "wave" => Some(FabricKind::WaveSelective),
        "spatial" => Some(FabricKind::Spatial),
        _ => None,
    }
}

fn parse_realloc_policy(label: &str) -> Option<ReallocationPolicy> {
    match label {
        "static" => Some(ReallocationPolicy::Static),
        "greedy" => Some(ReallocationPolicy::GreedyResteer),
        _ => {
            let min_satisfaction = label.strip_prefix("hyst")?.parse().ok()?;
            Some(ReallocationPolicy::Hysteresis { min_satisfaction })
        }
    }
}

fn decode_each<T>(
    value: &Value,
    ctx: &str,
    decode: impl Fn(&Value, &str) -> Result<T, DecodeError>,
) -> Result<Vec<T>, DecodeError> {
    codec::as_array(value, ctx)?
        .iter()
        .enumerate()
        .map(|(i, v)| decode(v, &format!("{ctx}[{i}]")))
        .collect()
}

fn decode_fec(value: &Value, ctx: &str) -> Result<FecConfig, DecodeError> {
    Ok(FecConfig {
        flit_bits: codec::u32_field(value, "flit_bits", ctx)?,
        correctable_burst_bits: codec::u32_field(value, "correctable_burst_bits", ctx)?,
        crc_group_flits: codec::u32_field(value, "crc_group_flits", ctx)?,
        crc_escape_probability: codec::f64_field(value, "crc_escape_probability", ctx)?,
        latency_ns: codec::f64_field(value, "latency_ns", ctx)?,
        bandwidth_overhead: codec::f64_field(value, "bandwidth_overhead", ctx)?,
    })
}

fn decode_pattern(value: &Value, ctx: &str) -> Result<TrafficPattern, DecodeError> {
    let kind = codec::str_field(value, "kind", ctx)?;
    let demand_gbps = codec::f64_field(value, "demand_gbps", ctx)?;
    Ok(match kind {
        "uniform" => TrafficPattern::Uniform {
            flows_per_mcm: codec::u32_field(value, "flows_per_mcm", ctx)?,
            demand_gbps,
        },
        "permutation" => TrafficPattern::Permutation { demand_gbps },
        "hotspot" => TrafficPattern::HotSpot {
            hot_mcms: codec::u32_field(value, "hot_mcms", ctx)?,
            demand_gbps,
        },
        "neighbor" => TrafficPattern::NearestNeighbor {
            neighbors: codec::u32_field(value, "neighbors", ctx)?,
            demand_gbps,
        },
        "alltoall" => TrafficPattern::AllToAll { demand_gbps },
        other => return Err(format!("{ctx}.kind: unknown pattern {other:?}")),
    })
}

fn decode_timeline(value: &Value, ctx: &str) -> Result<DemandTimeline, DecodeError> {
    let mut timeline = DemandTimeline::named(codec::str_field(value, "name", ctx)?);
    let phases = codec::as_array(codec::field(value, "phases", ctx)?, ctx)?;
    for (i, phase) in phases.iter().enumerate() {
        let ctx = format!("{ctx}.phases[{i}]");
        timeline.phases.push(Phase {
            pattern: decode_pattern(codec::field(phase, "pattern", &ctx)?, &ctx)?,
            epochs: codec::u32_field(phase, "epochs", &ctx)?,
            start_scale: codec::f64_field(phase, "start_scale", &ctx)?,
            end_scale: codec::f64_field(phase, "end_scale", &ctx)?,
            dst_rotation: codec::u32_field(phase, "dst_rotation", &ctx)?,
        });
    }
    Ok(timeline)
}

fn decode_energy_config(value: &Value, ctx: &str) -> Result<EnergyConfig, DecodeError> {
    Ok(EnergyConfig {
        transceiver_pj_per_bit: codec::f64_field(value, "transceiver_pj_per_bit", ctx)?,
        switch_power_per_mcm_w: codec::f64_field(value, "switch_power_per_mcm_w", ctx)?,
        compute_power_per_mcm_w: codec::f64_field(value, "compute_power_per_mcm_w", ctx)?,
        epoch_duration_s: codec::f64_field(value, "epoch_duration_s", ctx)?,
        reconfiguration_energy_j: codec::f64_field(value, "reconfiguration_energy_j", ctx)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::flexgrid::{AdmissionPolicy, DefragPolicy};

    /// A grid exercising every axis: all pattern kinds, a multi-phase
    /// timeline, every policy family, both energy modes, a >2^53 seed.
    fn kitchen_sink() -> SweepGrid {
        SweepGrid::named("kitchen \"sink\"")
            .fabric_kinds([
                FabricKind::ParallelAwgrs,
                FabricKind::WaveSelective,
                FabricKind::Spatial,
            ])
            .mcm_counts([16, 350])
            .fibers_per_mcm([8, 32])
            .wavelengths_per_fiber([64])
            .gbps_per_wavelength([25.0, 12.5])
            .fec_configs([FecConfig::cxl_lightweight(), FecConfig::disabled()])
            .patterns([
                TrafficPattern::Uniform {
                    flows_per_mcm: 4,
                    demand_gbps: 100.0,
                },
                TrafficPattern::Permutation { demand_gbps: 600.0 },
                TrafficPattern::HotSpot {
                    hot_mcms: 8,
                    demand_gbps: 500.0,
                },
                TrafficPattern::NearestNeighbor {
                    neighbors: 2,
                    demand_gbps: 50.0,
                },
                TrafficPattern::AllToAll { demand_gbps: 8.0 },
            ])
            .timelines([
                DemandTimeline::shifting_hotspot(8, 400.0, 4, 3, 8),
                DemandTimeline::elastic_churn(600.0, 2),
            ])
            .realloc_policies([
                ReallocationPolicy::Static,
                ReallocationPolicy::GreedyResteer,
                ReallocationPolicy::Hysteresis {
                    min_satisfaction: 0.9,
                },
            ])
            .spectrum_policies([
                SpectrumPolicy::default(),
                SpectrumPolicy {
                    admission: AdmissionPolicy::BestFit,
                    defrag: DefragPolicy::OnBlock,
                },
                SpectrumPolicy {
                    admission: AdmissionPolicy::ExactFit,
                    defrag: DefragPolicy::EveryEpoch,
                },
            ])
            .direct_latencies_ns([25.0, 35.0])
            .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
            .base_seed(u64::MAX - 7)
    }

    #[test]
    fn grid_round_trips_writer_parser_writer_byte_identically() {
        for grid in [SweepGrid::default(), kitchen_sink()] {
            let json = grid.to_json();
            let parsed = SweepGrid::from_json(&json).expect("parses");
            assert_eq!(parsed, grid);
            assert_eq!(parsed.to_json(), json);
            assert_eq!(parsed.grid_hash(), grid.grid_hash());
        }
    }

    #[test]
    fn sparse_specs_default_like_the_builder() {
        let grid = SweepGrid::from_json("{}").unwrap();
        assert_eq!(grid, SweepGrid::default());
        let grid = SweepGrid::from_json(
            r#"{"name":"n","patterns":[{"kind":"alltoall","demand_gbps":8}]}"#,
        )
        .unwrap();
        assert_eq!(grid.name, "n");
        assert_eq!(
            grid.patterns,
            vec![TrafficPattern::AllToAll { demand_gbps: 8.0 }]
        );
        assert_eq!(grid.mcm_counts, SweepGrid::default().mcm_counts);
    }

    #[test]
    fn parser_rejects_unknown_and_malformed_fields() {
        assert!(SweepGrid::from_json(r#"{"mcmcounts":[16]}"#)
            .unwrap_err()
            .contains("mcmcounts"));
        assert!(SweepGrid::from_json(r#"{"mcm_counts":16}"#).is_err());
        assert!(SweepGrid::from_json(r#"{"fabric_kinds":["warp"]}"#).is_err());
        assert!(
            SweepGrid::from_json(r#"{"patterns":[{"kind":"spiral","demand_gbps":1}]}"#).is_err()
        );
        assert!(SweepGrid::from_json(r#"{"realloc_policies":["hystx"]}"#).is_err());
        assert!(SweepGrid::from_json("[]").is_err());
    }

    #[test]
    fn policy_and_seed_fidelity() {
        let json = kitchen_sink().to_json();
        let parsed = SweepGrid::from_json(&json).unwrap();
        assert_eq!(
            parsed.realloc_policies[2],
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.9
            }
        );
        assert_eq!(parsed.spectrum_policies[1].label(), "bestfit+defrag");
        // Seeds above 2^53 survive the raw-text number model.
        assert_eq!(parsed.base_seed, u64::MAX - 7);
    }

    #[test]
    fn hash_tracks_grid_content_not_spelling() {
        let built = SweepGrid::named("h").mcm_counts([16]);
        let spelled = SweepGrid::from_json(r#"{"name":"h","mcm_counts":[16]}"#).unwrap();
        assert_eq!(built.grid_hash(), spelled.grid_hash());
        assert_ne!(
            built.grid_hash(),
            SweepGrid::named("h2").mcm_counts([16]).grid_hash()
        );
        assert_eq!(built.grid_hash().len(), 16);
    }
}
