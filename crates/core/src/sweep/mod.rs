//! The declarative scenario-sweep engine.
//!
//! Every figure and table of the paper is one point (or one small grid) in a
//! much larger scenario space: rack sizes, DWDM wavelength counts and FEC
//! settings, fabric constructions, and traffic patterns. This module turns
//! that space into a first-class object, split across three layers:
//!
//! * [`grid`](self) — [`SweepGrid`], the declarative cartesian product over
//!   the scenario axes (builders default every axis to the paper's design
//!   point, so a grid names only what it varies), and
//!   [`ScenarioIter`], the lazy expansion that decodes any scenario O(1)
//!   from its cartesian-product row index — a multi-million-row grid is
//!   never materialized as a `Vec<Scenario>`.
//! * [`scenario`](self) — [`Scenario`] (one expanded grid point with a
//!   deterministic seed derived by hashing the traffic-defining parameters
//!   only, so fabric/DWDM/FEC/latency/policy sweeps compare under an
//!   identical demand matrix), [`ScenarioLoad`] (static
//!   [`TrafficPattern`](workloads::TrafficPattern) matrices or phased
//!   [`DemandTimeline`](workloads::DemandTimeline)s under each swept
//!   reallocation policy, or flex-grid spectrum runs under each swept
//!   [`SpectrumPolicy`](fabric::SpectrumPolicy)), and [`ScenarioResult`].
//! * [`exec`](self) — the execution layer: [`parallel_map`] and
//!   [`parallel_map_with`], the engine's order-preserving parallel
//!   primitives on the vendored chunk-stealing thread pool (the latter
//!   threads one reusable scratch arena per worker through every scenario
//!   that worker executes); [`configure_threads`] (`--threads` /
//!   `PD_THREADS` plumbing); the `Arc`-shared fabric memoization cache; and
//!   the batched streaming runner behind [`SweepGrid::run`],
//!   [`SweepGrid::run_streaming`] (opt-in row cap), and
//!   [`SweepGrid::run_sharded`] (bounded-memory JSON emission).
//!
//! [`SweepGrid::energy_modes`] adds the optional energy axis: each scenario
//! is additionally accounted by `core::energy` under always-on and/or
//! utilization-scaled transceiver assumptions; energy modes never perturb
//! the scenario seed.
//!
//! Determinism contract: the same grid run twice — serially, in parallel at
//! any thread count, streamed or materialized — yields byte-identical
//! [`SweepReport::to_json`](crate::report::SweepReport::to_json) output.

pub(crate) mod codec;
pub(crate) mod exec;
mod grid;
mod scenario;

pub mod artifacts;

pub use exec::{configure_threads, parallel_map, parallel_map_with, StreamConfig};
pub use grid::{ScenarioIter, SweepGrid};
pub use scenario::{
    fabric_kind_label, FlexGridCase, FlexGridRowMetrics, Scenario, ScenarioLoad, ScenarioResult,
    TimelineCase,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::{EnergyConfig, EnergyMode};
    use fabric::{AdmissionPolicy, DefragPolicy, FabricKind, ReallocationPolicy, SpectrumPolicy};
    use workloads::{DemandTimeline, TrafficPattern};

    fn small_grid() -> SweepGrid {
        SweepGrid::named("test")
            .mcm_counts([16, 24])
            .fabric_kinds([FabricKind::ParallelAwgrs])
            .patterns([
                TrafficPattern::Permutation { demand_gbps: 200.0 },
                TrafficPattern::Uniform {
                    flows_per_mcm: 2,
                    demand_gbps: 150.0,
                },
            ])
            .direct_latencies_ns([25.0, 35.0])
    }

    #[test]
    fn expansion_count_is_product_of_axes() {
        let grid = small_grid();
        assert_eq!(grid.scenario_count(), 2 * 2 * 2);
        assert_eq!(grid.expand().len(), grid.scenario_count());
        let grid = grid.replicates(3);
        assert_eq!(grid.expand().len(), 2 * 2 * 2 * 3);
    }

    #[test]
    fn empty_axis_expands_to_nothing() {
        let grid = small_grid().patterns([]);
        assert_eq!(grid.scenario_count(), 0);
        let report = grid.run();
        assert!(report.rows.is_empty());
        assert!(report.summary.is_empty());
    }

    #[test]
    fn scenario_seeds_are_distinct_per_traffic_point_and_position_independent() {
        let grid = small_grid();
        let scenarios = grid.expand();
        // Seeds are a function of (mcm_count, pattern, replicate) only.
        let mut seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 2 * 2, "one seed per (mcm, pattern) point");

        // Extending the mcm axis must not change the seeds of the scenarios
        // that both grids contain.
        let extended = small_grid().mcm_counts([16, 24, 32]).expand();
        for s in &scenarios {
            let twin = extended
                .iter()
                .find(|t| {
                    t.fabric == s.fabric
                        && t.load == s.load
                        && t.direct_latency_ns == s.direct_latency_ns
                        && t.replicate == s.replicate
                })
                .expect("shared scenario must exist in extended grid");
            assert_eq!(twin.seed, s.seed);
        }
    }

    #[test]
    fn non_traffic_axes_hold_the_demand_matrix_fixed() {
        // Sweeping latency (or fabric kind) must not resample the random
        // traffic, or the sweep would attribute sampling noise to the swept
        // axis. Satisfaction is latency-independent; only latency moves.
        let grid = SweepGrid::named("hold")
            .mcm_counts([16])
            .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
            .patterns([TrafficPattern::Uniform {
                flows_per_mcm: 6,
                demand_gbps: 400.0,
            }])
            .direct_latencies_ns([25.0, 35.0]);
        let report = grid.run();
        assert_eq!(report.rows.len(), 4);
        let offered: Vec<f64> = report
            .rows
            .iter()
            .map(|r| r.metric("offered_gbps").unwrap())
            .collect();
        assert!(offered.iter().all(|&o| o == offered[0]), "{offered:?}");
        for pair in report.rows.chunks(2) {
            // Same fabric, latency 25 vs 35: identical allocation outcome.
            assert_eq!(
                pair[0].metric("satisfaction"),
                pair[1].metric("satisfaction")
            );
            assert_eq!(
                pair[0].metric("indirect_fraction"),
                pair[1].metric("indirect_fraction")
            );
            assert!(
                pair[0].metric("mean_latency_ns").unwrap()
                    < pair[1].metric("mean_latency_ns").unwrap()
            );
        }
    }

    #[test]
    fn labels_stay_unique_when_dwdm_axes_vary() {
        let grid = SweepGrid::named("labels")
            .mcm_counts([16])
            .fibers_per_mcm([16, 32])
            .wavelengths_per_fiber([32, 64])
            .gbps_per_wavelength([25.0, 50.0]);
        let scenarios = grid.expand();
        let mut labels: Vec<String> = scenarios.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), scenarios.len(), "labels must be unique");
    }

    #[test]
    fn same_grid_twice_is_byte_identical_json() {
        let grid = small_grid();
        assert_eq!(grid.run().to_json(), grid.run().to_json());
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let grid = small_grid();
        assert_eq!(grid.run(), grid.run_serial());
    }

    #[test]
    fn runs_are_byte_identical_across_thread_counts() {
        let grid = small_grid().replicates(3);
        let reference = rayon::with_max_threads(1, || grid.run().to_json());
        for threads in [2, 8] {
            let json = rayon::with_max_threads(threads, || grid.run().to_json());
            assert_eq!(json, reference, "drift at {threads} threads");
        }
    }

    /// The pre-refactor nested-loop expansion, reimplemented verbatim as an
    /// independent oracle: `expand()` is now `scenarios().collect()`, so
    /// comparing the iterator against itself would prove nothing about the
    /// mixed-radix decode order.
    fn legacy_nested_loop_expand(grid: &SweepGrid) -> Vec<Scenario> {
        use super::scenario::scenario_seed;
        let loads = grid.loads();
        let energy_axis: Vec<Option<EnergyMode>> = if grid.energy_modes.is_empty() {
            vec![None]
        } else {
            grid.energy_modes.iter().copied().map(Some).collect()
        };
        let mut scenarios = Vec::new();
        for &kind in &grid.fabric_kinds {
            for &mcm_count in &grid.mcm_counts {
                for &fibers_per_mcm in &grid.fibers_per_mcm {
                    for &wavelengths_per_fiber in &grid.wavelengths_per_fiber {
                        for &gbps in &grid.gbps_per_wavelength {
                            for &fec in &grid.fec_configs {
                                for load in &loads {
                                    for &latency in &grid.direct_latencies_ns {
                                        for &energy_mode in &energy_axis {
                                            for replicate in 0..grid.replicates.max(1) {
                                                scenarios.push(Scenario {
                                                    index: scenarios.len(),
                                                    fabric: fabric::RackFabricConfig {
                                                        mcm_count,
                                                        fibers_per_mcm,
                                                        wavelengths_per_fiber,
                                                        gbps_per_wavelength: gbps
                                                            * (1.0 - fec.bandwidth_overhead),
                                                        kind,
                                                    },
                                                    fec,
                                                    load: load.clone(),
                                                    direct_latency_ns: latency,
                                                    energy_mode,
                                                    replicate,
                                                    seed: scenario_seed(
                                                        grid.base_seed,
                                                        mcm_count,
                                                        load,
                                                        replicate,
                                                    ),
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        scenarios
    }

    #[test]
    fn scenario_iter_decodes_every_index_like_the_legacy_nested_loops() {
        let grid = small_grid()
            .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
            .fibers_per_mcm([16, 32])
            .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
            .replicates(2);
        let oracle = legacy_nested_loop_expand(&grid);
        assert_eq!(oracle.len(), grid.scenario_count());
        let iter = grid.scenarios();
        assert_eq!(iter.len(), oracle.len());
        for (i, expected) in oracle.iter().enumerate() {
            assert_eq!(&iter.get(i).unwrap(), expected, "decode mismatch at {i}");
        }
        assert_eq!(grid.expand(), oracle);
        assert!(iter.get(oracle.len()).is_none());
    }

    #[test]
    fn scenario_iter_random_access_handles_million_row_grids() {
        // 2 mcms x 2 patterns x 2 latencies x 125k replicates = 1M rows,
        // decoded O(1) without materializing anything.
        let grid = small_grid().replicates(125_000);
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 1_000_000);
        let last = scenarios.get(999_999).unwrap();
        assert_eq!(last.index, 999_999);
        assert_eq!(last.replicate, 124_999);
        assert_eq!(last.fabric.mcm_count, 24);
        // Replicate is the innermost axis: consecutive indices differ only
        // in replicate until the axis wraps.
        let a = scenarios.get(500_000).unwrap();
        let b = scenarios.get(500_001).unwrap();
        assert_eq!(a.fabric, b.fabric);
        assert_eq!(a.load, b.load);
        assert_eq!(a.replicate + 1, b.replicate);
    }

    #[test]
    fn streaming_with_tiny_batches_matches_materialized_run() {
        let grid = small_grid()
            .energy_modes([EnergyMode::AlwaysOn])
            .replicates(2);
        let reference = grid.run();
        let streamed = grid.run_streaming(&StreamConfig {
            batch_size: 3,
            ..StreamConfig::default()
        });
        assert_eq!(streamed.to_json(), reference.to_json());
    }

    #[test]
    fn row_cap_truncates_rows_but_aggregates_everything() {
        let grid = small_grid().energy_modes([EnergyMode::AlwaysOn]);
        let reference = grid.run();
        let capped = grid.run_streaming(&StreamConfig::with_row_cap(2));
        assert_eq!(capped.rows.len(), 2);
        assert_eq!(capped.energy.len(), 2);
        assert_eq!(capped.rows[..], reference.rows[..2]);
        assert_eq!(capped.summary, reference.summary);
        assert_eq!(capped.summary_metric("scenarios"), Some(8.0));
    }

    #[test]
    fn sharded_emission_reassembles_into_the_full_report() {
        let grid = small_grid().replicates(2); // 16 rows
        let reference = grid.run();
        let mut shards: Vec<crate::report::SweepReport> = Vec::new();
        let master = grid.run_sharded(&StreamConfig::default(), 5, &mut |shard| shards.push(shard));
        assert_eq!(shards.len(), 4, "16 rows in shards of 5");
        assert_eq!(shards[0].name, "test.shard0");
        assert_eq!(shards[3].rows.len(), 1);
        let reassembled: Vec<_> = shards.iter().flat_map(|s| s.rows.clone()).collect();
        assert_eq!(reassembled, reference.rows);
        assert_eq!(master.summary, reference.summary);
        assert!(master.rows.is_empty());
    }

    #[test]
    fn sharded_emission_respects_the_row_cap() {
        let grid = small_grid().replicates(2); // 16 rows
        let mut shards: Vec<crate::report::SweepReport> = Vec::new();
        let config = StreamConfig::with_row_cap(7);
        let master = grid.run_sharded(&config, 3, &mut |shard| shards.push(shard));
        let emitted: usize = shards.iter().map(|s| s.rows.len()).sum();
        assert_eq!(emitted, 7, "row cap bounds the total across shards");
        // The summary still aggregates every executed scenario.
        assert_eq!(master.summary_metric("scenarios"), Some(16.0));
    }

    #[test]
    fn fabrics_are_memoized_across_scenarios() {
        // 8 scenarios, but only 2 distinct topologies (16 and 24 MCMs).
        let grid = small_grid();
        let report = grid.run();
        assert_eq!(report.summary_metric("fabrics_built"), Some(2.0));
        assert_eq!(report.summary_metric("scenarios"), Some(8.0));
    }

    #[test]
    fn small_demand_scenarios_are_fully_satisfied() {
        let grid = SweepGrid::named("sat")
            .mcm_counts([32])
            .patterns([TrafficPattern::Permutation { demand_gbps: 100.0 }]);
        let report = grid.run();
        assert_eq!(report.rows.len(), 1);
        let sat = report.rows[0].metric("satisfaction").unwrap();
        assert!((sat - 1.0).abs() < 1e-9, "satisfaction {sat}");
    }

    #[test]
    fn fec_overhead_derates_wavelength_rate() {
        let grid = SweepGrid::default();
        let s = &grid.expand()[0];
        assert!(s.fabric.gbps_per_wavelength < 25.0);
        assert!(s.fabric.gbps_per_wavelength > 24.9);
    }

    #[test]
    fn replicates_differ_but_are_deterministic() {
        let grid = SweepGrid::named("rep")
            .mcm_counts([16])
            .patterns([TrafficPattern::Uniform {
                flows_per_mcm: 8,
                demand_gbps: 400.0,
            }])
            .replicates(2);
        let scenarios = grid.expand();
        assert_eq!(scenarios.len(), 2);
        assert_ne!(scenarios[0].seed, scenarios[1].seed);
        assert_eq!(grid.run(), grid.run());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let doubled = parallel_map(&items, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            rayon::with_max_threads(4, || {
                parallel_map(&items, |&x| {
                    assert!(x != 42, "scenario 42 exploded");
                    x
                })
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    fn timeline_grid() -> SweepGrid {
        SweepGrid::named("tl")
            .mcm_counts([16])
            .timelines([
                DemandTimeline::shifting_hotspot(2, 400.0, 3, 2, 5),
                DemandTimeline::steady(TrafficPattern::Permutation { demand_gbps: 200.0 }, 4),
            ])
            .realloc_policies([
                ReallocationPolicy::Static,
                ReallocationPolicy::GreedyResteer,
            ])
    }

    #[test]
    fn timeline_axis_expands_timelines_times_policies() {
        let grid = timeline_grid();
        assert_eq!(grid.scenario_count(), 2 * 2);
        let report = grid.run();
        assert_eq!(report.rows.len(), 4);
        for row in &report.rows {
            assert!(row.metric("epochs").unwrap() >= 4.0);
            assert!(row.metric("reconfigurations").unwrap() >= 0.0);
            let sat = row.metric("satisfaction").unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&sat));
        }
        // Patterns axis is ignored in temporal mode.
        let same = timeline_grid().patterns([]).run();
        assert_eq!(same.to_json(), report.to_json());
    }

    #[test]
    fn timeline_policies_share_the_scenario_seed() {
        // The policy axis must not resample the demand: both policies of a
        // timeline see identical epoch matrices, so their rows differ only
        // through the reallocation behaviour.
        let scenarios = timeline_grid().expand();
        assert_eq!(scenarios[0].seed, scenarios[1].seed);
        assert_ne!(scenarios[0].seed, scenarios[2].seed);
        let report = timeline_grid().run();
        assert_eq!(
            report.rows[0].metric("offered_gbps"),
            report.rows[1].metric("offered_gbps")
        );
    }

    #[test]
    fn timeline_runs_are_deterministic_and_parallel_equals_serial() {
        let grid = timeline_grid();
        assert_eq!(grid.run().to_json(), grid.run().to_json());
        assert_eq!(grid.run(), grid.run_serial());
    }

    #[test]
    fn empty_policy_axis_expands_to_nothing_in_temporal_mode() {
        let grid = timeline_grid().realloc_policies([]);
        assert_eq!(grid.scenario_count(), 0);
        assert!(grid.run().rows.is_empty());
    }

    fn flexgrid_grid() -> SweepGrid {
        SweepGrid::named("fg")
            .mcm_counts([16])
            .timelines([
                DemandTimeline::elastic_churn(300.0, 2),
                DemandTimeline::steady(TrafficPattern::Permutation { demand_gbps: 200.0 }, 4),
            ])
            .spectrum_policies([
                SpectrumPolicy::default(),
                SpectrumPolicy {
                    admission: AdmissionPolicy::BestFit,
                    defrag: DefragPolicy::OnBlock,
                },
                SpectrumPolicy {
                    admission: AdmissionPolicy::ExactFit,
                    defrag: DefragPolicy::EveryEpoch,
                },
            ])
    }

    #[test]
    fn flexgrid_axis_expands_timelines_times_spectrum_policies() {
        let grid = flexgrid_grid();
        assert_eq!(grid.scenario_count(), 2 * 3);
        let report = grid.run();
        assert_eq!(report.rows.len(), 6);
        for row in &report.rows {
            assert!(row.metric("epochs").unwrap() >= 4.0);
            let blocking = row.metric("blocking_probability").unwrap();
            assert!((0.0..=1.0).contains(&blocking), "blocking {blocking}");
            let frag = row.metric("fragmentation_index").unwrap();
            assert!((0.0..=1.0).contains(&frag), "frag {frag}");
            assert!(row.metric("slots_in_use").unwrap() >= 0.0);
            assert!(row.metric("defrag_events").unwrap() >= 0.0);
        }
        // The realloc-policy axis is ignored in spectrum mode.
        let same = flexgrid_grid()
            .realloc_policies([ReallocationPolicy::GreedyResteer])
            .run();
        assert_eq!(same.to_json(), report.to_json());
    }

    #[test]
    fn flexgrid_policies_share_the_scenario_seed_with_each_other_and_timelines() {
        // The spectrum-policy axis must not resample the demand: every policy
        // of a timeline sees identical epoch matrices, and the flex-grid
        // layer is graded under the same demand as the wavelength layer.
        let scenarios = flexgrid_grid().expand();
        assert_eq!(scenarios[0].seed, scenarios[1].seed);
        assert_eq!(scenarios[1].seed, scenarios[2].seed);
        assert_ne!(scenarios[0].seed, scenarios[3].seed);
        let timeline_twin = SweepGrid::named("fg")
            .mcm_counts([16])
            .timelines([DemandTimeline::elastic_churn(300.0, 2)])
            .realloc_policies([ReallocationPolicy::Static])
            .expand();
        assert_eq!(scenarios[0].seed, timeline_twin[0].seed);
        let report = flexgrid_grid().run();
        assert_eq!(
            report.rows[0].metric("offered_gbps"),
            report.rows[1].metric("offered_gbps")
        );
    }

    #[test]
    fn flexgrid_runs_are_deterministic_and_parallel_equals_serial() {
        let grid = flexgrid_grid();
        assert_eq!(grid.run().to_json(), grid.run().to_json());
        assert_eq!(grid.run(), grid.run_serial());
    }

    #[test]
    fn empty_spectrum_axis_falls_back_to_realloc_mode() {
        let grid = flexgrid_grid().spectrum_policies([]);
        // With no spectrum policies the timeline axis reverts to the
        // wavelength-layer realloc sweep (default Static policy).
        assert_eq!(grid.scenario_count(), 2);
        let report = grid.run();
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert_eq!(row.metric("blocking_probability"), None);
        }
    }

    #[test]
    fn flexgrid_energy_scales_with_the_modulation_ladder() {
        let grid = flexgrid_grid().energy_modes([EnergyMode::UtilizationScaled]);
        assert_eq!(grid.scenario_count(), 2 * 3);
        let report = grid.run();
        assert_eq!(report.energy.len(), report.rows.len());
        for row in &report.rows {
            assert!(row.metric("energy_j").unwrap() > 0.0);
        }
        // The repack policy defragments every epoch after the first, so its
        // reconfiguration energy is charged per defrag event.
        let repack = &report.rows[2];
        assert!(
            (repack.metric("reconfiguration_energy_j").unwrap()
                - repack.metric("defrag_events").unwrap()
                    * EnergyConfig::default().reconfiguration_energy_j)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn energy_axis_multiplies_scenarios_and_fills_the_energy_block() {
        let grid = small_grid().energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled]);
        assert_eq!(grid.scenario_count(), 2 * 2 * 2 * 2);
        let report = grid.run();
        assert_eq!(report.rows.len(), 16);
        assert_eq!(report.energy.len(), 16);
        for (row, (label, e)) in report.rows.iter().zip(&report.energy) {
            assert_eq!(&row.label, label);
            assert_eq!(row.metric("energy_j"), Some(e.total_joules()));
            assert!(e.total_joules() > 0.0);
        }
        assert!(report.summary_metric("total_energy_j").unwrap() > 0.0);
        // The block is serialized, and identically so across runs.
        let json = report.to_json();
        assert!(json.contains("\"energy\":["));
        assert_eq!(json, grid.run_serial().to_json());
    }

    #[test]
    fn energy_modes_share_the_scenario_seed_and_demand() {
        let grid = SweepGrid::named("e")
            .mcm_counts([16])
            .patterns([TrafficPattern::Uniform {
                flows_per_mcm: 4,
                demand_gbps: 300.0,
            }])
            .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled]);
        let scenarios = grid.expand();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].seed, scenarios[1].seed);
        assert_ne!(scenarios[0].label(), scenarios[1].label());
        let report = grid.run();
        assert_eq!(
            report.rows[0].metric("offered_gbps"),
            report.rows[1].metric("offered_gbps")
        );
        // Always-on can never draw less than utilization-scaled.
        assert!(
            report.rows[0].metric("energy_j").unwrap()
                >= report.rows[1].metric("energy_j").unwrap()
        );
    }

    #[test]
    fn no_energy_axis_means_no_energy_metrics_or_block() {
        let report = small_grid().run();
        assert!(report.energy.is_empty());
        assert!(!report.to_json().contains("\"energy\""));
        for row in &report.rows {
            assert_eq!(row.metric("energy_j"), None);
        }
        assert_eq!(report.summary_metric("total_energy_j"), None);
    }

    #[test]
    fn timeline_energy_charges_reconfigurations() {
        let grid = SweepGrid::named("te")
            .mcm_counts([16])
            .timelines([DemandTimeline::shifting_hotspot(2, 400.0, 4, 2, 5)])
            .realloc_policies([
                ReallocationPolicy::Static,
                ReallocationPolicy::GreedyResteer,
            ])
            .energy_modes([EnergyMode::UtilizationScaled]);
        let report = grid.run();
        assert_eq!(report.rows.len(), 2);
        let fixed = &report.rows[0];
        let greedy = &report.rows[1];
        assert_eq!(fixed.metric("reconfiguration_energy_j"), Some(0.0));
        let greedy_reconf_j = greedy.metric("reconfiguration_energy_j").unwrap();
        assert!(greedy_reconf_j > 0.0);
        assert!(
            (greedy_reconf_j
                - greedy.metric("reconfigurations").unwrap()
                    * EnergyConfig::default().reconfiguration_energy_j)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn wave_selective_beats_awgr_on_direct_bandwidth() {
        // Sanity of the whole pipeline: the switched fabric has ~2304 Gbps
        // direct per pair vs the AWGR's 125-150, so a heavy permutation is
        // direct-only on the switch and needs indirect help on the AWGR.
        let grid = SweepGrid::named("cmp")
            .mcm_counts([32])
            .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
            .patterns([TrafficPattern::Permutation {
                demand_gbps: 1000.0,
            }]);
        let report = grid.run();
        let awgr = &report.rows[0];
        let wave = &report.rows[1];
        assert!(wave.metric("direct_only_fraction").unwrap() >= 1.0 - 1e-9);
        assert!(awgr.metric("indirect_fraction").unwrap() > 0.0);
    }
}
