//! The declarative scenario-sweep engine.
//!
//! Every figure and table of the paper is one point (or one small grid) in a
//! much larger scenario space: rack sizes, DWDM wavelength counts and FEC
//! settings, fabric constructions, and traffic patterns. This module turns
//! that space into a first-class object:
//!
//! * [`SweepGrid`] — a declarative cartesian product over the scenario axes.
//!   Builders default every axis to the paper's design point, so a grid
//!   names only what it varies.
//! * [`Scenario`] — one expanded grid point with a deterministic per-scenario
//!   seed derived by hashing the traffic-defining parameters (not the
//!   scenario's position, so adding values to one axis never changes the
//!   seeds of existing scenarios; and not the fabric/DWDM/FEC/latency or
//!   reallocation-policy axes, so sweeping those compares fabrics and
//!   policies under an identical demand matrix).
//! * [`ScenarioLoad`] — the load axis: static [`TrafficPattern`] matrices,
//!   or — when [`SweepGrid::timelines`] is set — phased
//!   [`DemandTimeline`]s executed per epoch by `fabric`'s
//!   [`TimelineSimulator`] under each swept [`ReallocationPolicy`].
//! * [`SweepGrid::energy_modes`] — the optional energy axis: each scenario
//!   is additionally accounted by `core::energy` under always-on and/or
//!   utilization-scaled transceiver assumptions, adding energy metrics to
//!   every row and an `EnergyStats` block to the report. Energy modes never
//!   perturb the scenario seed.
//! * [`SweepGrid::run`] — parallel execution via rayon with memoized fabric
//!   construction (scenarios that share a topology share one built
//!   [`RackFabric`]), producing the unified [`SweepReport`] schema.
//! * [`parallel_map`] — the engine's order-preserving parallel primitive,
//!   also used by the CPU/GPU experiment drivers and the ported paper
//!   artifacts in [`artifacts`].
//!
//! Determinism contract: the same grid run twice — serially or in parallel —
//! yields byte-identical [`SweepReport::to_json`] output.

use std::collections::HashMap;
use std::sync::Arc;

use fabric::{
    FabricKind, Flow, FlowSimConfig, FlowSimulator, RackFabric, RackFabricConfig,
    ReallocationPolicy, TimelineConfig, TimelineSimulator,
};
use photonics::fec::FecConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use workloads::{DemandTimeline, TrafficPattern};

use crate::energy::{EnergyConfig, EnergyMode, EnergyModel, EnergyStats};
use crate::report::{SweepReport, SweepRow};

pub mod artifacts;

/// Run `f` over every item, in parallel, preserving input order.
///
/// This is the engine's only execution primitive: the grid runner, the CPU
/// and GPU experiment drivers, and the ported table/figure artifacts all go
/// through it, so swapping the vendored sequential rayon shim for the real
/// crate parallelizes every sweep in the workspace at once.
pub fn parallel_map<I, R, F>(items: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync + Send,
{
    items.par_iter().map(f).collect()
}

/// A declarative cartesian scenario grid.
///
/// Axes default to the paper's design point (350-MCM AWGR rack, 32 fibers of
/// 64 x 25 Gbps wavelengths, CXL-lightweight FEC, a uniform 4-flows-per-MCM
/// pattern at 100 Gbps, 35 ns direct latency, one replicate), so a grid
/// definition only states what it varies. An axis set to an empty list
/// expands to zero scenarios.
///
/// # Example
///
/// ```
/// use disagg_core::sweep::SweepGrid;
/// use fabric::FabricKind;
/// use workloads::TrafficPattern;
///
/// let grid = SweepGrid::named("example")
///     .mcm_counts([16, 32])
///     .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
///     .patterns([TrafficPattern::Permutation { demand_gbps: 200.0 }])
///     .direct_latencies_ns([35.0]);
/// assert_eq!(grid.scenario_count(), 4);
///
/// let report = grid.run();
/// assert_eq!(report.rows.len(), 4);
/// // Same grid, same bytes — serial or parallel.
/// assert_eq!(report.to_json(), grid.run_serial().to_json());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// Report name.
    pub name: String,
    /// Fabric constructions to instantiate.
    pub fabric_kinds: Vec<FabricKind>,
    /// Rack sizes (MCMs per rack).
    pub mcm_counts: Vec<u32>,
    /// Escape fibers per MCM.
    pub fibers_per_mcm: Vec<u32>,
    /// DWDM wavelengths per fiber.
    pub wavelengths_per_fiber: Vec<u32>,
    /// Raw data rate per wavelength in Gbps (before FEC overhead).
    pub gbps_per_wavelength: Vec<f64>,
    /// FEC pipelines; each derates the effective wavelength rate by its
    /// bandwidth overhead. (Latency budgets in `direct_latencies_ns` are
    /// totals — the paper's 35 ns point already includes ~2.5 ns of FEC.)
    pub fec_configs: Vec<FecConfig>,
    /// Traffic patterns to offer. Ignored when `timelines` is non-empty
    /// (the grid then sweeps the temporal axis instead).
    pub patterns: Vec<TrafficPattern>,
    /// Demand timelines to offer. When non-empty, the load axis becomes the
    /// cartesian product `timelines x realloc_policies` and the `patterns`
    /// axis is ignored.
    pub timelines: Vec<DemandTimeline>,
    /// Wavelength-reallocation policies swept against each timeline. Only
    /// meaningful when `timelines` is non-empty.
    pub realloc_policies: Vec<ReallocationPolicy>,
    /// One-way direct fabric latencies in nanoseconds.
    pub direct_latencies_ns: Vec<f64>,
    /// Energy-accounting modes to sweep (always-on vs utilization-scaled
    /// transceivers). Empty (the default) disables energy accounting
    /// entirely: no extra scenarios, no energy metrics, and no `energy`
    /// block in the report.
    pub energy_modes: Vec<EnergyMode>,
    /// Knobs of the energy layer shared by every scenario (pJ/bit, per-MCM
    /// switch and compute power floors, epoch duration, per-event
    /// reconfiguration energy). Only read when `energy_modes` is non-empty.
    pub energy_config: EnergyConfig,
    /// Replicates per grid point (each gets an independent derived seed).
    pub replicates: u32,
    /// Base seed all per-scenario seeds are derived from.
    pub base_seed: u64,
    /// Additional latency per indirect hop in nanoseconds.
    pub indirect_hop_latency_ns: f64,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid {
            name: "sweep".to_string(),
            fabric_kinds: vec![FabricKind::ParallelAwgrs],
            mcm_counts: vec![350],
            fibers_per_mcm: vec![32],
            wavelengths_per_fiber: vec![64],
            gbps_per_wavelength: vec![25.0],
            fec_configs: vec![FecConfig::cxl_lightweight()],
            patterns: vec![TrafficPattern::Uniform {
                flows_per_mcm: 4,
                demand_gbps: 100.0,
            }],
            timelines: Vec::new(),
            realloc_policies: vec![ReallocationPolicy::GreedyResteer],
            direct_latencies_ns: vec![35.0],
            energy_modes: Vec::new(),
            energy_config: EnergyConfig::default(),
            replicates: 1,
            base_seed: 0xD15A66,
            indirect_hop_latency_ns: 8.0,
        }
    }
}

impl SweepGrid {
    /// The default (paper design point) grid under a given report name.
    pub fn named(name: impl Into<String>) -> Self {
        SweepGrid {
            name: name.into(),
            ..SweepGrid::default()
        }
    }

    /// Set the fabric-construction axis.
    pub fn fabric_kinds(mut self, kinds: impl IntoIterator<Item = FabricKind>) -> Self {
        self.fabric_kinds = kinds.into_iter().collect();
        self
    }

    /// Set the rack-size axis.
    pub fn mcm_counts(mut self, counts: impl IntoIterator<Item = u32>) -> Self {
        self.mcm_counts = counts.into_iter().collect();
        self
    }

    /// Set the fibers-per-MCM axis.
    pub fn fibers_per_mcm(mut self, fibers: impl IntoIterator<Item = u32>) -> Self {
        self.fibers_per_mcm = fibers.into_iter().collect();
        self
    }

    /// Set the DWDM wavelengths-per-fiber axis.
    pub fn wavelengths_per_fiber(mut self, wavelengths: impl IntoIterator<Item = u32>) -> Self {
        self.wavelengths_per_fiber = wavelengths.into_iter().collect();
        self
    }

    /// Set the per-wavelength data-rate axis (Gbps).
    pub fn gbps_per_wavelength(mut self, gbps: impl IntoIterator<Item = f64>) -> Self {
        self.gbps_per_wavelength = gbps.into_iter().collect();
        self
    }

    /// Set the FEC-configuration axis.
    pub fn fec_configs(mut self, fecs: impl IntoIterator<Item = FecConfig>) -> Self {
        self.fec_configs = fecs.into_iter().collect();
        self
    }

    /// Set the traffic-pattern axis.
    pub fn patterns(mut self, patterns: impl IntoIterator<Item = TrafficPattern>) -> Self {
        self.patterns = patterns.into_iter().collect();
        self
    }

    /// Set the demand-timeline axis. A non-empty timeline axis switches the
    /// grid into temporal mode: the load axis becomes
    /// `timelines x realloc_policies` and `patterns` is ignored.
    pub fn timelines(mut self, timelines: impl IntoIterator<Item = DemandTimeline>) -> Self {
        self.timelines = timelines.into_iter().collect();
        self
    }

    /// Set the wavelength-reallocation-policy axis (temporal mode only).
    pub fn realloc_policies(
        mut self,
        policies: impl IntoIterator<Item = ReallocationPolicy>,
    ) -> Self {
        self.realloc_policies = policies.into_iter().collect();
        self
    }

    /// Set the direct-latency axis (ns).
    pub fn direct_latencies_ns(mut self, latencies: impl IntoIterator<Item = f64>) -> Self {
        self.direct_latencies_ns = latencies.into_iter().collect();
        self
    }

    /// Set the energy-accounting axis. Energy modes are excluded from the
    /// per-scenario seed (they never change the offered traffic), so both
    /// modes of a grid point are accounted against the identical demand.
    ///
    /// # Example
    ///
    /// ```
    /// use disagg_core::energy::EnergyMode;
    /// use disagg_core::sweep::SweepGrid;
    ///
    /// let report = SweepGrid::named("e")
    ///     .mcm_counts([16])
    ///     .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
    ///     .run();
    /// assert_eq!(report.rows.len(), 2);
    /// assert_eq!(report.energy.len(), 2);
    /// // Always-on transceivers never draw less than utilization-scaled.
    /// assert!(
    ///     report.rows[0].metric("energy_j").unwrap()
    ///         >= report.rows[1].metric("energy_j").unwrap()
    /// );
    /// ```
    pub fn energy_modes(mut self, modes: impl IntoIterator<Item = EnergyMode>) -> Self {
        self.energy_modes = modes.into_iter().collect();
        self
    }

    /// Override the energy layer's shared knobs (pJ/bit, floors, epoch
    /// duration, reconfiguration energy).
    pub fn energy_config(mut self, config: EnergyConfig) -> Self {
        self.energy_config = config;
        self
    }

    /// Set the number of replicates per grid point.
    pub fn replicates(mut self, replicates: u32) -> Self {
        self.replicates = replicates.max(1);
        self
    }

    /// Set the base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// The load axis the grid sweeps: the traffic patterns, or — in
    /// temporal mode — every timeline under every reallocation policy.
    pub fn loads(&self) -> Vec<ScenarioLoad> {
        if self.timelines.is_empty() {
            self.patterns
                .iter()
                .map(|&p| ScenarioLoad::Pattern(p))
                .collect()
        } else {
            self.timelines
                .iter()
                .flat_map(|t| {
                    self.realloc_policies.iter().map(move |&policy| {
                        ScenarioLoad::Timeline(TimelineCase {
                            timeline: t.clone(),
                            policy,
                        })
                    })
                })
                .collect()
        }
    }

    /// Number of scenarios the grid expands to (the product of all axis
    /// lengths times the replicate count).
    pub fn scenario_count(&self) -> usize {
        let loads = if self.timelines.is_empty() {
            self.patterns.len()
        } else {
            self.timelines.len() * self.realloc_policies.len()
        };
        self.fabric_kinds.len()
            * self.mcm_counts.len()
            * self.fibers_per_mcm.len()
            * self.wavelengths_per_fiber.len()
            * self.gbps_per_wavelength.len()
            * self.fec_configs.len()
            * loads
            * self.direct_latencies_ns.len()
            * self.energy_modes.len().max(1)
            * self.replicates.max(1) as usize
    }

    /// The energy axis as expanded: `[None]` (accounting off) when no modes
    /// are set, otherwise one `Some` per configured mode.
    fn energy_axis(&self) -> Vec<Option<EnergyMode>> {
        if self.energy_modes.is_empty() {
            vec![None]
        } else {
            self.energy_modes.iter().copied().map(Some).collect()
        }
    }

    /// Expand the grid into concrete scenarios, in axis-declaration order
    /// (fabric kind outermost, replicate innermost).
    pub fn expand(&self) -> Vec<Scenario> {
        let loads = self.loads();
        let energy_axis = self.energy_axis();
        let mut scenarios = Vec::with_capacity(self.scenario_count());
        for &kind in &self.fabric_kinds {
            for &mcm_count in &self.mcm_counts {
                for &fibers in &self.fibers_per_mcm {
                    for &wavelengths in &self.wavelengths_per_fiber {
                        for &gbps in &self.gbps_per_wavelength {
                            for &fec in &self.fec_configs {
                                for load in &loads {
                                    for &latency in &self.direct_latencies_ns {
                                        for &energy_mode in &energy_axis {
                                            for replicate in 0..self.replicates.max(1) {
                                                let fabric = RackFabricConfig {
                                                    mcm_count,
                                                    fibers_per_mcm: fibers,
                                                    wavelengths_per_fiber: wavelengths,
                                                    gbps_per_wavelength: gbps
                                                        * (1.0 - fec.bandwidth_overhead),
                                                    kind,
                                                };
                                                let seed = scenario_seed(
                                                    self.base_seed,
                                                    mcm_count,
                                                    load,
                                                    replicate,
                                                );
                                                scenarios.push(Scenario {
                                                    index: scenarios.len(),
                                                    fabric,
                                                    fec,
                                                    load: load.clone(),
                                                    direct_latency_ns: latency,
                                                    energy_mode,
                                                    replicate,
                                                    seed,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        scenarios
    }

    /// Execute the grid in parallel (via rayon) and collect a
    /// [`SweepReport`]. Results are identical to [`SweepGrid::run_serial`].
    pub fn run(&self) -> SweepReport {
        self.execute(true)
    }

    /// Execute the grid one scenario at a time (reference implementation for
    /// the parallel-equivalence contract).
    pub fn run_serial(&self) -> SweepReport {
        self.execute(false)
    }

    fn execute(&self, parallel: bool) -> SweepReport {
        let scenarios = self.expand();
        let cache = FabricCache::build(&scenarios, parallel);
        let hop = self.indirect_hop_latency_ns;
        let energy_config = self.energy_config;
        let results: Vec<ScenarioResult> = if parallel {
            scenarios
                .par_iter()
                .map(|s| run_scenario(s, &cache, hop, &energy_config))
                .collect()
        } else {
            scenarios
                .iter()
                .map(|s| run_scenario(s, &cache, hop, &energy_config))
                .collect()
        };
        let mut report = SweepReport::new(self.name.clone());
        report.rows = results.iter().map(ScenarioResult::to_row).collect();
        report.energy = results
            .iter()
            .filter_map(|r| r.energy.map(|e| (r.scenario.label(), e)))
            .collect();
        let n = results.len();
        if n > 0 {
            let mean_sat = results.iter().map(|r| r.satisfaction).sum::<f64>() / n as f64;
            let min_sat = results
                .iter()
                .map(|r| r.satisfaction)
                .fold(f64::MAX, f64::min);
            let mean_lat = results.iter().map(|r| r.mean_latency_ns).sum::<f64>() / n as f64;
            report.summary = vec![
                ("scenarios".to_string(), n as f64),
                ("fabrics_built".to_string(), cache.len() as f64),
                ("mean_satisfaction".to_string(), mean_sat),
                ("min_satisfaction".to_string(), min_sat),
                ("mean_latency_ns".to_string(), mean_lat),
            ];
            if !report.energy.is_empty() {
                let total_j: f64 = report.energy.iter().map(|(_, e)| e.total_joules()).sum();
                let mean_w = report.energy.iter().map(|(_, e)| e.watts()).sum::<f64>()
                    / report.energy.len() as f64;
                report.summary.push(("total_energy_j".to_string(), total_j));
                report.summary.push(("mean_power_w".to_string(), mean_w));
            }
        }
        report
    }
}

/// The offered load of one scenario: a single static demand matrix, or a
/// phased [`DemandTimeline`] executed under a wavelength-reallocation
/// policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioLoad {
    /// A static demand matrix drawn from a traffic pattern.
    Pattern(TrafficPattern),
    /// A temporal demand timeline with its reallocation policy.
    Timeline(TimelineCase),
}

impl ScenarioLoad {
    /// Short stable label for scenario labels and report rows.
    pub fn label(&self) -> String {
        match self {
            ScenarioLoad::Pattern(p) => p.label(),
            ScenarioLoad::Timeline(tc) => {
                format!("{}~{}", tc.timeline.name, tc.policy.label())
            }
        }
    }
}

/// One point on the temporal load axis: a timeline and the policy it runs
/// under. Policies are *excluded* from the scenario seed, so every policy
/// is evaluated against the identical epoch-by-epoch demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineCase {
    /// The phased demand schedule.
    pub timeline: DemandTimeline,
    /// The wavelength-reallocation policy.
    pub policy: ReallocationPolicy,
}

/// One expanded grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Position in grid-expansion order.
    pub index: usize,
    /// Rack fabric configuration (wavelength rate already FEC-derated).
    pub fabric: RackFabricConfig,
    /// FEC pipeline applied to the wavelength rate.
    pub fec: FecConfig,
    /// Offered load: a static pattern or a demand timeline with its policy.
    pub load: ScenarioLoad,
    /// One-way direct fabric latency (ns).
    pub direct_latency_ns: f64,
    /// Energy-accounting mode, `None` when the grid's energy axis is unset.
    /// Excluded from the scenario seed: both modes see identical demand.
    pub energy_mode: Option<EnergyMode>,
    /// Replicate number within the grid point.
    pub replicate: u32,
    /// Deterministic seed derived from the traffic-defining parameters
    /// (load, rack size, replicate) — shared across the fabric, DWDM,
    /// FEC, latency, and reallocation-policy axes so those sweeps compare
    /// under identical load.
    pub seed: u64,
}

impl Scenario {
    /// Short human-readable label covering every grid axis, so rows stay
    /// distinguishable whichever axes a grid varies. (Two FEC configs that
    /// differ only in fields other than `bandwidth_overhead` execute
    /// identically and share a label.)
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}-n{}-f{}w{}g{}-{}-l{}-r{}",
            fabric_kind_label(self.fabric.kind),
            self.fabric.mcm_count,
            self.fabric.fibers_per_mcm,
            self.fabric.wavelengths_per_fiber,
            self.fabric.gbps_per_wavelength,
            self.load.label(),
            self.direct_latency_ns,
            self.replicate
        );
        if let Some(mode) = self.energy_mode {
            label.push('-');
            label.push_str(mode.label());
        }
        label
    }

    /// The scenario's input parameters as display pairs for report rows.
    pub fn params(&self) -> Vec<(String, String)> {
        let mut params = vec![
            ("fabric".into(), fabric_kind_label(self.fabric.kind).into()),
            ("mcms".into(), self.fabric.mcm_count.to_string()),
            ("fibers".into(), self.fabric.fibers_per_mcm.to_string()),
            (
                "wavelengths".into(),
                self.fabric.wavelengths_per_fiber.to_string(),
            ),
            (
                "gbps_per_wavelength".into(),
                format!("{}", self.fabric.gbps_per_wavelength),
            ),
            (
                "fec_overhead".into(),
                format!("{}", self.fec.bandwidth_overhead),
            ),
        ];
        match &self.load {
            ScenarioLoad::Pattern(p) => params.push(("pattern".into(), p.label())),
            ScenarioLoad::Timeline(tc) => {
                params.push(("timeline".into(), tc.timeline.name.clone()));
                params.push(("policy".into(), tc.policy.label()));
                params.push(("epochs".into(), tc.timeline.total_epochs().to_string()));
            }
        }
        if let Some(mode) = self.energy_mode {
            params.push(("energy".into(), mode.label().into()));
        }
        params.extend([
            ("latency_ns".into(), format!("{}", self.direct_latency_ns)),
            ("replicate".into(), self.replicate.to_string()),
            ("seed".into(), self.seed.to_string()),
        ]);
        params
    }
}

/// Short stable label for a fabric construction.
pub fn fabric_kind_label(kind: FabricKind) -> &'static str {
    match kind {
        FabricKind::ParallelAwgrs => "awgr",
        FabricKind::WaveSelective => "wave",
        FabricKind::Spatial => "spatial",
    }
}

/// Result of one executed scenario (the flow-level aggregates of
/// [`fabric::FlowSimReport`] without the per-flow allocations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario that produced this result.
    pub scenario: Scenario,
    /// Number of flows in the demand matrix.
    pub flows: usize,
    /// Total offered demand (Gbps).
    pub offered_gbps: f64,
    /// Total satisfied demand (Gbps).
    pub satisfied_gbps: f64,
    /// Overall throughput satisfaction in `[0, 1]`.
    pub satisfaction: f64,
    /// Fraction of flows fully served by direct wavelengths.
    pub direct_only_fraction: f64,
    /// Fraction of flows that needed indirect routing.
    pub indirect_fraction: f64,
    /// Fraction of flows with unmet demand.
    pub unsatisfied_fraction: f64,
    /// Demand-weighted mean latency (ns).
    pub mean_latency_ns: f64,
    /// Number of epochs executed (1 for static pattern scenarios).
    pub epochs: usize,
    /// Wavelength reconfigurations performed after the initial assignment
    /// (always 0 for static pattern scenarios).
    pub reconfigurations: usize,
    /// Energy accounting, present iff the scenario carries an energy mode.
    pub energy: Option<EnergyStats>,
}

impl ScenarioResult {
    /// Convert to the unified report-row schema. Temporal scenarios gain
    /// `epochs` and `reconfigurations` metrics; static pattern rows keep
    /// the original metric set.
    pub fn to_row(&self) -> SweepRow {
        let mut metrics = vec![
            ("flows".to_string(), self.flows as f64),
            ("offered_gbps".to_string(), self.offered_gbps),
            ("satisfied_gbps".to_string(), self.satisfied_gbps),
            ("satisfaction".to_string(), self.satisfaction),
            (
                "direct_only_fraction".to_string(),
                self.direct_only_fraction,
            ),
            ("indirect_fraction".to_string(), self.indirect_fraction),
            (
                "unsatisfied_fraction".to_string(),
                self.unsatisfied_fraction,
            ),
            ("mean_latency_ns".to_string(), self.mean_latency_ns),
        ];
        if matches!(self.scenario.load, ScenarioLoad::Timeline(_)) {
            metrics.push(("epochs".to_string(), self.epochs as f64));
            metrics.push(("reconfigurations".to_string(), self.reconfigurations as f64));
        }
        if let Some(e) = &self.energy {
            metrics.push(("energy_j".to_string(), e.total_joules()));
            metrics.push(("mean_power_w".to_string(), e.watts()));
            metrics.push(("pj_per_bit".to_string(), e.pj_per_bit()));
            metrics.push((
                "photonic_compute_ratio".to_string(),
                e.photonic_compute_ratio(),
            ));
            metrics.push((
                "reconfiguration_energy_j".to_string(),
                e.reconfiguration_energy_j,
            ));
        }
        SweepRow {
            label: self.scenario.label(),
            params: self.scenario.params(),
            metrics,
        }
    }
}

/// Memoized fabric constructions: scenarios that share a topology share one
/// built [`RackFabric`] instead of rebuilding the membership tables per
/// scenario.
struct FabricCache {
    fabrics: HashMap<FabricKey, Arc<RackFabric>>,
}

type FabricKey = (FabricKind, u32, u32, u32, u64);

fn fabric_key(config: &RackFabricConfig) -> FabricKey {
    (
        config.kind,
        config.mcm_count,
        config.fibers_per_mcm,
        config.wavelengths_per_fiber,
        config.gbps_per_wavelength.to_bits(),
    )
}

impl FabricCache {
    fn build(scenarios: &[Scenario], parallel: bool) -> Self {
        let mut seen: std::collections::HashSet<FabricKey> = std::collections::HashSet::new();
        let mut unique: Vec<(FabricKey, RackFabricConfig)> = Vec::new();
        for s in scenarios {
            let key = fabric_key(&s.fabric);
            if seen.insert(key) {
                unique.push((key, s.fabric));
            }
        }
        let built: Vec<Arc<RackFabric>> = if parallel {
            unique
                .par_iter()
                .map(|(_, cfg)| Arc::new(RackFabric::new(*cfg)))
                .collect()
        } else {
            unique
                .iter()
                .map(|(_, cfg)| Arc::new(RackFabric::new(*cfg)))
                .collect()
        };
        FabricCache {
            fabrics: unique.into_iter().map(|(k, _)| k).zip(built).collect(),
        }
    }

    fn get(&self, config: &RackFabricConfig) -> &RackFabric {
        &self.fabrics[&fabric_key(config)]
    }

    fn len(&self) -> usize {
        self.fabrics.len()
    }
}

fn run_scenario(
    scenario: &Scenario,
    cache: &FabricCache,
    indirect_hop_ns: f64,
    energy_config: &EnergyConfig,
) -> ScenarioResult {
    let fabric = cache.get(&scenario.fabric);
    let flow_config = FlowSimConfig {
        direct_latency_ns: scenario.direct_latency_ns,
        indirect_hop_latency_ns: indirect_hop_ns,
        // Decorrelate the Valiant intermediate choice from the traffic
        // generator while staying a pure function of the scenario seed.
        seed: scenario.seed ^ 0x9E37_79B9_7F4A_7C15,
    };
    let energy_model = scenario
        .energy_mode
        .map(|mode| EnergyModel::new(mode, *energy_config, &scenario.fabric, &scenario.fec));
    match &scenario.load {
        ScenarioLoad::Pattern(pattern) => {
            let flows = pattern.flows(scenario.fabric.mcm_count, scenario.seed);
            let report = FlowSimulator::new(fabric, flow_config).run(&flows);
            ScenarioResult {
                scenario: scenario.clone(),
                flows: flows.len(),
                offered_gbps: report.offered_gbps,
                satisfied_gbps: report.satisfied_gbps,
                satisfaction: report.satisfaction(),
                direct_only_fraction: report.direct_only_fraction,
                indirect_fraction: report.indirect_fraction,
                unsatisfied_fraction: report.unsatisfied_fraction,
                mean_latency_ns: report.mean_latency_ns,
                epochs: 1,
                reconfigurations: 0,
                energy: energy_model.map(|m| m.account_flows(&report)),
            }
        }
        ScenarioLoad::Timeline(tc) => {
            let epochs: Vec<Vec<Flow>> = tc
                .timeline
                .epoch_matrices(scenario.fabric.mcm_count, scenario.seed);
            let sim = TimelineSimulator::new(
                fabric,
                TimelineConfig {
                    flow: flow_config,
                    policy: tc.policy,
                },
            );
            let report = sim.run(&epochs);
            ScenarioResult {
                scenario: scenario.clone(),
                flows: report.epochs.iter().map(|e| e.flows).sum(),
                offered_gbps: report.offered_gbps,
                satisfied_gbps: report.satisfied_gbps,
                satisfaction: report.satisfaction(),
                direct_only_fraction: report.direct_only_fraction,
                indirect_fraction: report.indirect_fraction,
                unsatisfied_fraction: report.unsatisfied_fraction,
                mean_latency_ns: report.mean_latency_ns,
                epochs: report.epochs.len(),
                reconfigurations: report.reconfigurations,
                energy: energy_model.map(|m| m.account_timeline(&report)),
            }
        }
    }
}

/// Derive the per-scenario seed by hashing (FNV-1a) into the grid's base
/// seed exactly the parameters that define the offered traffic: the
/// pattern (or the timeline's full phase spec), the rack size it expands
/// over, and the replicate number.
///
/// Deliberately excluded: fabric kind, fibers, wavelengths, data rate, FEC,
/// latency, and — in temporal mode — the reallocation policy. Scenarios
/// that differ only along those axes therefore offer the *same* demand
/// (matrix or epoch sequence), so an axis sweep compares fabrics and
/// policies under identical load instead of attributing traffic-sampling
/// noise to the swept axis. The hash is position-independent: extending an
/// axis never changes the seeds of existing scenarios.
fn scenario_seed(base: u64, mcm_count: u32, load: &ScenarioLoad, replicate: u32) -> u64 {
    let mut h = Fnv1a::new(base);
    h.write_u64(mcm_count as u64);
    match load {
        ScenarioLoad::Pattern(pattern) => {
            h.write_str(&pattern.label());
            h.write_u64(pattern.demand_gbps().to_bits());
        }
        ScenarioLoad::Timeline(tc) => {
            h.write_str("timeline:");
            h.write_str(&tc.timeline.spec_label());
        }
    }
    h.write_u64(replicate as u64);
    h.finish()
}

struct Fnv1a(u64);

impl Fnv1a {
    fn new(base: u64) -> Self {
        let mut h = Fnv1a(0xCBF2_9CE4_8422_2325);
        h.write_u64(base);
        h
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_str(&mut self, s: &str) {
        for byte in s.as_bytes() {
            self.0 ^= *byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> SweepGrid {
        SweepGrid::named("test")
            .mcm_counts([16, 24])
            .fabric_kinds([FabricKind::ParallelAwgrs])
            .patterns([
                TrafficPattern::Permutation { demand_gbps: 200.0 },
                TrafficPattern::Uniform {
                    flows_per_mcm: 2,
                    demand_gbps: 150.0,
                },
            ])
            .direct_latencies_ns([25.0, 35.0])
    }

    #[test]
    fn expansion_count_is_product_of_axes() {
        let grid = small_grid();
        assert_eq!(grid.scenario_count(), 2 * 2 * 2);
        assert_eq!(grid.expand().len(), grid.scenario_count());
        let grid = grid.replicates(3);
        assert_eq!(grid.expand().len(), 2 * 2 * 2 * 3);
    }

    #[test]
    fn empty_axis_expands_to_nothing() {
        let grid = small_grid().patterns([]);
        assert_eq!(grid.scenario_count(), 0);
        let report = grid.run();
        assert!(report.rows.is_empty());
        assert!(report.summary.is_empty());
    }

    #[test]
    fn scenario_seeds_are_distinct_per_traffic_point_and_position_independent() {
        let grid = small_grid();
        let scenarios = grid.expand();
        // Seeds are a function of (mcm_count, pattern, replicate) only.
        let mut seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 2 * 2, "one seed per (mcm, pattern) point");

        // Extending the mcm axis must not change the seeds of the scenarios
        // that both grids contain.
        let extended = small_grid().mcm_counts([16, 24, 32]).expand();
        for s in &scenarios {
            let twin = extended
                .iter()
                .find(|t| {
                    t.fabric == s.fabric
                        && t.load == s.load
                        && t.direct_latency_ns == s.direct_latency_ns
                        && t.replicate == s.replicate
                })
                .expect("shared scenario must exist in extended grid");
            assert_eq!(twin.seed, s.seed);
        }
    }

    #[test]
    fn non_traffic_axes_hold_the_demand_matrix_fixed() {
        // Sweeping latency (or fabric kind) must not resample the random
        // traffic, or the sweep would attribute sampling noise to the swept
        // axis. Satisfaction is latency-independent; only latency moves.
        let grid = SweepGrid::named("hold")
            .mcm_counts([16])
            .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
            .patterns([TrafficPattern::Uniform {
                flows_per_mcm: 6,
                demand_gbps: 400.0,
            }])
            .direct_latencies_ns([25.0, 35.0]);
        let report = grid.run();
        assert_eq!(report.rows.len(), 4);
        let offered: Vec<f64> = report
            .rows
            .iter()
            .map(|r| r.metric("offered_gbps").unwrap())
            .collect();
        assert!(offered.iter().all(|&o| o == offered[0]), "{offered:?}");
        for pair in report.rows.chunks(2) {
            // Same fabric, latency 25 vs 35: identical allocation outcome.
            assert_eq!(
                pair[0].metric("satisfaction"),
                pair[1].metric("satisfaction")
            );
            assert_eq!(
                pair[0].metric("indirect_fraction"),
                pair[1].metric("indirect_fraction")
            );
            assert!(
                pair[0].metric("mean_latency_ns").unwrap()
                    < pair[1].metric("mean_latency_ns").unwrap()
            );
        }
    }

    #[test]
    fn labels_stay_unique_when_dwdm_axes_vary() {
        let grid = SweepGrid::named("labels")
            .mcm_counts([16])
            .fibers_per_mcm([16, 32])
            .wavelengths_per_fiber([32, 64])
            .gbps_per_wavelength([25.0, 50.0]);
        let scenarios = grid.expand();
        let mut labels: Vec<String> = scenarios.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), scenarios.len(), "labels must be unique");
    }

    #[test]
    fn same_grid_twice_is_byte_identical_json() {
        let grid = small_grid();
        assert_eq!(grid.run().to_json(), grid.run().to_json());
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let grid = small_grid();
        assert_eq!(grid.run(), grid.run_serial());
    }

    #[test]
    fn fabrics_are_memoized_across_scenarios() {
        // 8 scenarios, but only 2 distinct topologies (16 and 24 MCMs).
        let grid = small_grid();
        let report = grid.run();
        assert_eq!(report.summary_metric("fabrics_built"), Some(2.0));
        assert_eq!(report.summary_metric("scenarios"), Some(8.0));
    }

    #[test]
    fn small_demand_scenarios_are_fully_satisfied() {
        let grid = SweepGrid::named("sat")
            .mcm_counts([32])
            .patterns([TrafficPattern::Permutation { demand_gbps: 100.0 }]);
        let report = grid.run();
        assert_eq!(report.rows.len(), 1);
        let sat = report.rows[0].metric("satisfaction").unwrap();
        assert!((sat - 1.0).abs() < 1e-9, "satisfaction {sat}");
    }

    #[test]
    fn fec_overhead_derates_wavelength_rate() {
        let grid = SweepGrid::default();
        let s = &grid.expand()[0];
        assert!(s.fabric.gbps_per_wavelength < 25.0);
        assert!(s.fabric.gbps_per_wavelength > 24.9);
    }

    #[test]
    fn replicates_differ_but_are_deterministic() {
        let grid = SweepGrid::named("rep")
            .mcm_counts([16])
            .patterns([TrafficPattern::Uniform {
                flows_per_mcm: 8,
                demand_gbps: 400.0,
            }])
            .replicates(2);
        let scenarios = grid.expand();
        assert_eq!(scenarios.len(), 2);
        assert_ne!(scenarios[0].seed, scenarios[1].seed);
        assert_eq!(grid.run(), grid.run());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let doubled = parallel_map(&items, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    fn timeline_grid() -> SweepGrid {
        SweepGrid::named("tl")
            .mcm_counts([16])
            .timelines([
                DemandTimeline::shifting_hotspot(2, 400.0, 3, 2, 5),
                DemandTimeline::steady(TrafficPattern::Permutation { demand_gbps: 200.0 }, 4),
            ])
            .realloc_policies([
                ReallocationPolicy::Static,
                ReallocationPolicy::GreedyResteer,
            ])
    }

    #[test]
    fn timeline_axis_expands_timelines_times_policies() {
        let grid = timeline_grid();
        assert_eq!(grid.scenario_count(), 2 * 2);
        let report = grid.run();
        assert_eq!(report.rows.len(), 4);
        for row in &report.rows {
            assert!(row.metric("epochs").unwrap() >= 4.0);
            assert!(row.metric("reconfigurations").unwrap() >= 0.0);
            let sat = row.metric("satisfaction").unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&sat));
        }
        // Patterns axis is ignored in temporal mode.
        let same = timeline_grid().patterns([]).run();
        assert_eq!(same.to_json(), report.to_json());
    }

    #[test]
    fn timeline_policies_share_the_scenario_seed() {
        // The policy axis must not resample the demand: both policies of a
        // timeline see identical epoch matrices, so their rows differ only
        // through the reallocation behaviour.
        let scenarios = timeline_grid().expand();
        assert_eq!(scenarios[0].seed, scenarios[1].seed);
        assert_ne!(scenarios[0].seed, scenarios[2].seed);
        let report = timeline_grid().run();
        assert_eq!(
            report.rows[0].metric("offered_gbps"),
            report.rows[1].metric("offered_gbps")
        );
    }

    #[test]
    fn timeline_runs_are_deterministic_and_parallel_equals_serial() {
        let grid = timeline_grid();
        assert_eq!(grid.run().to_json(), grid.run().to_json());
        assert_eq!(grid.run(), grid.run_serial());
    }

    #[test]
    fn empty_policy_axis_expands_to_nothing_in_temporal_mode() {
        let grid = timeline_grid().realloc_policies([]);
        assert_eq!(grid.scenario_count(), 0);
        assert!(grid.run().rows.is_empty());
    }

    #[test]
    fn energy_axis_multiplies_scenarios_and_fills_the_energy_block() {
        let grid = small_grid().energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled]);
        assert_eq!(grid.scenario_count(), 2 * 2 * 2 * 2);
        let report = grid.run();
        assert_eq!(report.rows.len(), 16);
        assert_eq!(report.energy.len(), 16);
        for (row, (label, e)) in report.rows.iter().zip(&report.energy) {
            assert_eq!(&row.label, label);
            assert_eq!(row.metric("energy_j"), Some(e.total_joules()));
            assert!(e.total_joules() > 0.0);
        }
        assert!(report.summary_metric("total_energy_j").unwrap() > 0.0);
        // The block is serialized, and identically so across runs.
        let json = report.to_json();
        assert!(json.contains("\"energy\":["));
        assert_eq!(json, grid.run_serial().to_json());
    }

    #[test]
    fn energy_modes_share_the_scenario_seed_and_demand() {
        let grid = SweepGrid::named("e")
            .mcm_counts([16])
            .patterns([TrafficPattern::Uniform {
                flows_per_mcm: 4,
                demand_gbps: 300.0,
            }])
            .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled]);
        let scenarios = grid.expand();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].seed, scenarios[1].seed);
        assert_ne!(scenarios[0].label(), scenarios[1].label());
        let report = grid.run();
        assert_eq!(
            report.rows[0].metric("offered_gbps"),
            report.rows[1].metric("offered_gbps")
        );
        // Always-on can never draw less than utilization-scaled.
        assert!(
            report.rows[0].metric("energy_j").unwrap()
                >= report.rows[1].metric("energy_j").unwrap()
        );
    }

    #[test]
    fn no_energy_axis_means_no_energy_metrics_or_block() {
        let report = small_grid().run();
        assert!(report.energy.is_empty());
        assert!(!report.to_json().contains("\"energy\""));
        for row in &report.rows {
            assert_eq!(row.metric("energy_j"), None);
        }
        assert_eq!(report.summary_metric("total_energy_j"), None);
    }

    #[test]
    fn timeline_energy_charges_reconfigurations() {
        let grid = SweepGrid::named("te")
            .mcm_counts([16])
            .timelines([DemandTimeline::shifting_hotspot(2, 400.0, 4, 2, 5)])
            .realloc_policies([
                ReallocationPolicy::Static,
                ReallocationPolicy::GreedyResteer,
            ])
            .energy_modes([EnergyMode::UtilizationScaled]);
        let report = grid.run();
        assert_eq!(report.rows.len(), 2);
        let fixed = &report.rows[0];
        let greedy = &report.rows[1];
        assert_eq!(fixed.metric("reconfiguration_energy_j"), Some(0.0));
        let greedy_reconf_j = greedy.metric("reconfiguration_energy_j").unwrap();
        assert!(greedy_reconf_j > 0.0);
        assert!(
            (greedy_reconf_j
                - greedy.metric("reconfigurations").unwrap()
                    * EnergyConfig::default().reconfiguration_energy_j)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn wave_selective_beats_awgr_on_direct_bandwidth() {
        // Sanity of the whole pipeline: the switched fabric has ~2304 Gbps
        // direct per pair vs the AWGR's 125-150, so a heavy permutation is
        // direct-only on the switch and needs indirect help on the AWGR.
        let grid = SweepGrid::named("cmp")
            .mcm_counts([32])
            .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
            .patterns([TrafficPattern::Permutation {
                demand_gbps: 1000.0,
            }]);
        let report = grid.run();
        let awgr = &report.rows[0];
        let wave = &report.rows[1];
        assert!(wave.metric("direct_only_fraction").unwrap() >= 1.0 - 1e-9);
        assert!(awgr.metric("indirect_fraction").unwrap() > 0.0);
    }
}
