//! Paper tables and figures as sweep-engine artifacts.
//!
//! Each function here is the computational core of one `bench` binary
//! (fig7/fig9/fig10/fig11/table1/table3): it expands the figure's scenario
//! set, executes it through [`parallel_map`], and returns a
//! [`PaperArtifact`] holding both the exact text the binary prints and the
//! unified machine-readable [`SweepReport`] (emitted by the binaries with
//! `--json`). The binaries themselves are reduced to
//! grid-definition-plus-formatter shims over these functions.

use cpusim::CoreKind;
use fabric::{AdmissionPolicy, DefragPolicy, ReallocationPolicy, SpectrumPolicy};
use photonics::link::{EscapeSizing, LinkTechnology, LinkTechnologyKind};
use rack::mcm::RackComposition;
use workloads::cpu::{rodinia_cpu_gpu_intersection, CpuSuite, InputSize};
use workloads::{DemandTimeline, TrafficPattern};

use crate::cpu_experiments::{
    miss_rate_correlation, run_cpu_experiment, run_cpu_experiment_subset, CpuExperimentConfig,
};
use crate::energy::EnergyMode;
use crate::gpu_experiments::{
    average_slowdown, gpu_correlations, run_gpu_experiment, GpuExperimentConfig,
};
use crate::report::{
    format_gpu_results, format_miss_rate_rows, format_sweep_report, SweepReport, SweepRow,
};
use crate::sweep::{parallel_map, SweepGrid};

/// A regenerated paper artifact: the exact text its binary prints plus the
/// unified sweep-report schema.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperArtifact {
    /// Machine-readable result rows and summary metrics.
    pub report: SweepReport,
    /// The full plain-text output of the artifact binary.
    pub text: String,
}

impl PaperArtifact {
    /// Print the artifact: the JSON report if `--json` is among the process
    /// arguments, the plain text otherwise. This is the whole `main` of the
    /// ported artifact binaries.
    pub fn emit(&self) {
        if std::env::args().any(|a| a == "--json") {
            println!("{}", self.report.to_json());
        } else {
            print!("{}", self.text);
        }
    }
}

fn option_metric(v: Option<f64>) -> f64 {
    v.unwrap_or(f64::NAN)
}

/// Fig. 7 — per-benchmark slowdown vs. LLC miss rate with Pearson
/// correlations (PARSEC large and Rodinia on in-order cores).
pub fn fig7() -> PaperArtifact {
    let cfg = CpuExperimentConfig {
        latencies_ns: vec![0.0, 35.0],
        ..CpuExperimentConfig::default()
    };
    let results = run_cpu_experiment(&cfg);

    let parsec_large = miss_rate_correlation(&results, 35.0, |r| {
        r.core_kind == CoreKind::InOrder
            && r.benchmark.suite == CpuSuite::Parsec
            && r.benchmark.input == InputSize::Large
    });
    let rodinia = miss_rate_correlation(&results, 35.0, |r| {
        r.core_kind == CoreKind::InOrder && r.benchmark.suite == CpuSuite::Rodinia
    });
    let parsec_all = miss_rate_correlation(&results, 35.0, |r| {
        r.core_kind == CoreKind::InOrder && r.benchmark.suite == CpuSuite::Parsec
    });

    let mut text = String::new();
    text.push_str(&format_miss_rate_rows(
        "Fig. 7 (left) — PARSEC large, in-order",
        &parsec_large.points,
    ));
    text.push('\n');
    text.push_str(&format!("Pearson r = {:?}\n\n", parsec_large.pearson));
    text.push_str(&format_miss_rate_rows(
        "Fig. 7 (right) — Rodinia, in-order",
        &rodinia.points,
    ));
    text.push('\n');
    text.push_str(&format!("Pearson r = {:?}\n\n", rodinia.pearson));
    text.push_str(&format!(
        "PARSEC all inputs, in-order: Pearson r = {:?}\n",
        parsec_all.pearson
    ));

    let mut report = SweepReport::new("fig7");
    for (panel, corr) in [("parsec-large", &parsec_large), ("rodinia", &rodinia)] {
        for (name, slowdown, miss) in &corr.points {
            report.rows.push(SweepRow {
                label: name.clone(),
                params: vec![
                    ("panel".to_string(), panel.to_string()),
                    ("core".to_string(), "in-order".to_string()),
                    ("latency_ns".to_string(), "35".to_string()),
                ],
                metrics: vec![
                    ("slowdown_percent".to_string(), *slowdown),
                    ("llc_miss_rate".to_string(), *miss),
                ],
            });
        }
    }
    report.summary = vec![
        (
            "pearson_parsec_large".to_string(),
            option_metric(parsec_large.pearson),
        ),
        (
            "pearson_rodinia".to_string(),
            option_metric(rodinia.pearson),
        ),
        (
            "pearson_parsec_all".to_string(),
            option_metric(parsec_all.pearson),
        ),
    ];
    for kind in [CoreKind::InOrder, CoreKind::OutOfOrder] {
        let all = miss_rate_correlation(&results, 35.0, |r| r.core_kind == kind);
        text.push_str(&format!(
            "All suites, {kind}: Pearson r = {:?}\n",
            all.pearson
        ));
        report
            .summary
            .push((format!("pearson_all_{kind}"), option_metric(all.pearson)));
    }
    PaperArtifact { report, text }
}

/// Fig. 9 — GPU slowdown for 25/30/35 ns of additional LLC-HBM latency.
pub fn fig9() -> PaperArtifact {
    let results = run_gpu_experiment(&GpuExperimentConfig::default());
    let latencies = [25.0, 30.0, 35.0];

    let mut text = format_gpu_results(
        "Fig. 9 — GPU slowdown for 25/30/35 ns of additional LLC-HBM latency",
        &results,
        &latencies,
    );
    text.push('\n');
    let avg = average_slowdown(&results, 35.0);
    text.push_str(&format!(
        "average slowdown at +35 ns: {avg:.2}% (paper: 5.35%)\n"
    ));

    let mut report = SweepReport::new("fig9");
    for r in &results {
        report.rows.push(SweepRow {
            label: r.name.clone(),
            params: vec![("suite".to_string(), r.suite.clone())],
            metrics: latencies
                .iter()
                .map(|&l| {
                    (
                        format!("slowdown_{l}ns_percent"),
                        option_metric(r.slowdown_at(l)),
                    )
                })
                .collect(),
        });
    }
    report.summary = vec![("average_slowdown_35ns_percent".to_string(), avg)];
    PaperArtifact { report, text }
}

/// Fig. 10 — GPU slowdown vs. LLC miss rate and HBM transactions per
/// instruction, with Pearson correlations.
pub fn fig10() -> PaperArtifact {
    let results = run_gpu_experiment(&GpuExperimentConfig::default());

    let mut text = String::new();
    text.push_str("Fig. 10 — GPU slowdown vs LLC miss rate and HBM transactions (+35 ns)\n");
    text.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>12} {:>10}\n",
        "application", "slowdown%", "L2 miss%", "HBM tx/instr", "mem frac"
    ));
    let mut report = SweepReport::new("fig10");
    for r in &results {
        let slowdown = r.slowdown_at(35.0).unwrap_or(0.0);
        text.push_str(&format!(
            "{:<16} {:>9.2}% {:>11.1}% {:>12.3} {:>10.2}\n",
            r.name,
            slowdown,
            r.l2_miss_rate * 100.0,
            r.hbm_transactions_per_instruction,
            r.memory_instruction_fraction
        ));
        report.rows.push(SweepRow {
            label: r.name.clone(),
            params: vec![("suite".to_string(), r.suite.clone())],
            metrics: vec![
                ("slowdown_35ns_percent".to_string(), slowdown),
                ("l2_miss_rate".to_string(), r.l2_miss_rate),
                (
                    "hbm_transactions_per_instruction".to_string(),
                    r.hbm_transactions_per_instruction,
                ),
                (
                    "memory_instruction_fraction".to_string(),
                    r.memory_instruction_fraction,
                ),
            ],
        });
    }
    let c = gpu_correlations(&results, 35.0);
    text.push_str("\nPearson correlations of slowdown with:\n");
    text.push_str(&format!(
        "  LLC (L2) miss rate          : {:?}\n",
        c.with_l2_miss_rate
    ));
    text.push_str(&format!(
        "  HBM transactions/instruction: {:?}\n",
        c.with_hbm_transactions
    ));
    text.push_str(&format!(
        "  memory instruction fraction : {:?}\n",
        c.with_memory_fraction
    ));
    report.summary = vec![
        (
            "pearson_l2_miss_rate".to_string(),
            option_metric(c.with_l2_miss_rate),
        ),
        (
            "pearson_hbm_transactions".to_string(),
            option_metric(c.with_hbm_transactions),
        ),
        (
            "pearson_memory_fraction".to_string(),
            option_metric(c.with_memory_fraction),
        ),
    ];
    PaperArtifact { report, text }
}

/// Fig. 11 — CPU vs. GPU slowdown on the shared Rodinia benchmarks.
pub fn fig11() -> PaperArtifact {
    let shared = rodinia_cpu_gpu_intersection();
    let cfg = CpuExperimentConfig {
        latencies_ns: vec![0.0, 35.0],
        ..CpuExperimentConfig::default()
    };
    let cpu = run_cpu_experiment_subset(&cfg, |b| {
        b.suite == CpuSuite::Rodinia && shared.contains(&b.name.as_str())
    });
    let gpu = run_gpu_experiment(&GpuExperimentConfig::default());

    let mut text = String::new();
    text.push_str("Fig. 11 — CPU vs GPU slowdown on shared Rodinia benchmarks (+35 ns)\n");
    text.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>10}\n",
        "benchmark", "in-order CPU", "OOO CPU", "GPU"
    ));
    let mut report = SweepReport::new("fig11");
    for name in &shared {
        let io = cpu
            .iter()
            .find(|r| r.benchmark.name == *name && r.core_kind == CoreKind::InOrder)
            .and_then(|r| r.slowdown_at(35.0))
            .unwrap_or(f64::NAN);
        let ooo = cpu
            .iter()
            .find(|r| r.benchmark.name == *name && r.core_kind == CoreKind::OutOfOrder)
            .and_then(|r| r.slowdown_at(35.0))
            .unwrap_or(f64::NAN);
        let g = gpu
            .iter()
            .find(|r| r.name == *name)
            .and_then(|r| r.slowdown_at(35.0))
            .unwrap_or(f64::NAN);
        text.push_str(&format!("{name:<16} {io:>11.1}% {ooo:>11.1}% {g:>9.2}%\n"));
        report.rows.push(SweepRow {
            label: name.to_string(),
            params: vec![
                ("suite".to_string(), "Rodinia".to_string()),
                ("latency_ns".to_string(), "35".to_string()),
            ],
            metrics: vec![
                ("inorder_cpu_slowdown_percent".to_string(), io),
                ("ooo_cpu_slowdown_percent".to_string(), ooo),
                ("gpu_slowdown_percent".to_string(), g),
            ],
        });
    }
    PaperArtifact { report, text }
}

/// Table I — WDM photonic link technologies sized for a 2 TB/s escape
/// target. The grid is the technology catalogue; each row is computed
/// independently through the engine.
pub fn table1() -> PaperArtifact {
    let target = EscapeSizing::paper_escape_target();
    let rows: Vec<EscapeSizing> = parallel_map(&LinkTechnologyKind::ALL, |&kind| {
        LinkTechnology::table_i(kind).escape_sizing(target)
    });

    let mut text = String::new();
    text.push_str("Table I — WDM photonic link technologies (2 TB/s escape target)\n");
    text.push_str(&format!(
        "{:<18} {:>10} {:>10} {:>16} {:>7} {:>10}\n",
        "technology", "Gbps/link", "pJ/bit", "Gbps x channels", "#links", "agg. W"
    ));
    let mut report = SweepReport::new("table1");
    for row in &rows {
        let t = row.technology;
        text.push_str(&format!(
            "{:<18} {:>10.0} {:>10.2} {:>9.0} x {:<4} {:>7} {:>10.1}\n",
            t.kind.to_string(),
            t.bandwidth.gbps(),
            t.energy_per_bit.pj(),
            t.channel_rate.gbps(),
            t.channels,
            row.links,
            row.aggregate_power_w
        ));
        report.rows.push(SweepRow {
            label: t.kind.to_string(),
            params: vec![("escape_target_tbytes_per_s".to_string(), "2".to_string())],
            metrics: vec![
                ("gbps_per_link".to_string(), t.bandwidth.gbps()),
                ("pj_per_bit".to_string(), t.energy_per_bit.pj()),
                ("channel_gbps".to_string(), t.channel_rate.gbps()),
                ("channels".to_string(), t.channels as f64),
                ("links".to_string(), row.links as f64),
                ("aggregate_power_w".to_string(), row.aggregate_power_w),
            ],
        });
    }
    PaperArtifact { report, text }
}

/// Table III — chips per MCM and MCMs per rack under the 6.4 TB/s per-MCM
/// escape budget.
pub fn table3() -> PaperArtifact {
    let c = RackComposition::paper_rack();
    let rows = parallel_map(&c.packings, |p| *p);

    let mut text = String::new();
    text.push_str("Table III — chips per MCM and MCMs per rack (6.4 TB/s escape per MCM)\n");
    text.push_str(&format!(
        "{:<6} {:>13} {:>13} {:>12} {:>18}\n",
        "chip", "chips/MCM", "MCMs/rack", "chips", "GB/s per chip"
    ));
    let mut report = SweepReport::new("table3");
    for p in &rows {
        text.push_str(&format!(
            "{:<6} {:>13} {:>13} {:>12} {:>18.1}\n",
            p.kind.to_string(),
            p.chips_per_mcm,
            p.mcms_per_rack,
            p.total_chips,
            p.escape_per_chip.gbytes_per_s()
        ));
        report.rows.push(SweepRow {
            label: p.kind.to_string(),
            params: vec![("mcm_escape_tbytes_per_s".to_string(), "6.4".to_string())],
            metrics: vec![
                ("chips_per_mcm".to_string(), p.chips_per_mcm as f64),
                ("mcms_per_rack".to_string(), p.mcms_per_rack as f64),
                ("total_chips".to_string(), p.total_chips as f64),
                (
                    "escape_per_chip_gbytes_per_s".to_string(),
                    p.escape_per_chip.gbytes_per_s(),
                ),
            ],
        });
    }
    text.push_str(&format!("Total MCMs: {}\n", c.total_mcms()));
    report.summary = vec![("total_mcms".to_string(), c.total_mcms() as f64)];
    PaperArtifact { report, text }
}

/// Section VI-C — the per-rack photonic power overhead, computed through
/// the sweep engine's energy layer at the paper's design point. The text is
/// byte-identical to the pre-engine `power_overhead` binary; the report
/// additionally carries the utilization-scaled counterpoint row.
pub fn power_overhead() -> PaperArtifact {
    let grid = SweepGrid::named("power_overhead")
        .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled]);
    let report = grid.run();
    let (_, always_on) = report
        .energy
        .iter()
        .find(|(_, e)| e.mode == EnergyMode::AlwaysOn)
        .expect("always-on mode is on the energy axis");

    let mut text = String::new();
    text.push_str("Power overhead (Section VI-C)\n");
    text.push_str(&format!(
        "  transceiver power : {:>10.1} W\n",
        always_on.transceiver_energy_j / always_on.duration_s
    ));
    text.push_str(&format!(
        "  switch power      : {:>10.1} W\n",
        always_on.idle_energy_j / always_on.duration_s
    ));
    text.push_str(&format!(
        "  photonic total    : {:>10.1} W\n",
        always_on.watts()
    ));
    text.push_str(&format!(
        "  baseline rack     : {:>10.1} W\n",
        always_on.compute_power_w
    ));
    text.push_str(&format!(
        "  overhead          : {:>10.2} %\n",
        always_on.photonic_compute_ratio() * 100.0
    ));
    PaperArtifact { report, text }
}

/// The `energy --smoke` grid: a small fixed energy-aware sweep (two PR 3
/// timelines x three reallocation policies x both energy modes on a 16-MCM
/// rack) that CI runs end to end and the golden tests pin as JSON.
pub fn energy_smoke() -> PaperArtifact {
    let grid = SweepGrid::named("energy_smoke")
        .mcm_counts([16])
        .timelines([
            DemandTimeline::shifting_hotspot(2, 400.0, 4, 2, 5),
            DemandTimeline::steady(TrafficPattern::Permutation { demand_gbps: 200.0 }, 4),
        ])
        .realloc_policies([
            ReallocationPolicy::Static,
            ReallocationPolicy::GreedyResteer,
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.9,
            },
        ])
        .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled]);
    let report = grid.run();
    let text = format_sweep_report(&report);
    PaperArtifact { report, text }
}

/// The `flexgrid --smoke` grid: a small fixed flex-grid spectrum sweep (the
/// PR 7 elastic-churn timeline plus a shifting hotspot x three spectrum
/// policies x both energy modes on a 16-MCM rack) that CI runs end to end
/// and the golden tests pin as JSON.
pub fn flexgrid_smoke() -> PaperArtifact {
    let grid = SweepGrid::named("flexgrid_smoke")
        .mcm_counts([16])
        .timelines([
            // 600 Gbps saturates same-pair links on the 16-MCM board, so the
            // fixture pins nonzero blocking and fires the on-block defrag
            // path; the 400 Gbps hotspot is the uncontended contrast.
            DemandTimeline::elastic_churn(600.0, 2),
            DemandTimeline::shifting_hotspot(2, 400.0, 4, 2, 5),
        ])
        .spectrum_policies([
            SpectrumPolicy::default(),
            SpectrumPolicy {
                admission: AdmissionPolicy::BestFit,
                defrag: DefragPolicy::OnBlock,
            },
            SpectrumPolicy {
                admission: AdmissionPolicy::ExactFit,
                defrag: DefragPolicy::EveryEpoch,
            },
        ])
        .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled]);
    let report = grid.run();
    let text = format_sweep_report(&report);
    PaperArtifact { report, text }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_artifact_matches_direct_computation() {
        let a = table1();
        assert_eq!(a.report.rows.len(), 5);
        assert!(a.text.starts_with("Table I"));
        let direct = EscapeSizing::table_i_rows();
        for (row, d) in a.report.rows.iter().zip(&direct) {
            assert_eq!(row.metric("links"), Some(d.links as f64));
        }
        // Artifacts are deterministic end to end.
        assert_eq!(a.report.to_json(), table1().report.to_json());
    }

    #[test]
    fn table3_artifact_reports_350_mcms() {
        let a = table3();
        assert_eq!(a.report.summary_metric("total_mcms"), Some(350.0));
        assert!(a.text.contains("Total MCMs: 350"));
        assert!(!a.report.rows.is_empty());
    }

    #[test]
    fn power_overhead_artifact_reproduces_section_vi_c() {
        let a = power_overhead();
        assert_eq!(a.report.energy.len(), 2);
        let (_, always_on) = &a.report.energy[0];
        assert_eq!(always_on.mode, EnergyMode::AlwaysOn);
        // ~10-11 kW of photonics at ~5% of the compute baseline.
        assert!(always_on.watts() > 9_500.0 && always_on.watts() < 11_500.0);
        let pct = always_on.photonic_compute_ratio() * 100.0;
        assert!(pct > 4.0 && pct < 6.0, "overhead {pct}%");
        // The text is the pre-engine binary's output, byte for byte.
        assert!(a.text.starts_with("Power overhead (Section VI-C)\n"));
        assert!(a.text.contains("transceiver power :     8960.0 W"));
        assert!(a.text.contains("switch power      :     1000.0 W"));
        assert!(a.text.contains("photonic total    :     9960.0 W"));
        assert!(a.text.contains("baseline rack     :   210176.0 W"));
        assert!(a.text.contains("overhead          :       4.74 %"));
        assert_eq!(a.report.to_json(), power_overhead().report.to_json());
    }

    #[test]
    fn energy_smoke_artifact_covers_both_modes_and_all_policies() {
        let a = energy_smoke();
        assert_eq!(a.report.rows.len(), 2 * 3 * 2);
        assert_eq!(a.report.energy.len(), a.report.rows.len());
        assert!(a.text.contains("energy:"));
        assert_eq!(a.report.to_json(), energy_smoke().report.to_json());
    }

    #[test]
    fn flexgrid_smoke_artifact_covers_both_modes_and_all_policies() {
        let a = flexgrid_smoke();
        assert_eq!(a.report.rows.len(), 2 * 3 * 2);
        assert_eq!(a.report.energy.len(), a.report.rows.len());
        assert!(a.text.contains("energy:"));
        for row in &a.report.rows {
            let blocking = row.metric("blocking_probability").unwrap();
            assert!((0.0..=1.0).contains(&blocking), "blocking {blocking}");
            assert!(row.metric("slots_in_use").unwrap() > 0.0);
        }
        // The churn timeline saturates the board (nonzero blocking, on-block
        // defrag fires); the hotspot contrast rows stay uncontended.
        assert!(a.report.rows[0].metric("blocking_probability").unwrap() > 0.0);
        assert!(a.report.rows[2].metric("defrag_events").unwrap() > 0.0);
        assert_eq!(a.report.rows[6].metric("blocking_probability"), Some(0.0));
        assert_eq!(a.report.to_json(), flexgrid_smoke().report.to_json());
    }

    #[test]
    fn fig9_and_fig10_artifacts_cover_all_24_applications() {
        let f9 = fig9();
        assert_eq!(f9.report.rows.len(), 24);
        assert!(
            f9.report
                .summary_metric("average_slowdown_35ns_percent")
                .unwrap()
                > 0.0
        );
        assert!(f9.text.contains("average slowdown at +35 ns"));
        let f10 = fig10();
        assert_eq!(f10.report.rows.len(), 24);
        assert!(f10.report.summary_metric("pearson_l2_miss_rate").unwrap() > 0.5);
    }
}
