//! The execution layer: the order-preserving [`parallel_map`] primitive,
//! thread-count plumbing, the `Arc`-shared fabric memoization cache, and
//! the batched streaming runner behind [`SweepGrid::run`],
//! [`SweepGrid::run_streaming`], and [`SweepGrid::run_sharded`].
//!
//! Execution is *streaming by construction*: scenarios are decoded from
//! the lazy [`ScenarioIter`](crate::sweep::ScenarioIter) one batch at a
//! time, each batch fans out across the thread pool, and summary metrics
//! (and energy totals) fold into a running aggregator in scenario order.
//! `run` is simply the streaming path with every row retained, so the
//! byte-identical golden fixtures exercise the same machinery a
//! million-scenario grid uses with a row cap.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fabric::{
    FabricKind, FlexGridArena, FlexGridConfig, FlexGridSimulator, Flow, FlowArena, FlowSimConfig,
    FlowSimulator, RackFabric, RackFabricConfig, TimelineArena, TimelineConfig, TimelineSimulator,
};
use rayon::prelude::*;
use workloads::TrafficPattern;

use crate::energy::{EnergyConfig, EnergyModel};
use crate::report::{ReuseStats, SweepReport, SweepRow, ThroughputStats};
use crate::sweep::grid::SweepGrid;
use crate::sweep::scenario::{FlexGridRowMetrics, Scenario, ScenarioLoad, ScenarioResult};

/// Run `f` over every item, in parallel, preserving input order.
///
/// This is the engine's only execution primitive: the grid runner, the CPU
/// and GPU experiment drivers, and the ported table/figure artifacts all go
/// through it, so every sweep in the workspace executes on the vendored
/// chunk-stealing thread pool at once. Results are byte-identical to a
/// serial run at any thread count (the pool preserves order and never
/// reorders reductions), and a panic in `f` propagates to the caller.
pub fn parallel_map<I, R, F>(items: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync + Send,
{
    items.par_iter().map(f).collect()
}

/// [`parallel_map`] with per-worker scratch state: each pool worker builds
/// one `S` with `init` and reuses it for every item it steals (rayon's
/// `map_init` shape).
///
/// This is the arena hook the scenario executor runs on — one
/// [`FlowArena`]/[`TimelineArena`] pair per worker thread, reused across
/// thousands of scenarios, so the hot path stops allocating per scenario.
/// The determinism contract is unchanged *provided* `f`'s result does not
/// depend on the state's history (which pure scratch buffers satisfy):
/// results come back in input order, byte-identical at any thread count.
///
/// ```
/// use disagg_core::sweep::parallel_map_with;
///
/// let squares = parallel_map_with(
///     &[1u64, 2, 3, 4],
///     Vec::<u64>::new, // per-worker scratch: a reusable buffer
///     |scratch, &x| {
///         scratch.clear();
///         scratch.extend((0..x).map(|_| x));
///         scratch.iter().sum::<u64>()
///     },
/// );
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map_with<I, S, R, INIT, F>(items: &[I], init: INIT, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &I) -> R + Sync,
{
    items.par_iter().map_init(init, f).collect()
}

/// Entries the per-worker demand memo holds before it is wiped. Eviction
/// can never change results (a miss just regenerates the matrix), so a
/// blunt clear-on-cap keeps the bound exact with zero bookkeeping.
const DEMAND_MEMO_CAP: usize = 128;

/// Demand-memo key: `(demand identity label, mcm_count, effective seed)`.
type MemoKey = (String, u32, u64);

/// Per-worker reusable simulator state: one flow-solver arena, one
/// timeline arena, one flex-grid arena, and the bounded demand-matrix
/// memo, built once per pool worker and threaded through every scenario
/// that worker executes. Purely scratch — see
/// [`FlowArena`]/[`TimelineArena`]; reuse never changes results.
pub(crate) struct WorkerScratch {
    flow: FlowArena,
    timeline: TimelineArena,
    flexgrid: FlexGridArena,
    /// Static demand matrices keyed by `(pattern memo key, mcm_count,
    /// effective seed)` — see [`TrafficPattern::memo_key`]. Replicates of a
    /// seed-insensitive pattern, and every fabric/DWDM/FEC/latency/energy
    /// variant of any pattern, hit one entry.
    flows_memo: HashMap<MemoKey, Arc<Vec<Flow>>>,
    /// Timeline epoch matrices keyed by `(spec label, mcm_count, seed)`.
    /// Policies are *not* in the key: every reallocation or spectrum policy
    /// of a timeline — and the wavelength vs flex-grid layers themselves —
    /// share one expansion.
    epochs_memo: HashMap<MemoKey, Arc<Vec<Vec<Flow>>>>,
}

impl WorkerScratch {
    pub(crate) fn new() -> Self {
        WorkerScratch {
            flow: FlowArena::new(),
            timeline: TimelineArena::new(),
            flexgrid: FlexGridArena::new(),
            flows_memo: HashMap::new(),
            epochs_memo: HashMap::new(),
        }
    }

    /// Look up or expand a static pattern's demand matrix. `memo: false`
    /// (the `--no-reuse` path) bypasses the cache entirely.
    fn flows(
        &mut self,
        pattern: &TrafficPattern,
        mcm_count: u32,
        seed: u64,
        memo: bool,
        reused: &AtomicUsize,
    ) -> Arc<Vec<Flow>> {
        if !memo {
            return Arc::new(pattern.flows(mcm_count, seed));
        }
        let key = (pattern.memo_key(), mcm_count, pattern.effective_seed(seed));
        if let Some(hit) = self.flows_memo.get(&key) {
            reused.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        let flows = Arc::new(pattern.flows(mcm_count, seed));
        if self.flows_memo.len() >= DEMAND_MEMO_CAP {
            self.flows_memo.clear();
        }
        self.flows_memo.insert(key, flows.clone());
        flows
    }

    /// Look up or expand a timeline's epoch matrices (shared across every
    /// policy and across the wavelength/flex-grid layers).
    fn epochs(
        &mut self,
        timeline: &workloads::DemandTimeline,
        mcm_count: u32,
        seed: u64,
        memo: bool,
        reused: &AtomicUsize,
    ) -> Arc<Vec<Vec<Flow>>> {
        if !memo {
            return Arc::new(timeline.epoch_matrices(mcm_count, seed));
        }
        let key = (timeline.spec_label(), mcm_count, seed);
        if let Some(hit) = self.epochs_memo.get(&key) {
            reused.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        let epochs = Arc::new(timeline.epoch_matrices(mcm_count, seed));
        if self.epochs_memo.len() >= DEMAND_MEMO_CAP {
            self.epochs_memo.clear();
        }
        self.epochs_memo.insert(key, epochs.clone());
        epochs
    }
}

/// Fix the engine's thread count from a CLI request, falling back to the
/// `PD_THREADS` environment variable and then to the machine's available
/// parallelism. Returns the effective thread count.
///
/// Binaries call this once at startup (`--threads N` wins over
/// `PD_THREADS=N`, which wins over the hardware default); the first caller
/// in a process pins the global setting, as with rayon's
/// `ThreadPoolBuilder::build_global`. Tests that need a specific count use
/// [`rayon::with_max_threads`] instead, which scopes the override to a
/// closure.
pub fn configure_threads(requested: Option<usize>) -> usize {
    let threads = requested
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var("PD_THREADS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global();
    rayon::current_num_threads()
}

/// Knobs of the streaming execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Scenarios decoded and executed per parallel batch. The default
    /// (4096) keeps per-batch overhead negligible while bounding peak
    /// memory at one batch of scenarios plus one batch of results.
    pub batch_size: usize,
    /// Maximum number of rows (and energy entries) retained in the
    /// returned report; `None` keeps every row. Summary metrics always
    /// aggregate over *all* executed scenarios, capped or not.
    pub row_cap: Option<usize>,
    /// Whether the executor's computation-reuse layer is enabled (the
    /// default): per-batch dedup of physically identical solves with
    /// energy-replay for the duplicates, plus the per-worker demand-matrix
    /// memo. Reuse never changes a single output byte — `false` (the
    /// `--no-reuse` escape hatch) exists for A/B debugging and benchmarks,
    /// and controls whether [`SweepReport::reuse`] is populated.
    pub reuse: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            batch_size: 4096,
            row_cap: None,
            reuse: true,
        }
    }
}

impl StreamConfig {
    /// Streaming config with a row cap.
    pub fn with_row_cap(cap: usize) -> Self {
        StreamConfig {
            row_cap: Some(cap),
            ..StreamConfig::default()
        }
    }
}

impl SweepGrid {
    /// Execute the grid in parallel on the vendored thread pool and collect
    /// a [`SweepReport`]. Results are byte-identical to
    /// [`SweepGrid::run_serial`] at any thread count.
    pub fn run(&self) -> SweepReport {
        self.run_with(true, &StreamConfig::default())
    }

    /// Execute the grid one scenario at a time (reference implementation for
    /// the parallel-equivalence contract).
    pub fn run_serial(&self) -> SweepReport {
        self.run_with(false, &StreamConfig::default())
    }

    /// Execute the grid through the streaming path with explicit knobs:
    /// bounded batches and an optional row cap, so a multi-million-scenario
    /// grid completes without ever materializing all rows. With
    /// `row_cap: None` the result is byte-identical to [`SweepGrid::run`].
    ///
    /// ```
    /// use disagg_core::sweep::{StreamConfig, SweepGrid};
    ///
    /// let grid = SweepGrid::named("s").mcm_counts([16]).replicates(64);
    /// let capped = grid.run_streaming(&StreamConfig::with_row_cap(4));
    /// assert_eq!(capped.rows.len(), 4);
    /// // The summary still aggregates all 64 replicates.
    /// assert_eq!(capped.summary_metric("scenarios"), Some(64.0));
    /// assert_eq!(capped.summary, grid.run().summary);
    /// ```
    pub fn run_streaming(&self, config: &StreamConfig) -> SweepReport {
        self.run_with(true, config)
    }

    /// Execute the grid, emitting rows in shards of `rows_per_shard`
    /// through `emit` (each shard a self-contained [`SweepReport`] named
    /// `{name}.shard{k}`), and return a summary-only master report. This is
    /// the JSON-output path for grids too large for one document: peak
    /// memory is one shard, whatever the grid size. A
    /// [`StreamConfig::row_cap`] bounds the total rows emitted across all
    /// shards; the summary still aggregates every scenario.
    pub fn run_sharded(
        &self,
        config: &StreamConfig,
        rows_per_shard: usize,
        emit: &mut dyn FnMut(SweepReport),
    ) -> SweepReport {
        let rows_per_shard = rows_per_shard.max(1);
        let row_cap = config.row_cap.unwrap_or(usize::MAX);
        let mut rows_emitted = 0usize;
        let mut aggregator = StreamAggregator::new();
        let mut shard_index = 0usize;
        let mut shard = SweepReport::new(format!("{}.shard0", self.name));
        let mut accum = ReuseAccum::new();
        let started = std::time::Instant::now();
        let fabrics_built = self.drive(true, config, &mut accum, &mut |result| {
            aggregator.absorb(&result);
            if rows_emitted + shard.rows.len() < row_cap {
                push_row(&mut shard, result);
            }
            if shard.rows.len() >= rows_per_shard {
                shard_index += 1;
                rows_emitted += shard.rows.len();
                let full = std::mem::replace(
                    &mut shard,
                    SweepReport::new(format!("{}.shard{shard_index}", self.name)),
                );
                emit(full);
            }
        });
        let wall_s = started.elapsed().as_secs_f64();
        if !shard.rows.is_empty() {
            emit(shard);
        }
        let mut master = SweepReport::new(self.name.clone());
        let scenarios = aggregator.scenarios;
        aggregator.finish(&mut master, fabrics_built);
        master.throughput = Some(ThroughputStats {
            scenarios,
            wall_s,
            threads: rayon::current_num_threads(),
        });
        master.reuse = config.reuse.then(|| accum.stats());
        master
    }

    fn run_with(&self, parallel: bool, config: &StreamConfig) -> SweepReport {
        let row_cap = config.row_cap.unwrap_or(usize::MAX);
        let mut report = SweepReport::new(self.name.clone());
        let mut aggregator = StreamAggregator::new();
        let mut accum = ReuseAccum::new();
        let started = std::time::Instant::now();
        let fabrics_built = self.drive(parallel, config, &mut accum, &mut |result| {
            aggregator.absorb(&result);
            if report.rows.len() < row_cap {
                push_row(&mut report, result);
            }
        });
        let wall_s = started.elapsed().as_secs_f64();
        let scenarios = aggregator.scenarios;
        aggregator.finish(&mut report, fabrics_built);
        report.throughput = Some(ThroughputStats {
            scenarios,
            wall_s,
            threads: if parallel {
                rayon::current_num_threads()
            } else {
                1
            },
        });
        report.reuse = config.reuse.then(|| accum.stats());
        report
    }

    /// Number of distinct fabric topologies the grid's hardware axes
    /// (fabric kind, rack size, fibers, wavelengths, data rate, FEC
    /// derating) produce — the value `run` reports as `fabrics_built`,
    /// computed without building anything. The jobs layer uses this to
    /// emit a correct merged summary even when every shard came from the
    /// on-disk cache and no fabric was ever constructed.
    ///
    /// ```
    /// use disagg_core::sweep::SweepGrid;
    ///
    /// let grid = SweepGrid::named("d").mcm_counts([16, 24]).replicates(10);
    /// assert_eq!(grid.distinct_fabric_count(), 2);
    /// assert_eq!(grid.run().summary_metric("fabrics_built"), Some(2.0));
    /// ```
    pub fn distinct_fabric_count(&self) -> usize {
        unique_fabric_configs(self).len()
    }

    /// The core streaming driver: decode scenarios lazily in batches,
    /// execute each batch across the pool (or serially) through the
    /// dedup-planned reuse layer, and visit every result in grid-expansion
    /// order. Returns the number of distinct fabrics built; reuse
    /// accounting folds into `accum`.
    fn drive(
        &self,
        parallel: bool,
        config: &StreamConfig,
        accum: &mut ReuseAccum,
        visit: &mut dyn FnMut(ScenarioResult),
    ) -> usize {
        let batch_size = config.batch_size.max(1);
        let mut scenarios = self.scenarios();
        if scenarios.len() == 0 {
            return 0;
        }
        // Every distinct topology is built exactly once, up front, from the
        // hardware axes alone (independent of how many load points,
        // latencies, or replicates multiply the grid); worker threads then
        // share the built `RackFabric`s through `Arc` instead of cloning
        // per scenario.
        let cache = FabricCache::from_grid(self, parallel);
        let hop = self.indirect_hop_latency_ns;
        let energy_config = self.energy_config;
        let mut batch: Vec<Scenario> = Vec::with_capacity(batch_size.min(scenarios.len()));
        // Serial runs reuse one scratch for the entire grid; parallel
        // batches build one per pool worker via `parallel_map_with`.
        let mut serial_scratch = WorkerScratch::new();
        loop {
            batch.clear();
            batch.extend(scenarios.by_ref().take(batch_size));
            if batch.is_empty() {
                break;
            }
            let results = execute_batch(
                &batch,
                &cache,
                hop,
                &energy_config,
                config.reuse,
                if parallel {
                    None
                } else {
                    Some(&mut serial_scratch)
                },
                accum,
            );
            for result in results {
                visit(result);
            }
        }
        cache.len()
    }
}

/// Append one result's row (and energy entry, if any) to a report.
pub(crate) fn push_row(report: &mut SweepReport, result: ScenarioResult) {
    let row: SweepRow = result.to_row();
    if let Some(energy) = result.energy {
        report.energy.push((row.label.clone(), energy));
    }
    report.rows.push(row);
}

/// Running aggregation of the summary metrics, folding results in
/// grid-expansion order with exactly the operation sequence the
/// materialized implementation used — so the emitted summary block is
/// byte-identical whether rows were retained or streamed past.
pub(crate) struct StreamAggregator {
    pub(crate) scenarios: usize,
    satisfaction_sum: f64,
    satisfaction_min: f64,
    latency_sum: f64,
    energy_count: usize,
    energy_total_j: f64,
    energy_watts_sum: f64,
}

impl StreamAggregator {
    pub(crate) fn new() -> Self {
        StreamAggregator {
            scenarios: 0,
            satisfaction_sum: 0.0,
            satisfaction_min: f64::MAX,
            latency_sum: 0.0,
            energy_count: 0,
            energy_total_j: 0.0,
            energy_watts_sum: 0.0,
        }
    }

    fn absorb(&mut self, result: &ScenarioResult) {
        self.absorb_parts(
            result.satisfaction,
            result.mean_latency_ns,
            result.energy.as_ref(),
        );
    }

    /// Fold one scenario's summary contribution from its bare parts. This
    /// is `absorb` with the [`ScenarioResult`] taken apart, so the jobs
    /// layer can re-fold a summary from *parsed* shard rows (whose
    /// satisfaction/latency/energy fields round-trip bit-exactly through
    /// JSON) with the identical operation sequence — the merged summary is
    /// byte-identical to an uninterrupted run's.
    pub(crate) fn absorb_parts(
        &mut self,
        satisfaction: f64,
        mean_latency_ns: f64,
        energy: Option<&crate::energy::EnergyStats>,
    ) {
        self.scenarios += 1;
        self.satisfaction_sum += satisfaction;
        self.satisfaction_min = self.satisfaction_min.min(satisfaction);
        self.latency_sum += mean_latency_ns;
        if let Some(energy) = energy {
            self.energy_count += 1;
            self.energy_total_j += energy.total_joules();
            self.energy_watts_sum += energy.watts();
        }
    }

    pub(crate) fn finish(self, report: &mut SweepReport, fabrics_built: usize) {
        let n = self.scenarios;
        if n == 0 {
            return;
        }
        report.summary = vec![
            ("scenarios".to_string(), n as f64),
            ("fabrics_built".to_string(), fabrics_built as f64),
            (
                "mean_satisfaction".to_string(),
                self.satisfaction_sum / n as f64,
            ),
            ("min_satisfaction".to_string(), self.satisfaction_min),
            ("mean_latency_ns".to_string(), self.latency_sum / n as f64),
        ];
        if self.energy_count > 0 {
            report
                .summary
                .push(("total_energy_j".to_string(), self.energy_total_j));
            report.summary.push((
                "mean_power_w".to_string(),
                self.energy_watts_sum / self.energy_count as f64,
            ));
        }
    }
}

/// Memoized fabric constructions: scenarios that share a topology share one
/// built [`RackFabric`] behind an `Arc`, handed to worker threads by
/// reference — never rebuilt or cloned per scenario, and independent of
/// how many scenarios the load/latency/replicate axes multiply onto each
/// topology.
pub(crate) struct FabricCache {
    fabrics: HashMap<FabricKey, Arc<RackFabric>>,
}

type FabricKey = (FabricKind, u32, u32, u32, u64);

fn fabric_key(config: &RackFabricConfig) -> FabricKey {
    (
        config.kind,
        config.mcm_count,
        config.fibers_per_mcm,
        config.wavelengths_per_fiber,
        config.gbps_per_wavelength.to_bits(),
    )
}

impl FabricCache {
    /// Build every distinct topology the grid's hardware axes (fabric kind,
    /// rack size, fibers, wavelengths, data rate, FEC derating) can
    /// produce, in parallel. Two FEC configs with the same bandwidth
    /// overhead derate to the same wavelength rate and share a fabric.
    pub(crate) fn from_grid(grid: &SweepGrid, parallel: bool) -> Self {
        let unique = unique_fabric_configs(grid);
        let built: Vec<Arc<RackFabric>> = if parallel {
            parallel_map(&unique, |(_, config)| Arc::new(RackFabric::new(*config)))
        } else {
            unique
                .iter()
                .map(|(_, config)| Arc::new(RackFabric::new(*config)))
                .collect()
        };
        FabricCache {
            fabrics: unique.into_iter().map(|(k, _)| k).zip(built).collect(),
        }
    }

    fn get(&self, config: &RackFabricConfig) -> &RackFabric {
        &self.fabrics[&fabric_key(config)]
    }

    pub(crate) fn len(&self) -> usize {
        self.fabrics.len()
    }
}

/// The distinct topologies the grid's hardware axes produce, in
/// first-encounter order.
fn unique_fabric_configs(grid: &SweepGrid) -> Vec<(FabricKey, RackFabricConfig)> {
    let mut seen: HashSet<FabricKey> = HashSet::new();
    let mut unique: Vec<(FabricKey, RackFabricConfig)> = Vec::new();
    for &kind in &grid.fabric_kinds {
        for &mcm_count in &grid.mcm_counts {
            for &fibers_per_mcm in &grid.fibers_per_mcm {
                for &wavelengths_per_fiber in &grid.wavelengths_per_fiber {
                    for &gbps in &grid.gbps_per_wavelength {
                        for fec in &grid.fec_configs {
                            let config = RackFabricConfig {
                                mcm_count,
                                fibers_per_mcm,
                                wavelengths_per_fiber,
                                gbps_per_wavelength: gbps * (1.0 - fec.bandwidth_overhead),
                                kind,
                            };
                            let key = fabric_key(&config);
                            if seen.insert(key) {
                                unique.push((key, config));
                            }
                        }
                    }
                }
            }
        }
    }
    unique
}

/// The physical solve key of one scenario: every input that reaches the
/// flow/timeline/flex-grid solver, and nothing that doesn't. Two scenarios
/// with equal keys perform byte-identical solves; axes that only change how
/// the solve is *accounted* — the energy mode, and FEC fields other than
/// the bandwidth derating already folded into the fabric's wavelength rate
/// — are deliberately absent, so an `[always, util]` energy grid dedups
/// 2:1 by construction.
type PhysicalKey = (u8, String, FabricKey, u64, u64);

fn physical_key(scenario: &Scenario) -> PhysicalKey {
    let (kind, load) = scenario.load.solve_key();
    (
        kind,
        load,
        fabric_key(&scenario.fabric),
        scenario.direct_latency_ns.to_bits(),
        scenario.seed,
    )
}

/// Running reuse accounting across batches (and, in the jobs layer, across
/// executed shards). Finalized into a [`ReuseStats`] block on the report.
#[derive(Debug, Default)]
pub(crate) struct ReuseAccum {
    pub(crate) groups: usize,
    pub(crate) leaders_solved: usize,
    pub(crate) followers_replayed: usize,
    pub(crate) matrices_reused: usize,
    pub(crate) solver_s_saved: f64,
}

impl ReuseAccum {
    pub(crate) fn new() -> Self {
        ReuseAccum::default()
    }

    pub(crate) fn stats(&self) -> ReuseStats {
        ReuseStats {
            groups: self.groups,
            leaders_solved: self.leaders_solved,
            followers_replayed: self.followers_replayed,
            matrices_reused: self.matrices_reused,
            solver_s_saved: self.solver_s_saved,
        }
    }
}

/// The compact digest of a solved scenario's report that energy replay
/// needs: exactly the aggregate fields `EnergyModel::account*` read. A few
/// dozen bytes per leader, so retaining one per distinct solve in a batch
/// is free — unlike retaining full reports, whose per-flow allocation
/// vectors run to megabytes on the 350-MCM all-to-all case.
#[derive(Debug, Clone, Copy)]
enum RetainedReport {
    Flow {
        direct_gbps: f64,
        indirect_gbps: f64,
    },
    Timeline {
        epochs: usize,
        reconfigurations: usize,
        direct_gbps: f64,
        indirect_gbps: f64,
    },
    FlexGrid {
        epochs: usize,
        defrag_events: usize,
        carried_direct_gbps: f64,
        carried_indirect_gbps: f64,
        wire_weighted_gbps: f64,
    },
}

/// One leader's solve: the finished result, the retained report digest for
/// follower replay, and the measured solve time (what each follower is
/// credited as saved).
pub(crate) struct SolvedScenario {
    result: ScenarioResult,
    retained: RetainedReport,
    solve_s: f64,
}

/// Materialize a follower's result from its group leader's solve: clone the
/// result, swap in the follower's own scenario (label, params, energy mode,
/// FEC), and re-account energy by replaying the retained digest through the
/// follower's `EnergyModel`. Bit-identical to solving the follower, because
/// the solver never sees the axes the physical key factored out and energy
/// accounting is a pure function of the digest.
fn replay_scenario(
    leader: &SolvedScenario,
    scenario: &Scenario,
    energy_config: &EnergyConfig,
) -> ScenarioResult {
    let mut result = leader.result.clone();
    result.scenario = scenario.clone();
    result.energy = scenario.energy_mode.map(|mode| {
        let model = EnergyModel::new(mode, *energy_config, &scenario.fabric, &scenario.fec);
        match leader.retained {
            RetainedReport::Flow {
                direct_gbps,
                indirect_gbps,
            } => model.account(1, 0, direct_gbps, indirect_gbps),
            RetainedReport::Timeline {
                epochs,
                reconfigurations,
                direct_gbps,
                indirect_gbps,
            } => model.account(epochs, reconfigurations, direct_gbps, indirect_gbps),
            RetainedReport::FlexGrid {
                epochs,
                defrag_events,
                carried_direct_gbps,
                carried_indirect_gbps,
                wire_weighted_gbps,
            } => model.account_flexgrid_parts(
                epochs,
                defrag_events,
                carried_direct_gbps,
                carried_indirect_gbps,
                wire_weighted_gbps,
            ),
        }
    });
    result
}

/// Whether a batch position solves for real or replays a leader's solve.
enum Role {
    /// Solve slot `i` of the leader list.
    Leader(usize),
    /// Replay the solve in leader slot `i`.
    Follower(usize),
}

/// Execute one batch of scenarios through the reuse layer, returning
/// results in batch order.
///
/// With `reuse` on, the batch is first *dedup-planned*: scenarios are
/// grouped by [`PhysicalKey`], the first member of each group (in batch
/// order) becomes its leader, and only leaders are dispatched to the
/// solver. Followers are then materialized by [`replay_scenario`]. The
/// plan is a pure function of the batch contents — no concurrent memo
/// cache — so results are thread-count- and axis-reorder-invariant by
/// construction, and byte-identical to `reuse: false`.
///
/// `serial_scratch: Some(..)` runs everything on the caller's thread with
/// the provided scratch (the `run_serial` reference path); `None` fans out
/// across the pool with one scratch per worker.
pub(crate) fn execute_batch(
    batch: &[Scenario],
    cache: &FabricCache,
    indirect_hop_ns: f64,
    energy_config: &EnergyConfig,
    reuse: bool,
    serial_scratch: Option<&mut WorkerScratch>,
    accum: &mut ReuseAccum,
) -> Vec<ScenarioResult> {
    let matrices = AtomicUsize::new(0);
    if !reuse {
        return match serial_scratch {
            Some(scratch) => batch
                .iter()
                .map(|s| {
                    solve_scenario(
                        s,
                        cache,
                        indirect_hop_ns,
                        energy_config,
                        false,
                        scratch,
                        &matrices,
                    )
                    .result
                })
                .collect(),
            None => parallel_map_with(batch, WorkerScratch::new, |scratch, s| {
                solve_scenario(
                    s,
                    cache,
                    indirect_hop_ns,
                    energy_config,
                    false,
                    scratch,
                    &matrices,
                )
                .result
            }),
        };
    }

    // Dedup plan: first occurrence of each physical key leads its group.
    let mut plan: HashMap<PhysicalKey, usize> = HashMap::with_capacity(batch.len());
    let mut roles: Vec<Role> = Vec::with_capacity(batch.len());
    let mut leaders: Vec<&Scenario> = Vec::new();
    let mut follower_counts: Vec<usize> = Vec::new();
    for scenario in batch {
        match plan.entry(physical_key(scenario)) {
            Entry::Occupied(slot) => {
                let slot = *slot.get();
                follower_counts[slot] += 1;
                roles.push(Role::Follower(slot));
            }
            Entry::Vacant(v) => {
                let slot = leaders.len();
                v.insert(slot);
                leaders.push(scenario);
                follower_counts.push(0);
                roles.push(Role::Leader(slot));
            }
        }
    }

    let solved: Vec<SolvedScenario> = match serial_scratch {
        Some(scratch) => leaders
            .iter()
            .map(|s| {
                solve_scenario(
                    s,
                    cache,
                    indirect_hop_ns,
                    energy_config,
                    true,
                    scratch,
                    &matrices,
                )
            })
            .collect(),
        None => parallel_map_with(&leaders, WorkerScratch::new, |scratch, s| {
            solve_scenario(
                s,
                cache,
                indirect_hop_ns,
                energy_config,
                true,
                scratch,
                &matrices,
            )
        }),
    };

    accum.leaders_solved += leaders.len();
    accum.followers_replayed += batch.len() - leaders.len();
    accum.groups += follower_counts.iter().filter(|&&c| c > 0).count();
    for (slot, &count) in follower_counts.iter().enumerate() {
        if count > 0 {
            accum.solver_s_saved += solved[slot].solve_s * count as f64;
        }
    }
    accum.matrices_reused += matrices.load(Ordering::Relaxed);

    let mut solved: Vec<Option<SolvedScenario>> = solved.into_iter().map(Some).collect();
    roles
        .iter()
        .zip(batch)
        .map(|(role, scenario)| match role {
            // A leader with no followers can move its result out; one with
            // followers is cloned (replays read it after emission, since
            // the leader is always the group's first batch position).
            Role::Leader(slot) if follower_counts[*slot] == 0 => {
                solved[*slot].take().expect("leader solved once").result
            }
            Role::Leader(slot) => solved[*slot]
                .as_ref()
                .expect("leader solved once")
                .result
                .clone(),
            Role::Follower(slot) => replay_scenario(
                solved[*slot].as_ref().expect("leader precedes follower"),
                scenario,
                energy_config,
            ),
        })
        .collect()
}

/// Solve one scenario for real: expand (or memo-fetch) its demand, run the
/// matching simulator, and package the result with the retained digest and
/// measured solve time.
fn solve_scenario(
    scenario: &Scenario,
    cache: &FabricCache,
    indirect_hop_ns: f64,
    energy_config: &EnergyConfig,
    memo: bool,
    scratch: &mut WorkerScratch,
    matrices: &AtomicUsize,
) -> SolvedScenario {
    let started = std::time::Instant::now();
    let fabric = cache.get(&scenario.fabric);
    let flow_config = FlowSimConfig {
        direct_latency_ns: scenario.direct_latency_ns,
        indirect_hop_latency_ns: indirect_hop_ns,
        // Decorrelate the Valiant intermediate choice from the traffic
        // generator while staying a pure function of the scenario seed.
        seed: scenario.seed ^ 0x9E37_79B9_7F4A_7C15,
    };
    let energy_model = scenario
        .energy_mode
        .map(|mode| EnergyModel::new(mode, *energy_config, &scenario.fabric, &scenario.fec));
    match &scenario.load {
        ScenarioLoad::Pattern(pattern) => {
            let flows = scratch.flows(
                pattern,
                scenario.fabric.mcm_count,
                scenario.seed,
                memo,
                matrices,
            );
            let report = FlowSimulator::new(fabric, flow_config).run_in(&mut scratch.flow, &flows);
            let retained = RetainedReport::Flow {
                direct_gbps: report.fabric_direct_gbps,
                indirect_gbps: report.fabric_indirect_gbps,
            };
            let result = ScenarioResult {
                scenario: scenario.clone(),
                flows: flows.len(),
                offered_gbps: report.offered_gbps,
                satisfied_gbps: report.satisfied_gbps,
                satisfaction: report.satisfaction(),
                direct_only_fraction: report.direct_only_fraction,
                indirect_fraction: report.indirect_fraction,
                unsatisfied_fraction: report.unsatisfied_fraction,
                mean_latency_ns: report.mean_latency_ns,
                epochs: 1,
                reconfigurations: 0,
                energy: energy_model.map(|m| m.account_flows(&report)),
                flexgrid: None,
            };
            scratch.flow.recycle(report);
            SolvedScenario {
                result,
                retained,
                solve_s: started.elapsed().as_secs_f64(),
            }
        }
        ScenarioLoad::Timeline(tc) => {
            let epochs = scratch.epochs(
                &tc.timeline,
                scenario.fabric.mcm_count,
                scenario.seed,
                memo,
                matrices,
            );
            let sim = TimelineSimulator::new(
                fabric,
                TimelineConfig {
                    flow: flow_config,
                    policy: tc.policy,
                },
            );
            let report = sim.run_in(&mut scratch.timeline, &epochs);
            let retained = RetainedReport::Timeline {
                epochs: report.epochs.len(),
                reconfigurations: report.epochs.iter().filter(|e| e.reconfigured).count(),
                direct_gbps: report.fabric_direct_gbps,
                indirect_gbps: report.fabric_indirect_gbps,
            };
            let result = ScenarioResult {
                scenario: scenario.clone(),
                flows: report.epochs.iter().map(|e| e.flows).sum(),
                offered_gbps: report.offered_gbps,
                satisfied_gbps: report.satisfied_gbps,
                satisfaction: report.satisfaction(),
                direct_only_fraction: report.direct_only_fraction,
                indirect_fraction: report.indirect_fraction,
                unsatisfied_fraction: report.unsatisfied_fraction,
                mean_latency_ns: report.mean_latency_ns,
                epochs: report.epochs.len(),
                reconfigurations: report.reconfigurations,
                energy: energy_model.map(|m| m.account_timeline(&report)),
                flexgrid: None,
            };
            scratch.timeline.recycle(report);
            SolvedScenario {
                result,
                retained,
                solve_s: started.elapsed().as_secs_f64(),
            }
        }
        ScenarioLoad::FlexGrid(fc) => {
            // Flex-grid scenarios share their timeline's seed derivation
            // with wavelength-timeline scenarios, so the two layers are
            // graded against the identical epoch-by-epoch demand.
            let epochs = scratch.epochs(
                &fc.timeline,
                scenario.fabric.mcm_count,
                scenario.seed,
                memo,
                matrices,
            );
            let sim = FlexGridSimulator::new(
                fabric,
                FlexGridConfig {
                    policy: fc.policy,
                    ..FlexGridConfig::default()
                },
            );
            let report = sim.run_in(&mut scratch.flexgrid, &epochs);
            let carried = report.carried_gbps();
            // Demand-weighted mean latency: local and direct demand at the
            // direct latency, detoured demand pays one extra hop.
            let mean_latency_ns = if carried > 0.0 {
                ((report.carried_local_gbps + report.carried_direct_gbps)
                    * scenario.direct_latency_ns
                    + report.carried_indirect_gbps * (scenario.direct_latency_ns + indirect_hop_ns))
                    / carried
            } else {
                0.0
            };
            let retained = RetainedReport::FlexGrid {
                epochs: report.epochs.len(),
                defrag_events: report.defrag_events,
                carried_direct_gbps: report.carried_direct_gbps,
                carried_indirect_gbps: report.carried_indirect_gbps,
                wire_weighted_gbps: report.wire_weighted_gbps,
            };
            let result = ScenarioResult {
                scenario: scenario.clone(),
                flows: report.epochs.iter().map(|e| e.flows).sum(),
                offered_gbps: report.offered_gbps,
                satisfied_gbps: carried,
                satisfaction: report.satisfaction(),
                direct_only_fraction: report.direct_only_fraction,
                indirect_fraction: report.indirect_fraction,
                unsatisfied_fraction: report.unsatisfied_fraction,
                mean_latency_ns,
                epochs: report.epochs.len(),
                reconfigurations: report.defrag_events,
                energy: energy_model.map(|m| m.account_flexgrid(&report)),
                flexgrid: Some(FlexGridRowMetrics {
                    blocking_probability: report.blocking_probability(),
                    fragmentation_index: report.mean_fragmentation_index,
                    slots_in_use: report.mean_slots_in_use,
                    defrag_events: report.defrag_events as f64,
                }),
            };
            scratch.flexgrid.recycle(report);
            SolvedScenario {
                result,
                retained,
                solve_s: started.elapsed().as_secs_f64(),
            }
        }
    }
}
