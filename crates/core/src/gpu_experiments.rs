//! GPU latency-sensitivity experiments (Section VI-B3 of the paper).
//!
//! Every GPU application profile is evaluated with the PPT-GPU-style
//! analytical model at several additional HBM latencies. From those runs the
//! harness derives:
//!
//! * Fig. 9 — per-application slowdown for 25/30/35 ns;
//! * Fig. 10 — slowdown vs. L2 miss rate and vs. HBM transactions per
//!   instruction, with Pearson correlations;
//! * Fig. 11 — the CPU-vs-GPU comparison on the shared Rodinia benchmarks;
//! * Fig. 12 (GPU half) — speedup of the photonic design over the
//!   electronic design.

use cpusim::pearson_correlation;
use gpusim::{ApplicationProfile, GpuConfig, GpuTimingModel};
use serde::{Deserialize, Serialize};
use workloads::gpu::gpu_applications;

/// Configuration of the GPU experiment sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuExperimentConfig {
    /// Additional HBM latencies to evaluate (ns); must include 0.
    pub latencies_ns: Vec<f64>,
    /// GPU hardware configuration.
    pub gpu: GpuConfig,
}

impl Default for GpuExperimentConfig {
    fn default() -> Self {
        GpuExperimentConfig {
            latencies_ns: crate::LATENCY_SWEEP_NS.to_vec(),
            gpu: GpuConfig::a100(),
        }
    }
}

/// Result of one GPU application across the latency sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuBenchmarkResult {
    /// Application name.
    pub name: String,
    /// Suite the application belongs to.
    pub suite: String,
    /// Baseline (0 ns extra) predicted cycles.
    pub baseline_cycles: f64,
    /// Application-level L2 (LLC) miss rate.
    pub l2_miss_rate: f64,
    /// HBM transactions per warp instruction.
    pub hbm_transactions_per_instruction: f64,
    /// Fraction of instructions that are memory instructions.
    pub memory_instruction_fraction: f64,
    /// (extra latency ns, slowdown %) pairs.
    pub slowdowns: Vec<(f64, f64)>,
    /// (extra latency ns, predicted cycles) pairs.
    pub cycles: Vec<(f64, f64)>,
}

impl GpuBenchmarkResult {
    /// Slowdown at a given latency point, if simulated.
    pub fn slowdown_at(&self, latency_ns: f64) -> Option<f64> {
        self.slowdowns
            .iter()
            .find(|(l, _)| (l - latency_ns).abs() < 1e-9)
            .map(|(_, s)| *s)
    }

    /// Cycles at a given latency point, if simulated.
    pub fn cycles_at(&self, latency_ns: f64) -> Option<f64> {
        self.cycles
            .iter()
            .find(|(l, _)| (l - latency_ns).abs() < 1e-9)
            .map(|(_, c)| *c)
    }

    /// Speedup (%) of the configuration at `fast_ns` over `slow_ns`.
    pub fn speedup_between(&self, fast_ns: f64, slow_ns: f64) -> Option<f64> {
        let fast = self.cycles_at(fast_ns)?;
        let slow = self.cycles_at(slow_ns)?;
        if fast <= 0.0 {
            return None;
        }
        Some((slow / fast - 1.0) * 100.0)
    }

    /// Serialize to single-line JSON; the latency sweeps are written as
    /// `[latency_ns, value]` pairs.
    pub fn to_json(&self) -> String {
        use crate::report::{json_number, json_string};
        let write_pairs = |out: &mut String, pairs: &[(f64, f64)]| {
            out.push('[');
            for (i, (l, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                json_number(out, *l);
                out.push(',');
                json_number(out, *v);
                out.push(']');
            }
            out.push(']');
        };
        let mut out = String::with_capacity(512);
        out.push_str("{\"name\":");
        json_string(&mut out, &self.name);
        out.push_str(",\"suite\":");
        json_string(&mut out, &self.suite);
        out.push_str(",\"baseline_cycles\":");
        json_number(&mut out, self.baseline_cycles);
        out.push_str(",\"l2_miss_rate\":");
        json_number(&mut out, self.l2_miss_rate);
        out.push_str(",\"hbm_transactions_per_instruction\":");
        json_number(&mut out, self.hbm_transactions_per_instruction);
        out.push_str(",\"memory_instruction_fraction\":");
        json_number(&mut out, self.memory_instruction_fraction);
        out.push_str(",\"slowdowns\":");
        write_pairs(&mut out, &self.slowdowns);
        out.push_str(",\"cycles\":");
        write_pairs(&mut out, &self.cycles);
        out.push('}');
        out
    }
}

/// Serialize a full experiment run (what [`run_gpu_experiment`] returns) as
/// a single-line JSON array.
pub fn gpu_results_to_json(results: &[GpuBenchmarkResult]) -> String {
    let mut out = String::with_capacity(results.len() * 512 + 2);
    out.push('[');
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_json());
    }
    out.push(']');
    out
}

fn run_app(app: &ApplicationProfile, config: &GpuExperimentConfig) -> GpuBenchmarkResult {
    let model = GpuTimingModel::new(config.gpu);
    let sweep = model.latency_sweep(app, &config.latencies_ns);
    let baseline = config
        .latencies_ns
        .iter()
        .position(|&l| l == 0.0)
        .map(|i| &sweep[i])
        .unwrap_or(&sweep[0]);
    let slowdowns = config
        .latencies_ns
        .iter()
        .zip(sweep.iter())
        .map(|(&l, r)| (l, r.slowdown_vs(baseline)))
        .collect();
    let cycles = config
        .latencies_ns
        .iter()
        .zip(sweep.iter())
        .map(|(&l, r)| (l, r.total_cycles))
        .collect();
    GpuBenchmarkResult {
        name: app.name.clone(),
        suite: app.suite.clone(),
        baseline_cycles: baseline.total_cycles,
        l2_miss_rate: app.l2_miss_rate(),
        hbm_transactions_per_instruction: app.hbm_transactions_per_instruction(),
        memory_instruction_fraction: app.memory_instruction_fraction(),
        slowdowns,
        cycles,
    }
}

/// Run the GPU experiment over all 24 registered applications, in parallel
/// through the sweep engine's [`parallel_map`](crate::sweep::parallel_map).
pub fn run_gpu_experiment(config: &GpuExperimentConfig) -> Vec<GpuBenchmarkResult> {
    crate::sweep::parallel_map(&gpu_applications(), |app| run_app(app, config))
}

/// The Fig. 10 correlations: slowdown vs L2 miss rate, vs HBM transactions
/// per instruction, and vs memory-instruction fraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuCorrelations {
    /// Pearson correlation of slowdown with L2 miss rate.
    pub with_l2_miss_rate: Option<f64>,
    /// Pearson correlation of slowdown with HBM transactions/instruction.
    pub with_hbm_transactions: Option<f64>,
    /// Pearson correlation of slowdown with memory-instruction fraction.
    pub with_memory_fraction: Option<f64>,
}

/// Compute the Fig. 10 correlations at one latency point.
pub fn gpu_correlations(results: &[GpuBenchmarkResult], latency_ns: f64) -> GpuCorrelations {
    let slowdowns: Vec<f64> = results
        .iter()
        .filter_map(|r| r.slowdown_at(latency_ns))
        .collect();
    let miss: Vec<f64> = results.iter().map(|r| r.l2_miss_rate).collect();
    let hbm: Vec<f64> = results
        .iter()
        .map(|r| r.hbm_transactions_per_instruction)
        .collect();
    let mem: Vec<f64> = results
        .iter()
        .map(|r| r.memory_instruction_fraction)
        .collect();
    GpuCorrelations {
        with_l2_miss_rate: pearson_correlation(&miss, &slowdowns),
        with_hbm_transactions: pearson_correlation(&hbm, &slowdowns),
        with_memory_fraction: pearson_correlation(&mem, &slowdowns),
    }
}

/// Average slowdown across all applications at one latency point.
pub fn average_slowdown(results: &[GpuBenchmarkResult], latency_ns: f64) -> f64 {
    let s: Vec<f64> = results
        .iter()
        .filter_map(|r| r.slowdown_at(latency_ns))
        .collect();
    if s.is_empty() {
        0.0
    } else {
        s.iter().sum::<f64>() / s.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<GpuBenchmarkResult> {
        run_gpu_experiment(&GpuExperimentConfig::default())
    }

    #[test]
    fn all_24_applications_evaluated() {
        assert_eq!(results().len(), 24);
    }

    #[test]
    fn average_slowdown_near_paper_value() {
        // Paper: 5.35% average at +35 ns.
        let avg = average_slowdown(&results(), 35.0);
        assert!(
            avg > 3.0 && avg < 8.0,
            "average GPU slowdown {avg:.2}% should be near 5.35%"
        );
    }

    #[test]
    fn slowdown_increases_with_latency() {
        for r in results() {
            let s25 = r.slowdown_at(25.0).unwrap();
            let s30 = r.slowdown_at(30.0).unwrap();
            let s35 = r.slowdown_at(35.0).unwrap();
            let s85 = r.slowdown_at(85.0).unwrap();
            assert!(s25 <= s30 + 1e-9);
            assert!(s30 <= s35 + 1e-9);
            assert!(s35 <= s85 + 1e-9);
        }
    }

    #[test]
    fn correlations_match_paper_structure() {
        // Fig. 10: strong correlation with L2 miss rate (0.87) and HBM
        // transactions (0.79); no significant correlation with the fraction
        // of memory instructions.
        let res = results();
        let c = gpu_correlations(&res, 35.0);
        let miss = c.with_l2_miss_rate.unwrap();
        let hbm = c.with_hbm_transactions.unwrap();
        let mem = c.with_memory_fraction.unwrap();
        assert!(miss > 0.6, "L2 miss-rate correlation {miss:.2}");
        assert!(hbm > 0.5, "HBM transaction correlation {hbm:.2}");
        assert!(
            mem < miss && mem < hbm,
            "memory-fraction correlation ({mem:.2}) should be the weakest"
        );
    }

    #[test]
    fn photonic_beats_electronic_for_every_application() {
        for r in results() {
            let speedup = r.speedup_between(35.0, 85.0).unwrap();
            assert!(speedup >= -1e-9, "{}: speedup {speedup:.2}%", r.name);
        }
    }

    #[test]
    fn rodinia_intersection_max_slowdown_close_to_paper() {
        // Fig. 11: GPUs tolerate the extra latency with a maximum slowdown
        // of ~12% across the shared Rodinia benchmarks.
        let res = results();
        let shared = workloads::cpu::rodinia_cpu_gpu_intersection();
        let max = res
            .iter()
            .filter(|r| shared.contains(&r.name.as_str()))
            .filter_map(|r| r.slowdown_at(35.0))
            .fold(f64::MIN, f64::max);
        assert!(
            max > 5.0 && max < 16.0,
            "max Rodinia GPU slowdown {max:.1}%"
        );
    }

    #[test]
    fn baseline_slowdown_is_zero() {
        for r in results() {
            assert!(r.slowdown_at(0.0).unwrap().abs() < 1e-9);
        }
    }
}
