//! Energy accounting for the sweep and timeline engines (Section VI-C).
//!
//! The paper's power claim is static: a 350-MCM rack of always-on
//! co-packaged transceivers plus its optical switches draws ~11 kW, about
//! 5% of the rack's compute/memory power. This module turns that static
//! budget into *per-scenario* energy accounting so a sweep can answer
//! energy-per-bit questions:
//!
//! * **Transceiver energy** — either the paper's pessimistic always-on
//!   assumption ([`EnergyMode::AlwaysOn`]: pJ/bit × the full raw escape
//!   bandwidth for the whole scenario duration) or utilization-scaled
//!   ([`EnergyMode::UtilizationScaled`]: pJ/bit × the bits the fabric
//!   actually carried, with indirect two-hop bits charged twice — once per
//!   link traversal).
//! * **FEC coding overhead** — the `photonics::fec` bandwidth overhead bits
//!   ride the same transceivers, so utilization-scaled accounting charges
//!   them explicitly (always-on accounting subsumes them in the full-rate
//!   term and reports zero here).
//! * **Reconfiguration energy** — charged per wavelength re-steer event
//!   recorded by `fabric::timeline`'s [`TimelineReport`], which is what
//!   makes the greedy-vs-hysteresis policy tradeoff an *energy* tradeoff.
//! * **Idle floor** — the optical-switch / comb-laser bank stays powered
//!   regardless of traffic ([`PhotonicPowerModel::switch_power_w`]),
//!   scaled linearly with rack size.
//!
//! * **Modulation-ladder energy** — flex-grid scenarios weight each
//!   lightpath's wire bits by its modulation rung's
//!   [`energy_factor`](fabric::ModulationFormat::energy_factor) (and hop
//!   count), so a spectrally dense 16QAM direct path and a two-hop 8QAM
//!   detour draw measurably different transceiver energy
//!   ([`EnergyModel::account_flexgrid`]).
//!
//! [`EnergyModel::account_flows`] handles static-pattern scenarios (one
//! epoch), [`EnergyModel::account_timeline`] temporal ones, and
//! [`EnergyModel::account_flexgrid`] elastic-optical ones; all produce an
//! [`EnergyStats`] that the sweep engine attaches to
//! [`SweepReport`](crate::report::SweepReport) rows and to the report-level
//! `energy` block.

use fabric::{FlexGridReport, FlowSimReport, RackFabricConfig, TimelineReport};
use photonics::fec::FecConfig;
use photonics::power::PhotonicPowerModel;
use photonics::units::{Bandwidth, Energy};
use rack::power::RackPowerModel;
use serde::{Deserialize, Serialize};

/// How transceiver power relates to carried traffic — the sweep engine's
/// energy axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnergyMode {
    /// The paper's pessimistic assumption: every transceiver runs at full
    /// rate for the whole scenario, whatever the offered load.
    AlwaysOn,
    /// Transceiver energy follows the bits the fabric actually carried
    /// (payload + FEC overhead, indirect bits charged per link traversal).
    UtilizationScaled,
}

impl EnergyMode {
    /// Short stable label for report rows and CLI parsing.
    pub fn label(self) -> &'static str {
        match self {
            EnergyMode::AlwaysOn => "always-on",
            EnergyMode::UtilizationScaled => "util",
        }
    }

    /// Parse a label produced by [`EnergyMode::label`]; `None` for anything
    /// else.
    ///
    /// ```
    /// use disagg_core::energy::EnergyMode;
    /// assert_eq!(EnergyMode::parse("util"), Some(EnergyMode::UtilizationScaled));
    /// assert_eq!(EnergyMode::parse("always-on"), Some(EnergyMode::AlwaysOn));
    /// assert_eq!(EnergyMode::parse("solar"), None);
    /// ```
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "always-on" => Some(EnergyMode::AlwaysOn),
            "util" => Some(EnergyMode::UtilizationScaled),
            _ => None,
        }
    }
}

/// Scenario-independent knobs of the energy layer. Defaults reproduce the
/// paper's Section VI-C rack (0.5 pJ/bit transceivers, a 1 kW switch bank
/// and a ~210 kW compute baseline at 350 MCMs, both scaled per MCM).
///
/// # Example
///
/// ```
/// use disagg_core::energy::EnergyConfig;
///
/// let cfg = EnergyConfig::default();
/// // At the paper's 350-MCM design point the per-MCM floors recompose the
/// // rack-level figures.
/// assert!((cfg.switch_power_per_mcm_w * 350.0 - 1000.0).abs() < 1e-6);
/// assert!((cfg.compute_power_per_mcm_w * 350.0 - 210_176.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Transceiver (and laser) energy per bit, in picojoules.
    pub transceiver_pj_per_bit: f64,
    /// Idle-floor power of the optical switches / laser bank per MCM
    /// (watts); the paper's 1 kW rack-level budget over 350 MCMs.
    pub switch_power_per_mcm_w: f64,
    /// Compute/memory comparison power per MCM (watts); the paper's
    /// CPU + GPU + DDR4 baseline over 350 MCMs. Denominator of the
    /// photonic-to-compute power ratio.
    pub compute_power_per_mcm_w: f64,
    /// Wall-clock length of one epoch in seconds (a static pattern scenario
    /// is one epoch).
    pub epoch_duration_s: f64,
    /// Energy charged per wavelength-reallocation event (joules): the
    /// switch bank re-tunes for ~10 ms at its 1 kW budget.
    pub reconfiguration_energy_j: f64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        let paper = RackPowerModel::paper_rack();
        EnergyConfig {
            transceiver_pj_per_bit: paper.photonics.transceiver_energy_per_bit.pj(),
            switch_power_per_mcm_w: paper.photonics.switch_power_w
                / paper.photonics.mcm_count as f64,
            compute_power_per_mcm_w: paper.paper_comparison_power_per_mcm_w(),
            epoch_duration_s: 1.0,
            reconfiguration_energy_j: 10.0,
        }
    }
}

impl EnergyConfig {
    /// The config with every knob sanitized per the energy layer's
    /// degenerate-input contract (mirroring `FlowSimulator` demands and
    /// [`PhotonicPowerModel::effective_utilization`]): non-finite or
    /// negative values become `0.0`. [`EnergyModel::new`] applies this, so a
    /// degenerate knob — a `--epoch-seconds nan` from the CLI, say — can
    /// never put negative or NaN joules into a report.
    pub fn sanitized(self) -> Self {
        let clean = |v: f64| if v.is_finite() { v.max(0.0) } else { 0.0 };
        EnergyConfig {
            transceiver_pj_per_bit: clean(self.transceiver_pj_per_bit),
            switch_power_per_mcm_w: clean(self.switch_power_per_mcm_w),
            compute_power_per_mcm_w: clean(self.compute_power_per_mcm_w),
            epoch_duration_s: clean(self.epoch_duration_s),
            reconfiguration_energy_j: clean(self.reconfiguration_energy_j),
        }
    }
}

/// Per-scenario energy accounting result: the `EnergyStats` block of a
/// [`SweepReport`](crate::report::SweepReport).
///
/// All component energies are joules over the scenario's whole duration;
/// [`watts`](EnergyStats::watts), [`pj_per_bit`](EnergyStats::pj_per_bit)
/// and [`photonic_compute_ratio`](EnergyStats::photonic_compute_ratio)
/// derive the headline figures.
///
/// # Example
///
/// ```
/// use disagg_core::energy::EnergyMode;
/// use disagg_core::sweep::SweepGrid;
///
/// // The paper's design point under the always-on assumption: ~10-11 kW of
/// // photonics, ~5% of the compute/memory power (Section VI-C).
/// let report = SweepGrid::named("vi-c")
///     .energy_modes([EnergyMode::AlwaysOn])
///     .run();
/// let (_, stats) = &report.energy[0];
/// assert!(stats.watts() > 9_500.0 && stats.watts() < 11_500.0);
/// let pct = stats.photonic_compute_ratio() * 100.0;
/// assert!(pct > 4.0 && pct < 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyStats {
    /// The accounting mode that produced these numbers.
    pub mode: EnergyMode,
    /// Scenario duration in seconds (epochs × epoch duration).
    pub duration_s: f64,
    /// Fabric-carried delivered payload, in gigabits (direct + indirect;
    /// MCM-local traffic excluded).
    pub payload_gigabits: f64,
    /// Transceiver energy spent on payload bits (joules). Under
    /// [`EnergyMode::AlwaysOn`] this is the full-rate always-on term and
    /// subsumes the FEC share.
    pub transceiver_energy_j: f64,
    /// Transceiver energy spent on FEC/CRC overhead bits (joules); zero
    /// under [`EnergyMode::AlwaysOn`], where it is subsumed above.
    pub fec_energy_j: f64,
    /// Energy charged for wavelength-reallocation events (joules).
    pub reconfiguration_energy_j: f64,
    /// Idle-floor energy of the switch / laser bank (joules).
    pub idle_energy_j: f64,
    /// Compute/memory comparison power of this scenario's rack (watts).
    pub compute_power_w: f64,
}

impl EnergyStats {
    /// Total photonic energy over the scenario (joules).
    pub fn total_joules(&self) -> f64 {
        self.transceiver_energy_j
            + self.fec_energy_j
            + self.reconfiguration_energy_j
            + self.idle_energy_j
    }

    /// Mean photonic power over the scenario (watts); zero for a zero-length
    /// scenario.
    pub fn watts(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.total_joules() / self.duration_s
        } else {
            0.0
        }
    }

    /// Total photonic energy per delivered payload bit (picojoules). NaN
    /// (serialized as JSON `null`) when the fabric carried nothing.
    pub fn pj_per_bit(&self) -> f64 {
        let bits = self.payload_gigabits * 1e9;
        if bits > 0.0 {
            self.total_joules() * 1e12 / bits
        } else {
            f64::NAN
        }
    }

    /// Mean photonic power as a fraction of the rack's compute/memory power
    /// (the paper's ~5% headline); zero when the compute baseline is zero.
    pub fn photonic_compute_ratio(&self) -> f64 {
        if self.compute_power_w > 0.0 {
            self.watts() / self.compute_power_w
        } else {
            0.0
        }
    }
}

/// The energy model of one scenario: the configured knobs specialized to a
/// concrete rack topology and FEC pipeline.
///
/// # Example
///
/// ```
/// use disagg_core::energy::{EnergyConfig, EnergyMode, EnergyModel};
/// use fabric::{FabricKind, Flow, FlowSimConfig, FlowSimulator, RackFabric, RackFabricConfig};
/// use photonics::fec::FecConfig;
///
/// let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
/// cfg.mcm_count = 16;
/// let fabric = RackFabric::new(cfg);
/// let report = FlowSimulator::new(&fabric, FlowSimConfig::default())
///     .run(&[Flow::new(0, 1, 100.0)]);
///
/// let model = EnergyModel::new(
///     EnergyMode::UtilizationScaled,
///     EnergyConfig::default(),
///     &cfg,
///     &FecConfig::disabled(),
/// );
/// let stats = model.account_flows(&report);
/// // 100 Gbit carried directly for one second at 0.5 pJ/bit = 0.05 J.
/// assert!((stats.transceiver_energy_j - 0.05).abs() < 1e-9);
/// assert!((stats.payload_gigabits - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    mode: EnergyMode,
    config: EnergyConfig,
    mcm_count: u32,
    wavelengths_per_mcm: u32,
    raw_gbps_per_wavelength: f64,
    fec_overhead: f64,
}

impl EnergyModel {
    /// Build the model for a scenario's fabric and FEC configuration. The
    /// fabric's wavelength rate is FEC-derated, so the raw (wire) rate is
    /// recovered from the FEC's bandwidth overhead. The config is stored
    /// [sanitized](EnergyConfig::sanitized).
    pub fn new(
        mode: EnergyMode,
        config: EnergyConfig,
        fabric: &RackFabricConfig,
        fec: &FecConfig,
    ) -> Self {
        let config = config.sanitized();
        let fec_overhead = if fec.bandwidth_overhead.is_finite() {
            fec.bandwidth_overhead.clamp(0.0, 0.5)
        } else {
            0.0
        };
        EnergyModel {
            mode,
            config,
            mcm_count: fabric.mcm_count,
            wavelengths_per_mcm: fabric.fibers_per_mcm * fabric.wavelengths_per_fiber,
            raw_gbps_per_wavelength: fabric.gbps_per_wavelength / (1.0 - fec_overhead),
            fec_overhead,
        }
    }

    /// The underlying [`PhotonicPowerModel`] at this scenario's topology
    /// (always-on, full utilization); the accounting methods re-mode it per
    /// [`EnergyMode`].
    pub fn photonic_power_model(&self) -> PhotonicPowerModel {
        PhotonicPowerModel {
            mcm_count: self.mcm_count,
            wavelengths_per_mcm: self.wavelengths_per_mcm,
            channel_rate: Bandwidth::from_gbps(self.raw_gbps_per_wavelength),
            transceiver_energy_per_bit: Energy::from_pj(self.config.transceiver_pj_per_bit),
            switch_power_w: self.config.switch_power_per_mcm_w * self.mcm_count as f64,
            always_on: true,
            utilization: 1.0,
        }
    }

    /// Account a static-pattern scenario: one epoch of the flow simulator's
    /// allocation.
    pub fn account_flows(&self, report: &FlowSimReport) -> EnergyStats {
        self.account(1, 0, report.fabric_direct_gbps, report.fabric_indirect_gbps)
    }

    /// Account a temporal scenario: the timeline's fabric-carried traffic
    /// plus one reconfiguration charge per re-steer event the timeline
    /// recorded.
    pub fn account_timeline(&self, report: &TimelineReport) -> EnergyStats {
        self.account(
            report.epochs.len(),
            report.epochs.iter().filter(|e| e.reconfigured).count(),
            report.fabric_direct_gbps,
            report.fabric_indirect_gbps,
        )
    }

    /// Account a flex-grid scenario. Same structure as the wavelength-layer
    /// accounting, but the wire term follows the modulation ladder: the
    /// timeline's `direct + 2 × indirect` wire bits are replaced by the
    /// report's [`wire_weighted_gbps`](FlexGridReport::wire_weighted_gbps)
    /// (each lightpath's demand × hops × modulation energy factor), and
    /// reconfiguration energy is charged per spectrum-repack event.
    ///
    /// ```
    /// use disagg_core::energy::{EnergyConfig, EnergyMode, EnergyModel};
    /// use fabric::{FabricKind, FlexGridConfig, FlexGridSimulator, Flow};
    /// use fabric::{RackFabric, RackFabricConfig};
    /// use photonics::fec::FecConfig;
    ///
    /// let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
    /// cfg.mcm_count = 8;
    /// let fabric = RackFabric::new(cfg);
    /// let sim = FlexGridSimulator::new(&fabric, FlexGridConfig::default());
    /// let report = sim.run(&[vec![Flow::new(0, 1, 100.0)]]);
    ///
    /// let model = EnergyModel::new(
    ///     EnergyMode::UtilizationScaled,
    ///     EnergyConfig::default(),
    ///     &cfg,
    ///     &FecConfig::disabled(),
    /// );
    /// let stats = model.account_flexgrid(&report);
    /// // 100 Gbit direct on 16QAM for one second: 100e9 bits × 1 hop ×
    /// // 2.0 modulation factor × 0.5 pJ/bit = 0.1 J.
    /// assert!((stats.transceiver_energy_j - 0.1).abs() < 1e-9);
    /// assert!((stats.payload_gigabits - 100.0).abs() < 1e-9);
    /// ```
    pub fn account_flexgrid(&self, report: &FlexGridReport) -> EnergyStats {
        self.account_flexgrid_parts(
            report.epochs.len(),
            report.defrag_events,
            report.carried_direct_gbps,
            report.carried_indirect_gbps,
            report.wire_weighted_gbps,
        )
    }

    /// [`account_flexgrid`](EnergyModel::account_flexgrid) from the report's
    /// bare aggregate fields. The sweep executor's reuse layer replays a
    /// retained solve through this for each energy mode of a dedup group:
    /// accounting is a pure function of these five aggregates, so the
    /// replayed stats are bit-identical to re-running the solver.
    pub(crate) fn account_flexgrid_parts(
        &self,
        epochs: usize,
        defrag_events: usize,
        carried_direct_gbps: f64,
        carried_indirect_gbps: f64,
        wire_weighted_gbps: f64,
    ) -> EnergyStats {
        let duration = epochs as f64 * self.config.epoch_duration_s;
        let direct_bits = carried_direct_gbps * 1e9 * self.config.epoch_duration_s;
        let indirect_bits = carried_indirect_gbps * 1e9 * self.config.epoch_duration_s;
        let wire_payload_bits = wire_weighted_gbps * 1e9 * self.config.epoch_duration_s;
        let wire_total_bits = wire_payload_bits / (1.0 - self.fec_overhead);
        let ppm = self.photonic_power_model();

        let (transceiver_j, fec_j) = match self.mode {
            EnergyMode::AlwaysOn => (ppm.transceiver_power_w() * duration, 0.0),
            EnergyMode::UtilizationScaled => {
                let capacity_bits = ppm.rack_escape_bandwidth().bps() * duration;
                let scaled = ppm.utilization_scaled(wire_total_bits / capacity_bits);
                let wire_energy = scaled.transceiver_power_w() * duration;
                if wire_total_bits > 0.0 {
                    let fec_share = (wire_total_bits - wire_payload_bits) / wire_total_bits;
                    (wire_energy * (1.0 - fec_share), wire_energy * fec_share)
                } else {
                    (0.0, 0.0)
                }
            }
        };

        EnergyStats {
            mode: self.mode,
            duration_s: duration,
            payload_gigabits: (direct_bits + indirect_bits) / 1e9,
            transceiver_energy_j: transceiver_j,
            fec_energy_j: fec_j,
            reconfiguration_energy_j: defrag_events as f64 * self.config.reconfiguration_energy_j,
            idle_energy_j: ppm.switch_power_w * duration,
            compute_power_w: self.config.compute_power_per_mcm_w * self.mcm_count as f64,
        }
    }

    /// Core accounting over per-epoch Gbps sums. `direct_gbps` /
    /// `indirect_gbps` are summed across epochs (each epoch lasting
    /// [`EnergyConfig::epoch_duration_s`]), so Gbps × 1e9 × epoch duration
    /// converts straight to bits.
    ///
    /// Crate-visible for the sweep executor's reuse layer: replaying a
    /// retained flow/timeline solve under a different [`EnergyMode`] or FEC
    /// setting goes through exactly this function, which is a pure function
    /// of its arguments — so replayed energy stats are bit-identical to
    /// re-running the solver under that mode.
    pub(crate) fn account(
        &self,
        epochs: usize,
        reconfigurations: usize,
        direct_gbps: f64,
        indirect_gbps: f64,
    ) -> EnergyStats {
        let duration = epochs as f64 * self.config.epoch_duration_s;
        let direct_bits = direct_gbps * 1e9 * self.config.epoch_duration_s;
        let indirect_bits = indirect_gbps * 1e9 * self.config.epoch_duration_s;
        // Each indirect bit traverses two links and pays the transceiver
        // energy twice.
        let wire_payload_bits = direct_bits + 2.0 * indirect_bits;
        let wire_total_bits = wire_payload_bits / (1.0 - self.fec_overhead);
        let ppm = self.photonic_power_model();

        let (transceiver_j, fec_j) = match self.mode {
            EnergyMode::AlwaysOn => (ppm.transceiver_power_w() * duration, 0.0),
            EnergyMode::UtilizationScaled => {
                let capacity_bits = ppm.rack_escape_bandwidth().bps() * duration;
                // Degenerate ratios (0/0 on an empty timeline) are sanitized
                // by the power model's utilization contract.
                let scaled = ppm.utilization_scaled(wire_total_bits / capacity_bits);
                let wire_energy = scaled.transceiver_power_w() * duration;
                if wire_total_bits > 0.0 {
                    let fec_share = (wire_total_bits - wire_payload_bits) / wire_total_bits;
                    (wire_energy * (1.0 - fec_share), wire_energy * fec_share)
                } else {
                    (0.0, 0.0)
                }
            }
        };

        EnergyStats {
            mode: self.mode,
            duration_s: duration,
            payload_gigabits: (direct_bits + indirect_bits) / 1e9,
            transceiver_energy_j: transceiver_j,
            fec_energy_j: fec_j,
            reconfiguration_energy_j: reconfigurations as f64
                * self.config.reconfiguration_energy_j,
            idle_energy_j: ppm.switch_power_w * duration,
            compute_power_w: self.config.compute_power_per_mcm_w * self.mcm_count as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{FabricKind, Flow, FlowSimConfig, FlowSimulator, RackFabric};

    fn paper_model(mode: EnergyMode) -> EnergyModel {
        let fabric = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        let fec = FecConfig::cxl_lightweight();
        // The sweep engine hands the model an already-derated wavelength
        // rate; mirror that here.
        let derated = RackFabricConfig {
            gbps_per_wavelength: fabric.gbps_per_wavelength * (1.0 - fec.bandwidth_overhead),
            ..fabric
        };
        EnergyModel::new(mode, EnergyConfig::default(), &derated, &fec)
    }

    #[test]
    fn always_on_reproduces_the_paper_power_point() {
        let model = paper_model(EnergyMode::AlwaysOn);
        let ppm = model.photonic_power_model();
        // Raw rate recovered from the derated one: 2048 wavelengths x
        // 25 Gbps x 350 MCMs x 0.5 pJ/bit = 8.96 kW + 1 kW of switches.
        assert!((ppm.transceiver_power_w() - 8_960.0).abs() < 1.0);
        assert!((ppm.switch_power_w - 1_000.0).abs() < 1e-6);
        let stats = model.account(1, 0, 0.0, 0.0);
        assert!(stats.watts() > 9_500.0 && stats.watts() < 11_500.0);
        let pct = stats.photonic_compute_ratio() * 100.0;
        assert!(pct > 4.0 && pct < 6.0, "overhead {pct}%");
        // Always-on power is traffic-independent.
        let busy = model.account(1, 0, 1e6, 1e5);
        assert!((busy.transceiver_energy_j - stats.transceiver_energy_j).abs() < 1e-6);
    }

    #[test]
    fn utilization_scaled_charges_carried_bits_and_fec_overhead() {
        let model = paper_model(EnergyMode::UtilizationScaled);
        // 1000 Gbps direct + 500 Gbps indirect for one 1-second epoch:
        // wire payload = (1000 + 2x500) Gbit = 2000 Gbit.
        let stats = model.account(1, 0, 1000.0, 500.0);
        let expected_payload_j = 2000.0e9 * 0.5e-12;
        assert!(
            (stats.transceiver_energy_j - expected_payload_j).abs() / expected_payload_j < 1e-6
        );
        // FEC overhead bits: 0.08% of the wire rate.
        let oh = FecConfig::cxl_lightweight().bandwidth_overhead;
        let expected_fec_j = 2000.0e9 / (1.0 - oh) * oh * 0.5e-12;
        assert!((stats.fec_energy_j - expected_fec_j).abs() / expected_fec_j < 1e-6);
        assert!((stats.payload_gigabits - 1500.0).abs() < 1e-9);
        assert!(stats.pj_per_bit().is_finite());
    }

    #[test]
    fn utilization_scaled_never_exceeds_always_on() {
        // Carried wire bits can never exceed the fabric's link capacity, so
        // utilization-scaled transceiver + FEC energy is bounded by the
        // always-on term — for any (conserving) traffic split.
        let always = paper_model(EnergyMode::AlwaysOn);
        let util = paper_model(EnergyMode::UtilizationScaled);
        for (d, i) in [(0.0, 0.0), (1e5, 5e4), (1e7, 1e6), (1.8e7, 0.0)] {
            let a = always.account(3, 0, d, i);
            let u = util.account(3, 0, d, i);
            assert!(
                u.transceiver_energy_j + u.fec_energy_j
                    <= a.transceiver_energy_j + a.fec_energy_j + 1e-6
            );
            assert!((u.idle_energy_j - a.idle_energy_j).abs() < 1e-9);
        }
    }

    #[test]
    fn reconfigurations_are_charged_per_event() {
        let model = paper_model(EnergyMode::UtilizationScaled);
        let none = model.account(4, 0, 100.0, 0.0);
        let three = model.account(4, 3, 100.0, 0.0);
        assert_eq!(none.reconfiguration_energy_j, 0.0);
        assert!(
            (three.reconfiguration_energy_j
                - 3.0 * EnergyConfig::default().reconfiguration_energy_j)
                .abs()
                < 1e-12
        );
        assert!(
            (three.total_joules() - none.total_joules() - three.reconfiguration_energy_j).abs()
                < 1e-9
        );
    }

    #[test]
    fn empty_scenarios_are_fully_defined() {
        for mode in [EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled] {
            let stats = paper_model(mode).account(0, 0, 0.0, 0.0);
            assert_eq!(stats.duration_s, 0.0);
            assert_eq!(stats.total_joules(), 0.0);
            assert_eq!(stats.watts(), 0.0);
            assert!(stats.pj_per_bit().is_nan());
            assert_eq!(stats.photonic_compute_ratio(), 0.0);
        }
    }

    #[test]
    fn account_flows_uses_fabric_carried_traffic_only() {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = 16;
        let fabric = RackFabric::new(cfg);
        let report = FlowSimulator::new(&fabric, FlowSimConfig::default()).run(&[
            Flow::new(2, 2, 500.0), // MCM-local: satisfied, zero fabric energy
            Flow::new(0, 1, 100.0),
        ]);
        let model = EnergyModel::new(
            EnergyMode::UtilizationScaled,
            EnergyConfig::default(),
            &cfg,
            &FecConfig::disabled(),
        );
        let stats = model.account_flows(&report);
        assert!((stats.payload_gigabits - 100.0).abs() < 1e-9);
        let expected = 100.0e9 * 0.5e-12;
        assert!((stats.transceiver_energy_j - expected).abs() < 1e-9);
        assert_eq!(stats.fec_energy_j, 0.0);
    }

    #[test]
    fn degenerate_config_knobs_are_sanitized() {
        let fabric = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        for bad in [f64::NAN, f64::NEG_INFINITY, -3.0] {
            let config = EnergyConfig {
                epoch_duration_s: bad,
                reconfiguration_energy_j: bad,
                switch_power_per_mcm_w: bad,
                ..EnergyConfig::default()
            };
            let model = EnergyModel::new(
                EnergyMode::UtilizationScaled,
                config,
                &fabric,
                &FecConfig::cxl_lightweight(),
            );
            let stats = model.account(4, 2, 1000.0, 100.0);
            // A degenerate knob zeroes its term instead of poisoning the
            // report with negative or NaN joules.
            assert!(stats.total_joules() >= 0.0);
            assert!(stats.total_joules().is_finite());
            assert_eq!(stats.reconfiguration_energy_j, 0.0);
            assert_eq!(stats.idle_energy_j, 0.0);
            assert!(stats.watts().is_finite());
        }
        // An infinite pJ/bit is also caught.
        let inf = EnergyConfig {
            transceiver_pj_per_bit: f64::INFINITY,
            ..EnergyConfig::default()
        };
        assert_eq!(inf.sanitized().transceiver_pj_per_bit, 0.0);
    }

    #[test]
    fn energy_mode_labels_are_stable() {
        assert_eq!(EnergyMode::AlwaysOn.label(), "always-on");
        assert_eq!(EnergyMode::UtilizationScaled.label(), "util");
    }
}
