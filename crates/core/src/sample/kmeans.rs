//! Deterministic seeded k-means over scenario feature vectors.
//!
//! k-means++ seeding draws from a [`ChaCha8Rng`] keyed off the grid and
//! sample seeds, so the same grid always clusters the same way regardless
//! of thread count or axis declaration order (the caller feeds points in a
//! canonical order). Every tie in the algorithm breaks toward the lowest
//! point/centroid index, and Lloyd iteration stops as soon as assignments
//! are stable, so the result is a pure function of `(points, k, seed)`.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use super::feature::{FeatureVec, DIMS};

/// Output of [`run`]: per-point cluster assignment plus final centroids.
/// `centroids.len()` may be below the requested `k` when the data has
/// fewer distinct points than clusters.
pub(crate) struct KmeansResult {
    /// `assignments[i]` is the centroid index for `points[i]`.
    pub assignments: Vec<usize>,
    /// Final cluster centers in feature space.
    pub centroids: Vec<FeatureVec>,
}

pub(crate) fn dist2(a: &FeatureVec, b: &FeatureVec) -> f64 {
    let mut sum = 0.0;
    for d in 0..DIMS {
        let delta = a[d] - b[d];
        sum += delta * delta;
    }
    sum
}

/// Uniform f64 in `[0, 1)` from the top 53 bits of one RNG draw.
fn unit(rng: &mut ChaCha8Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// k-means++ initialization: the first center is drawn uniformly, each
/// later one with probability proportional to its squared distance from
/// the nearest already-chosen center. Stops early once every point sits on
/// an existing center (total D² = 0) — requesting more clusters than
/// distinct points yields exactly the distinct points.
fn seed_centers(points: &[FeatureVec], k: usize, rng: &mut ChaCha8Rng) -> Vec<FeatureVec> {
    let mut centers: Vec<FeatureVec> = Vec::with_capacity(k);
    let first = (rng.next_u64() % points.len() as u64) as usize;
    centers.push(points[first]);
    let mut best: Vec<f64> = points.iter().map(|p| dist2(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = best.iter().sum();
        if total <= 0.0 {
            break;
        }
        let mut target = unit(rng) * total;
        let mut chosen = points.len() - 1;
        for (i, d) in best.iter().enumerate() {
            if target < *d {
                chosen = i;
                break;
            }
            target -= *d;
        }
        let center = points[chosen];
        centers.push(center);
        for (i, p) in points.iter().enumerate() {
            let d = dist2(p, &center);
            if d < best[i] {
                best[i] = d;
            }
        }
    }
    centers
}

fn nearest(point: &FeatureVec, centers: &[FeatureVec]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let d = dist2(point, center);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Full clustering: k-means++ seeding followed by Lloyd iteration (at most
/// `max_iterations` rounds, stopping when assignments stabilize). A
/// cluster emptied by reassignment is reseeded to the point farthest from
/// its current center when a strictly-positive-distance point exists;
/// otherwise it stays empty and the caller drops the weight-0 cluster.
pub(crate) fn run(
    points: &[FeatureVec],
    k: usize,
    seed: u64,
    max_iterations: usize,
) -> KmeansResult {
    assert!(!points.is_empty() && k > 0, "kmeans needs points and k > 0");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut centroids = seed_centers(points, k.min(points.len()), &mut rng);
    let mut assignments: Vec<usize> = points.iter().map(|p| nearest(p, &centroids)).collect();
    for _ in 0..max_iterations {
        // Recompute each centroid as the mean of its members.
        let mut sums = vec![[0.0f64; DIMS]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, a) in points.iter().zip(assignments.iter()) {
            counts[*a] += 1;
            for d in 0..DIMS {
                sums[*a][d] += p[d];
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] == 0 {
                continue;
            }
            for d in 0..DIMS {
                centroid[d] = sums[c][d] / counts[c] as f64;
            }
        }
        // Reseed empty clusters to the farthest point from its center, if
        // any point sits at a strictly positive distance.
        for c in 0..centroids.len() {
            if counts[c] > 0 {
                continue;
            }
            let mut far = 0;
            let mut far_d = 0.0;
            for (i, p) in points.iter().enumerate() {
                let d = dist2(p, &centroids[assignments[i]]);
                if d > far_d {
                    far_d = d;
                    far = i;
                }
            }
            if far_d > 0.0 {
                centroids[c] = points[far];
            }
        }
        let next: Vec<usize> = points.iter().map(|p| nearest(p, &centroids)).collect();
        if next == assignments {
            break;
        }
        assignments = next;
    }
    KmeansResult {
        assignments,
        centroids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(x: f64, y: f64) -> FeatureVec {
        let mut p = [0.0; DIMS];
        p[0] = x;
        p[1] = y;
        p
    }

    #[test]
    fn separated_blobs_get_separate_clusters() {
        let points = vec![
            point(0.0, 0.0),
            point(0.01, 0.0),
            point(1.0, 1.0),
            point(0.99, 1.0),
        ];
        let result = run(&points, 2, 42, 16);
        assert_eq!(result.assignments[0], result.assignments[1]);
        assert_eq!(result.assignments[2], result.assignments[3]);
        assert_ne!(result.assignments[0], result.assignments[2]);
    }

    #[test]
    fn identical_points_collapse_to_one_center() {
        let points = vec![point(0.5, 0.5); 8];
        let result = run(&points, 4, 7, 16);
        assert_eq!(result.centroids.len(), 1);
        assert!(result.assignments.iter().all(|a| *a == 0));
    }

    #[test]
    fn same_seed_same_result() {
        let points: Vec<FeatureVec> = (0..32)
            .map(|i| point(i as f64 / 32.0, (i % 5) as f64 / 5.0))
            .collect();
        let a = run(&points, 6, 99, 25);
        let b = run(&points, 6, 99, 25);
        assert_eq!(a.assignments, b.assignments);
    }
}
