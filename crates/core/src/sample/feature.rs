//! Per-scenario feature extraction for the representative-scenario
//! sampler: a fixed-width numeric vector computed from the scenario's
//! *definition* — hardware-axis coordinates, load/policy tags, and the
//! seeded demand-matrix signature — without ever running a simulator.
//!
//! Scenarios that land close in this space stress a fabric similarly, so
//! k-means over the (min-max normalized) vectors groups the grid into
//! clusters a single weighted representative can stand in for. Demand
//! signatures are memoized per `(load, rack size, effective seed)`:
//! replicates of a seed-insensitive pattern, and every fabric / DWDM / FEC
//! / latency / policy variation of any load, share one signature
//! computation.

use std::collections::HashMap;

use fabric::FabricKind;
use workloads::DemandSignature;

use crate::energy::EnergyMode;
use crate::sweep::{Scenario, ScenarioLoad};

/// Width of the feature vector: 11 coordinate/tag dimensions plus the
/// [`DemandSignature`] components.
pub(crate) const DIMS: usize = 11 + DemandSignature::DIMS;

/// One scenario's feature vector.
pub(crate) type FeatureVec = [f64; DIMS];

/// Memoized demand signatures keyed by `(load key, mcm_count, effective
/// seed)`. The load key covers every demand-defining parameter (pattern
/// label + demand bits, or the timeline spec label); the effective seed is
/// the scenario seed for seed-sensitive loads and 0 otherwise.
pub(crate) type SignatureMemo = HashMap<(String, u32, u64), (DemandSignature, f64, f64)>;

fn fabric_ordinal(kind: FabricKind) -> f64 {
    match kind {
        FabricKind::ParallelAwgrs => 0.0,
        FabricKind::WaveSelective => 1.0,
        FabricKind::Spatial => 2.0,
    }
}

fn energy_ordinal(mode: Option<EnergyMode>) -> f64 {
    match mode {
        None => 0.0,
        Some(EnergyMode::AlwaysOn) => 1.0,
        Some(EnergyMode::UtilizationScaled) => 2.0,
    }
}

fn load_kind_ordinal(load: &ScenarioLoad) -> f64 {
    match load {
        ScenarioLoad::Pattern(p) => match p {
            workloads::TrafficPattern::Uniform { .. } => 1.0,
            workloads::TrafficPattern::Permutation { .. } => 2.0,
            workloads::TrafficPattern::HotSpot { .. } => 3.0,
            workloads::TrafficPattern::NearestNeighbor { .. } => 4.0,
            workloads::TrafficPattern::AllToAll { .. } => 5.0,
        },
        ScenarioLoad::Timeline(_) => 6.0,
        ScenarioLoad::FlexGrid(_) => 7.0,
    }
}

/// Map a policy label to a stable unit-interval coordinate (FNV-1a over
/// the label bytes). Policies have no numeric order; a deterministic hash
/// coordinate still separates them in feature space.
fn policy_unit(label: &str) -> f64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in label.as_bytes() {
        h ^= *byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The demand half of the feature vector: `(signature, epochs, churn)`,
/// memoized across scenarios that share a demand expansion.
fn demand_features(scenario: &Scenario, memo: &mut SignatureMemo) -> (DemandSignature, f64, f64) {
    let mcm_count = scenario.fabric.mcm_count;
    let (key, effective_seed) = match &scenario.load {
        ScenarioLoad::Pattern(p) => (p.memo_key(), p.effective_seed(scenario.seed)),
        ScenarioLoad::Timeline(tc) => (tc.timeline.spec_label(), scenario.seed),
        ScenarioLoad::FlexGrid(fc) => (fc.timeline.spec_label(), scenario.seed),
    };
    if let Some(cached) = memo.get(&(key.clone(), mcm_count, effective_seed)) {
        return *cached;
    }
    let value = match &scenario.load {
        ScenarioLoad::Pattern(p) => (p.demand_signature(mcm_count, scenario.seed), 1.0, 0.0),
        ScenarioLoad::Timeline(tc) => {
            let sig = tc.timeline.demand_signature(mcm_count, scenario.seed);
            (sig.aggregate, sig.epochs, sig.churn)
        }
        ScenarioLoad::FlexGrid(fc) => {
            let sig = fc.timeline.demand_signature(mcm_count, scenario.seed);
            (sig.aggregate, sig.epochs, sig.churn)
        }
    };
    memo.insert((key, mcm_count, effective_seed), value);
    value
}

/// Extract one scenario's raw (unnormalized) feature vector.
pub(crate) fn extract(scenario: &Scenario, memo: &mut SignatureMemo) -> FeatureVec {
    let policy = match &scenario.load {
        ScenarioLoad::Pattern(_) => 0.0,
        ScenarioLoad::Timeline(tc) => policy_unit(&tc.policy.label()),
        ScenarioLoad::FlexGrid(fc) => policy_unit(&fc.policy.label()),
    };
    let (sig, epochs, churn) = demand_features(scenario, memo);
    let s = sig.components();
    [
        fabric_ordinal(scenario.fabric.kind),
        scenario.fabric.mcm_count as f64,
        scenario.fabric.fibers_per_mcm as f64,
        scenario.fabric.wavelengths_per_fiber as f64,
        scenario.fabric.gbps_per_wavelength,
        scenario.direct_latency_ns,
        energy_ordinal(scenario.energy_mode),
        load_kind_ordinal(&scenario.load),
        policy,
        epochs,
        churn,
        s[0],
        s[1],
        s[2],
        s[3],
        s[4],
    ]
}

/// Min-max normalize every dimension in place over the whole grid, so no
/// axis dominates the k-means distance by unit choice alone. Constant
/// dimensions collapse to 0.
pub(crate) fn normalize(features: &mut [FeatureVec]) {
    if features.is_empty() {
        return;
    }
    for dim in 0..DIMS {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for f in features.iter() {
            min = min.min(f[dim]);
            max = max.max(f[dim]);
        }
        let span = max - min;
        for f in features.iter_mut() {
            f[dim] = if span > 0.0 {
                (f[dim] - min) / span
            } else {
                0.0
            };
        }
    }
}
