//! Representative-scenario sampling for sweep grids (SimPoint, applied to
//! parameter sweeps instead of program phases).
//!
//! Exhaustive grids pay for every replicate and every near-duplicate
//! configuration. This module cuts that cost the way SimPoint cuts
//! simulation cost for CPU workloads: describe each scenario by a cheap
//! feature vector computed *without* running the simulator
//! (`feature`: hardware-axis coordinates, load/policy tags, and the
//! seeded demand-matrix signature), cluster the vectors with deterministic
//! seeded k-means (`kmeans`: k-means++ init over the grid's ChaCha8
//! stream), simulate **one weighted representative per cluster**, and
//! reconstruct the full-grid summary as the weight-averaged estimate, with
//! declared per-metric error bounds carried in a [`SamplingStats`] block.
//!
//! The contract, pinned by `tests/sampling_accuracy.rs` against the
//! exhaustive oracle [`SweepGrid::run`]:
//!
//! * **Exact degeneration.** When the cluster budget covers the grid
//!   (`clusters >= scenario_count`, or fewer than
//!   [`SampleConfig::min_replicate_collapse`] scenarios per cluster), the
//!   sampler delegates to [`SweepGrid::run`] — output byte-identical to
//!   the oracle, with `SamplingStats { exact: true, .. }` attached as
//!   JSON-excluded metadata.
//! * **Determinism.** The cluster plan is a pure function of the grid and
//!   config: scenarios are clustered in a canonical order (sorted by
//!   normalized feature vector, then seed, then replicate), so the plan —
//!   and the reconstructed report — is invariant under axis-declaration
//!   reordering and under the executing thread count.
//! * **Declared accuracy.** Each reconstructed summary metric carries an
//!   absolute error bound derived from the plan's mean intra-cluster
//!   dispersion; the accuracy suite verifies the exhaustive oracle lands
//!   within bounds on the reference grids.

mod feature;
mod kmeans;

use std::time::Instant;

use fabric::FabricKind;
use serde::json::Value;
use serde::{Deserialize, Serialize};
use workloads::TrafficPattern;

use crate::codec::{self, DecodeError};
use crate::energy::EnergyStats;
use crate::report::{SamplingStats, SweepReport, SweepRow, ThroughputStats};
use crate::sweep::exec::{execute_batch, FabricCache, ReuseAccum};
use crate::sweep::{Scenario, ScenarioResult, SweepGrid};

/// Knobs of the representative-scenario sampler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleConfig {
    /// Cluster budget: at most this many scenarios are simulated. The
    /// effective count can come out lower when the grid has fewer distinct
    /// feature vectors than clusters.
    pub clusters: usize,
    /// Minimum average scenarios-per-cluster for sampling to be worth the
    /// clustering pass: grids with fewer than `clusters *
    /// min_replicate_collapse` scenarios run exhaustively instead.
    pub min_replicate_collapse: usize,
    /// Sampler seed, folded with the grid's `base_seed` into the k-means
    /// RNG stream.
    pub seed: u64,
    /// Lloyd-iteration cap for k-means refinement.
    pub max_iterations: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            clusters: 16,
            min_replicate_collapse: 2,
            seed: 0xC1A5_7E12,
            max_iterations: 32,
        }
    }
}

impl SampleConfig {
    /// A default-knobs config with the given cluster budget (the `sweep
    /// --sample K` spelling).
    pub fn with_clusters(clusters: usize) -> Self {
        SampleConfig {
            clusters: clusters.max(1),
            ..SampleConfig::default()
        }
    }

    /// Canonical JSON form (round-trips through the job-file parser; also
    /// the preimage of [`SampleConfig::sample_hash`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clusters\":{},\"min_replicate_collapse\":{},\"seed\":{},\"max_iterations\":{}}}",
            self.clusters, self.min_replicate_collapse, self.seed, self.max_iterations
        )
    }

    /// Parse the `sample` object of a job file. All fields optional;
    /// unknown fields rejected.
    pub(crate) fn from_json_value(doc: &Value, ctx: &str) -> Result<Self, DecodeError> {
        let mut config = SampleConfig::default();
        for (key, value) in codec::as_object(doc, ctx)? {
            let field_ctx = format!("{ctx}.{key}");
            match key.as_str() {
                "clusters" => config.clusters = codec::as_usize(value, &field_ctx)?.max(1),
                "min_replicate_collapse" => {
                    config.min_replicate_collapse = codec::as_usize(value, &field_ctx)?
                }
                "seed" => config.seed = codec::as_u64(value, &field_ctx)?,
                "max_iterations" => {
                    config.max_iterations = codec::as_usize(value, &field_ctx)?.max(1)
                }
                _ => return Err(format!("{ctx}: unknown field {key:?}")),
            }
        }
        Ok(config)
    }

    /// Content hash of the config (FNV-1a over the canonical JSON, like
    /// [`SweepGrid::grid_hash`]). The jobs layer folds this into the shard
    /// cache key, so sampled shards can never collide with exact shards —
    /// or with shards sampled under different knobs.
    pub fn sample_hash(&self) -> String {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in self.to_json().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        format!("{hash:016x}")
    }
}

/// One cluster's elected representative: the grid-expansion index of the
/// scenario to simulate and the number of scenarios it stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Representative {
    /// Grid-expansion index of the representative scenario.
    pub index: usize,
    /// Cluster population (scenarios this representative stands for).
    pub weight: usize,
}

/// The deterministic clustering of a grid under a [`SampleConfig`]: which
/// scenarios to simulate, with what weights, and how far the grid spreads
/// around them.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlan {
    /// Scenarios the full grid expands to.
    pub total: usize,
    /// True when the plan degenerates to exhaustive execution (see
    /// [`SampleConfig::min_replicate_collapse`]); `representatives` and
    /// `assignments` are empty in that case.
    pub exact: bool,
    /// One entry per non-empty cluster, ordered by representative index.
    pub representatives: Vec<Representative>,
    /// For each grid-expansion index, the ordinal of its cluster in
    /// `representatives`. Empty in exact mode.
    pub assignments: Vec<u32>,
    /// Weight-averaged RMS distance of scenarios to their cluster centroid
    /// in the normalized feature space.
    pub mean_dispersion: f64,
}

impl ClusterPlan {
    /// Cluster a grid. Pure function of `(grid, config)`: independent of
    /// thread count, and invariant under axis-declaration reordering
    /// (scenarios are canonically ordered by feature vector before
    /// clustering, so where a scenario sits in the expansion order cannot
    /// influence the plan).
    pub fn build(grid: &SweepGrid, config: &SampleConfig) -> ClusterPlan {
        let n = grid.scenario_count();
        let k = config.clusters.max(1);
        if n == 0 || k >= n || n < k.saturating_mul(config.min_replicate_collapse.max(1)) {
            return ClusterPlan {
                total: n,
                exact: true,
                representatives: Vec::new(),
                assignments: Vec::new(),
                mean_dispersion: 0.0,
            };
        }

        let mut memo = feature::SignatureMemo::new();
        let mut features: Vec<feature::FeatureVec> = Vec::with_capacity(n);
        let mut tiebreak: Vec<(u64, u32)> = Vec::with_capacity(n);
        for scenario in grid.scenarios() {
            features.push(feature::extract(&scenario, &mut memo));
            tiebreak.push((scenario.seed, scenario.replicate));
        }
        feature::normalize(&mut features);

        // Canonical clustering order: sort grid indices by feature vector,
        // then (seed, replicate). Any rows still tied after that are
        // interchangeable — same features, same seed — so whichever one a
        // cluster elects, the simulated result is identical.
        let mut canonical: Vec<usize> = (0..n).collect();
        canonical.sort_by(|&a, &b| {
            for (fa, fb) in features[a].iter().zip(&features[b]) {
                match fa.total_cmp(fb) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            tiebreak[a].cmp(&tiebreak[b])
        });
        let points: Vec<feature::FeatureVec> = canonical.iter().map(|&i| features[i]).collect();

        let seed = grid.base_seed ^ config.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let result = kmeans::run(&points, k, seed, config.max_iterations.max(1));

        let mut members: Vec<Vec<usize>> = vec![Vec::new(); result.centroids.len()];
        for (pos, &cluster) in result.assignments.iter().enumerate() {
            members[cluster].push(pos);
        }

        // Elect each cluster's representative: the member closest to the
        // final centroid, ties toward the lowest canonical position.
        struct Elected {
            rep_pos: usize,
            member_pos: Vec<usize>,
            rms: f64,
        }
        let mut elected: Vec<Elected> = Vec::with_capacity(result.centroids.len());
        for (cluster, member_pos) in members.into_iter().enumerate() {
            if member_pos.is_empty() {
                continue;
            }
            let centroid = &result.centroids[cluster];
            let mut rep_pos = member_pos[0];
            let mut rep_d = f64::INFINITY;
            let mut sum_d2 = 0.0;
            for &pos in &member_pos {
                let d = kmeans::dist2(&points[pos], centroid);
                sum_d2 += d;
                if d < rep_d {
                    rep_d = d;
                    rep_pos = pos;
                }
            }
            let rms = (sum_d2 / member_pos.len() as f64).sqrt();
            elected.push(Elected {
                rep_pos,
                member_pos,
                rms,
            });
        }
        elected.sort_by_key(|e| e.rep_pos);

        let mut assignments = vec![0u32; n];
        let mut representatives = Vec::with_capacity(elected.len());
        let mut dispersion_sum = 0.0;
        for (ordinal, cluster) in elected.iter().enumerate() {
            for &pos in &cluster.member_pos {
                assignments[canonical[pos]] = ordinal as u32;
            }
            dispersion_sum += cluster.rms * cluster.member_pos.len() as f64;
            representatives.push(Representative {
                index: canonical[cluster.rep_pos],
                weight: cluster.member_pos.len(),
            });
        }
        ClusterPlan {
            total: n,
            exact: false,
            representatives,
            assignments,
            mean_dispersion: dispersion_sum / n as f64,
        }
    }

    /// Build the [`SamplingStats`] block for a reconstructed report, with
    /// the declared error bound for each estimated summary metric.
    /// `scenarios` and `fabrics_built` are exact by construction and carry
    /// no bound. The coefficients are calibrated against the reference
    /// grids in `tests/sampling_accuracy.rs`: the bound widens linearly
    /// with the plan's mean intra-cluster dispersion, which is 0 when every
    /// cluster collapsed onto identical feature vectors (pure replicate
    /// collapse) and grows as genuinely different scenarios get merged.
    pub(crate) fn stats(&self, config: &SampleConfig, summary: &[(String, f64)]) -> SamplingStats {
        let d = self.mean_dispersion;
        let mut error_bounds = Vec::new();
        for (key, value) in summary {
            let bound = match key.as_str() {
                "mean_satisfaction" => 0.02 + 0.35 * d,
                "min_satisfaction" => 0.06 + 0.90 * d,
                "mean_latency_ns" | "total_energy_j" | "mean_power_w" => {
                    (0.03 + 0.45 * d) * value.abs()
                }
                _ => continue,
            };
            error_bounds.push((key.clone(), bound));
        }
        SamplingStats {
            exact: self.exact,
            clusters: config.clusters,
            evaluated: if self.exact {
                self.total
            } else {
                self.representatives.len()
            },
            total: self.total,
            mean_dispersion: d,
            error_bounds,
        }
    }
}

/// Weighted reconstruction of the exhaustive summary from representative
/// results: each representative contributes with its cluster weight, and
/// the denominators are the *full* grid population — so the emitted
/// summary block has exactly the exhaustive schema (same keys, same
/// order), estimating what [`SweepGrid::run`] would report.
///
/// Shared by [`SweepGrid::run_sampled`] and the jobs layer's sampled-shard
/// merge, which re-folds from JSON-round-tripped shard rows — identical
/// operation sequence, so a resumed sampled job's merged report is
/// byte-identical to an uninterrupted `run_sampled`.
pub(crate) struct SampleAggregator {
    total: usize,
    satisfaction_sum: f64,
    satisfaction_min: f64,
    latency_sum: f64,
    energy_weight: usize,
    energy_total_j: f64,
    energy_watts_sum: f64,
}

impl SampleAggregator {
    pub(crate) fn new(total: usize) -> Self {
        SampleAggregator {
            total,
            satisfaction_sum: 0.0,
            satisfaction_min: f64::MAX,
            latency_sum: 0.0,
            energy_weight: 0,
            energy_total_j: 0.0,
            energy_watts_sum: 0.0,
        }
    }

    pub(crate) fn absorb_parts(
        &mut self,
        weight: usize,
        satisfaction: f64,
        mean_latency_ns: f64,
        energy: Option<&EnergyStats>,
    ) {
        let w = weight as f64;
        self.satisfaction_sum += w * satisfaction;
        self.satisfaction_min = self.satisfaction_min.min(satisfaction);
        self.latency_sum += w * mean_latency_ns;
        if let Some(energy) = energy {
            self.energy_weight += weight;
            self.energy_total_j += w * energy.total_joules();
            self.energy_watts_sum += w * energy.watts();
        }
    }

    pub(crate) fn finish(self, report: &mut SweepReport, fabrics_built: usize) {
        let n = self.total;
        if n == 0 {
            return;
        }
        report.summary = vec![
            ("scenarios".to_string(), n as f64),
            ("fabrics_built".to_string(), fabrics_built as f64),
            (
                "mean_satisfaction".to_string(),
                self.satisfaction_sum / n as f64,
            ),
            ("min_satisfaction".to_string(), self.satisfaction_min),
            ("mean_latency_ns".to_string(), self.latency_sum / n as f64),
        ];
        if self.energy_weight > 0 {
            report
                .summary
                .push(("total_energy_j".to_string(), self.energy_total_j));
            report.summary.push((
                "mean_power_w".to_string(),
                self.energy_watts_sum / self.energy_weight as f64,
            ));
        }
    }
}

/// Append one representative's row to a reconstructed report, tagging it
/// with its cluster weight (an extra `cluster_weight` parameter after the
/// scenario's own, so sampled rows are self-describing in the JSON).
pub(crate) fn push_weighted_row(report: &mut SweepReport, result: ScenarioResult, weight: usize) {
    let mut row: SweepRow = result.to_row();
    row.params
        .push(("cluster_weight".to_string(), weight.to_string()));
    if let Some(energy) = result.energy {
        report.energy.push((row.label.clone(), energy));
    }
    report.rows.push(row);
}

impl SweepGrid {
    /// Execute the grid through the representative-scenario sampler: one
    /// simulated scenario per cluster, weighted reconstruction of the
    /// exhaustive summary, accuracy metadata in
    /// [`SweepReport::sampling`]. When the plan degenerates (see
    /// [`ClusterPlan::build`]) this *is* [`SweepGrid::run`], byte for
    /// byte.
    ///
    /// ```
    /// use disagg_core::sample::SampleConfig;
    /// use disagg_core::sweep::SweepGrid;
    ///
    /// let grid = SweepGrid::named("s").mcm_counts([16]).replicates(64);
    /// let sampled = grid.run_sampled(&SampleConfig::with_clusters(4));
    /// let stats = sampled.sampling.as_ref().unwrap();
    /// assert!(!stats.exact);
    /// assert_eq!(stats.total, 64);
    /// assert!(stats.evaluated <= 4);
    /// // The reconstructed summary estimates the full 64-scenario grid.
    /// assert_eq!(sampled.summary_metric("scenarios"), Some(64.0));
    /// ```
    pub fn run_sampled(&self, config: &SampleConfig) -> SweepReport {
        let plan = ClusterPlan::build(self, config);
        if plan.exact {
            let mut report = self.run();
            report.sampling = Some(plan.stats(config, &report.summary));
            return report;
        }
        let started = Instant::now();
        // Build the full grid's fabric set (not just the representatives'),
        // so `fabrics_built` — an exact metric — matches the oracle.
        let cache = FabricCache::from_grid(self, true);
        let scenarios = self.scenarios();
        let reps: Vec<Scenario> = plan
            .representatives
            .iter()
            .map(|r| {
                scenarios
                    .get(r.index)
                    .expect("representative index within grid bounds")
            })
            .collect();
        // Representatives come from distinct clusters, so dedup rarely
        // fires here — but the demand-matrix memo still pays off when
        // representatives share a traffic signature, and reuse is
        // byte-exact, so it stays on unconditionally.
        let mut accum = ReuseAccum::new();
        let results = execute_batch(
            &reps,
            &cache,
            self.indirect_hop_latency_ns,
            &self.energy_config,
            true,
            None,
            &mut accum,
        );
        let wall_s = started.elapsed().as_secs_f64();
        let mut report = SweepReport::new(self.name.clone());
        let mut aggregator = SampleAggregator::new(plan.total);
        for (rep, result) in plan.representatives.iter().zip(results) {
            aggregator.absorb_parts(
                rep.weight,
                result.satisfaction,
                result.mean_latency_ns,
                result.energy.as_ref(),
            );
            push_weighted_row(&mut report, result, rep.weight);
        }
        let evaluated = report.rows.len();
        aggregator.finish(&mut report, cache.len());
        report.sampling = Some(plan.stats(config, &report.summary));
        report.throughput = Some(ThroughputStats {
            scenarios: evaluated,
            wall_s,
            threads: rayon::current_num_threads(),
        });
        report.reuse = Some(accum.stats());
        report
    }
}

/// The fixed reference grid the accuracy harness and `sweep --bench` share:
/// heavy enough that per-scenario work dominates overhead, varied enough to
/// exercise both fabric constructions, the indirect-routing path, and three
/// traffic shapes with different satisfaction profiles. 192 scenarios at
/// the default 32 replicates; `reference_grid().replicates(r)` scales the
/// replicate axis for the inflated variants.
pub fn reference_grid() -> SweepGrid {
    SweepGrid::named("bench-reference")
        .mcm_counts([350])
        .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
        .patterns([
            // All-to-all at full rack scale is the heavy hitter: ~122k
            // flows per scenario through the allocator.
            TrafficPattern::AllToAll { demand_gbps: 8.0 },
            TrafficPattern::Permutation { demand_gbps: 600.0 },
            TrafficPattern::HotSpot {
                hot_mcms: 8,
                demand_gbps: 500.0,
            },
        ])
        .direct_latencies_ns([35.0])
        .replicates(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> SweepGrid {
        SweepGrid::named("sample-unit")
            .mcm_counts([16, 24])
            .patterns([
                TrafficPattern::Permutation { demand_gbps: 200.0 },
                TrafficPattern::HotSpot {
                    hot_mcms: 2,
                    demand_gbps: 300.0,
                },
            ])
            .replicates(8) // 32 scenarios
    }

    #[test]
    fn plan_weights_cover_the_grid_exactly_once() {
        let grid = small_grid();
        let plan = ClusterPlan::build(&grid, &SampleConfig::with_clusters(6));
        assert!(!plan.exact);
        assert_eq!(plan.total, 32);
        assert_eq!(plan.assignments.len(), 32);
        let weight_sum: usize = plan.representatives.iter().map(|r| r.weight).sum();
        assert_eq!(weight_sum, 32);
        // Every assignment points at a live representative, and each
        // representative belongs to its own cluster.
        for (index, &ordinal) in plan.assignments.iter().enumerate() {
            assert!(
                (ordinal as usize) < plan.representatives.len(),
                "row {index}"
            );
        }
        for (ordinal, rep) in plan.representatives.iter().enumerate() {
            assert_eq!(plan.assignments[rep.index] as usize, ordinal);
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let grid = small_grid();
        let config = SampleConfig::with_clusters(5);
        let a = ClusterPlan::build(&grid, &config);
        let b = ClusterPlan::build(&grid, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_budget_covering_the_grid_degenerates_to_exact() {
        let grid = small_grid();
        let plan = ClusterPlan::build(&grid, &SampleConfig::with_clusters(32));
        assert!(plan.exact);
        // And so does a grid too small to pay for clustering.
        let plan = ClusterPlan::build(&grid, &SampleConfig::with_clusters(17));
        assert!(plan.exact, "17 clusters x 2 collapse > 32 scenarios");
    }

    #[test]
    fn degenerate_run_sampled_is_byte_identical_to_run() {
        let grid = small_grid();
        let sampled = grid.run_sampled(&SampleConfig::with_clusters(64));
        assert_eq!(sampled.to_json(), grid.run().to_json());
        let stats = sampled.sampling.expect("stats attached");
        assert!(stats.exact);
        assert_eq!(stats.evaluated, 32);
        assert_eq!(stats.total, 32);
        assert_eq!(stats.reduction(), 1.0);
    }

    #[test]
    fn sampled_summary_keeps_the_exhaustive_schema() {
        let grid = small_grid().energy_modes([crate::energy::EnergyMode::UtilizationScaled]);
        let exact = grid.run();
        let sampled = grid.run_sampled(&SampleConfig::with_clusters(6));
        let keys =
            |r: &SweepReport| -> Vec<String> { r.summary.iter().map(|(k, _)| k.clone()).collect() };
        assert_eq!(keys(&sampled), keys(&exact));
        assert_eq!(sampled.summary_metric("scenarios"), Some(32.0));
        assert_eq!(
            sampled.summary_metric("fabrics_built"),
            exact.summary_metric("fabrics_built")
        );
        let stats = sampled.sampling.as_ref().unwrap();
        assert!(stats.evaluated <= 6);
        assert!(stats.bound("mean_satisfaction").unwrap() > 0.0);
        assert!(
            stats.bound("scenarios").is_none(),
            "exact metrics carry no bound"
        );
    }

    #[test]
    fn sample_config_json_round_trips_and_rejects_unknowns() {
        let config = SampleConfig {
            clusters: 9,
            min_replicate_collapse: 3,
            seed: 17,
            max_iterations: 5,
        };
        let doc = serde::json::parse(&config.to_json()).unwrap();
        assert_eq!(
            SampleConfig::from_json_value(&doc, "sample").unwrap(),
            config
        );
        let bad = serde::json::parse("{\"k\":4}").unwrap();
        assert!(SampleConfig::from_json_value(&bad, "sample").is_err());
        // Hash separates configs.
        assert_ne!(config.sample_hash(), SampleConfig::default().sample_hash());
    }
}
