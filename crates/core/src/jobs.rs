//! Checkpointed sweep jobs: the engine behind the `sweepd` daemon.
//!
//! A [`JobSpec`] wraps a [`SweepGrid`] with execution knobs (per-job thread
//! budget, shard size) and parses from the JSON job files `sweepd` accepts.
//! A [`JobRunner`] executes a spec *through an on-disk shard cache*: the
//! grid's scenario range is cut into fixed-size shards, each shard is
//! executed at most once ever — its [`SweepReport`] JSON is written to
//! `cache_dir/<grid_hash>/shard<k>.json` the moment it completes — and a
//! rerun of the same grid (after a crash, or a resubmission) replays every
//! cached shard from disk and executes only what is missing.
//!
//! Three properties make the cache sound:
//!
//! * **Content addressing.** The cache key is [`SweepGrid::grid_hash`], a
//!   hash of the grid's canonical JSON — any change to any axis lands in a
//!   different cache directory, and equal grids share one no matter how
//!   they were spelled. Jobs that opt into representative-scenario
//!   sampling ([`JobSpec::sample`]) get a *composite* key,
//!   `<grid_hash>-s<sample_hash>`: sampled shards (weighted
//!   representatives) can never collide with exact shards of the same
//!   grid, or with shards sampled under different knobs.
//! * **Bit-exact replay.** Shard JSON round-trips every float exactly
//!   (shortest-round-trip formatting, raw-text parsing), and the merged
//!   summary is re-folded from shard rows with the identical operation
//!   sequence the live aggregator uses — so a merged report is
//!   byte-identical to an uninterrupted [`SweepGrid::run`], whether its
//!   shards came from execution, from disk, or a mix.
//! * **Atomic checkpoints.** Shards are written to a temp file and
//!   renamed, so a crash mid-write leaves no torn shard — at worst the
//!   interrupted shard is re-executed on restart.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::codec::{self, DecodeError};
use crate::report::{ReuseStats, SweepReport};
use crate::sample::{push_weighted_row, ClusterPlan, SampleAggregator, SampleConfig};
use crate::sweep::exec::{execute_batch, push_row, FabricCache, ReuseAccum, StreamAggregator};
use crate::sweep::{StreamConfig, SweepGrid};

/// A sweep job: a grid plus the execution knobs of the `sweepd` job-file
/// schema. See `docs/OPERATIONS.md` for the file format.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The grid to execute. In a job file this is the `grid` object,
    /// parsed by [`SweepGrid::from_json`] — absent axes default to the
    /// paper's design point.
    pub grid: SweepGrid,
    /// Thread budget for this job (`rayon::with_max_threads` scope).
    /// `None` uses the process-wide pool as configured.
    pub threads: Option<usize>,
    /// Scenarios per checkpoint shard. Smaller shards checkpoint more
    /// often (finer crash-resume granularity) at the cost of more files.
    pub rows_per_shard: usize,
    /// Scenarios decoded and executed per parallel batch within a shard.
    pub batch_size: usize,
    /// Representative-scenario sampling knobs (`sample` object in the job
    /// file). `None` — the default — runs the grid exhaustively. When set,
    /// the job simulates one weighted representative per cluster and
    /// reconstructs the full-grid summary (see
    /// [`SweepGrid::run_sampled`]); its shards live under the composite
    /// cache key [`JobSpec::cache_key`].
    pub sample: Option<SampleConfig>,
    /// Cross-scenario computation reuse (`reuse` field in the job file,
    /// default `true`): dedup-planned solving plus demand-matrix
    /// memoization within each batch. Reuse is byte-exact — the merged
    /// report is identical either way — so the knob is deliberately
    /// *excluded* from [`JobSpec::cache_key`]: reuse-on and reuse-off runs
    /// of the same grid share one shard cache.
    pub reuse: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            grid: SweepGrid::default(),
            threads: None,
            rows_per_shard: 256,
            batch_size: StreamConfig::default().batch_size,
            sample: None,
            reuse: true,
        }
    }
}

impl JobSpec {
    /// A default-knobs job over a grid.
    pub fn new(grid: SweepGrid) -> Self {
        JobSpec {
            grid,
            ..JobSpec::default()
        }
    }

    /// Parse a job file. Only `grid` is required; `threads`,
    /// `rows_per_shard`, and `batch_size` default as in
    /// [`JobSpec::default`]. Unknown fields are rejected.
    ///
    /// ```
    /// use disagg_core::jobs::JobSpec;
    ///
    /// let spec = JobSpec::from_json(
    ///     r#"{"grid":{"mcm_counts":[16],"replicates":2},"rows_per_shard":3}"#,
    /// )
    /// .unwrap();
    /// assert_eq!(spec.grid.scenario_count(), 2);
    /// assert_eq!(spec.rows_per_shard, 3);
    /// assert_eq!(spec.threads, None);
    /// assert!(JobSpec::from_json(r#"{"grid":{},"shards":9}"#).is_err());
    /// ```
    pub fn from_json(text: &str) -> Result<Self, DecodeError> {
        let doc = serde::json::parse(text).map_err(|e| format!("job: {e}"))?;
        let mut spec = JobSpec::default();
        let mut saw_grid = false;
        for (key, value) in codec::as_object(&doc, "job")? {
            let ctx = format!("job.{key}");
            match key.as_str() {
                "grid" => {
                    spec.grid = SweepGrid::from_json_value(value)?;
                    saw_grid = true;
                }
                "threads" => spec.threads = Some(codec::as_usize(value, &ctx)?.max(1)),
                "rows_per_shard" => spec.rows_per_shard = codec::as_usize(value, &ctx)?.max(1),
                "batch_size" => spec.batch_size = codec::as_usize(value, &ctx)?.max(1),
                "sample" => spec.sample = Some(SampleConfig::from_json_value(value, &ctx)?),
                "reuse" => spec.reuse = codec::as_bool(value, &ctx)?,
                _ => return Err(format!("job: unknown field {key:?}")),
            }
        }
        if !saw_grid {
            return Err("job: missing field \"grid\"".to_string());
        }
        Ok(spec)
    }

    /// Serialize the spec back to the job-file schema (round-trips through
    /// [`JobSpec::from_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"grid\":");
        out.push_str(&self.grid.to_json());
        if let Some(threads) = self.threads {
            out.push_str(&format!(",\"threads\":{threads}"));
        }
        out.push_str(&format!(
            ",\"rows_per_shard\":{},\"batch_size\":{}",
            self.rows_per_shard, self.batch_size
        ));
        if let Some(sample) = &self.sample {
            out.push_str(",\"sample\":");
            out.push_str(&sample.to_json());
        }
        if !self.reuse {
            out.push_str(",\"reuse\":false");
        }
        out.push('}');
        out
    }

    /// Number of checkpoint shards the job's *exhaustive* grid cuts into.
    /// A sampled job shards the (smaller) representative list instead;
    /// [`JobOutcome::shards_total`] reports the count actually used.
    pub fn shard_count(&self) -> usize {
        self.grid
            .scenario_count()
            .div_ceil(self.rows_per_shard.max(1))
    }

    /// The job's shard-cache key: the grid's content hash, extended with
    /// the sample-config hash when the job samples. Exact and sampled runs
    /// of the same grid — and sampled runs under different knobs — always
    /// cache under different keys.
    ///
    /// ```
    /// use disagg_core::jobs::JobSpec;
    /// use disagg_core::sample::SampleConfig;
    /// use disagg_core::sweep::SweepGrid;
    ///
    /// let mut spec = JobSpec::new(SweepGrid::named("k").mcm_counts([16]));
    /// let exact = spec.cache_key();
    /// assert_eq!(exact, spec.grid.grid_hash());
    /// spec.sample = Some(SampleConfig::with_clusters(8));
    /// assert!(spec.cache_key().starts_with(&format!("{exact}-s")));
    /// ```
    pub fn cache_key(&self) -> String {
        match &self.sample {
            None => self.grid.grid_hash(),
            Some(sample) => format!("{}-s{}", self.grid.grid_hash(), sample.sample_hash()),
        }
    }
}

/// What a [`JobRunner`] run did and produced.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The merged report: byte-identical (`to_json`) to an uninterrupted
    /// [`SweepGrid::run`] of the same grid when the job ran to completion
    /// (to an uninterrupted [`SweepGrid::run_sampled`] for sampled jobs).
    pub report: SweepReport,
    /// The job's cache key ([`JobSpec::cache_key`]) — the shard cache
    /// directory name.
    pub grid_hash: String,
    /// Total shards the grid cuts into.
    pub shards_total: usize,
    /// Shards replayed from the on-disk cache.
    pub shards_from_cache: usize,
    /// Shards executed fresh this run.
    pub shards_executed: usize,
    /// Scenarios evaluated fresh this run (zero on a full cache hit).
    pub scenarios_executed: usize,
    /// True when the run stopped early (fresh-shard limit reached): the
    /// report covers only the shards processed so far, and a rerun will
    /// resume from the first missing shard.
    pub suspended: bool,
    /// Computation-reuse counters accumulated across the shards *executed
    /// fresh this run* (cached shards did no solving). `None` when the spec
    /// disabled reuse; all-zero on a full cache hit.
    pub reuse: Option<ReuseStats>,
}

/// A job-execution failure: cache I/O or a corrupt input, with context.
pub type JobError = String;

/// Executes [`JobSpec`]s through an on-disk shard cache rooted at a cache
/// directory (see the module docs for the layout and guarantees).
#[derive(Debug, Clone)]
pub struct JobRunner {
    cache_dir: PathBuf,
}

impl JobRunner {
    /// A runner over a cache directory (created on first use).
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        JobRunner {
            cache_dir: cache_dir.into(),
        }
    }

    /// The shard-cache directory of a grid (exists only once a shard of
    /// that grid has been checkpointed).
    pub fn grid_dir(&self, grid: &SweepGrid) -> PathBuf {
        self.cache_dir.join(grid.grid_hash())
    }

    /// Run a job to completion: replay every cached shard, execute the
    /// missing ones (checkpointing each as it completes), and merge.
    ///
    /// ```
    /// use disagg_core::jobs::{JobRunner, JobSpec};
    /// use disagg_core::sweep::SweepGrid;
    ///
    /// let dir = std::env::temp_dir().join(format!("pd-jobs-doc-{}", std::process::id()));
    /// let grid = SweepGrid::named("doc").mcm_counts([16]).replicates(4);
    /// let mut spec = JobSpec::new(grid.clone());
    /// spec.rows_per_shard = 3;
    ///
    /// let runner = JobRunner::new(&dir);
    /// let first = runner.run(&spec).unwrap();
    /// assert_eq!(first.shards_executed, 2);
    /// assert_eq!(first.report.to_json(), grid.run().to_json());
    ///
    /// // Resubmission of the same grid: served entirely from the cache.
    /// let again = runner.run(&spec).unwrap();
    /// assert_eq!(again.scenarios_executed, 0);
    /// assert_eq!(again.report.to_json(), first.report.to_json());
    /// std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn run(&self, spec: &JobSpec) -> Result<JobOutcome, JobError> {
        self.run_with_limit(spec, None)
    }

    /// [`JobRunner::run`] with a cap on *fresh* shard executions: the run
    /// suspends (rather than executes) once `max_fresh_shards` shards have
    /// been executed this call. Cached shards never count against the
    /// limit. This is the crash-injection hook — `sweepd --max-shards`
    /// uses it to prove kill-and-restart resume — and doubles as a
    /// cooperative time-slicing primitive.
    pub fn run_with_limit(
        &self,
        spec: &JobSpec,
        max_fresh_shards: Option<usize>,
    ) -> Result<JobOutcome, JobError> {
        match spec.threads {
            Some(budget) => {
                rayon::with_max_threads(budget, || self.run_inner(spec, max_fresh_shards))
            }
            None => self.run_inner(spec, max_fresh_shards),
        }
    }

    fn run_inner(
        &self,
        spec: &JobSpec,
        max_fresh_shards: Option<usize>,
    ) -> Result<JobOutcome, JobError> {
        // Sampled jobs shard the representative list instead of the grid,
        // under the composite cache key. A degenerate plan (cluster budget
        // covers the grid) falls through to the exact pipeline below —
        // still under the sampled cache key, so exact jobs never see its
        // shards — and the merged report matches `run_sampled`'s exact
        // delegation byte for byte.
        let plan = spec
            .sample
            .as_ref()
            .map(|sample| ClusterPlan::build(&spec.grid, sample));
        if let (Some(sample), Some(plan)) = (&spec.sample, &plan) {
            if !plan.exact {
                return self.run_sampled_inner(spec, sample, plan, max_fresh_shards);
            }
        }
        let grid = &spec.grid;
        let grid_hash = spec.cache_key();
        let grid_dir = self.cache_dir.join(&grid_hash);
        let per_shard = spec.rows_per_shard.max(1);
        let scenario_count = grid.scenario_count();
        let shards_total = scenario_count.div_ceil(per_shard);

        let mut shards: Vec<SweepReport> = Vec::with_capacity(shards_total);
        let mut shards_from_cache = 0usize;
        let mut shards_executed = 0usize;
        let mut scenarios_executed = 0usize;
        let mut suspended = false;
        // Fabrics are built lazily on the first shard that actually
        // executes: a fully cached job performs zero fabric constructions
        // (and zero scenario evaluations).
        let mut fabric_cache: Option<FabricCache> = None;
        let mut accum = ReuseAccum::new();

        for k in 0..shards_total {
            let start = k * per_shard;
            let end = scenario_count.min(start + per_shard);
            let path = grid_dir.join(format!("shard{k}.json"));
            if let Some(cached) = load_cached_shard(&path, end - start) {
                shards.push(cached);
                shards_from_cache += 1;
                continue;
            }
            if max_fresh_shards.is_some_and(|max| shards_executed >= max) {
                suspended = true;
                break;
            }
            let cache = match &fabric_cache {
                Some(cache) => cache,
                None => fabric_cache.insert(FabricCache::from_grid(grid, true)),
            };
            let shard = execute_shard(grid, spec, cache, k, start, end, &mut accum);
            write_shard(&grid_dir, &path, &shard)?;
            scenarios_executed += shard.rows.len();
            shards_executed += 1;
            shards.push(shard);
        }

        let mut report = merge_shards(grid, &shards)?;
        if let (Some(sample), Some(plan)) = (&spec.sample, &plan) {
            report.sampling = Some(plan.stats(sample, &report.summary));
        }
        let reuse = spec.reuse.then(|| accum.stats());
        report.reuse = reuse;
        Ok(JobOutcome {
            report,
            grid_hash,
            shards_total,
            shards_from_cache,
            shards_executed,
            scenarios_executed,
            suspended,
            reuse,
        })
    }

    /// The sampled twin of the exact pipeline in `run_inner`: the cluster
    /// plan's representative list is cut into `rows_per_shard` shards, each
    /// executed at most once ever and checkpointed under the composite
    /// cache key, and the merged report re-folds the weighted summary with
    /// [`SampleAggregator`] — byte-identical to an uninterrupted
    /// [`SweepGrid::run_sampled`], whether shards came from execution,
    /// from disk, or a mix.
    fn run_sampled_inner(
        &self,
        spec: &JobSpec,
        sample: &SampleConfig,
        plan: &ClusterPlan,
        max_fresh_shards: Option<usize>,
    ) -> Result<JobOutcome, JobError> {
        let grid = &spec.grid;
        let grid_hash = spec.cache_key();
        let grid_dir = self.cache_dir.join(&grid_hash);
        let per_shard = spec.rows_per_shard.max(1);
        let rep_count = plan.representatives.len();
        let shards_total = rep_count.div_ceil(per_shard);

        let mut shards: Vec<SweepReport> = Vec::with_capacity(shards_total);
        let mut shards_from_cache = 0usize;
        let mut shards_executed = 0usize;
        let mut scenarios_executed = 0usize;
        let mut suspended = false;
        let mut fabric_cache: Option<FabricCache> = None;
        let mut accum = ReuseAccum::new();

        for k in 0..shards_total {
            let start = k * per_shard;
            let end = rep_count.min(start + per_shard);
            let path = grid_dir.join(format!("shard{k}.json"));
            if let Some(cached) = load_cached_shard(&path, end - start) {
                shards.push(cached);
                shards_from_cache += 1;
                continue;
            }
            if max_fresh_shards.is_some_and(|max| shards_executed >= max) {
                suspended = true;
                break;
            }
            let cache = match &fabric_cache {
                Some(cache) => cache,
                // The *full* grid's fabric set, as in `run_sampled`, so the
                // merged `fabrics_built` matches the oracle's.
                None => fabric_cache.insert(FabricCache::from_grid(grid, true)),
            };
            let shard = execute_sampled_shard(spec, cache, plan, k, start, end, &mut accum);
            write_shard(&grid_dir, &path, &shard)?;
            scenarios_executed += shard.rows.len();
            shards_executed += 1;
            shards.push(shard);
        }

        let mut report = merge_sampled_shards(grid, sample, plan, &shards)?;
        let reuse = spec.reuse.then(|| accum.stats());
        report.reuse = reuse;
        Ok(JobOutcome {
            report,
            grid_hash,
            shards_total,
            shards_from_cache,
            shards_executed,
            scenarios_executed,
            suspended,
            reuse,
        })
    }
}

/// A cached shard, if present and intact. Any failure — unreadable file,
/// malformed JSON, wrong row count — falls back to `None`, and the shard
/// is re-executed and overwritten; a damaged cache costs time, never
/// correctness.
fn load_cached_shard(path: &Path, expected_rows: usize) -> Option<SweepReport> {
    let text = fs::read_to_string(path).ok()?;
    let report = SweepReport::from_json(&text).ok()?;
    (report.rows.len() == expected_rows).then_some(report)
}

/// Execute scenario range `[start, end)` as shard `k` on the thread pool.
fn execute_shard(
    grid: &SweepGrid,
    spec: &JobSpec,
    cache: &FabricCache,
    k: usize,
    start: usize,
    end: usize,
    accum: &mut ReuseAccum,
) -> SweepReport {
    let mut shard = SweepReport::new(format!("{}.shard{k}", grid.name));
    let scenarios = grid.scenarios();
    let mut batch = Vec::with_capacity(spec.batch_size.min(end - start));
    let mut next = start;
    while next < end {
        batch.clear();
        batch.extend(
            (next..end.min(next + spec.batch_size))
                .map(|i| scenarios.get(i).expect("scenario index within grid bounds")),
        );
        next += batch.len();
        let results = execute_batch(
            &batch,
            cache,
            grid.indirect_hop_latency_ns,
            &grid.energy_config,
            spec.reuse,
            None,
            accum,
        );
        for result in results {
            push_row(&mut shard, result);
        }
    }
    shard
}

/// Execute representative range `[start, end)` of a cluster plan as shard
/// `k`: each representative's scenario runs once, and its row carries the
/// cluster weight (see `push_weighted_row`) so the shard is
/// self-describing on disk.
fn execute_sampled_shard(
    spec: &JobSpec,
    cache: &FabricCache,
    plan: &ClusterPlan,
    k: usize,
    start: usize,
    end: usize,
    accum: &mut ReuseAccum,
) -> SweepReport {
    let grid = &spec.grid;
    let mut shard = SweepReport::new(format!("{}.shard{k}", grid.name));
    let scenarios = grid.scenarios();
    let mut batch = Vec::with_capacity(spec.batch_size.min(end - start));
    let mut next = start;
    while next < end {
        batch.clear();
        batch.extend((next..end.min(next + spec.batch_size)).map(|r| {
            scenarios
                .get(plan.representatives[r].index)
                .expect("representative index within grid bounds")
        }));
        let results = execute_batch(
            &batch,
            cache,
            grid.indirect_hop_latency_ns,
            &grid.energy_config,
            spec.reuse,
            None,
            accum,
        );
        for (offset, result) in results.into_iter().enumerate() {
            push_weighted_row(
                &mut shard,
                result,
                plan.representatives[next + offset].weight,
            );
        }
        next += batch.len();
    }
    shard
}

/// Merge sampled shards (in shard order) into the reconstructed full-grid
/// report, re-folding the weighted summary from the shard rows — weights
/// come from the (deterministically recomputed) cluster plan, row metrics
/// round-trip bit-exactly through the shard JSON, so the fold is the exact
/// operation sequence `run_sampled` used.
fn merge_sampled_shards(
    grid: &SweepGrid,
    sample: &SampleConfig,
    plan: &ClusterPlan,
    shards: &[SweepReport],
) -> Result<SweepReport, JobError> {
    let mut merged = SweepReport::new(grid.name.clone());
    let mut aggregator = SampleAggregator::new(plan.total);
    let mut rep_next = 0usize;
    for shard in shards {
        let mut energy_next = 0usize;
        for row in &shard.rows {
            let energy = match shard.energy.get(energy_next) {
                Some((label, stats)) if *label == row.label => {
                    energy_next += 1;
                    Some(stats)
                }
                _ => None,
            };
            let satisfaction = row.metric("satisfaction").ok_or_else(|| {
                format!(
                    "jobs: shard {} row {} lacks satisfaction",
                    shard.name, row.label
                )
            })?;
            let mean_latency_ns = row.metric("mean_latency_ns").ok_or_else(|| {
                format!(
                    "jobs: shard {} row {} lacks mean_latency_ns",
                    shard.name, row.label
                )
            })?;
            let weight = plan
                .representatives
                .get(rep_next)
                .map(|r| r.weight)
                .ok_or_else(|| format!("jobs: shard {} has more rows than the plan", shard.name))?;
            rep_next += 1;
            aggregator.absorb_parts(weight, satisfaction, mean_latency_ns, energy);
        }
        merged.rows.extend(shard.rows.iter().cloned());
        merged.energy.extend(shard.energy.iter().cloned());
    }
    aggregator.finish(&mut merged, grid.distinct_fabric_count());
    merged.sampling = Some(plan.stats(sample, &merged.summary));
    Ok(merged)
}

/// Checkpoint a completed shard atomically: write to a temp file in the
/// same directory, then rename over the final path.
fn write_shard(grid_dir: &Path, path: &Path, shard: &SweepReport) -> Result<(), JobError> {
    fs::create_dir_all(grid_dir)
        .map_err(|e| format!("jobs: create {}: {e}", grid_dir.display()))?;
    let tmp = path.with_extension("json.tmp");
    let mut file =
        fs::File::create(&tmp).map_err(|e| format!("jobs: create {}: {e}", tmp.display()))?;
    file.write_all(shard.to_json().as_bytes())
        .and_then(|()| file.sync_all())
        .map_err(|e| format!("jobs: write {}: {e}", tmp.display()))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| format!("jobs: rename to {}: {e}", path.display()))
}

/// Merge shard reports (in shard order) into the full-grid report,
/// re-folding the summary from the shard rows with the live aggregator's
/// exact operation sequence.
fn merge_shards(grid: &SweepGrid, shards: &[SweepReport]) -> Result<SweepReport, JobError> {
    let mut merged = SweepReport::new(grid.name.clone());
    let mut aggregator = StreamAggregator::new();
    for shard in shards {
        // Energy entries are a label-aligned subsequence of the rows;
        // walking a forward pointer recovers each row's entry (if any).
        let mut energy_next = 0usize;
        for row in &shard.rows {
            let energy = match shard.energy.get(energy_next) {
                Some((label, stats)) if *label == row.label => {
                    energy_next += 1;
                    Some(stats)
                }
                _ => None,
            };
            let satisfaction = row.metric("satisfaction").ok_or_else(|| {
                format!(
                    "jobs: shard {} row {} lacks satisfaction",
                    shard.name, row.label
                )
            })?;
            let mean_latency_ns = row.metric("mean_latency_ns").ok_or_else(|| {
                format!(
                    "jobs: shard {} row {} lacks mean_latency_ns",
                    shard.name, row.label
                )
            })?;
            aggregator.absorb_parts(satisfaction, mean_latency_ns, energy);
        }
        merged.rows.extend(shard.rows.iter().cloned());
        merged.energy.extend(shard.energy.iter().cloned());
    }
    aggregator.finish(&mut merged, grid.distinct_fabric_count());
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyMode;
    use workloads::TrafficPattern;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pd-jobs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn job() -> JobSpec {
        let grid = SweepGrid::named("job")
            .mcm_counts([16, 24])
            .patterns([
                TrafficPattern::Permutation { demand_gbps: 200.0 },
                TrafficPattern::Uniform {
                    flows_per_mcm: 2,
                    demand_gbps: 150.0,
                },
            ])
            .energy_modes([EnergyMode::UtilizationScaled])
            .replicates(4); // 16 scenarios
        let mut spec = JobSpec::new(grid);
        spec.rows_per_shard = 3; // 6 shards, last one short
        spec
    }

    #[test]
    fn job_run_is_byte_identical_to_uninterrupted_run() {
        let dir = temp_dir("full");
        let spec = job();
        let reference = spec.grid.run();
        let outcome = JobRunner::new(&dir).run(&spec).expect("job runs");
        assert_eq!(outcome.report.to_json(), reference.to_json());
        assert_eq!(outcome.shards_total, 6);
        assert_eq!(outcome.shards_executed, 6);
        assert_eq!(outcome.shards_from_cache, 0);
        assert_eq!(outcome.scenarios_executed, 16);
        assert!(!outcome.suspended);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_and_restarted_job_resumes_and_merges_byte_identically() {
        let dir = temp_dir("resume");
        let spec = job();
        let runner = JobRunner::new(&dir);
        // "Crash" after 2 of 6 shards.
        let partial = runner.run_with_limit(&spec, Some(2)).expect("partial run");
        assert!(partial.suspended);
        assert_eq!(partial.shards_executed, 2);
        assert_eq!(partial.report.rows.len(), 6);
        // Restart: the two checkpointed shards replay from disk, the rest
        // execute, and the merged report matches an uninterrupted run
        // byte for byte.
        let resumed = runner.run(&spec).expect("resumed run");
        assert_eq!(resumed.shards_from_cache, 2);
        assert_eq!(resumed.shards_executed, 4);
        assert!(!resumed.suspended);
        assert_eq!(resumed.report.to_json(), spec.grid.run().to_json());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resubmitted_grid_is_served_entirely_from_cache() {
        let dir = temp_dir("cache");
        let spec = job();
        let runner = JobRunner::new(&dir);
        let first = runner.run(&spec).expect("first run");
        let again = runner.run(&spec).expect("cached run");
        assert_eq!(again.shards_from_cache, 6);
        assert_eq!(again.shards_executed, 0);
        assert_eq!(again.scenarios_executed, 0, "zero evaluations on cache hit");
        assert_eq!(again.report.to_json(), first.report.to_json());
        // A different grid misses the cache entirely.
        let mut other = spec.clone();
        other.grid = other.grid.replicates(3);
        let fresh = runner.run(&other).expect("other grid");
        assert_ne!(fresh.grid_hash, first.grid_hash);
        assert_eq!(fresh.shards_from_cache, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_cached_shard_is_reexecuted_and_overwritten() {
        let dir = temp_dir("corrupt");
        let spec = job();
        let runner = JobRunner::new(&dir);
        runner.run(&spec).expect("first run");
        let shard0 = runner.grid_dir(&spec.grid).join("shard0.json");
        fs::write(&shard0, "{\"torn\":").unwrap();
        let healed = runner.run(&spec).expect("healing run");
        assert_eq!(healed.shards_executed, 1);
        assert_eq!(healed.shards_from_cache, 5);
        assert_eq!(healed.report.to_json(), spec.grid.run().to_json());
        // The overwritten checkpoint is intact again.
        assert!(SweepReport::from_json(&fs::read_to_string(&shard0).unwrap()).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spec_json_round_trips_and_rejects_unknowns() {
        let mut spec = job();
        spec.threads = Some(2);
        spec.sample = Some(SampleConfig::with_clusters(7));
        let parsed = JobSpec::from_json(&spec.to_json()).expect("parses");
        assert_eq!(parsed, spec);
        assert!(JobSpec::from_json("{}").unwrap_err().contains("grid"));
        assert!(JobSpec::from_json(r#"{"grid":{},"shard_size":4}"#).is_err());
        assert!(JobSpec::from_json(r#"{"grid":{},"sample":{"k":4}}"#).is_err());
    }

    #[test]
    fn sampled_job_is_byte_identical_to_run_sampled() {
        let dir = temp_dir("sampled");
        let mut spec = job();
        let sample = SampleConfig::with_clusters(4);
        spec.sample = Some(sample.clone());
        spec.rows_per_shard = 2;
        let reference = spec.grid.run_sampled(&sample);
        let runner = JobRunner::new(&dir);
        let outcome = runner.run(&spec).expect("sampled job runs");
        assert_eq!(outcome.report.to_json(), reference.to_json());
        assert_eq!(
            outcome.scenarios_executed,
            reference.sampling.as_ref().unwrap().evaluated
        );
        assert!(
            outcome.shards_total < spec.shard_count(),
            "fewer shards than exact"
        );
        // Resubmission: fully cached, still byte-identical.
        let again = runner.run(&spec).expect("cached sampled job");
        assert_eq!(again.scenarios_executed, 0);
        assert_eq!(again.report.to_json(), reference.to_json());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sampled_and_exact_jobs_never_share_cache() {
        let dir = temp_dir("isolated");
        let exact = job();
        let mut sampled = job();
        sampled.sample = Some(SampleConfig::with_clusters(4));
        assert_ne!(exact.cache_key(), sampled.cache_key());
        let runner = JobRunner::new(&dir);
        runner.run(&sampled).expect("sampled job");
        // The exact job finds nothing reusable in the sampled cache.
        let outcome = runner.run(&exact).expect("exact job");
        assert_eq!(outcome.shards_from_cache, 0);
        assert_eq!(outcome.report.to_json(), exact.grid.run().to_json());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degenerate_sampled_job_runs_exact_under_the_sampled_key() {
        let dir = temp_dir("degenerate");
        let mut spec = job();
        // Budget covers the 16-scenario grid: the plan degenerates.
        spec.sample = Some(SampleConfig::with_clusters(64));
        let runner = JobRunner::new(&dir);
        let outcome = runner.run(&spec).expect("degenerate sampled job");
        assert_eq!(outcome.grid_hash, spec.cache_key());
        assert_eq!(outcome.report.to_json(), spec.grid.run().to_json());
        assert!(outcome.report.sampling.as_ref().unwrap().exact);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn thread_budget_does_not_change_bytes() {
        let dir = temp_dir("threads");
        let mut spec = job();
        spec.threads = Some(1);
        let single = JobRunner::new(&dir).run(&spec).expect("1-thread run");
        assert_eq!(single.report.to_json(), spec.grid.run().to_json());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_grid_yields_empty_report_and_no_shards() {
        let dir = temp_dir("empty");
        let mut spec = job();
        spec.grid = spec.grid.patterns([]);
        let outcome = JobRunner::new(&dir).run(&spec).expect("empty job");
        assert_eq!(outcome.shards_total, 0);
        assert!(outcome.report.rows.is_empty());
        assert!(outcome.report.summary.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
