//! # disagg-core
//!
//! The high-level API of the reproduction: it ties the photonic device
//! models, the rack fabric, the CPU/GPU simulators, and the workload
//! registries together into **experiment drivers** that regenerate every
//! table and figure of the paper's evaluation (Section VI), plus a
//! [`DisaggregatedRack`] façade that a
//! downstream user would start from.
//!
//! * [`rack_builder`] — build the paper's photonically-disaggregated rack
//!   (or variants) and summarize its properties.
//! * [`cpu_experiments`] — the gem5-equivalent CPU latency studies
//!   (Figs. 6, 7, 8, the CPU half of Fig. 12).
//! * [`gpu_experiments`] — the PPT-GPU-equivalent GPU latency studies
//!   (Figs. 9, 10, 11, the GPU half of Fig. 12).
//! * [`rack_analysis`] — the analytical results: Tables I–IV, the Fig. 5
//!   connectivity guarantee, power overhead, BER/FEC, bandwidth
//!   sufficiency, and the iso-performance comparison.
//! * [`sweep`] — the declarative scenario-sweep engine: cartesian
//!   [`SweepGrid`]s over rack topology, DWDM/FEC
//!   settings, fabric construction, and traffic pattern — or, on the
//!   temporal axis, phased demand timelines under wavelength-reallocation
//!   policies — executed in parallel with memoized fabric builds, plus the
//!   engine-backed paper artifacts ([`sweep::artifacts`]).
//! * [`sample`] — representative-scenario sampling over those grids
//!   (SimPoint for sweeps): cheap per-scenario feature vectors, seeded
//!   k-means, one weighted representative per cluster, and a reconstructed
//!   full-grid summary with declared error bounds.
//! * [`energy`] — per-scenario energy accounting (Section VI-C made
//!   dynamic): always-on vs utilization-scaled transceiver energy, FEC
//!   coding overhead, per-event wavelength-reconfiguration energy, and the
//!   switch/laser idle floor, surfaced as the
//!   [`EnergyStats`] block of every energy-enabled
//!   sweep.
//! * [`report`] — plain-text table formatting used by the bench binaries
//!   and the JSON-able [`SweepReport`] schema every
//!   sweep produces.
//!
//! The repository-level `ARCHITECTURE.md` documents how these modules sit
//! between the device/fabric crates below and the `bench` binaries above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod cpu_experiments;
pub mod energy;
pub mod gpu_experiments;
pub mod jobs;
pub mod rack_analysis;
pub mod rack_builder;
pub mod report;
pub mod sample;
pub mod sweep;

pub use cpu_experiments::{
    run_cpu_experiment, summarize_by_suite, CpuBenchmarkResult, CpuExperimentConfig, SuiteSummary,
};
pub use energy::{EnergyConfig, EnergyMode, EnergyModel, EnergyStats};
pub use gpu_experiments::{
    gpu_results_to_json, run_gpu_experiment, GpuBenchmarkResult, GpuExperimentConfig,
};
pub use jobs::{JobOutcome, JobRunner, JobSpec};
pub use rack_analysis::RackAnalysis;
pub use rack_builder::{DisaggregatedRack, RackSummary};
pub use report::{ReuseStats, SamplingStats, SweepReport, SweepRow, ThroughputStats};
pub use sample::{ClusterPlan, SampleConfig};
pub use sweep::{Scenario, ScenarioLoad, ScenarioResult, SweepGrid, TimelineCase};

/// The paper's latency sweep for CPU/GPU studies, in nanoseconds:
/// baseline (0), the photonic sensitivity points (25, 30, 35), and the best
/// electronic switch (85).
pub const LATENCY_SWEEP_NS: [f64; 5] = [0.0, 25.0, 30.0, 35.0, 85.0];

/// The photonic design point (35 ns) used by most figures.
pub const PHOTONIC_LATENCY_NS: f64 = 35.0;

/// The best electronic-switch design point (85 ns) used by Fig. 12.
pub const ELECTRONIC_LATENCY_NS: f64 = 85.0;
