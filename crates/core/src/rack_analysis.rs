//! Analytical results: Tables I–IV, the Fig. 5 connectivity property, the
//! BER/FEC analysis, the power overhead, the bandwidth-sufficiency study,
//! and the iso-performance comparison — everything in the paper's evaluation
//! that does not require running the CPU/GPU simulators.

use fabric::electronic::ElectronicFabric;
use fabric::rackfabric::{FabricKind, FabricReport, RackFabric, RackFabricConfig};
use photonics::fec::LinkErrorModel;
use photonics::link::EscapeSizing;
use photonics::power::RackPhotonicPower;
use photonics::switch::{OpticalSwitch, SwitchConfig};
use rack::bandwidth::{BandwidthSufficiency, GpuBandwidthBudget};
use rack::isoperf::IsoPerformanceAnalysis;
use rack::mcm::RackComposition;
use rack::power::RackPowerModel;
use serde::{Deserialize, Serialize};

/// All the analytical (non-simulation) results in one struct.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RackAnalysis {
    /// Table I rows: link technologies sized for a 2 TB/s escape target.
    pub table_i: Vec<EscapeSizing>,
    /// Table II rows: the photonic switch catalogue.
    pub table_ii: Vec<OpticalSwitch>,
    /// Table III: the MCM composition.
    pub table_iii: RackComposition,
    /// Table IV: the switch configurations used in the study.
    pub table_iv: Vec<SwitchConfig>,
    /// Fig. 5 property: connectivity report of the AWGR fabric.
    pub awgr_connectivity: FabricReport,
    /// Connectivity report of the wave-selective fabric.
    pub wave_selective_connectivity: FabricReport,
    /// Section III-C3: the FEC/BER outcome at the nominal operating point.
    pub fec_meets_memory_ber: bool,
    /// Section VI-C: photonic power overhead.
    pub power: RackPhotonicPower,
    /// Section VI-A1: bandwidth sufficiency probabilities.
    pub bandwidth: BandwidthSufficiency,
    /// Section VI-A1: the GPU bandwidth budget.
    pub gpu_budget: GpuBandwidthBudget,
    /// Section VI-E: iso-performance resource counts.
    pub iso_performance: IsoPerformanceAnalysis,
    /// Section VI-D: electronic baselines and their added latency (ns).
    pub electronic_baselines: Vec<(String, f64)>,
}

impl RackAnalysis {
    /// Run the full analytical evaluation with the paper's parameters.
    pub fn paper() -> Self {
        let awgr = RackFabric::new(RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs));
        let wss = RackFabric::new(RackFabricConfig::paper_rack(FabricKind::WaveSelective));
        RackAnalysis {
            table_i: EscapeSizing::table_i_rows(),
            table_ii: OpticalSwitch::table_ii(),
            table_iii: RackComposition::paper_rack(),
            table_iv: SwitchConfig::ALL.to_vec(),
            awgr_connectivity: awgr.report(),
            wave_selective_connectivity: wss.report(),
            fec_meets_memory_ber: LinkErrorModel::paper_nominal()
                .meets_ber_target(LinkErrorModel::MEMORY_BER_TARGET),
            power: RackPowerModel::paper_rack().photonic_overhead(),
            bandwidth: BandwidthSufficiency::paper(100_000, 0xBEEF),
            gpu_budget: GpuBandwidthBudget::paper_awgr(),
            iso_performance: IsoPerformanceAnalysis::paper(),
            electronic_baselines: ElectronicFabric::all_baselines()
                .into_iter()
                .map(|f| (f.kind.to_string(), f.added_memory_latency().ns()))
                .collect(),
        }
    }

    /// Serialize the full analysis to single-line JSON. Enum-like fields
    /// (technologies, switch kinds, chip kinds) are written as their display
    /// labels; units are flattened to the suffix named in each key.
    pub fn to_json(&self) -> String {
        use crate::report::{json_number, json_string};
        let mut out = String::with_capacity(4096);

        out.push_str("{\"table_i\":[");
        for (i, row) in self.table_i.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"technology\":");
            json_string(&mut out, &row.technology.kind.to_string());
            out.push_str(",\"link_bandwidth_gbps\":");
            json_number(&mut out, row.technology.bandwidth.gbps());
            out.push_str(",\"energy_per_bit_pj\":");
            json_number(&mut out, row.technology.energy_per_bit.pj());
            out.push_str(",\"escape_target_gbps\":");
            json_number(&mut out, row.escape_target.gbps());
            out.push_str(",\"links\":");
            out.push_str(&row.links.to_string());
            out.push_str(",\"aggregate_power_w\":");
            json_number(&mut out, row.aggregate_power_w);
            out.push('}');
        }

        out.push_str("],\"table_ii\":[");
        for (i, sw) in self.table_ii.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_switch(&mut out, sw);
        }

        out.push_str("],\"table_iii\":{\"mcm_escape_gbs\":");
        json_number(&mut out, self.table_iii.mcm_escape.gbytes_per_s());
        out.push_str(",\"packings\":[");
        for (i, p) in self.table_iii.packings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"kind\":");
            json_string(&mut out, &p.kind.to_string());
            out.push_str(",\"chips_per_mcm\":");
            out.push_str(&p.chips_per_mcm.to_string());
            out.push_str(",\"mcms_per_rack\":");
            out.push_str(&p.mcms_per_rack.to_string());
            out.push_str(",\"total_chips\":");
            out.push_str(&p.total_chips.to_string());
            out.push_str(",\"escape_per_chip_gbs\":");
            json_number(&mut out, p.escape_per_chip.gbytes_per_s());
            out.push('}');
        }

        out.push_str("]},\"table_iv\":[");
        for (i, config) in self.table_iv.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"config\":");
            json_string(&mut out, &config.to_string());
            out.push_str(",\"device\":");
            write_switch(&mut out, &config.device());
            out.push('}');
        }

        out.push_str("],\"awgr_connectivity\":");
        write_fabric_report(&mut out, &self.awgr_connectivity);
        out.push_str(",\"wave_selective_connectivity\":");
        write_fabric_report(&mut out, &self.wave_selective_connectivity);

        out.push_str(",\"fec_meets_memory_ber\":");
        out.push_str(if self.fec_meets_memory_ber {
            "true"
        } else {
            "false"
        });

        out.push_str(",\"power\":{\"transceiver_power_w\":");
        json_number(&mut out, self.power.transceiver_power_w);
        out.push_str(",\"switch_power_w\":");
        json_number(&mut out, self.power.switch_power_w);
        out.push_str(",\"photonic_power_w\":");
        json_number(&mut out, self.power.photonic_power_w);
        out.push_str(",\"baseline_rack_power_w\":");
        json_number(&mut out, self.power.baseline_rack_power_w);
        out.push_str(",\"overhead_percent\":");
        json_number(&mut out, self.power.overhead_percent());

        out.push_str("},\"bandwidth\":{\"direct_125gbps_sufficient\":");
        json_number(&mut out, self.bandwidth.direct_125gbps_sufficient);
        out.push_str(",\"single_wavelength_sufficient\":");
        json_number(&mut out, self.bandwidth.single_wavelength_sufficient);
        out.push_str(",\"samples\":");
        out.push_str(&self.bandwidth.samples.to_string());

        out.push_str("},\"gpu_budget\":{\"indirect_reach_gbs\":");
        json_number(&mut out, self.gpu_budget.indirect_reach_gbs);
        out.push_str(",\"hbm_demand_gbs\":");
        json_number(&mut out, self.gpu_budget.hbm_demand_gbs);
        out.push_str(",\"gpu_to_gpu_demand_gbs\":");
        json_number(&mut out, self.gpu_budget.gpu_to_gpu_demand_gbs);
        out.push_str(",\"headroom_after_hbm_gbs\":");
        json_number(&mut out, self.gpu_budget.headroom_after_hbm_gbs);
        out.push_str(",\"headroom_after_gpu_traffic_gbs\":");
        json_number(&mut out, self.gpu_budget.headroom_after_gpu_traffic_gbs);

        out.push_str("},\"iso_performance\":{\"inputs\":{\"cpu_slowdown\":");
        json_number(&mut out, self.iso_performance.inputs.cpu_slowdown);
        out.push_str(",\"gpu_slowdown\":");
        json_number(&mut out, self.iso_performance.inputs.gpu_slowdown);
        out.push_str(",\"memory_reduction_factor\":");
        json_number(
            &mut out,
            self.iso_performance.inputs.memory_reduction_factor,
        );
        out.push_str(",\"nic_reduction_factor\":");
        json_number(&mut out, self.iso_performance.inputs.nic_reduction_factor);
        out.push_str("},\"baseline\":");
        write_resource_counts(&mut out, &self.iso_performance.baseline);
        out.push_str(",\"disaggregated\":");
        write_resource_counts(&mut out, &self.iso_performance.disaggregated);
        out.push_str(",\"chip_reduction\":");
        json_number(&mut out, self.iso_performance.chip_reduction());

        out.push_str("},\"electronic_baselines\":[");
        for (i, (name, latency_ns)) in self.electronic_baselines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, name);
            out.push_str(",\"added_latency_ns\":");
            json_number(&mut out, *latency_ns);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// The headline claims of the paper, as a list of (claim, holds) pairs —
    /// used by integration tests and the quickstart example to show at a
    /// glance which qualitative results reproduce.
    pub fn headline_claims(&self) -> Vec<(String, bool)> {
        vec![
            (
                "rack fits in 350 MCMs (Table III)".to_string(),
                self.table_iii.total_mcms() == 350,
            ),
            (
                ">=5 direct wavelengths (125 Gbps) between any MCM pair".to_string(),
                self.awgr_connectivity.min_direct_wavelengths >= 5,
            ),
            (
                "AWGR fabric needs no reconfiguration scheduler".to_string(),
                !self.awgr_connectivity.needs_scheduler,
            ),
            (
                "FEC-protected links meet the 1e-18 memory BER target".to_string(),
                self.fec_meets_memory_ber,
            ),
            (
                "photonic power overhead is ~5%".to_string(),
                self.power.overhead_percent() > 3.0 && self.power.overhead_percent() < 7.0,
            ),
            (
                "direct 125 Gbps suffices >99.5% of the time".to_string(),
                self.bandwidth.direct_125gbps_sufficient > 0.995,
            ),
            (
                "GPU indirect bandwidth covers HBM + GPU-GPU traffic".to_string(),
                self.gpu_budget.satisfies_all_demand(),
            ),
            (
                "iso-performance rack has ~44% fewer chips".to_string(),
                self.iso_performance.chip_reduction() > 0.40
                    && self.iso_performance.chip_reduction() < 0.48,
            ),
            (
                "best electronic baseline adds 85 ns (vs 35 ns photonic)".to_string(),
                self.electronic_baselines
                    .iter()
                    .map(|(_, ns)| *ns)
                    .fold(f64::INFINITY, f64::min)
                    == 85.0,
            ),
        ]
    }
}

/// One Table II/IV switch as a JSON object.
fn write_switch(out: &mut String, sw: &OpticalSwitch) {
    use crate::report::{json_number, json_string};
    out.push_str("{\"kind\":");
    json_string(out, &sw.kind.to_string());
    out.push_str(",\"radix\":");
    out.push_str(&sw.radix.to_string());
    out.push_str(",\"wavelengths_per_port\":");
    out.push_str(&sw.wavelengths_per_port.to_string());
    out.push_str(",\"channel_bandwidth_gbps\":");
    json_number(out, sw.channel_bandwidth.gbps());
    out.push_str(",\"insertion_loss_db\":");
    json_number(out, sw.insertion_loss.db());
    out.push_str(",\"crosstalk_db\":");
    json_number(out, sw.crosstalk.db());
    out.push_str(",\"reconfiguration_time_ns\":");
    json_number(out, sw.reconfiguration_time.ns());
    out.push('}');
}

/// A fabric connectivity report as a JSON object (same shape as the
/// `fabric` object inside [`RackSummary::to_json`](crate::RackSummary)).
fn write_fabric_report(out: &mut String, report: &FabricReport) {
    use crate::report::{json_number, json_string};
    out.push_str("{\"kind\":");
    json_string(out, crate::sweep::fabric_kind_label(report.kind));
    out.push_str(",\"planes\":");
    out.push_str(&report.planes.to_string());
    out.push_str(",\"min_direct_wavelengths\":");
    out.push_str(&report.min_direct_wavelengths.to_string());
    out.push_str(",\"max_direct_wavelengths\":");
    out.push_str(&report.max_direct_wavelengths.to_string());
    out.push_str(",\"min_direct_bandwidth_gbps\":");
    json_number(out, report.min_direct_bandwidth_gbps);
    out.push_str(",\"escape_bandwidth_gbps\":");
    json_number(out, report.escape_bandwidth_gbps);
    out.push_str(",\"needs_scheduler\":");
    out.push_str(if report.needs_scheduler {
        "true"
    } else {
        "false"
    });
    out.push('}');
}

/// Iso-performance resource counts as a JSON object.
fn write_resource_counts(out: &mut String, counts: &rack::isoperf::ResourceCounts) {
    out.push_str("{\"cpus\":");
    out.push_str(&counts.cpus.to_string());
    out.push_str(",\"gpus\":");
    out.push_str(&counts.gpus.to_string());
    out.push_str(",\"hbm_stacks\":");
    out.push_str(&counts.hbm_stacks.to_string());
    out.push_str(",\"nics\":");
    out.push_str(&counts.nics.to_string());
    out.push_str(",\"ddr4_modules\":");
    out.push_str(&counts.ddr4_modules.to_string());
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_headline_claims_hold() {
        let analysis = RackAnalysis::paper();
        for (claim, holds) in analysis.headline_claims() {
            assert!(holds, "claim failed: {claim}");
        }
    }

    #[test]
    fn tables_have_expected_row_counts() {
        let a = RackAnalysis::paper();
        assert_eq!(a.table_i.len(), 5);
        assert_eq!(a.table_ii.len(), 5);
        assert_eq!(a.table_iii.packings.len(), 5);
        assert_eq!(a.table_iv.len(), 3);
        assert_eq!(a.electronic_baselines.len(), 5);
    }

    #[test]
    fn analysis_serializes_to_json() {
        let a = RackAnalysis::paper();
        let json = a.to_json();
        assert!(json.contains("table_iii"));
        assert!(json.contains("iso_performance"));
        // The output is well-formed JSON and the tables survive the trip.
        let value = serde::json::parse(&json).unwrap();
        let packings = value
            .get("table_iii")
            .and_then(|t| t.get("packings"))
            .and_then(|p| p.as_array())
            .unwrap();
        assert_eq!(packings.len(), 5);
        assert_eq!(
            value
                .get("awgr_connectivity")
                .and_then(|c| c.get("kind"))
                .and_then(|k| k.as_str()),
            Some("awgr")
        );
        assert_eq!(
            value
                .get("table_iv")
                .and_then(|t| t.as_array())
                .map(<[_]>::len),
            Some(3)
        );
    }

    #[test]
    fn wave_selective_connectivity_differs_from_awgr() {
        let a = RackAnalysis::paper();
        assert!(a.wave_selective_connectivity.needs_scheduler);
        assert!(!a.awgr_connectivity.needs_scheduler);
        assert!(
            a.wave_selective_connectivity.min_direct_wavelengths
                > a.awgr_connectivity.min_direct_wavelengths
        );
    }
}
