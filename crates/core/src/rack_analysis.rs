//! Analytical results: Tables I–IV, the Fig. 5 connectivity property, the
//! BER/FEC analysis, the power overhead, the bandwidth-sufficiency study,
//! and the iso-performance comparison — everything in the paper's evaluation
//! that does not require running the CPU/GPU simulators.

use fabric::electronic::ElectronicFabric;
use fabric::rackfabric::{FabricKind, FabricReport, RackFabric, RackFabricConfig};
use photonics::fec::LinkErrorModel;
use photonics::link::EscapeSizing;
use photonics::power::RackPhotonicPower;
use photonics::switch::{OpticalSwitch, SwitchConfig};
use rack::bandwidth::{BandwidthSufficiency, GpuBandwidthBudget};
use rack::isoperf::IsoPerformanceAnalysis;
use rack::mcm::RackComposition;
use rack::power::RackPowerModel;
use serde::{Deserialize, Serialize};

/// All the analytical (non-simulation) results in one struct.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RackAnalysis {
    /// Table I rows: link technologies sized for a 2 TB/s escape target.
    pub table_i: Vec<EscapeSizing>,
    /// Table II rows: the photonic switch catalogue.
    pub table_ii: Vec<OpticalSwitch>,
    /// Table III: the MCM composition.
    pub table_iii: RackComposition,
    /// Table IV: the switch configurations used in the study.
    pub table_iv: Vec<SwitchConfig>,
    /// Fig. 5 property: connectivity report of the AWGR fabric.
    pub awgr_connectivity: FabricReport,
    /// Connectivity report of the wave-selective fabric.
    pub wave_selective_connectivity: FabricReport,
    /// Section III-C3: the FEC/BER outcome at the nominal operating point.
    pub fec_meets_memory_ber: bool,
    /// Section VI-C: photonic power overhead.
    pub power: RackPhotonicPower,
    /// Section VI-A1: bandwidth sufficiency probabilities.
    pub bandwidth: BandwidthSufficiency,
    /// Section VI-A1: the GPU bandwidth budget.
    pub gpu_budget: GpuBandwidthBudget,
    /// Section VI-E: iso-performance resource counts.
    pub iso_performance: IsoPerformanceAnalysis,
    /// Section VI-D: electronic baselines and their added latency (ns).
    pub electronic_baselines: Vec<(String, f64)>,
}

impl RackAnalysis {
    /// Run the full analytical evaluation with the paper's parameters.
    pub fn paper() -> Self {
        let awgr = RackFabric::new(RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs));
        let wss = RackFabric::new(RackFabricConfig::paper_rack(FabricKind::WaveSelective));
        RackAnalysis {
            table_i: EscapeSizing::table_i_rows(),
            table_ii: OpticalSwitch::table_ii(),
            table_iii: RackComposition::paper_rack(),
            table_iv: SwitchConfig::ALL.to_vec(),
            awgr_connectivity: awgr.report(),
            wave_selective_connectivity: wss.report(),
            fec_meets_memory_ber: LinkErrorModel::paper_nominal()
                .meets_ber_target(LinkErrorModel::MEMORY_BER_TARGET),
            power: RackPowerModel::paper_rack().photonic_overhead(),
            bandwidth: BandwidthSufficiency::paper(100_000, 0xBEEF),
            gpu_budget: GpuBandwidthBudget::paper_awgr(),
            iso_performance: IsoPerformanceAnalysis::paper(),
            electronic_baselines: ElectronicFabric::all_baselines()
                .into_iter()
                .map(|f| (f.kind.to_string(), f.added_memory_latency().ns()))
                .collect(),
        }
    }

    /// The headline claims of the paper, as a list of (claim, holds) pairs —
    /// used by integration tests and the quickstart example to show at a
    /// glance which qualitative results reproduce.
    pub fn headline_claims(&self) -> Vec<(String, bool)> {
        vec![
            (
                "rack fits in 350 MCMs (Table III)".to_string(),
                self.table_iii.total_mcms() == 350,
            ),
            (
                ">=5 direct wavelengths (125 Gbps) between any MCM pair".to_string(),
                self.awgr_connectivity.min_direct_wavelengths >= 5,
            ),
            (
                "AWGR fabric needs no reconfiguration scheduler".to_string(),
                !self.awgr_connectivity.needs_scheduler,
            ),
            (
                "FEC-protected links meet the 1e-18 memory BER target".to_string(),
                self.fec_meets_memory_ber,
            ),
            (
                "photonic power overhead is ~5%".to_string(),
                self.power.overhead_percent() > 3.0 && self.power.overhead_percent() < 7.0,
            ),
            (
                "direct 125 Gbps suffices >99.5% of the time".to_string(),
                self.bandwidth.direct_125gbps_sufficient > 0.995,
            ),
            (
                "GPU indirect bandwidth covers HBM + GPU-GPU traffic".to_string(),
                self.gpu_budget.satisfies_all_demand(),
            ),
            (
                "iso-performance rack has ~44% fewer chips".to_string(),
                self.iso_performance.chip_reduction() > 0.40
                    && self.iso_performance.chip_reduction() < 0.48,
            ),
            (
                "best electronic baseline adds 85 ns (vs 35 ns photonic)".to_string(),
                self.electronic_baselines
                    .iter()
                    .map(|(_, ns)| *ns)
                    .fold(f64::INFINITY, f64::min)
                    == 85.0,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_headline_claims_hold() {
        let analysis = RackAnalysis::paper();
        for (claim, holds) in analysis.headline_claims() {
            assert!(holds, "claim failed: {claim}");
        }
    }

    #[test]
    fn tables_have_expected_row_counts() {
        let a = RackAnalysis::paper();
        assert_eq!(a.table_i.len(), 5);
        assert_eq!(a.table_ii.len(), 5);
        assert_eq!(a.table_iii.packings.len(), 5);
        assert_eq!(a.table_iv.len(), 3);
        assert_eq!(a.electronic_baselines.len(), 5);
    }

    // Gated: needs the real serde + serde_json (see vendor/README.md).
    #[cfg(feature = "serde-roundtrip")]
    #[test]
    fn analysis_serializes_to_json() {
        let a = RackAnalysis::paper();
        let json = serde_json::to_string_pretty(&a).unwrap();
        assert!(json.contains("table_iii"));
        assert!(json.contains("iso_performance"));
    }

    #[test]
    fn wave_selective_connectivity_differs_from_awgr() {
        let a = RackAnalysis::paper();
        assert!(a.wave_selective_connectivity.needs_scheduler);
        assert!(!a.awgr_connectivity.needs_scheduler);
        assert!(
            a.wave_selective_connectivity.min_direct_wavelengths
                > a.awgr_connectivity.min_direct_wavelengths
        );
    }
}
