//! The [`DisaggregatedRack`] façade: the object a downstream user builds
//! first. It combines the MCM composition (Table III), the optical fabric
//! (Section V-B), the photonic latency budget (Section III-C2), and the
//! power model (Section VI-C) into one place.

use fabric::rackfabric::{FabricKind, FabricReport, RackFabric, RackFabricConfig};
use photonics::dwdm::{DwdmLink, DwdmLinkBuilder};
use photonics::units::Latency;
use rack::mcm::RackComposition;
use rack::node::BaselineRack;
use rack::power::RackPowerModel;
use serde::{Deserialize, Serialize};

/// A photonically-disaggregated HPC rack.
#[derive(Debug, Clone)]
pub struct DisaggregatedRack {
    /// The baseline rack being disaggregated.
    pub baseline: BaselineRack,
    /// The MCM composition (Table III).
    pub composition: RackComposition,
    /// The optical fabric connecting the MCMs.
    pub fabric: RackFabric,
    /// The DWDM link model used between MCMs.
    pub link: DwdmLink,
    /// The rack power model.
    pub power: RackPowerModel,
}

/// A compact, serializable summary of the rack's headline properties.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackSummary {
    /// Total MCMs (the paper's 350).
    pub total_mcms: u32,
    /// Total chips packed into those MCMs.
    pub total_chips: u32,
    /// Escape bandwidth per MCM in GB/s.
    pub mcm_escape_gbs: f64,
    /// Fabric connectivity report.
    pub fabric: FabricReport,
    /// Additional LLC-to-memory latency of the photonic fabric (ns).
    pub disaggregation_latency_ns: f64,
    /// Photonic power (W).
    pub photonic_power_w: f64,
    /// Photonic power overhead vs the rack's compute/memory power (%).
    pub photonic_overhead_percent: f64,
}

impl RackSummary {
    /// Serialize to single-line JSON with the same number formatting as the
    /// sweep report writers, so [`from_json`](Self::from_json) round-trips
    /// byte-identically.
    pub fn to_json(&self) -> String {
        use crate::report::{json_number, json_string};
        let mut out = String::with_capacity(256);
        out.push_str("{\"total_mcms\":");
        out.push_str(&self.total_mcms.to_string());
        out.push_str(",\"total_chips\":");
        out.push_str(&self.total_chips.to_string());
        out.push_str(",\"mcm_escape_gbs\":");
        json_number(&mut out, self.mcm_escape_gbs);
        out.push_str(",\"fabric\":{\"kind\":");
        json_string(&mut out, crate::sweep::fabric_kind_label(self.fabric.kind));
        out.push_str(",\"planes\":");
        out.push_str(&self.fabric.planes.to_string());
        out.push_str(",\"min_direct_wavelengths\":");
        out.push_str(&self.fabric.min_direct_wavelengths.to_string());
        out.push_str(",\"max_direct_wavelengths\":");
        out.push_str(&self.fabric.max_direct_wavelengths.to_string());
        out.push_str(",\"min_direct_bandwidth_gbps\":");
        json_number(&mut out, self.fabric.min_direct_bandwidth_gbps);
        out.push_str(",\"escape_bandwidth_gbps\":");
        json_number(&mut out, self.fabric.escape_bandwidth_gbps);
        out.push_str(",\"needs_scheduler\":");
        out.push_str(if self.fabric.needs_scheduler {
            "true"
        } else {
            "false"
        });
        out.push_str("},\"disaggregation_latency_ns\":");
        json_number(&mut out, self.disaggregation_latency_ns);
        out.push_str(",\"photonic_power_w\":");
        json_number(&mut out, self.photonic_power_w);
        out.push_str(",\"photonic_overhead_percent\":");
        json_number(&mut out, self.photonic_overhead_percent);
        out.push('}');
        out
    }

    /// Parse a summary previously written by [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<Self, crate::codec::DecodeError> {
        use crate::codec::{f64_field, field, str_field, u32_field};
        let value = serde::json::parse(text).map_err(|e| format!("summary: {e}"))?;
        let fabric = field(&value, "fabric", "summary")?;
        let kind_label = str_field(fabric, "kind", "summary.fabric")?;
        let kind = crate::sweep::codec::parse_fabric_kind(kind_label)
            .ok_or_else(|| format!("summary.fabric.kind: unknown kind {kind_label:?}"))?;
        let bool_field = |key: &str| -> Result<bool, crate::codec::DecodeError> {
            field(fabric, key, "summary.fabric")?
                .as_bool()
                .ok_or_else(|| format!("summary.fabric.{key}: expected bool"))
        };
        Ok(RackSummary {
            total_mcms: u32_field(&value, "total_mcms", "summary")?,
            total_chips: u32_field(&value, "total_chips", "summary")?,
            mcm_escape_gbs: f64_field(&value, "mcm_escape_gbs", "summary")?,
            fabric: FabricReport {
                kind,
                planes: u32_field(fabric, "planes", "summary.fabric")?,
                min_direct_wavelengths: u32_field(
                    fabric,
                    "min_direct_wavelengths",
                    "summary.fabric",
                )?,
                max_direct_wavelengths: u32_field(
                    fabric,
                    "max_direct_wavelengths",
                    "summary.fabric",
                )?,
                min_direct_bandwidth_gbps: f64_field(
                    fabric,
                    "min_direct_bandwidth_gbps",
                    "summary.fabric",
                )?,
                escape_bandwidth_gbps: f64_field(
                    fabric,
                    "escape_bandwidth_gbps",
                    "summary.fabric",
                )?,
                needs_scheduler: bool_field("needs_scheduler")?,
            },
            disaggregation_latency_ns: f64_field(&value, "disaggregation_latency_ns", "summary")?,
            photonic_power_w: f64_field(&value, "photonic_power_w", "summary")?,
            photonic_overhead_percent: f64_field(&value, "photonic_overhead_percent", "summary")?,
        })
    }
}

impl DisaggregatedRack {
    /// Build the paper's rack with the given fabric kind.
    pub fn paper(kind: FabricKind) -> Self {
        let baseline = BaselineRack::paper_rack();
        let composition = RackComposition::paper_rack();
        let fabric = RackFabric::new(RackFabricConfig::paper_rack(kind));
        let link = DwdmLinkBuilder::new().build();
        let power = RackPowerModel::paper_rack();
        DisaggregatedRack {
            baseline,
            composition,
            fabric,
            link,
            power,
        }
    }

    /// The paper's preferred case (A): six parallel cascaded AWGRs.
    pub fn paper_awgr() -> Self {
        Self::paper(FabricKind::ParallelAwgrs)
    }

    /// The additional LLC-to-memory latency the photonic fabric imposes.
    pub fn disaggregation_latency(&self) -> Latency {
        self.link.disaggregation_latency()
    }

    /// Summarize the rack.
    pub fn summary(&self) -> RackSummary {
        let overhead = self.power.photonic_overhead();
        RackSummary {
            total_mcms: self.composition.total_mcms(),
            total_chips: self.composition.total_chips(),
            mcm_escape_gbs: self.composition.mcm_escape.gbytes_per_s(),
            fabric: self.fabric.report(),
            disaggregation_latency_ns: self.disaggregation_latency().ns(),
            photonic_power_w: overhead.photonic_power_w,
            photonic_overhead_percent: overhead.overhead_percent(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_awgr_rack_summary_matches_headline_numbers() {
        let rack = DisaggregatedRack::paper_awgr();
        let s = rack.summary();
        assert_eq!(s.total_mcms, 350);
        assert!((s.mcm_escape_gbs - 6400.0).abs() < 1e-6);
        assert_eq!(s.fabric.min_direct_wavelengths, 5);
        assert!((s.fabric.min_direct_bandwidth_gbps - 125.0).abs() < 1e-9);
        assert!(!s.fabric.needs_scheduler);
        assert!(s.disaggregation_latency_ns >= 34.0 && s.disaggregation_latency_ns <= 38.0);
        assert!(s.photonic_overhead_percent > 4.0 && s.photonic_overhead_percent < 6.0);
    }

    #[test]
    fn wave_selective_rack_needs_scheduler() {
        let rack = DisaggregatedRack::paper(FabricKind::WaveSelective);
        let s = rack.summary();
        assert!(s.fabric.needs_scheduler);
        assert!(s.fabric.min_direct_wavelengths >= 3 * 256);
        assert_eq!(s.total_mcms, 350);
    }

    #[test]
    fn summary_is_serializable() {
        let rack = DisaggregatedRack::paper_awgr();
        let json = rack.summary().to_json();
        assert!(json.contains("total_mcms"));
        let parsed = RackSummary::from_json(&json).unwrap();
        assert_eq!(parsed.total_mcms, 350);
        assert_eq!(parsed, rack.summary());
        // The writer's number formatting is canonical: re-emitting the
        // parsed summary reproduces the input byte for byte.
        assert_eq!(parsed.to_json(), json);
    }
}
