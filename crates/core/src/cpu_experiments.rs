//! CPU latency-sensitivity experiments (Section VI-B1/2/4 of the paper).
//!
//! Every CPU benchmark configuration is simulated on the trace-driven
//! simulator at several additional LLC-to-memory latencies, for in-order and
//! out-of-order cores. From those runs the harness derives:
//!
//! * Fig. 6 — average and maximum slowdown per suite and input size at
//!   +35 ns;
//! * Fig. 7 — per-benchmark slowdown vs. LLC miss rate and their Pearson
//!   correlation;
//! * Fig. 8 — the 25/30/35 ns sensitivity sweep;
//! * Fig. 12 (CPU half) — speedup of the photonic design (35 ns) over the
//!   best electronic design (85 ns).

use cpusim::{pearson_correlation, CoreKind, CpuConfig, SimResult, Simulator};
use serde::{Deserialize, Serialize};
use workloads::cpu::{cpu_benchmarks, CpuBenchmark, CpuSuite, InputSize};

/// Configuration of the CPU experiment sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuExperimentConfig {
    /// Memory accesses to generate per benchmark trace.
    pub accesses_per_benchmark: usize,
    /// Additional LLC-to-memory latencies to evaluate (ns). Must include 0
    /// (the baseline every slowdown is measured against).
    pub latencies_ns: Vec<f64>,
    /// Core models to evaluate.
    pub core_kinds: Vec<CoreKind>,
    /// Replay each trace once to warm the caches before the timed run, so
    /// that cold (compulsory) misses do not distort short traces. The
    /// paper's long gem5 runs measure steady state; keep this on.
    pub warmup: bool,
    /// Power-of-two divisor applied to both the cache capacities and the
    /// benchmark working sets. 1 reproduces the paper's full-scale
    /// configuration; larger divisors shrink the whole memory system
    /// proportionally so the same behaviour classes can be exercised with
    /// much shorter traces (used by unit tests).
    pub scale_divisor: u32,
}

impl Default for CpuExperimentConfig {
    fn default() -> Self {
        CpuExperimentConfig {
            accesses_per_benchmark: 400_000,
            latencies_ns: crate::LATENCY_SWEEP_NS.to_vec(),
            core_kinds: vec![CoreKind::InOrder, CoreKind::OutOfOrder],
            warmup: true,
            scale_divisor: 1,
        }
    }
}

impl CpuExperimentConfig {
    /// A reduced configuration for quick tests: a 1/8-scale memory system,
    /// short traces, only the in-order core, only the baseline and the
    /// 35 ns point.
    pub fn quick() -> Self {
        CpuExperimentConfig {
            accesses_per_benchmark: 60_000,
            latencies_ns: vec![0.0, 35.0],
            core_kinds: vec![CoreKind::InOrder],
            warmup: true,
            scale_divisor: 8,
        }
    }

    /// The CPU configuration for a core kind with this experiment's memory
    /// system scaling applied.
    pub fn cpu_config(&self, core_kind: CoreKind) -> CpuConfig {
        let mut cfg = CpuConfig::baseline(core_kind);
        let d = self.scale_divisor.max(1) as u64;
        cfg.l1d.capacity_bytes /= d;
        cfg.l2.capacity_bytes /= d;
        cfg.llc.capacity_bytes /= d;
        cfg
    }

    /// A benchmark's trace with this experiment's working-set scaling
    /// applied.
    pub fn trace_for(&self, benchmark: &CpuBenchmark) -> cpusim::MemoryTrace {
        let mut b = benchmark.clone();
        b.working_set_bytes = (b.working_set_bytes / self.scale_divisor.max(1) as u64).max(4096);
        b.trace(self.accesses_per_benchmark)
    }
}

/// Result of one benchmark on one core model across the latency sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuBenchmarkResult {
    /// The benchmark configuration.
    pub benchmark: CpuBenchmark,
    /// The core model.
    pub core_kind: CoreKind,
    /// Baseline (0 ns extra) cycles.
    pub baseline_cycles: u64,
    /// LLC miss rate (identical across latencies).
    pub llc_miss_rate: f64,
    /// Memory accesses per kilo-instruction.
    pub llc_mpki: f64,
    /// (extra latency ns, slowdown %) pairs, one per configured latency.
    pub slowdowns: Vec<(f64, f64)>,
    /// (extra latency ns, total cycles) pairs.
    pub cycles: Vec<(f64, u64)>,
}

impl CpuBenchmarkResult {
    /// Slowdown (in percent) at a given extra latency, if it was simulated.
    pub fn slowdown_at(&self, latency_ns: f64) -> Option<f64> {
        self.slowdowns
            .iter()
            .find(|(l, _)| (l - latency_ns).abs() < 1e-9)
            .map(|(_, s)| *s)
    }

    /// Cycles at a given extra latency, if simulated.
    pub fn cycles_at(&self, latency_ns: f64) -> Option<u64> {
        self.cycles
            .iter()
            .find(|(l, _)| (l - latency_ns).abs() < 1e-9)
            .map(|(_, c)| *c)
    }

    /// Speedup (in percent) of the configuration at `fast_ns` over the one
    /// at `slow_ns` — the Fig. 12 metric with 35 and 85 ns.
    pub fn speedup_between(&self, fast_ns: f64, slow_ns: f64) -> Option<f64> {
        let fast = self.cycles_at(fast_ns)? as f64;
        let slow = self.cycles_at(slow_ns)? as f64;
        if fast <= 0.0 {
            return None;
        }
        Some((slow / fast - 1.0) * 100.0)
    }
}

fn run_single(
    benchmark: &CpuBenchmark,
    core_kind: CoreKind,
    config: &CpuExperimentConfig,
) -> CpuBenchmarkResult {
    let trace = config.trace_for(benchmark);
    let base_cfg = config.cpu_config(core_kind);
    let results: Vec<SimResult> = config
        .latencies_ns
        .iter()
        .map(|&extra| {
            Simulator::new(base_cfg.with_extra_latency_ns(extra))
                .with_warmup(config.warmup)
                .run(&trace)
        })
        .collect();
    let baseline = results
        .iter()
        .zip(config.latencies_ns.iter())
        .find(|(_, &l)| l == 0.0)
        .map(|(r, _)| *r)
        .unwrap_or(results[0]);
    let slowdowns = config
        .latencies_ns
        .iter()
        .zip(results.iter())
        .map(|(&l, r)| (l, r.slowdown_vs(&baseline)))
        .collect();
    let cycles = config
        .latencies_ns
        .iter()
        .zip(results.iter())
        .map(|(&l, r)| (l, r.cycles))
        .collect();
    CpuBenchmarkResult {
        benchmark: benchmark.clone(),
        core_kind,
        baseline_cycles: baseline.cycles,
        llc_miss_rate: baseline.llc_miss_rate(),
        llc_mpki: baseline.llc_mpki(),
        slowdowns,
        cycles,
    }
}

/// Run the full CPU experiment: every registered benchmark, every configured
/// core model, every latency point. Benchmarks are simulated in parallel
/// through the sweep engine's [`parallel_map`](crate::sweep::parallel_map).
pub fn run_cpu_experiment(config: &CpuExperimentConfig) -> Vec<CpuBenchmarkResult> {
    run_cpu_experiment_subset(config, |_| true)
}

/// Run the experiment for a subset of benchmarks (used by Fig. 11 and the
/// examples).
pub fn run_cpu_experiment_subset(
    config: &CpuExperimentConfig,
    filter: impl Fn(&CpuBenchmark) -> bool + Sync,
) -> Vec<CpuBenchmarkResult> {
    let benchmarks: Vec<CpuBenchmark> =
        cpu_benchmarks().into_iter().filter(|b| filter(b)).collect();
    let mut jobs: Vec<(CpuBenchmark, CoreKind)> = Vec::new();
    for b in &benchmarks {
        for &k in &config.core_kinds {
            jobs.push((b.clone(), k));
        }
    }
    crate::sweep::parallel_map(&jobs, |(b, k)| run_single(b, *k, config))
}

/// Per-suite, per-input-size slowdown summary: one bar group of Fig. 6/8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteSummary {
    /// Benchmark suite.
    pub suite: CpuSuite,
    /// Input size (None aggregates all sizes of the suite).
    pub input: Option<InputSize>,
    /// Core model.
    pub core_kind: CoreKind,
    /// Extra latency (ns) the summary refers to.
    pub latency_ns: f64,
    /// Number of benchmarks aggregated.
    pub benchmarks: usize,
    /// Average slowdown (%).
    pub average_slowdown: f64,
    /// Maximum slowdown (%).
    pub max_slowdown: f64,
}

/// Aggregate per-suite / per-input-size average and maximum slowdowns at one
/// latency point (Fig. 6 uses 35 ns; Fig. 8 uses each of 25/30/35).
pub fn summarize_by_suite(results: &[CpuBenchmarkResult], latency_ns: f64) -> Vec<SuiteSummary> {
    let mut summaries = Vec::new();
    let core_kinds: Vec<CoreKind> = {
        let mut v: Vec<CoreKind> = results.iter().map(|r| r.core_kind).collect();
        v.dedup();
        v.sort_by_key(|k| *k as u8);
        v.dedup();
        v
    };
    for &core_kind in &core_kinds {
        for suite in CpuSuite::ALL {
            let inputs: Vec<Option<InputSize>> = match suite {
                CpuSuite::Rodinia => vec![Some(InputSize::Default), None],
                _ => vec![
                    Some(InputSize::Small),
                    Some(InputSize::Medium),
                    Some(InputSize::Large),
                    None,
                ],
            };
            for input in inputs {
                let slowdowns: Vec<f64> = results
                    .iter()
                    .filter(|r| r.core_kind == core_kind && r.benchmark.suite == suite)
                    .filter(|r| input.is_none() || Some(r.benchmark.input) == input)
                    .filter_map(|r| r.slowdown_at(latency_ns))
                    .collect();
                if slowdowns.is_empty() {
                    continue;
                }
                summaries.push(SuiteSummary {
                    suite,
                    input,
                    core_kind,
                    latency_ns,
                    benchmarks: slowdowns.len(),
                    average_slowdown: slowdowns.iter().sum::<f64>() / slowdowns.len() as f64,
                    max_slowdown: slowdowns.iter().cloned().fold(f64::MIN, f64::max),
                });
            }
        }
    }
    summaries
}

/// The Fig. 7 data: per-benchmark (name, slowdown %, LLC miss rate) points
/// plus their Pearson correlation, for one core kind / suite / input filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRateCorrelation {
    /// (benchmark id, slowdown %, LLC miss rate) rows.
    pub points: Vec<(String, f64, f64)>,
    /// Pearson product-moment correlation between slowdown and miss rate.
    pub pearson: Option<f64>,
}

/// Compute the slowdown-vs-LLC-miss-rate correlation (Fig. 7) over a filtered
/// set of results at one latency.
pub fn miss_rate_correlation(
    results: &[CpuBenchmarkResult],
    latency_ns: f64,
    filter: impl Fn(&CpuBenchmarkResult) -> bool,
) -> MissRateCorrelation {
    let points: Vec<(String, f64, f64)> = results
        .iter()
        .filter(|r| filter(r))
        .filter_map(|r| {
            r.slowdown_at(latency_ns)
                .map(|s| (r.benchmark.id(), s, r.llc_miss_rate))
        })
        .collect();
    let slowdowns: Vec<f64> = points.iter().map(|p| p.1).collect();
    let miss_rates: Vec<f64> = points.iter().map(|p| p.2).collect();
    MissRateCorrelation {
        pearson: pearson_correlation(&miss_rates, &slowdowns),
        points,
    }
}

/// One row of the Fig. 12 comparison: speedup of the photonic (35 ns) system
/// over the electronic (85 ns) system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElectronicComparisonRow {
    /// Benchmark id.
    pub benchmark: String,
    /// Suite.
    pub suite: CpuSuite,
    /// Input size.
    pub input: InputSize,
    /// Core model.
    pub core_kind: CoreKind,
    /// Speedup (%) of the photonic system over the electronic one.
    pub speedup_percent: f64,
}

/// Compute the Fig. 12 CPU rows. To avoid triple-counting PARSEC, the paper
/// (and this function's `dedupe_parsec` flag) keeps only the "medium" PARSEC
/// inputs; NAS keeps class "B" for the same reason; Rodinia has one input.
pub fn electronic_comparison(
    results: &[CpuBenchmarkResult],
    dedupe_inputs: bool,
) -> Vec<ElectronicComparisonRow> {
    results
        .iter()
        .filter(|r| {
            if !dedupe_inputs {
                return true;
            }
            match r.benchmark.suite {
                CpuSuite::Parsec | CpuSuite::Nas => r.benchmark.input == InputSize::Medium,
                CpuSuite::Rodinia => true,
            }
        })
        .filter_map(|r| {
            r.speedup_between(crate::PHOTONIC_LATENCY_NS, crate::ELECTRONIC_LATENCY_NS)
                .map(|s| ElectronicComparisonRow {
                    benchmark: r.benchmark.id(),
                    suite: r.benchmark.suite,
                    input: r.benchmark.input,
                    core_kind: r.core_kind,
                    speedup_percent: s,
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_results() -> Vec<CpuBenchmarkResult> {
        // Small but complete: all 57 benchmarks, in-order, 0 and 35 ns.
        run_cpu_experiment(&CpuExperimentConfig::quick())
    }

    #[test]
    fn experiment_produces_one_result_per_benchmark_and_core() {
        let results = quick_results();
        assert_eq!(results.len(), 57);
        let cfg = CpuExperimentConfig {
            core_kinds: vec![CoreKind::InOrder, CoreKind::OutOfOrder],
            ..CpuExperimentConfig::quick()
        };
        let results2 = run_cpu_experiment_subset(&cfg, |b| b.name == "nw");
        assert_eq!(results2.len(), 2);
    }

    #[test]
    fn slowdowns_are_zero_at_baseline_and_nonnegative_elsewhere() {
        for r in quick_results() {
            assert!(r.slowdown_at(0.0).unwrap().abs() < 1e-9);
            assert!(r.slowdown_at(35.0).unwrap() >= -1e-9);
        }
    }

    #[test]
    fn nas_benchmarks_are_negligibly_affected() {
        // Paper: "NAS benchmarks are negligibly affected by the increased
        // latency from photonics."
        let results = quick_results();
        let nas: Vec<f64> = results
            .iter()
            .filter(|r| r.benchmark.suite == CpuSuite::Nas)
            .filter_map(|r| r.slowdown_at(35.0))
            .collect();
        let avg = nas.iter().sum::<f64>() / nas.len() as f64;
        assert!(
            avg < 5.0,
            "NAS average slowdown {avg:.1}% should be negligible"
        );
    }

    #[test]
    fn nw_is_among_the_worst_benchmarks() {
        let results = quick_results();
        let nw = results
            .iter()
            .find(|r| r.benchmark.name == "nw")
            .unwrap()
            .slowdown_at(35.0)
            .unwrap();
        // nw must be substantially affected and sit in the top quintile of
        // all 57 benchmark configurations (at full scale it is essentially
        // tied for the maximum; the 1/8-scale quick configuration compresses
        // the spread a little).
        let mut all: Vec<f64> = results.iter().filter_map(|r| r.slowdown_at(35.0)).collect();
        all.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let rank = all.iter().position(|&s| (s - nw).abs() < 1e-9).unwrap();
        assert!(
            rank < all.len() / 5,
            "nw ({nw:.1}%) should rank in the top quintile, got rank {rank}"
        );
        assert!(nw > 20.0, "nw slowdown {nw:.1}% should be substantial");
    }

    #[test]
    fn suite_summaries_cover_all_suites() {
        let results = quick_results();
        let summaries = summarize_by_suite(&results, 35.0);
        assert!(summaries.iter().any(|s| s.suite == CpuSuite::Parsec));
        assert!(summaries.iter().any(|s| s.suite == CpuSuite::Nas));
        assert!(summaries.iter().any(|s| s.suite == CpuSuite::Rodinia));
        for s in &summaries {
            assert!(s.max_slowdown >= s.average_slowdown - 1e-9);
            assert!(s.benchmarks > 0);
        }
    }

    #[test]
    fn parsec_large_slows_down_more_than_medium() {
        let results = quick_results();
        let summaries = summarize_by_suite(&results, 35.0);
        let get = |input| {
            summaries
                .iter()
                .find(|s| {
                    s.suite == CpuSuite::Parsec
                        && s.input == Some(input)
                        && s.core_kind == CoreKind::InOrder
                })
                .unwrap()
                .average_slowdown
        };
        assert!(get(InputSize::Large) > get(InputSize::Medium));
    }

    #[test]
    fn slowdown_correlates_with_llc_miss_rate() {
        // Fig. 7: Pearson coefficients of 0.76-0.89 for Rodinia / PARSEC.
        let results = quick_results();
        let corr = miss_rate_correlation(&results, 35.0, |r| r.core_kind == CoreKind::InOrder);
        let r = corr.pearson.expect("correlation should be defined");
        assert!(
            r > 0.6,
            "slowdown vs miss-rate correlation {r:.2} should be strong"
        );
        assert_eq!(corr.points.len(), 57);
    }

    #[test]
    fn electronic_comparison_shows_photonic_speedup() {
        let cfg = CpuExperimentConfig {
            latencies_ns: vec![0.0, 35.0, 85.0],
            ..CpuExperimentConfig::quick()
        };
        let results = run_cpu_experiment_subset(&cfg, |b| {
            b.name == "nw" || b.name == "streamcluster" || b.name == "ep"
        });
        let rows = electronic_comparison(&results, true);
        assert!(!rows.is_empty());
        for row in &rows {
            assert!(row.speedup_percent >= -1e-9);
        }
        // The memory-bound nw must speed up substantially; ep barely.
        let nw = rows.iter().find(|r| r.benchmark.contains("nw")).unwrap();
        let ep = rows.iter().find(|r| r.benchmark.contains("/ep/")).unwrap();
        assert!(nw.speedup_percent > ep.speedup_percent);
    }

    #[test]
    fn dedupe_keeps_single_parsec_input() {
        let cfg = CpuExperimentConfig {
            latencies_ns: vec![0.0, 35.0, 85.0],
            ..CpuExperimentConfig::quick()
        };
        let results = run_cpu_experiment_subset(&cfg, |b| b.name == "canneal");
        let all = electronic_comparison(&results, false);
        let deduped = electronic_comparison(&results, true);
        assert_eq!(all.len(), 3);
        assert_eq!(deduped.len(), 1);
        assert_eq!(deduped[0].input, InputSize::Medium);
    }
}
