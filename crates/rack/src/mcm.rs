//! MCM packing: Table III of the paper.
//!
//! All MCMs share the same escape bandwidth (32 fibers x 64 wavelengths x
//! 25 Gbps = 6.4 TB/s) and hold chips of a single type. The number of chips
//! per MCM is chosen so that every chip keeps the escape bandwidth it
//! enjoyed in the baseline node; the number of MCMs per rack then follows
//! from the rack's total chip count of that type.

use crate::chips::{ChipKind, ChipSpec};
use crate::node::BaselineRack;
use photonics::units::Bandwidth;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Packing of one chip type into MCMs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McmPacking {
    /// Chip type.
    pub kind: ChipKind,
    /// Chips of this type in one MCM.
    pub chips_per_mcm: u32,
    /// MCMs of this type in the rack.
    pub mcms_per_rack: u32,
    /// Total chips of this type in the rack.
    pub total_chips: u32,
    /// Escape bandwidth each chip receives on the MCM.
    pub escape_per_chip: Bandwidth,
}

impl McmPacking {
    /// Pack `total_chips` chips of the given spec into MCMs with
    /// `mcm_escape` escape bandwidth each.
    pub fn pack(spec: &ChipSpec, total_chips: u32, mcm_escape: Bandwidth) -> Self {
        let by_bandwidth = (mcm_escape.bps() / spec.escape_bandwidth.bps()).floor() as u32;
        let chips_per_mcm = spec
            .max_per_mcm
            .map_or(by_bandwidth, |limit| by_bandwidth.min(limit))
            .max(1);
        let mcms_per_rack = total_chips.div_ceil(chips_per_mcm);
        McmPacking {
            kind: spec.kind,
            chips_per_mcm,
            mcms_per_rack,
            total_chips,
            escape_per_chip: mcm_escape / chips_per_mcm as f64,
        }
    }

    /// True if every chip keeps at least its baseline escape bandwidth.
    pub fn preserves_escape_bandwidth(&self, spec: &ChipSpec) -> bool {
        self.escape_per_chip.bps() + 1e-6 >= spec.escape_bandwidth.bps()
    }
}

impl fmt::Display for McmPacking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<5} {:>4} chips/MCM  {:>4} MCMs  ({} chips, {:.0} GB/s per chip)",
            self.kind.to_string(),
            self.chips_per_mcm,
            self.mcms_per_rack,
            self.total_chips,
            self.escape_per_chip.gbytes_per_s()
        )
    }
}

/// The full disaggregated rack composition: one packing per chip type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackComposition {
    /// Escape bandwidth of each MCM.
    pub mcm_escape: Bandwidth,
    /// Per-chip-type packings, in Table III order.
    pub packings: Vec<McmPacking>,
}

impl RackComposition {
    /// The paper's per-MCM escape bandwidth: 32 fibers x 64 wavelengths x
    /// 25 Gbps = 6.4 TB/s.
    pub fn paper_mcm_escape() -> Bandwidth {
        Bandwidth::from_gbps(25.0) * (32 * 64) as f64
    }

    /// Build the composition for a baseline rack (Table III).
    pub fn from_baseline(rack: &BaselineRack, mcm_escape: Bandwidth) -> Self {
        let packings = ChipSpec::all_baseline()
            .into_iter()
            .map(|spec| McmPacking::pack(&spec, rack.chips(spec.kind), mcm_escape))
            .collect();
        RackComposition {
            mcm_escape,
            packings,
        }
    }

    /// The paper's Table III composition.
    pub fn paper_rack() -> Self {
        Self::from_baseline(&BaselineRack::paper_rack(), Self::paper_mcm_escape())
    }

    /// Total MCMs in the rack.
    pub fn total_mcms(&self) -> u32 {
        self.packings.iter().map(|p| p.mcms_per_rack).sum()
    }

    /// The packing for one chip kind.
    pub fn packing(&self, kind: ChipKind) -> Option<&McmPacking> {
        self.packings.iter().find(|p| p.kind == kind)
    }

    /// Total chips across all types.
    pub fn total_chips(&self) -> u32 {
        self.packings.iter().map(|p| p.total_chips).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mcm_escape_is_6_4_tbytes() {
        assert!((RackComposition::paper_mcm_escape().tbytes_per_s() - 6.4).abs() < 1e-9);
    }

    #[test]
    fn table_iii_chips_per_mcm() {
        let c = RackComposition::paper_rack();
        assert_eq!(c.packing(ChipKind::Cpu).unwrap().chips_per_mcm, 14);
        assert_eq!(c.packing(ChipKind::Gpu).unwrap().chips_per_mcm, 3);
        assert_eq!(c.packing(ChipKind::Nic).unwrap().chips_per_mcm, 203);
        assert_eq!(c.packing(ChipKind::Hbm).unwrap().chips_per_mcm, 4);
        assert_eq!(c.packing(ChipKind::Ddr4).unwrap().chips_per_mcm, 27);
    }

    #[test]
    fn table_iii_mcms_per_rack() {
        let c = RackComposition::paper_rack();
        assert_eq!(c.packing(ChipKind::Cpu).unwrap().mcms_per_rack, 10);
        assert_eq!(c.packing(ChipKind::Gpu).unwrap().mcms_per_rack, 171);
        assert_eq!(c.packing(ChipKind::Nic).unwrap().mcms_per_rack, 3);
        assert_eq!(c.packing(ChipKind::Hbm).unwrap().mcms_per_rack, 128);
        assert_eq!(c.packing(ChipKind::Ddr4).unwrap().mcms_per_rack, 38);
    }

    #[test]
    fn table_iii_total_is_350_mcms() {
        assert_eq!(RackComposition::paper_rack().total_mcms(), 350);
    }

    #[test]
    fn escape_bandwidth_preserved_for_every_chip_type() {
        let c = RackComposition::paper_rack();
        for spec in ChipSpec::all_baseline() {
            let p = c.packing(spec.kind).unwrap();
            assert!(
                p.preserves_escape_bandwidth(&spec),
                "{}: {} GB/s per chip < baseline {} GB/s",
                spec.kind,
                p.escape_per_chip.gbytes_per_s(),
                spec.escape_bandwidth.gbytes_per_s()
            );
        }
    }

    #[test]
    fn total_chips_matches_baseline_rack() {
        let c = RackComposition::paper_rack();
        assert_eq!(c.total_chips(), 2688);
    }

    #[test]
    fn packing_respects_packaging_limit() {
        let spec = ChipSpec::baseline(ChipKind::Ddr4);
        let p = McmPacking::pack(&spec, 1024, RackComposition::paper_mcm_escape());
        assert_eq!(p.chips_per_mcm, 27);
        // Without the limit, bandwidth alone would allow 250 DIMMs.
        let mut unconstrained = spec;
        unconstrained.max_per_mcm = None;
        let p2 = McmPacking::pack(&unconstrained, 1024, RackComposition::paper_mcm_escape());
        assert_eq!(p2.chips_per_mcm, 250);
    }

    #[test]
    fn packing_never_zero_chips() {
        // A chip demanding more than the MCM escape still gets one per MCM.
        let mut spec = ChipSpec::baseline(ChipKind::Gpu);
        spec.escape_bandwidth = Bandwidth::from_tbytes_per_s(100.0);
        let p = McmPacking::pack(&spec, 10, RackComposition::paper_mcm_escape());
        assert_eq!(p.chips_per_mcm, 1);
        assert_eq!(p.mcms_per_rack, 10);
    }

    #[test]
    fn larger_escape_packs_more_chips_into_fewer_mcms() {
        let spec = ChipSpec::baseline(ChipKind::Gpu);
        let small = McmPacking::pack(&spec, 512, Bandwidth::from_tbytes_per_s(6.4));
        let large = McmPacking::pack(&spec, 512, Bandwidth::from_tbytes_per_s(12.8));
        assert!(large.chips_per_mcm > small.chips_per_mcm);
        assert!(large.mcms_per_rack < small.mcms_per_rack);
    }

    #[test]
    fn display_contains_kind_and_counts() {
        let c = RackComposition::paper_rack();
        let s = c.packing(ChipKind::Gpu).unwrap().to_string();
        assert!(s.contains("GPU"));
        assert!(s.contains("171 MCMs"));
    }
}
