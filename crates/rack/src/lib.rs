//! # rack
//!
//! Rack, node, and MCM configuration models for the paper's disaggregated
//! HPC rack (Section V), plus the analyses that sit directly on top of
//! them:
//!
//! * [`chips`] — chip types (CPU, GPU, NIC, HBM stack, DDR4 module) with
//!   their escape-bandwidth requirements and power.
//! * [`node`] — the baseline GPU-accelerated HPE/Cray EX (Perlmutter-style)
//!   node: one AMD Milan CPU with eight DDR4-3200 channels, four NVIDIA A100
//!   GPUs with their HBM, four Slingshot NICs.
//! * [`mcm`] — packing chips of a single type into MCMs under the 6.4 TB/s
//!   per-MCM escape-bandwidth budget: reproduces Table III (350 MCMs).
//! * [`power`] — rack power accounting and the ~5% photonic power overhead
//!   (Section VI-C).
//! * [`isoperf`] — the iso-performance provisioning analysis (Section VI-E):
//!   4x fewer memory modules, 2x fewer NICs, ~44% fewer chips at equal
//!   throughput, or double throughput for ~7% more chips.
//! * [`bandwidth`] — the bandwidth-sufficiency analysis (Section VI-A1)
//!   driven by the production utilization distributions.
//!
//! Escape-bandwidth budgets come from the `photonics` crate; the Table III
//! and Section VI-C/E analyses feed the `disagg_core` drivers and the
//! engine-backed `table3` artifact. See the repository's `ARCHITECTURE.md`
//! for the full crate DAG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod chips;
pub mod isoperf;
pub mod mcm;
pub mod node;
pub mod power;

pub use bandwidth::{BandwidthSufficiency, GpuBandwidthBudget};
pub use chips::{ChipKind, ChipSpec};
pub use isoperf::{IsoPerformanceAnalysis, IsoPerformanceInputs, ResourceCounts};
pub use mcm::{McmPacking, RackComposition};
pub use node::BaselineNode;
pub use power::RackPowerModel;
