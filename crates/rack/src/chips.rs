//! Chip types and their escape-bandwidth / power characteristics.
//!
//! The disaggregated rack groups chips of a single type into MCMs; what
//! matters for packing is each chip's **escape bandwidth** — the off-chip
//! bandwidth it enjoys in the baseline (non-disaggregated) node, which the
//! photonic MCM must preserve (Section V-A: "our photonic architecture does
//! not restrict chip escape bandwidth").

use photonics::units::Bandwidth;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The chip types of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipKind {
    /// AMD Milan-class CPU.
    Cpu,
    /// NVIDIA A100-class GPU.
    Gpu,
    /// Slingshot-11 NIC.
    Nic,
    /// One HBM stack (the 40 GB co-packaged with each A100 in the baseline).
    Hbm,
    /// One DDR4-3200 DIMM.
    Ddr4,
}

impl ChipKind {
    /// All chip kinds, in Table III order.
    pub const ALL: [ChipKind; 5] = [
        ChipKind::Cpu,
        ChipKind::Gpu,
        ChipKind::Nic,
        ChipKind::Hbm,
        ChipKind::Ddr4,
    ];
}

impl fmt::Display for ChipKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChipKind::Cpu => "CPU",
            ChipKind::Gpu => "GPU",
            ChipKind::Nic => "NIC",
            ChipKind::Hbm => "HBM",
            ChipKind::Ddr4 => "DDR4",
        };
        f.write_str(s)
    }
}

/// Specification of one chip type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Which chip this is.
    pub kind: ChipKind,
    /// Escape bandwidth the chip enjoys in the baseline node.
    pub escape_bandwidth: Bandwidth,
    /// Typical power draw in watts.
    pub power_w: f64,
    /// Optional packaging limit on how many of these chips fit in one MCM
    /// regardless of bandwidth (pin count / area); `None` means bandwidth
    /// limited only.
    pub max_per_mcm: Option<u32>,
}

impl ChipSpec {
    /// The baseline-node specification of a chip kind (Section V).
    pub fn baseline(kind: ChipKind) -> Self {
        match kind {
            // Milan CPU: 8 x DDR4-3200 channels (204.8 GB/s) + 4 x PCIe Gen4
            // x16 to the GPUs (126 GB/s) + 4 Slingshot NICs at 200 Gbps
            // (100 GB/s) ≈ 431 GB/s escape.
            ChipKind::Cpu => ChipSpec {
                kind,
                escape_bandwidth: Bandwidth::from_gbytes_per_s(204.8 + 4.0 * 31.5 + 4.0 * 25.0),
                power_w: 250.0,
                max_per_mcm: None,
            },
            // A100: 1555.2 GB/s HBM + 12 NVLink3 links of 25 GB/s (300 GB/s)
            // + PCIe Gen4 x16 (31.5 GB/s) ≈ 1887 GB/s escape.
            ChipKind::Gpu => ChipSpec {
                kind,
                escape_bandwidth: Bandwidth::from_gbytes_per_s(1555.2 + 300.0 + 31.5),
                power_w: 300.0,
                max_per_mcm: None,
            },
            // Slingshot NIC: PCIe Gen4 x16 host interface, 31.5 GB/s.
            ChipKind::Nic => ChipSpec {
                kind,
                escape_bandwidth: Bandwidth::from_gbytes_per_s(31.5),
                power_w: 25.0,
                max_per_mcm: None,
            },
            // One HBM2e stack: 1555.2 GB/s.
            ChipKind::Hbm => ChipSpec {
                kind,
                escape_bandwidth: Bandwidth::from_gbytes_per_s(1555.2),
                power_w: 25.0,
                max_per_mcm: None,
            },
            // One DDR4-3200 DIMM: 25.6 GB/s. Bandwidth alone would allow 250
            // DIMMs per MCM; the paper packs 27 (pin-count / capacity
            // constrained), which we model as a packaging limit.
            ChipKind::Ddr4 => ChipSpec {
                kind,
                escape_bandwidth: Bandwidth::from_gbytes_per_s(25.6),
                power_w: 3.0,
                max_per_mcm: Some(27),
            },
        }
    }

    /// All baseline chip specifications in Table III order.
    pub fn all_baseline() -> Vec<ChipSpec> {
        ChipKind::ALL.iter().map(|&k| Self::baseline(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_escape_is_about_431_gbytes() {
        let cpu = ChipSpec::baseline(ChipKind::Cpu);
        assert!((cpu.escape_bandwidth.gbytes_per_s() - 430.8).abs() < 0.1);
    }

    #[test]
    fn gpu_escape_is_about_1887_gbytes() {
        let gpu = ChipSpec::baseline(ChipKind::Gpu);
        assert!((gpu.escape_bandwidth.gbytes_per_s() - 1886.7).abs() < 0.1);
    }

    #[test]
    fn hbm_escape_matches_a100_memory_bandwidth() {
        let hbm = ChipSpec::baseline(ChipKind::Hbm);
        assert!((hbm.escape_bandwidth.gbytes_per_s() - 1555.2).abs() < 1e-9);
    }

    #[test]
    fn nic_escape_is_pcie_gen4_x16() {
        let nic = ChipSpec::baseline(ChipKind::Nic);
        assert!((nic.escape_bandwidth.gbytes_per_s() - 31.5).abs() < 1e-9);
    }

    #[test]
    fn ddr4_has_packaging_limit() {
        let ddr = ChipSpec::baseline(ChipKind::Ddr4);
        assert_eq!(ddr.max_per_mcm, Some(27));
        assert!((ddr.escape_bandwidth.gbytes_per_s() - 25.6).abs() < 1e-9);
    }

    #[test]
    fn all_baseline_covers_every_kind() {
        let specs = ChipSpec::all_baseline();
        assert_eq!(specs.len(), 5);
        for (spec, kind) in specs.iter().zip(ChipKind::ALL.iter()) {
            assert_eq!(spec.kind, *kind);
        }
    }

    #[test]
    fn power_values_match_paper_quotes() {
        assert_eq!(ChipSpec::baseline(ChipKind::Gpu).power_w, 300.0);
        assert_eq!(ChipSpec::baseline(ChipKind::Cpu).power_w, 250.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(ChipKind::Cpu.to_string(), "CPU");
        assert_eq!(ChipKind::Ddr4.to_string(), "DDR4");
    }
}
