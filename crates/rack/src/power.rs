//! Rack power accounting and the photonic power overhead (Section VI-C).

use crate::chips::{ChipKind, ChipSpec};
use crate::node::BaselineRack;
use photonics::power::{PhotonicPowerModel, RackPhotonicPower};
use serde::{Deserialize, Serialize};

/// Power model of the whole rack: baseline components plus photonics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackPowerModel {
    /// The baseline rack whose components draw the non-photonic power.
    pub rack: BaselineRack,
    /// DDR4 power per node in watts (the paper quotes ~192 W per node).
    pub ddr4_power_per_node_w: f64,
    /// The photonic component model.
    pub photonics: PhotonicPowerModel,
}

impl RackPowerModel {
    /// The paper's rack power model.
    pub fn paper_rack() -> Self {
        RackPowerModel {
            rack: BaselineRack::paper_rack(),
            ddr4_power_per_node_w: 192.0,
            photonics: PhotonicPowerModel::paper_rack(),
        }
    }

    /// Power of the baseline compute/memory components (watts): CPUs, GPUs,
    /// NICs, HBM (counted with its GPU), and DDR4.
    pub fn baseline_component_power_w(&self) -> f64 {
        let cpu = ChipSpec::baseline(ChipKind::Cpu).power_w * self.rack.chips(ChipKind::Cpu) as f64;
        let gpu = ChipSpec::baseline(ChipKind::Gpu).power_w * self.rack.chips(ChipKind::Gpu) as f64;
        let nic = ChipSpec::baseline(ChipKind::Nic).power_w * self.rack.chips(ChipKind::Nic) as f64;
        let ddr4 = self.ddr4_power_per_node_w * self.rack.nodes as f64;
        cpu + gpu + nic + ddr4
    }

    /// The paper's headline comparison uses only CPU + GPU + DDR4 power
    /// ("the power consumption of an A100 GPU is approximately 300 W, an AMD
    /// Milan CPU 250 W, and 512 GB of DDR4 ... approximately 192 W").
    pub fn paper_comparison_power_w(&self) -> f64 {
        let cpu = ChipSpec::baseline(ChipKind::Cpu).power_w * self.rack.chips(ChipKind::Cpu) as f64;
        let gpu = ChipSpec::baseline(ChipKind::Gpu).power_w * self.rack.chips(ChipKind::Gpu) as f64;
        let ddr4 = self.ddr4_power_per_node_w * self.rack.nodes as f64;
        cpu + gpu + ddr4
    }

    /// Run the photonic-overhead analysis against the paper's comparison
    /// baseline.
    pub fn photonic_overhead(&self) -> RackPhotonicPower {
        self.photonics
            .rack_overhead(self.paper_comparison_power_w())
    }

    /// The paper's comparison (CPU + GPU + DDR4) power divided evenly over
    /// the rack's MCMs, in watts per MCM. The sweep engine's energy layer
    /// multiplies this back by a scenario's MCM count so that the
    /// photonic-to-compute power ratio stays meaningful on racks smaller or
    /// larger than the paper's 350-MCM design point.
    ///
    /// # Example
    ///
    /// ```
    /// use rack::power::RackPowerModel;
    ///
    /// let m = RackPowerModel::paper_rack();
    /// // 210.2 kW over 350 MCMs ≈ 600.5 W per MCM.
    /// let per_mcm = m.paper_comparison_power_per_mcm_w();
    /// assert!((per_mcm - 600.5).abs() < 0.1);
    /// assert!(
    ///     (per_mcm * m.photonics.mcm_count as f64 - m.paper_comparison_power_w()).abs() < 1e-6
    /// );
    /// ```
    pub fn paper_comparison_power_per_mcm_w(&self) -> f64 {
        self.paper_comparison_power_w() / self.photonics.mcm_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_comparison_power_is_about_210_kw() {
        let m = RackPowerModel::paper_rack();
        // 128 x (250 + 4*300 + 192) = 128 x 1642 = 210.2 kW.
        let p = m.paper_comparison_power_w();
        assert!((p - 210_176.0).abs() < 1.0);
    }

    #[test]
    fn photonic_overhead_is_about_five_percent() {
        let m = RackPowerModel::paper_rack();
        let o = m.photonic_overhead();
        assert!(
            o.overhead_percent() > 4.0 && o.overhead_percent() < 6.0,
            "photonic overhead {}% should be ~5%",
            o.overhead_percent()
        );
        // ~10-11 kW of photonics, as the paper quotes.
        assert!(o.photonic_power_w > 9_000.0 && o.photonic_power_w < 11_500.0);
    }

    #[test]
    fn full_component_power_exceeds_comparison_power() {
        let m = RackPowerModel::paper_rack();
        assert!(m.baseline_component_power_w() > m.paper_comparison_power_w());
    }

    #[test]
    fn overhead_scales_inversely_with_baseline() {
        let mut m = RackPowerModel::paper_rack();
        let o_full = m.photonic_overhead();
        m.rack.nodes = 64;
        let o_half = m.photonic_overhead();
        assert!(o_half.overhead_percent() > o_full.overhead_percent());
    }
}
