//! Bandwidth-sufficiency analysis (Section VI-A1 of the paper).
//!
//! Two questions are answered with the production utilization distributions
//! and simple accounting:
//!
//! 1. **CPU ↔ DDR4 and NIC ↔ memory traffic.** How often does the 125 Gbps
//!    direct MCM-to-MCM bandwidth (or a single 25 Gbps wavelength) suffice?
//!    The paper: >99.5% and 97% of the time respectively, so indirect
//!    routing is rarely needed and almost always finds spare wavelengths.
//! 2. **GPU ↔ HBM and GPU ↔ GPU traffic.** With indirect routing a GPU can
//!    reach 8 TB/s towards its HBM MCMs — far more than the 1555.2 GB/s it
//!    uses today — leaving enough headroom to carry the worst-case 900 GB/s
//!    of NVLink-style GPU-to-GPU traffic per MCM and still have spare.

use photonics::units::Bandwidth;
use serde::{Deserialize, Serialize};
use workloads::production::ProductionDistributions;

/// Sufficiency probabilities for the CPU/NIC/DDR4 traffic classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthSufficiency {
    /// Probability that a node's CPU-to-memory demand fits in the direct
    /// 125 Gbps MCM-to-MCM bandwidth.
    pub direct_125gbps_sufficient: f64,
    /// Probability that it fits in a single 25 Gbps wavelength.
    pub single_wavelength_sufficient: f64,
    /// Number of Monte-Carlo samples used.
    pub samples: usize,
}

impl BandwidthSufficiency {
    /// Estimate the sufficiency probabilities from the production
    /// distributions.
    pub fn estimate(dist: &ProductionDistributions, samples: usize, seed: u64) -> Self {
        let direct_exceed = dist.probability_memory_bandwidth_exceeds(
            Bandwidth::from_gbps(125.0).gbytes_per_s(),
            samples,
            seed,
        );
        let single_exceed = dist.probability_memory_bandwidth_exceeds(
            Bandwidth::from_gbps(25.0).gbytes_per_s(),
            samples,
            seed.wrapping_add(1),
        );
        BandwidthSufficiency {
            direct_125gbps_sufficient: 1.0 - direct_exceed,
            single_wavelength_sufficient: 1.0 - single_exceed,
            samples,
        }
    }

    /// Estimate with the paper's Cori-calibrated distributions.
    pub fn paper(samples: usize, seed: u64) -> Self {
        Self::estimate(&ProductionDistributions::cori_haswell(), samples, seed)
    }
}

/// The GPU bandwidth budget accounting of Section VI-A1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuBandwidthBudget {
    /// Total bandwidth a GPU can use towards HBM MCMs with indirect routing
    /// (GB/s).
    pub indirect_reach_gbs: f64,
    /// HBM bandwidth a GPU actually uses today (GB/s).
    pub hbm_demand_gbs: f64,
    /// Worst-case GPU-to-GPU (NVLink-replacement) traffic per GPU MCM (GB/s).
    pub gpu_to_gpu_demand_gbs: f64,
    /// Unused bandwidth after serving HBM demand (GB/s).
    pub headroom_after_hbm_gbs: f64,
    /// Unused bandwidth after also serving GPU-to-GPU traffic (GB/s).
    pub headroom_after_gpu_traffic_gbs: f64,
}

impl GpuBandwidthBudget {
    /// The paper's accounting for the AWGR fabric (case A).
    ///
    /// With indirect routing a GPU can use `direct_bandwidth x (mcm_count -
    /// rest)` ≈ 125 Gbps x 512 destinations = 8000 GB/s towards HBM, leaving
    /// 6444.8 GB/s after the 1555.2 GB/s of HBM demand; the worst-case
    /// 900 GB/s of GPU-to-GPU traffic (3 GPUs x 12 NVLinks x 25 GB/s per
    /// MCM) still leaves ~5.5 TB/s.
    pub fn paper_awgr() -> Self {
        let direct_gbps = 125.0;
        let destinations = 512.0;
        let indirect_reach_gbs = Bandwidth::from_gbps(direct_gbps * destinations).gbytes_per_s();
        let hbm_demand_gbs = 1555.2;
        let gpu_to_gpu_demand_gbs = 3.0 * 12.0 * 25.0;
        let headroom_after_hbm = indirect_reach_gbs - hbm_demand_gbs;
        let headroom_after_gpu = headroom_after_hbm - gpu_to_gpu_demand_gbs;
        GpuBandwidthBudget {
            indirect_reach_gbs,
            hbm_demand_gbs,
            gpu_to_gpu_demand_gbs,
            headroom_after_hbm_gbs: headroom_after_hbm,
            headroom_after_gpu_traffic_gbs: headroom_after_gpu,
        }
    }

    /// True if the budget satisfies both HBM and GPU-to-GPU demand.
    pub fn satisfies_all_demand(&self) -> bool {
        self.headroom_after_gpu_traffic_gbs >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_bandwidth_suffices_well_over_99_5_percent() {
        let s = BandwidthSufficiency::paper(100_000, 21);
        assert!(
            s.direct_125gbps_sufficient > 0.995,
            "direct sufficiency {} should exceed 99.5%",
            s.direct_125gbps_sufficient
        );
    }

    #[test]
    fn single_wavelength_suffices_about_97_percent() {
        let s = BandwidthSufficiency::paper(100_000, 22);
        assert!(
            s.single_wavelength_sufficient > 0.94 && s.single_wavelength_sufficient < 0.995,
            "single-wavelength sufficiency {} should be ~97%",
            s.single_wavelength_sufficient
        );
    }

    #[test]
    fn gpu_budget_matches_paper_arithmetic() {
        let b = GpuBandwidthBudget::paper_awgr();
        assert!((b.indirect_reach_gbs - 8000.0).abs() < 1.0);
        assert!((b.headroom_after_hbm_gbs - 6444.8).abs() < 1.0);
        assert!((b.gpu_to_gpu_demand_gbs - 900.0).abs() < 1e-9);
        assert!((b.headroom_after_gpu_traffic_gbs - 5544.8).abs() < 1.0);
        assert!(b.satisfies_all_demand());
    }

    #[test]
    fn sufficiency_estimates_are_reproducible() {
        let a = BandwidthSufficiency::paper(20_000, 5);
        let b = BandwidthSufficiency::paper(20_000, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn insufficient_budget_detected() {
        let mut b = GpuBandwidthBudget::paper_awgr();
        b.headroom_after_gpu_traffic_gbs = -1.0;
        assert!(!b.satisfies_all_demand());
    }
}
