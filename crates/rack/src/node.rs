//! The baseline (non-disaggregated) node and rack: a GPU-accelerated
//! HPE/Cray EX system in the style of NERSC's Perlmutter (Section V).

use crate::chips::ChipKind;
use photonics::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// The baseline compute node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineNode {
    /// CPUs per node.
    pub cpus: u32,
    /// DDR4 DIMMs per node (8 memory controllers per CPU).
    pub ddr4_modules: u32,
    /// Memory capacity per node in GB.
    pub memory_gb: u32,
    /// Peak DDR4 bandwidth per node in GB/s.
    pub memory_bandwidth_gbs: f64,
    /// GPUs per node.
    pub gpus: u32,
    /// HBM stacks per node (one per GPU in the A100 baseline).
    pub hbm_stacks: u32,
    /// HBM capacity per GPU in GB.
    pub hbm_gb_per_gpu: u32,
    /// HBM bandwidth per GPU in GB/s.
    pub hbm_bandwidth_gbs: f64,
    /// NICs per node.
    pub nics: u32,
    /// NIC bandwidth per direction in Gbps.
    pub nic_gbps: f64,
    /// NVLink links per GPU.
    pub nvlink_links_per_gpu: u32,
    /// NVLink bandwidth per link per direction in GB/s.
    pub nvlink_gbs_per_link: f64,
}

impl BaselineNode {
    /// The paper's model node: AMD Milan + 4x NVIDIA A100 + 4x Slingshot 11.
    pub fn perlmutter_gpu() -> Self {
        BaselineNode {
            cpus: 1,
            ddr4_modules: 8,
            memory_gb: 256,
            memory_bandwidth_gbs: 204.8,
            gpus: 4,
            hbm_stacks: 4,
            hbm_gb_per_gpu: 40,
            hbm_bandwidth_gbs: 1555.2,
            nics: 4,
            nic_gbps: 200.0,
            nvlink_links_per_gpu: 12,
            nvlink_gbs_per_link: 25.0,
        }
    }

    /// Number of chips of a given kind in one node.
    pub fn chips(&self, kind: ChipKind) -> u32 {
        match kind {
            ChipKind::Cpu => self.cpus,
            ChipKind::Gpu => self.gpus,
            ChipKind::Nic => self.nics,
            ChipKind::Hbm => self.hbm_stacks,
            ChipKind::Ddr4 => self.ddr4_modules,
        }
    }

    /// Aggregate NVLink bandwidth per GPU.
    pub fn nvlink_bandwidth_per_gpu(&self) -> Bandwidth {
        Bandwidth::from_gbytes_per_s(self.nvlink_gbs_per_link * self.nvlink_links_per_gpu as f64)
    }

    /// Total chips of all kinds in one node.
    pub fn total_chips(&self) -> u32 {
        ChipKind::ALL.iter().map(|&k| self.chips(k)).sum()
    }
}

/// A baseline rack: `nodes` identical nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineRack {
    /// The node configuration.
    pub node: BaselineNode,
    /// Nodes per rack.
    pub nodes: u32,
}

impl BaselineRack {
    /// The paper's rack: 128 GPU-accelerated nodes.
    pub fn paper_rack() -> Self {
        BaselineRack {
            node: BaselineNode::perlmutter_gpu(),
            nodes: 128,
        }
    }

    /// Number of chips of a given kind in the rack.
    pub fn chips(&self, kind: ChipKind) -> u32 {
        self.node.chips(kind) * self.nodes
    }

    /// Total chips in the rack.
    pub fn total_chips(&self) -> u32 {
        self.node.total_chips() * self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perlmutter_node_configuration() {
        let n = BaselineNode::perlmutter_gpu();
        assert_eq!(n.cpus, 1);
        assert_eq!(n.gpus, 4);
        assert_eq!(n.nics, 4);
        assert_eq!(n.ddr4_modules, 8);
        assert_eq!(n.memory_gb, 256);
        assert!((n.memory_bandwidth_gbs - 204.8).abs() < 1e-9);
        assert!((n.hbm_bandwidth_gbs - 1555.2).abs() < 1e-9);
    }

    #[test]
    fn nvlink_aggregate_bandwidth() {
        let n = BaselineNode::perlmutter_gpu();
        // 12 links x 25 GB/s = 300 GB/s per GPU per direction.
        assert!((n.nvlink_bandwidth_per_gpu().gbytes_per_s() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn paper_rack_chip_counts() {
        let r = BaselineRack::paper_rack();
        assert_eq!(r.nodes, 128);
        assert_eq!(r.chips(ChipKind::Cpu), 128);
        assert_eq!(r.chips(ChipKind::Gpu), 512);
        assert_eq!(r.chips(ChipKind::Hbm), 512);
        assert_eq!(r.chips(ChipKind::Nic), 512);
        assert_eq!(r.chips(ChipKind::Ddr4), 1024);
    }

    #[test]
    fn total_chip_count() {
        let r = BaselineRack::paper_rack();
        // 1 + 4 + 4 + 4 + 8 = 21 chips per node; 2688 per rack.
        assert_eq!(r.node.total_chips(), 21);
        assert_eq!(r.total_chips(), 2688);
    }

    #[test]
    fn per_node_chip_lookup_covers_all_kinds() {
        let n = BaselineNode::perlmutter_gpu();
        let total: u32 = ChipKind::ALL.iter().map(|&k| n.chips(k)).sum();
        assert_eq!(total, n.total_chips());
    }
}
