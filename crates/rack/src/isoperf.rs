//! Iso-performance provisioning analysis (Section VI-E of the paper).
//!
//! Because the disaggregated rack adds memory latency, preserving the
//! baseline rack's *average computational throughput* requires slightly more
//! compute: the paper estimates **+15% CPUs** (the in-order worst case) and
//! **+6% GPUs**. In exchange, disaggregation lets the rack be provisioned
//! for observed utilization instead of worst-case per-node demand:
//! **4x fewer memory modules** and **2x fewer NICs** (from the production
//! utilization analysis). The net effect is ≈44% fewer chips at equal
//! throughput. Alternatively, keeping every baseline resource and adding 128
//! CPU/GPU packages (≈7% more chips) doubles the rack's computational
//! throughput.

use crate::chips::ChipKind;
use crate::node::BaselineRack;
use serde::{Deserialize, Serialize};

/// Inputs to the iso-performance analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsoPerformanceInputs {
    /// Average CPU slowdown from the added latency (fraction, e.g. 0.15 for
    /// the in-order average of Fig. 6).
    pub cpu_slowdown: f64,
    /// Average GPU slowdown from the added latency (fraction, e.g. 0.06).
    pub gpu_slowdown: f64,
    /// Memory-module reduction factor enabled by pooling (the paper uses 4x,
    /// from the production utilization study).
    pub memory_reduction_factor: f64,
    /// NIC reduction factor enabled by pooling (2x).
    pub nic_reduction_factor: f64,
}

impl IsoPerformanceInputs {
    /// The paper's inputs: 15% CPU slowdown (in-order worst case), 6% GPU
    /// slowdown, 4x memory reduction, 2x NIC reduction.
    pub fn paper() -> Self {
        IsoPerformanceInputs {
            cpu_slowdown: 0.15,
            gpu_slowdown: 0.06,
            memory_reduction_factor: 4.0,
            nic_reduction_factor: 2.0,
        }
    }
}

/// Per-chip-type resource counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceCounts {
    /// CPUs.
    pub cpus: u32,
    /// GPUs.
    pub gpus: u32,
    /// HBM stacks.
    pub hbm_stacks: u32,
    /// NICs.
    pub nics: u32,
    /// DDR4 modules.
    pub ddr4_modules: u32,
}

impl ResourceCounts {
    /// Counts of the baseline rack.
    pub fn of_baseline(rack: &BaselineRack) -> Self {
        ResourceCounts {
            cpus: rack.chips(ChipKind::Cpu),
            gpus: rack.chips(ChipKind::Gpu),
            hbm_stacks: rack.chips(ChipKind::Hbm),
            nics: rack.chips(ChipKind::Nic),
            ddr4_modules: rack.chips(ChipKind::Ddr4),
        }
    }

    /// Total modules. HBM stacks are co-packaged with their GPU (they are
    /// part of the GPU package in both the baseline node and the GPU MCM),
    /// so they are not counted as separate modules here — matching the
    /// paper's module accounting.
    pub fn total(&self) -> u32 {
        self.cpus + self.gpus + self.nics + self.ddr4_modules
    }
}

/// The iso-performance analysis and its derived quantities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsoPerformanceAnalysis {
    /// Analysis inputs.
    pub inputs: IsoPerformanceInputs,
    /// Baseline rack resource counts.
    pub baseline: ResourceCounts,
    /// Disaggregated rack resource counts at equal throughput.
    pub disaggregated: ResourceCounts,
}

impl IsoPerformanceAnalysis {
    /// Run the analysis for a baseline rack.
    pub fn analyze(rack: &BaselineRack, inputs: IsoPerformanceInputs) -> Self {
        let baseline = ResourceCounts::of_baseline(rack);
        // Preserve throughput: each CPU/GPU delivers 1/(1+slowdown) of its
        // baseline throughput, so the count must grow by (1+slowdown).
        let cpus = ((baseline.cpus as f64) * (1.0 + inputs.cpu_slowdown)).ceil() as u32;
        let gpus = ((baseline.gpus as f64) * (1.0 + inputs.gpu_slowdown)).ceil() as u32;
        // Each GPU keeps its HBM stack.
        let hbm_stacks = gpus;
        // Pooling shrinks memory and NIC counts by the observed utilization
        // headroom.
        let ddr4_modules =
            ((baseline.ddr4_modules as f64) / inputs.memory_reduction_factor).ceil() as u32;
        let nics = ((baseline.nics as f64) / inputs.nic_reduction_factor).ceil() as u32;
        IsoPerformanceAnalysis {
            inputs,
            baseline,
            disaggregated: ResourceCounts {
                cpus,
                gpus,
                hbm_stacks,
                nics,
                ddr4_modules,
            },
        }
    }

    /// The paper's analysis on the paper's rack.
    pub fn paper() -> Self {
        Self::analyze(&BaselineRack::paper_rack(), IsoPerformanceInputs::paper())
    }

    /// Fractional reduction in total chips (0.44 ≈ the paper's 44%).
    pub fn chip_reduction(&self) -> f64 {
        1.0 - self.disaggregated.total() as f64 / self.baseline.total() as f64
    }

    /// Additional CPUs+GPUs relative to the baseline (provisioning for
    /// iso-performance).
    pub fn extra_compute_chips(&self) -> u32 {
        (self.disaggregated.cpus + self.disaggregated.gpus)
            .saturating_sub(self.baseline.cpus + self.baseline.gpus)
    }

    /// The alternative of Section VI-E: keep every baseline resource and add
    /// `extra_packages` CPU/GPU packages (with their HBM where applicable).
    /// Returns (chip-count increase fraction, throughput multiplier).
    pub fn throughput_doubling_alternative(&self, extra_packages: u32) -> (f64, f64) {
        let baseline_total = self.baseline.total() as f64;
        // Each added package brings one compute die and (for GPUs) an HBM
        // stack; following the paper we count the package plus HBM as ~2
        // chips for GPUs and 1 for CPUs, averaged here as 1.5.
        let added_chips = extra_packages as f64 * 1.5;
        let increase = added_chips / baseline_total;
        // 128 nodes' worth of extra compute over 128 nodes of baseline
        // compute doubles throughput when the additions match the baseline
        // node mix.
        let baseline_compute = (self.baseline.cpus + self.baseline.gpus) as f64;
        let throughput =
            1.0 + extra_packages as f64 * (baseline_compute / 128.0) / baseline_compute;
        (increase, throughput)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_counts_match_rack() {
        let b = ResourceCounts::of_baseline(&BaselineRack::paper_rack());
        assert_eq!(b.cpus, 128);
        assert_eq!(b.gpus, 512);
        assert_eq!(b.hbm_stacks, 512);
        assert_eq!(b.nics, 512);
        assert_eq!(b.ddr4_modules, 1024);
        // Modules: HBM counted with its GPU package.
        assert_eq!(b.total(), 2176);
    }

    #[test]
    fn disaggregated_rack_needs_more_compute_but_fewer_chips() {
        let a = IsoPerformanceAnalysis::paper();
        // +15% CPUs and +6% GPUs.
        assert_eq!(a.disaggregated.cpus, 148);
        assert_eq!(a.disaggregated.gpus, 543);
        // 4x fewer memory modules, 2x fewer NICs.
        assert_eq!(a.disaggregated.ddr4_modules, 256);
        assert_eq!(a.disaggregated.nics, 256);
    }

    #[test]
    fn chip_reduction_is_about_44_percent() {
        let a = IsoPerformanceAnalysis::paper();
        let r = a.chip_reduction();
        assert!(
            r > 0.40 && r < 0.48,
            "chip reduction {r:.3} should be close to the paper's ~44%"
        );
    }

    #[test]
    fn extra_compute_chips_are_modest() {
        let a = IsoPerformanceAnalysis::paper();
        // 20 extra CPUs + 31 extra GPUs.
        assert_eq!(a.extra_compute_chips(), 51);
    }

    #[test]
    fn throughput_doubling_alternative_is_about_7_percent_more_chips() {
        let a = IsoPerformanceAnalysis::paper();
        let (increase, throughput) = a.throughput_doubling_alternative(128);
        assert!(
            increase > 0.05 && increase < 0.1,
            "chip increase {increase:.3} should be ~7%"
        );
        assert!((throughput - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_slowdown_needs_no_extra_compute() {
        let inputs = IsoPerformanceInputs {
            cpu_slowdown: 0.0,
            gpu_slowdown: 0.0,
            memory_reduction_factor: 4.0,
            nic_reduction_factor: 2.0,
        };
        let a = IsoPerformanceAnalysis::analyze(&BaselineRack::paper_rack(), inputs);
        assert_eq!(a.extra_compute_chips(), 0);
        assert!(a.chip_reduction() > 0.4);
    }

    #[test]
    fn no_pooling_means_no_reduction() {
        let inputs = IsoPerformanceInputs {
            cpu_slowdown: 0.0,
            gpu_slowdown: 0.0,
            memory_reduction_factor: 1.0,
            nic_reduction_factor: 1.0,
        };
        let a = IsoPerformanceAnalysis::analyze(&BaselineRack::paper_rack(), inputs);
        assert!(a.chip_reduction().abs() < 1e-9);
    }

    #[test]
    fn bigger_slowdowns_reduce_the_savings() {
        let mut inputs = IsoPerformanceInputs::paper();
        let base = IsoPerformanceAnalysis::analyze(&BaselineRack::paper_rack(), inputs);
        inputs.cpu_slowdown = 0.5;
        inputs.gpu_slowdown = 0.5;
        let worse = IsoPerformanceAnalysis::analyze(&BaselineRack::paper_rack(), inputs);
        assert!(worse.chip_reduction() < base.chip_reduction());
    }
}
