//! Per-kernel analytical profiles.
//!
//! PPT-GPU works from per-kernel memory and instruction traces extracted
//! with its "SASS" front end; the equivalent compact representation here is
//! a [`KernelProfile`]: dynamic warp-instruction count, memory-instruction
//! fraction, cache hit rates, divergence (transactions per memory
//! instruction), and achieved occupancy. An [`ApplicationProfile`] is a
//! sequence of kernels plus identifying metadata (the paper's 24 GPU
//! applications contain 1525 kernels in total).

use serde::{Deserialize, Serialize};

/// Analytical profile of one GPU kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name (for reporting).
    pub name: String,
    /// Total dynamic warp-level instructions executed.
    pub warp_instructions: u64,
    /// Fraction of instructions that are global/local memory operations.
    pub memory_instruction_fraction: f64,
    /// Fraction of memory requests served by the L1/texture cache.
    pub l1_hit_rate: f64,
    /// Fraction of L1 misses served by the L2 (the GPU LLC).
    pub l2_hit_rate: f64,
    /// Average 32-byte transactions generated per warp memory instruction
    /// (1 = perfectly coalesced to a single sector, up to 32 for fully
    /// divergent access).
    pub transactions_per_memory_instruction: f64,
    /// Average resident warps per SM while the kernel runs (achieved
    /// occupancy, 1..=64 on an A100).
    pub active_warps_per_sm: f64,
    /// Average outstanding memory requests each warp sustains (memory-level
    /// parallelism within a warp from independent loads).
    pub mlp_per_warp: f64,
}

impl KernelProfile {
    /// Clamp all rates into their valid ranges and return the sanitized
    /// profile. Useful when profiles are generated programmatically.
    pub fn sanitized(mut self) -> Self {
        self.memory_instruction_fraction = self.memory_instruction_fraction.clamp(0.0, 1.0);
        self.l1_hit_rate = self.l1_hit_rate.clamp(0.0, 1.0);
        self.l2_hit_rate = self.l2_hit_rate.clamp(0.0, 1.0);
        self.transactions_per_memory_instruction =
            self.transactions_per_memory_instruction.clamp(1.0, 32.0);
        self.active_warps_per_sm = self.active_warps_per_sm.max(1.0);
        self.mlp_per_warp = self.mlp_per_warp.max(1.0);
        self
    }

    /// Dynamic warp-level memory instructions.
    pub fn memory_instructions(&self) -> f64 {
        self.warp_instructions as f64 * self.memory_instruction_fraction
    }

    /// Transactions that reach the L2 (L1 misses).
    pub fn l2_transactions(&self) -> f64 {
        self.memory_instructions()
            * self.transactions_per_memory_instruction
            * (1.0 - self.l1_hit_rate)
    }

    /// Transactions that miss the L2 and go to HBM.
    pub fn hbm_transactions(&self) -> f64 {
        self.l2_transactions() * (1.0 - self.l2_hit_rate)
    }

    /// L2 miss rate as seen by the L2 (HBM transactions / L2 transactions).
    pub fn l2_miss_rate(&self) -> f64 {
        let l2 = self.l2_transactions();
        if l2 <= 0.0 {
            0.0
        } else {
            self.hbm_transactions() / l2
        }
    }

    /// HBM transactions per warp instruction — the metric Fig. 10 correlates
    /// with slowdown (r ≈ 0.79).
    pub fn hbm_transactions_per_instruction(&self) -> f64 {
        if self.warp_instructions == 0 {
            0.0
        } else {
            self.hbm_transactions() / self.warp_instructions as f64
        }
    }
}

/// A GPU application: a named sequence of kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationProfile {
    /// Application name (e.g. "backprop", "2mm", "AlexNet").
    pub name: String,
    /// Benchmark suite the application comes from.
    pub suite: String,
    /// The kernels, in launch order.
    pub kernels: Vec<KernelProfile>,
}

impl ApplicationProfile {
    /// Create an application profile.
    pub fn new(
        name: impl Into<String>,
        suite: impl Into<String>,
        kernels: Vec<KernelProfile>,
    ) -> Self {
        ApplicationProfile {
            name: name.into(),
            suite: suite.into(),
            kernels,
        }
    }

    /// Total warp instructions across all kernels.
    pub fn total_instructions(&self) -> u64 {
        self.kernels.iter().map(|k| k.warp_instructions).sum()
    }

    /// Total kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Total HBM transactions across all kernels.
    pub fn total_hbm_transactions(&self) -> f64 {
        self.kernels.iter().map(|k| k.hbm_transactions()).sum()
    }

    /// Instruction-weighted average L2 miss rate.
    pub fn l2_miss_rate(&self) -> f64 {
        let total_l2: f64 = self.kernels.iter().map(|k| k.l2_transactions()).sum();
        if total_l2 <= 0.0 {
            return 0.0;
        }
        self.total_hbm_transactions() / total_l2
    }

    /// HBM transactions per warp instruction for the whole application.
    pub fn hbm_transactions_per_instruction(&self) -> f64 {
        let instr = self.total_instructions();
        if instr == 0 {
            0.0
        } else {
            self.total_hbm_transactions() / instr as f64
        }
    }

    /// Fraction of all instructions that are memory instructions.
    pub fn memory_instruction_fraction(&self) -> f64 {
        let instr = self.total_instructions();
        if instr == 0 {
            return 0.0;
        }
        let mem: f64 = self.kernels.iter().map(|k| k.memory_instructions()).sum();
        mem / instr as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(l1: f64, l2: f64) -> KernelProfile {
        KernelProfile {
            name: "k".into(),
            warp_instructions: 1_000_000,
            memory_instruction_fraction: 0.3,
            l1_hit_rate: l1,
            l2_hit_rate: l2,
            transactions_per_memory_instruction: 4.0,
            active_warps_per_sm: 32.0,
            mlp_per_warp: 2.0,
        }
    }

    #[test]
    fn transaction_accounting() {
        let k = kernel(0.5, 0.5);
        assert!((k.memory_instructions() - 300_000.0).abs() < 1e-6);
        // 300k * 4 * 0.5 = 600k L2 transactions.
        assert!((k.l2_transactions() - 600_000.0).abs() < 1e-6);
        // Half miss the L2.
        assert!((k.hbm_transactions() - 300_000.0).abs() < 1e-6);
        assert!((k.l2_miss_rate() - 0.5).abs() < 1e-12);
        assert!((k.hbm_transactions_per_instruction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn perfect_caches_produce_no_hbm_traffic() {
        let k = kernel(1.0, 1.0);
        assert_eq!(k.l2_transactions(), 0.0);
        assert_eq!(k.hbm_transactions(), 0.0);
        assert_eq!(k.l2_miss_rate(), 0.0);
    }

    #[test]
    fn sanitized_clamps_rates() {
        let k = KernelProfile {
            name: "bad".into(),
            warp_instructions: 10,
            memory_instruction_fraction: 1.5,
            l1_hit_rate: -0.2,
            l2_hit_rate: 2.0,
            transactions_per_memory_instruction: 100.0,
            active_warps_per_sm: 0.0,
            mlp_per_warp: 0.0,
        }
        .sanitized();
        assert_eq!(k.memory_instruction_fraction, 1.0);
        assert_eq!(k.l1_hit_rate, 0.0);
        assert_eq!(k.l2_hit_rate, 1.0);
        assert_eq!(k.transactions_per_memory_instruction, 32.0);
        assert_eq!(k.active_warps_per_sm, 1.0);
        assert_eq!(k.mlp_per_warp, 1.0);
    }

    #[test]
    fn application_aggregates() {
        let app =
            ApplicationProfile::new("test", "rodinia", vec![kernel(0.5, 0.5), kernel(0.5, 1.0)]);
        assert_eq!(app.kernel_count(), 2);
        assert_eq!(app.total_instructions(), 2_000_000);
        // Kernel 1: 300k HBM; kernel 2: 0.
        assert!((app.total_hbm_transactions() - 300_000.0).abs() < 1e-6);
        // 300k / 1.2M L2 transactions = 0.25.
        assert!((app.l2_miss_rate() - 0.25).abs() < 1e-12);
        assert!((app.hbm_transactions_per_instruction() - 0.15).abs() < 1e-12);
        assert!((app.memory_instruction_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_application_is_all_zero() {
        let app = ApplicationProfile::new("empty", "none", vec![]);
        assert_eq!(app.total_instructions(), 0);
        assert_eq!(app.l2_miss_rate(), 0.0);
        assert_eq!(app.hbm_transactions_per_instruction(), 0.0);
        assert_eq!(app.memory_instruction_fraction(), 0.0);
    }
}
