//! # gpusim
//!
//! An analytical GPU timing model in the spirit of PPT-GPU (the trace-driven
//! performance-prediction toolkit the paper extends for its GPU evaluation,
//! Section VI-B3). The model predicts total kernel cycles for an NVIDIA
//! A100-class GPU from a compact per-kernel profile (instruction counts,
//! memory-instruction fraction, cache hit rates, occupancy), and — like the
//! paper's modified PPT-GPU — accounts for an **additional latency between
//! the GPU's LLC (L2) and its HBM main memory** introduced by resource
//! disaggregation.
//!
//! The paper's key observations that this model reproduces:
//!
//! * GPUs tolerate the additional 35 ns latency much better than CPUs
//!   (average slowdown ≈ 5.35% across 24 applications, maximum ≈ 12% for
//!   the Rodinia subset) because thousands of resident warps hide latency.
//! * The slowdown correlates strongly with the L2 (LLC) miss rate
//!   (r ≈ 0.87) and with HBM transactions per instruction (r ≈ 0.79), and
//!   only weakly with the fraction of memory instructions, because caches
//!   filter a different share of requests per application (Fig. 10).
//!
//! Modules:
//!
//! * [`config`] — GPU hardware configuration (A100 defaults) and the
//!   HBM-latency knob.
//! * [`kernel`] — per-kernel analytical profiles and whole-application
//!   aggregates.
//! * [`model`] — the timing model itself.
//!
//! Application profiles come from the `workloads` crate; the `disagg_core`
//! experiment drivers evaluate them over the Fig. 9/10/11/12 latency
//! sweeps in parallel through the `core::sweep` engine. See the
//! repository's `ARCHITECTURE.md` for the full crate DAG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod kernel;
pub mod model;

pub use config::GpuConfig;
pub use kernel::{ApplicationProfile, KernelProfile};
pub use model::{GpuSimResult, GpuTimingModel, KernelTiming};
