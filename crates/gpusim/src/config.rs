//! GPU hardware configuration.
//!
//! The defaults model the NVIDIA A100 used in the paper's rack: 108 SMs at
//! 1.41 GHz, a 40 MB L2, and 40 GB of HBM2e at 1555.2 GB/s. The
//! disaggregation latency is added between the L2 (the GPU's LLC) and HBM,
//! mirroring where the paper's modified PPT-GPU adds it.

use serde::{Deserialize, Serialize};

/// Hardware configuration of the modelled GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// SM clock in GHz.
    pub clock_ghz: f64,
    /// Peak warp instructions issued per SM per cycle.
    pub issue_per_sm_per_cycle: f64,
    /// Maximum resident warps per SM (occupancy limit).
    pub max_warps_per_sm: u32,
    /// L2 (LLC) capacity in bytes.
    pub l2_capacity_bytes: u64,
    /// HBM peak bandwidth in GB/s.
    pub hbm_bandwidth_gbs: f64,
    /// Baseline HBM access latency in nanoseconds (L2 miss to data return).
    pub hbm_latency_ns: f64,
    /// Additional latency between the L2 and HBM from disaggregation, in
    /// nanoseconds (0 for the baseline, 25/30/35 for the photonic fabric,
    /// 85 for the electronic-switch fabric).
    pub extra_hbm_latency_ns: f64,
    /// Memory transaction size in bytes (one L2<->HBM sector).
    pub transaction_bytes: u32,
}

impl GpuConfig {
    /// NVIDIA A100 (SXM4 40 GB) configuration as used in the paper's rack.
    pub fn a100() -> Self {
        GpuConfig {
            sm_count: 108,
            clock_ghz: 1.41,
            issue_per_sm_per_cycle: 1.0,
            max_warps_per_sm: 64,
            l2_capacity_bytes: 40 * 1024 * 1024,
            hbm_bandwidth_gbs: 1555.2,
            hbm_latency_ns: 290.0,
            extra_hbm_latency_ns: 0.0,
            transaction_bytes: 32,
        }
    }

    /// The same GPU with an additional HBM latency (disaggregated).
    pub fn with_extra_hbm_latency_ns(mut self, extra_ns: f64) -> Self {
        self.extra_hbm_latency_ns = extra_ns;
        self
    }

    /// Total HBM latency (baseline + disaggregation) in nanoseconds.
    pub fn total_hbm_latency_ns(&self) -> f64 {
        self.hbm_latency_ns + self.extra_hbm_latency_ns
    }

    /// Total HBM latency in SM cycles.
    pub fn total_hbm_latency_cycles(&self) -> f64 {
        self.total_hbm_latency_ns() * self.clock_ghz
    }

    /// Peak instruction throughput of the whole GPU in warp-instructions per
    /// cycle.
    pub fn peak_issue_per_cycle(&self) -> f64 {
        self.sm_count as f64 * self.issue_per_sm_per_cycle
    }

    /// HBM bandwidth expressed in bytes per SM cycle.
    pub fn hbm_bytes_per_cycle(&self) -> f64 {
        self.hbm_bandwidth_gbs * 1e9 / (self.clock_ghz * 1e9)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.sm_count == 0 {
            return Err("sm_count must be non-zero".into());
        }
        if self.clock_ghz <= 0.0 {
            return Err("clock must be positive".into());
        }
        if self.hbm_bandwidth_gbs <= 0.0 {
            return Err("HBM bandwidth must be positive".into());
        }
        if self.max_warps_per_sm == 0 {
            return Err("max_warps_per_sm must be non-zero".into());
        }
        if self.transaction_bytes == 0 {
            return Err("transaction size must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_defaults_are_valid() {
        let c = GpuConfig::a100();
        assert!(c.validate().is_ok());
        assert_eq!(c.sm_count, 108);
        assert!((c.hbm_bandwidth_gbs - 1555.2).abs() < 1e-9);
    }

    #[test]
    fn extra_latency_adds_to_total() {
        let c = GpuConfig::a100().with_extra_hbm_latency_ns(35.0);
        assert!((c.total_hbm_latency_ns() - 325.0).abs() < 1e-9);
        // 325 ns at 1.41 GHz = 458.25 cycles.
        assert!((c.total_hbm_latency_cycles() - 458.25).abs() < 0.01);
    }

    #[test]
    fn hbm_bytes_per_cycle() {
        let c = GpuConfig::a100();
        // 1555.2 GB/s at 1.41 GHz = ~1102.98 bytes per cycle.
        assert!((c.hbm_bytes_per_cycle() - 1102.98).abs() < 0.1);
    }

    #[test]
    fn peak_issue_rate() {
        let c = GpuConfig::a100();
        assert!((c.peak_issue_per_cycle() - 108.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = GpuConfig::a100();
        c.sm_count = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::a100();
        c.clock_ghz = 0.0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::a100();
        c.hbm_bandwidth_gbs = -1.0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::a100();
        c.max_warps_per_sm = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::a100();
        c.transaction_bytes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_a100() {
        assert_eq!(GpuConfig::default(), GpuConfig::a100());
    }
}
