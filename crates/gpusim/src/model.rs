//! The analytical GPU timing model.
//!
//! For each kernel the model computes three components, in SM cycles:
//!
//! * **compute time** — warp instructions divided by the GPU's effective
//!   issue rate (derated when occupancy is too low to fill the issue slots);
//! * **bandwidth time** — HBM bytes moved divided by HBM bandwidth;
//! * **exposed latency** — each HBM transaction takes
//!   `hbm_latency (+ disaggregation latency)` cycles, but the GPU services
//!   many transactions concurrently (resident warps x per-warp MLP across
//!   all SMs), so only the serialized share is exposed.
//!
//! Kernel time is `max(compute, bandwidth) + exposed latency`. This is the
//! same first-order structure PPT-GPU uses (interval analysis with
//! occupancy-based latency hiding), and it reproduces the paper's
//! observations: applications with high L2 miss rates and many HBM
//! transactions per instruction slow down the most when HBM latency grows,
//! while compute- or occupancy-rich applications barely notice.

use crate::config::GpuConfig;
use crate::kernel::{ApplicationProfile, KernelProfile};
use serde::{Deserialize, Serialize};

/// Timing result for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Kernel name.
    pub name: String,
    /// Compute (issue-bound) cycles.
    pub compute_cycles: f64,
    /// HBM bandwidth-bound cycles.
    pub bandwidth_cycles: f64,
    /// Exposed (non-hidden) HBM latency cycles.
    pub exposed_latency_cycles: f64,
    /// Total predicted cycles for the kernel.
    pub total_cycles: f64,
}

/// Timing result for a whole application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSimResult {
    /// Application name.
    pub name: String,
    /// Suite the application belongs to.
    pub suite: String,
    /// Per-kernel timings.
    pub kernels: Vec<KernelTiming>,
    /// Total predicted cycles (sum over kernels).
    pub total_cycles: f64,
    /// The extra HBM latency that was configured, in nanoseconds.
    pub extra_hbm_latency_ns: f64,
    /// Application-level L2 miss rate.
    pub l2_miss_rate: f64,
    /// Application-level HBM transactions per warp instruction.
    pub hbm_transactions_per_instruction: f64,
    /// Application-level memory instruction fraction.
    pub memory_instruction_fraction: f64,
}

impl GpuSimResult {
    /// Slowdown relative to a baseline run of the same application, as a
    /// percentage.
    pub fn slowdown_vs(&self, baseline: &GpuSimResult) -> f64 {
        if baseline.total_cycles <= 0.0 {
            return 0.0;
        }
        (self.total_cycles / baseline.total_cycles - 1.0) * 100.0
    }

    /// Speedup relative to another (slower) run, as a percentage.
    pub fn speedup_vs(&self, other: &GpuSimResult) -> f64 {
        if self.total_cycles <= 0.0 {
            return 0.0;
        }
        (other.total_cycles / self.total_cycles - 1.0) * 100.0
    }
}

/// The timing model: a GPU configuration plus evaluation methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuTimingModel {
    config: GpuConfig,
}

impl GpuTimingModel {
    /// Create a model for a configuration.
    pub fn new(config: GpuConfig) -> Self {
        config
            .validate()
            .expect("invalid GPU configuration passed to GpuTimingModel::new");
        GpuTimingModel { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Predict the timing of one kernel.
    pub fn time_kernel(&self, kernel: &KernelProfile) -> KernelTiming {
        let cfg = &self.config;

        // Compute (issue) time: the GPU needs enough resident warps to keep
        // the issue slots busy; below ~8 warps per SM the issue rate derates
        // roughly linearly.
        let occupancy_factor = (kernel.active_warps_per_sm / 8.0).clamp(0.05, 1.0);
        let effective_issue = cfg.peak_issue_per_cycle() * occupancy_factor;
        let compute_cycles = kernel.warp_instructions as f64 / effective_issue;

        // Bandwidth time: bytes moved over the HBM interface.
        let hbm_bytes = kernel.hbm_transactions() * cfg.transaction_bytes as f64;
        let bandwidth_cycles = hbm_bytes / cfg.hbm_bytes_per_cycle();

        // Latency component: total latency-cycles across all HBM
        // transactions, divided by the concurrency available to hide it.
        let concurrency = (cfg.sm_count as f64
            * kernel.active_warps_per_sm.min(cfg.max_warps_per_sm as f64)
            * kernel.mlp_per_warp)
            .max(1.0);
        let total_latency_cycles = kernel.hbm_transactions() * cfg.total_hbm_latency_cycles();
        let exposed_latency_cycles = total_latency_cycles / concurrency;

        let total_cycles = compute_cycles.max(bandwidth_cycles) + exposed_latency_cycles;
        KernelTiming {
            name: kernel.name.clone(),
            compute_cycles,
            bandwidth_cycles,
            exposed_latency_cycles,
            total_cycles,
        }
    }

    /// Predict the timing of a whole application.
    pub fn run(&self, app: &ApplicationProfile) -> GpuSimResult {
        let kernels: Vec<KernelTiming> = app.kernels.iter().map(|k| self.time_kernel(k)).collect();
        let total_cycles = kernels.iter().map(|k| k.total_cycles).sum();
        GpuSimResult {
            name: app.name.clone(),
            suite: app.suite.clone(),
            kernels,
            total_cycles,
            extra_hbm_latency_ns: self.config.extra_hbm_latency_ns,
            l2_miss_rate: app.l2_miss_rate(),
            hbm_transactions_per_instruction: app.hbm_transactions_per_instruction(),
            memory_instruction_fraction: app.memory_instruction_fraction(),
        }
    }

    /// Run an application at several extra-HBM-latency points (the paper's
    /// 0/25/30/35 ns sweep for Fig. 9).
    pub fn latency_sweep(
        &self,
        app: &ApplicationProfile,
        extra_latencies_ns: &[f64],
    ) -> Vec<GpuSimResult> {
        extra_latencies_ns
            .iter()
            .map(|&extra| {
                GpuTimingModel::new(self.config.with_extra_hbm_latency_ns(extra)).run(app)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory_bound_kernel() -> KernelProfile {
        KernelProfile {
            name: "membound".into(),
            warp_instructions: 10_000_000,
            memory_instruction_fraction: 0.4,
            l1_hit_rate: 0.2,
            l2_hit_rate: 0.1,
            transactions_per_memory_instruction: 8.0,
            active_warps_per_sm: 12.0,
            mlp_per_warp: 1.5,
        }
    }

    fn compute_bound_kernel() -> KernelProfile {
        KernelProfile {
            name: "computebound".into(),
            warp_instructions: 50_000_000,
            memory_instruction_fraction: 0.05,
            l1_hit_rate: 0.9,
            l2_hit_rate: 0.9,
            transactions_per_memory_instruction: 2.0,
            active_warps_per_sm: 48.0,
            mlp_per_warp: 4.0,
        }
    }

    fn app(kernel: KernelProfile) -> ApplicationProfile {
        ApplicationProfile::new("app", "test", vec![kernel])
    }

    #[test]
    fn memory_bound_kernel_slows_down_with_extra_latency() {
        let model = GpuTimingModel::new(GpuConfig::a100());
        let sweep = model.latency_sweep(&app(memory_bound_kernel()), &[0.0, 35.0]);
        let slowdown = sweep[1].slowdown_vs(&sweep[0]);
        assert!(
            slowdown > 1.0,
            "memory-bound kernel should slow down, got {slowdown}%"
        );
    }

    #[test]
    fn compute_bound_kernel_barely_slows_down() {
        let model = GpuTimingModel::new(GpuConfig::a100());
        let sweep = model.latency_sweep(&app(compute_bound_kernel()), &[0.0, 35.0]);
        let slowdown = sweep[1].slowdown_vs(&sweep[0]);
        assert!(
            slowdown < 1.0,
            "compute-bound kernel should barely slow down, got {slowdown}%"
        );
    }

    #[test]
    fn gpu_tolerates_latency_better_than_full_exposure() {
        // The exposed latency must be far below transactions x latency
        // because of warp-level parallelism.
        let model = GpuTimingModel::new(GpuConfig::a100());
        let k = memory_bound_kernel();
        let t = model.time_kernel(&k);
        let naive = k.hbm_transactions() * GpuConfig::a100().total_hbm_latency_cycles();
        assert!(t.exposed_latency_cycles * 100.0 < naive);
    }

    #[test]
    fn slowdown_monotonic_in_latency() {
        let model = GpuTimingModel::new(GpuConfig::a100());
        let sweep =
            model.latency_sweep(&app(memory_bound_kernel()), &[0.0, 25.0, 30.0, 35.0, 85.0]);
        for pair in sweep.windows(2) {
            assert!(pair[1].total_cycles >= pair[0].total_cycles);
        }
    }

    #[test]
    fn electronic_latency_hurts_more_than_photonic() {
        let model = GpuTimingModel::new(GpuConfig::a100());
        let sweep = model.latency_sweep(&app(memory_bound_kernel()), &[0.0, 35.0, 85.0]);
        let photonic = sweep[1].slowdown_vs(&sweep[0]);
        let electronic = sweep[2].slowdown_vs(&sweep[0]);
        assert!(electronic > photonic);
    }

    #[test]
    fn total_is_sum_of_kernels() {
        let model = GpuTimingModel::new(GpuConfig::a100());
        let app = ApplicationProfile::new(
            "two",
            "test",
            vec![memory_bound_kernel(), compute_bound_kernel()],
        );
        let r = model.run(&app);
        let sum: f64 = r.kernels.iter().map(|k| k.total_cycles).sum();
        assert!((r.total_cycles - sum).abs() < 1e-6);
        assert_eq!(r.kernels.len(), 2);
    }

    #[test]
    fn higher_occupancy_hides_more_latency() {
        let model = GpuTimingModel::new(GpuConfig::a100().with_extra_hbm_latency_ns(35.0));
        let mut low = memory_bound_kernel();
        low.active_warps_per_sm = 4.0;
        let mut high = memory_bound_kernel();
        high.active_warps_per_sm = 48.0;
        let t_low = model.time_kernel(&low);
        let t_high = model.time_kernel(&high);
        assert!(t_high.exposed_latency_cycles < t_low.exposed_latency_cycles);
    }

    #[test]
    fn result_metadata_propagates() {
        let model = GpuTimingModel::new(GpuConfig::a100().with_extra_hbm_latency_ns(35.0));
        let r = model.run(&app(memory_bound_kernel()));
        assert_eq!(r.extra_hbm_latency_ns, 35.0);
        assert!(r.l2_miss_rate > 0.0);
        assert!(r.hbm_transactions_per_instruction > 0.0);
        assert_eq!(r.suite, "test");
    }

    #[test]
    fn speedup_and_slowdown_consistency() {
        let model = GpuTimingModel::new(GpuConfig::a100());
        let sweep = model.latency_sweep(&app(memory_bound_kernel()), &[35.0, 85.0]);
        assert!(sweep[0].speedup_vs(&sweep[1]) > 0.0);
        assert!(sweep[1].slowdown_vs(&sweep[0]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid GPU configuration")]
    fn invalid_config_panics() {
        let mut cfg = GpuConfig::a100();
        cfg.sm_count = 0;
        GpuTimingModel::new(cfg);
    }
}
