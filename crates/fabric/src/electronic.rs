//! Electronic-switch baselines (Section VI-D of the paper).
//!
//! The paper compares its photonic fabric (35 ns of additional
//! LLC-to-memory latency) against the best electronic alternatives:
//!
//! * a **four-hop tree of PCIe Gen5 switches** (~10 ns per hop on top of the
//!   common 35 ns FEC + propagation budget, 85 ns total) with only ~100
//!   lanes per switch and 32 Gbps per lane;
//! * a **single hop of the Anton 3 network** (~90 ns average, 29 Gbps per
//!   lane), which would need multiple hops to scale to a full rack;
//! * **Rosetta (Slingshot) or InfiniBand switches** with ≥200 ns per hop;
//! * recent small-group CXL prototypes reporting ≥142 ns.
//!
//! Electronic SERDES also caps per-wire signalling (~112 Gbps short-reach)
//! and loses reach as the rate grows, whereas co-packaged photonics reach
//! ~4 Tbps per mm of die shoreline — this is the bandwidth-density argument
//! for photonic disaggregation.

use photonics::units::{Bandwidth, Latency};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The electronic switch technologies the paper considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElectronicSwitchKind {
    /// Two-level tree of PCIe Gen5 switches (four hops end to end).
    PcieGen5Tree,
    /// One hop of the Anton 3 specialized network.
    Anton3,
    /// HPE Slingshot (Rosetta) switch.
    Rosetta,
    /// InfiniBand switch.
    Infiniband,
    /// Small-group CXL memory-pooling prototype (Pond-style).
    CxlPrototype,
}

impl fmt::Display for ElectronicSwitchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ElectronicSwitchKind::PcieGen5Tree => "PCIe Gen5 tree",
            ElectronicSwitchKind::Anton3 => "Anton 3",
            ElectronicSwitchKind::Rosetta => "Rosetta/Slingshot",
            ElectronicSwitchKind::Infiniband => "InfiniBand",
            ElectronicSwitchKind::CxlPrototype => "CXL prototype",
        };
        f.write_str(s)
    }
}

/// An electronic disaggregation fabric built from one of the switch kinds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectronicFabric {
    /// The switch technology.
    pub kind: ElectronicSwitchKind,
    /// Switch hops needed to connect the full rack.
    pub hops: u32,
    /// Per-hop switch traversal latency (ns).
    pub per_hop_latency_ns: f64,
    /// Common FEC + propagation budget shared with the photonic design (ns).
    pub base_latency_ns: f64,
    /// Per-lane signalling rate.
    pub lane_bandwidth: Bandwidth,
    /// Lanes connected per endpoint.
    pub lanes_per_endpoint: u32,
}

impl ElectronicFabric {
    /// The paper's primary electronic comparison point: a two-level tree of
    /// PCIe Gen5 switches (four hops), 85 ns of additional memory latency.
    pub fn pcie_gen5_tree() -> Self {
        ElectronicFabric {
            kind: ElectronicSwitchKind::PcieGen5Tree,
            hops: 4,
            // 4 hops x 10 ns on top of the 35 ns FEC + propagation budget +
            // serialization overheads: the paper rounds the total to 85 ns.
            per_hop_latency_ns: 12.5,
            base_latency_ns: 35.0,
            lane_bandwidth: Bandwidth::from_gbps(32.0),
            lanes_per_endpoint: 1,
        }
    }

    /// One hop of an Anton 3 style network (~90 ns average hop latency).
    pub fn anton3_single_hop() -> Self {
        ElectronicFabric {
            kind: ElectronicSwitchKind::Anton3,
            hops: 1,
            per_hop_latency_ns: 90.0,
            base_latency_ns: 0.0,
            lane_bandwidth: Bandwidth::from_gbps(29.0),
            lanes_per_endpoint: 1,
        }
    }

    /// A Rosetta (Slingshot) based fabric: at least 200 ns per hop.
    pub fn rosetta() -> Self {
        ElectronicFabric {
            kind: ElectronicSwitchKind::Rosetta,
            hops: 1,
            per_hop_latency_ns: 200.0,
            base_latency_ns: 0.0,
            lane_bandwidth: Bandwidth::from_gbps(200.0),
            lanes_per_endpoint: 1,
        }
    }

    /// An InfiniBand based fabric: at least 200 ns per hop.
    pub fn infiniband() -> Self {
        ElectronicFabric {
            kind: ElectronicSwitchKind::Infiniband,
            hops: 1,
            per_hop_latency_ns: 200.0,
            base_latency_ns: 0.0,
            lane_bandwidth: Bandwidth::from_gbps(200.0),
            lanes_per_endpoint: 1,
        }
    }

    /// A small-group CXL prototype (the paper cites a measured minimum of
    /// 142 ns).
    pub fn cxl_prototype() -> Self {
        ElectronicFabric {
            kind: ElectronicSwitchKind::CxlPrototype,
            hops: 1,
            per_hop_latency_ns: 142.0,
            base_latency_ns: 0.0,
            lane_bandwidth: Bandwidth::from_gbps(32.0),
            lanes_per_endpoint: 1,
        }
    }

    /// All baselines in the order the paper discusses them.
    pub fn all_baselines() -> Vec<ElectronicFabric> {
        vec![
            Self::pcie_gen5_tree(),
            Self::anton3_single_hop(),
            Self::rosetta(),
            Self::infiniband(),
            Self::cxl_prototype(),
        ]
    }

    /// Additional memory latency this fabric imposes for intra-rack
    /// disaggregation.
    pub fn added_memory_latency(&self) -> Latency {
        Latency::from_ns(self.base_latency_ns + self.hops as f64 * self.per_hop_latency_ns)
    }

    /// Per-endpoint bandwidth (lanes x lane rate).
    pub fn endpoint_bandwidth(&self) -> Bandwidth {
        self.lane_bandwidth * self.lanes_per_endpoint as f64
    }

    /// Ratio of the photonic MCM escape bandwidth to this fabric's
    /// per-endpoint bandwidth ("multiple times less than the per-chip
    /// bandwidth of our photonic architecture").
    pub fn bandwidth_deficit_vs(&self, photonic_escape: Bandwidth) -> f64 {
        photonic_escape / self.endpoint_bandwidth()
    }
}

/// The two latency comparison points of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyComparison {
    /// Photonic fabric's additional memory latency (ns).
    pub photonic_ns: f64,
    /// Best electronic fabric's additional memory latency (ns).
    pub electronic_ns: f64,
}

impl LatencyComparison {
    /// The paper's Fig. 12 comparison: 35 ns photonic vs 85 ns electronic.
    pub fn paper() -> Self {
        LatencyComparison {
            photonic_ns: 35.0,
            electronic_ns: 85.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_tree_adds_85_ns() {
        let f = ElectronicFabric::pcie_gen5_tree();
        assert!((f.added_memory_latency().ns() - 85.0).abs() < 1e-9);
        assert_eq!(f.hops, 4);
    }

    #[test]
    fn anton3_adds_about_90_ns() {
        let f = ElectronicFabric::anton3_single_hop();
        assert!((f.added_memory_latency().ns() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn rosetta_and_infiniband_are_much_slower() {
        for f in [ElectronicFabric::rosetta(), ElectronicFabric::infiniband()] {
            assert!(f.added_memory_latency().ns() >= 200.0);
        }
    }

    #[test]
    fn cxl_prototype_matches_measured_142_ns() {
        let f = ElectronicFabric::cxl_prototype();
        assert!((f.added_memory_latency().ns() - 142.0).abs() < 1e-9);
    }

    #[test]
    fn best_electronic_baseline_is_85_ns() {
        // The paper uses 85 ns as "currently the lowest latency for
        // electronic switches" in Fig. 12.
        let best = ElectronicFabric::all_baselines()
            .into_iter()
            .map(|f| f.added_memory_latency().ns())
            .fold(f64::INFINITY, f64::min);
        assert!((best - 85.0).abs() < 1e-9);
        assert_eq!(LatencyComparison::paper().electronic_ns, 85.0);
        assert_eq!(LatencyComparison::paper().photonic_ns, 35.0);
    }

    #[test]
    fn photonic_escape_bandwidth_dwarfs_electronic_endpoint_bandwidth() {
        let photonic = Bandwidth::from_tbytes_per_s(6.4);
        for f in ElectronicFabric::all_baselines() {
            let deficit = f.bandwidth_deficit_vs(photonic);
            assert!(
                deficit > 100.0,
                "{}: photonic escape should be >100x the endpoint bandwidth, got {deficit:.0}x",
                f.kind
            );
        }
    }

    #[test]
    fn all_baselines_enumerated() {
        assert_eq!(ElectronicFabric::all_baselines().len(), 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            ElectronicSwitchKind::PcieGen5Tree.to_string(),
            "PCIe Gen5 tree"
        );
        assert_eq!(ElectronicSwitchKind::Anton3.to_string(), "Anton 3");
    }
}
