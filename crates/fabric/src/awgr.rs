//! The arrayed waveguide grating router (AWGR) wavelength shuffle.
//!
//! An N x N AWGR is a passive device that routes wavelength `w` entering
//! input port `i` to output port `(i + w) mod N`. Consequently every
//! input–output port pair is connected by **exactly one** wavelength, the
//! device realizes a full all-to-all with `O(N)` fibers (versus `N^2` copper
//! point-to-point wires), and no reconfiguration is ever needed — the
//! property the paper's case (A) fabric builds on.

use serde::{Deserialize, Serialize};

/// A single N x N AWGR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Awgr {
    /// Port count (and wavelength count).
    pub ports: u32,
}

impl Awgr {
    /// Create an AWGR with `ports` ports.
    pub fn new(ports: u32) -> Self {
        assert!(ports > 0, "an AWGR needs at least one port");
        Awgr { ports }
    }

    /// The paper's cascaded-AWGR building block: 370 usable ports.
    pub fn paper_370() -> Self {
        Awgr::new(370)
    }

    /// Output port reached by wavelength `wavelength` entering `input` —
    /// the cyclic AWGR routing function.
    pub fn output_port(&self, input: u32, wavelength: u32) -> u32 {
        assert!(input < self.ports && wavelength < self.ports);
        (input + wavelength) % self.ports
    }

    /// The unique wavelength that connects `input` to `output`.
    pub fn wavelength_for(&self, input: u32, output: u32) -> u32 {
        assert!(input < self.ports && output < self.ports);
        (output + self.ports - input % self.ports) % self.ports
    }

    /// Number of wavelengths connecting an input/output pair (always 1 for
    /// in-range ports; provided for symmetry with multi-plane fabrics).
    pub fn wavelengths_between(&self, input: u32, output: u32) -> u32 {
        let _ = (input, output);
        1
    }

    /// Verify the all-to-all property for this AWGR: every input reaches
    /// every output on exactly one wavelength, and each wavelength from a
    /// given input lands on a distinct output (a permutation).
    pub fn verify_all_to_all(&self) -> bool {
        for input in 0..self.ports {
            let mut seen = vec![false; self.ports as usize];
            for w in 0..self.ports {
                let out = self.output_port(input, w);
                if seen[out as usize] {
                    return false;
                }
                seen[out as usize] = true;
            }
            if seen.iter().any(|&s| !s) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn routing_function_is_cyclic() {
        let a = Awgr::new(8);
        assert_eq!(a.output_port(0, 0), 0);
        assert_eq!(a.output_port(3, 2), 5);
        assert_eq!(a.output_port(7, 5), 4); // wraps
    }

    #[test]
    fn wavelength_for_inverts_output_port() {
        let a = Awgr::new(11);
        for i in 0..11 {
            for o in 0..11 {
                let w = a.wavelength_for(i, o);
                assert_eq!(a.output_port(i, w), o);
            }
        }
    }

    #[test]
    fn paper_awgr_is_all_to_all() {
        assert!(Awgr::paper_370().verify_all_to_all());
    }

    #[test]
    fn small_awgrs_are_all_to_all() {
        for n in [1u32, 2, 3, 8, 12, 37] {
            assert!(Awgr::new(n).verify_all_to_all(), "N={n}");
        }
    }

    #[test]
    fn exactly_one_wavelength_per_pair() {
        let a = Awgr::new(16);
        for i in 0..16 {
            for o in 0..16 {
                assert_eq!(a.wavelengths_between(i, o), 1);
                // Count wavelengths mapping i->o explicitly.
                let count = (0..16).filter(|&w| a.output_port(i, w) == o).count();
                assert_eq!(count, 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_port_awgr_rejected() {
        Awgr::new(0);
    }

    proptest! {
        #[test]
        fn prop_output_in_range(ports in 1u32..512, input in 0u32..512, w in 0u32..512) {
            let a = Awgr::new(ports);
            let input = input % ports;
            let w = w % ports;
            prop_assert!(a.output_port(input, w) < ports);
        }

        #[test]
        fn prop_wavelength_for_is_inverse(ports in 1u32..256, input in 0u32..256, output in 0u32..256) {
            let a = Awgr::new(ports);
            let input = input % ports;
            let output = output % ports;
            let w = a.wavelength_for(input, output);
            prop_assert!(w < ports);
            prop_assert_eq!(a.output_port(input, w), output);
        }

        #[test]
        fn prop_fixed_input_is_permutation(ports in 1u32..128, input in 0u32..128) {
            let a = Awgr::new(ports);
            let input = input % ports;
            let mut outputs: Vec<u32> = (0..ports).map(|w| a.output_port(input, w)).collect();
            outputs.sort_unstable();
            outputs.dedup();
            prop_assert_eq!(outputs.len(), ports as usize);
        }
    }
}
