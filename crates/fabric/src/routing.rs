//! Distributed indirect (Valiant) routing over the AWGR fabric, with
//! piggybacked wavelength-occupancy state (Section IV of the paper).
//!
//! AWGRs dedicate exactly one wavelength per source–destination pair per
//! plane. When a pair needs more bandwidth than its direct wavelengths
//! provide, the source splits traffic over **indirect** two-hop paths: it
//! sends to an intermediate MCM whose own direct wavelength to the final
//! destination is free, chosen uniformly at random among productive
//! candidates (Valiant routing), per flow to preserve ordering.
//!
//! Sources learn which wavelengths are busy from an **occupancy board**
//! assembled from state piggybacked on regular traffic: each source
//! broadcasts an N-bit vector describing which of its local wavelengths are
//! occupied. The board can be *stale*; if a source picks an intermediate
//! whose direct wavelength turns out to be busy, the intermediate performs a
//! second indirection itself (modelled here as an extra hop and a retry).

use crate::rackfabric::RackFabric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The decision the router makes for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteDecision {
    /// Use the direct wavelength(s) to the destination.
    Direct,
    /// Route through the given intermediate MCM (one extra hop).
    Indirect {
        /// The intermediate MCM index.
        intermediate: u32,
    },
    /// No direct or indirect capacity is currently available.
    Blocked,
}

impl RouteDecision {
    /// Number of fabric hops the decision implies (1 for direct, 2 for
    /// indirect, 0 for blocked).
    pub fn hops(&self) -> u32 {
        match self {
            RouteDecision::Direct => 1,
            RouteDecision::Indirect { .. } => 2,
            RouteDecision::Blocked => 0,
        }
    }
}

/// Global occupancy state: for every (source, destination) MCM pair, how many
/// of the direct wavelengths are currently carrying traffic.
///
/// In the real system each source holds only its own row plus piggybacked
/// (possibly stale) copies of the others; the board models both the ground
/// truth and the stale view.
#[derive(Debug, Clone)]
pub struct OccupancyBoard {
    mcm_count: u32,
    /// Flat row-major occupancy: `occupied[src * mcm_count + dst]` =
    /// wavelengths in use from `src` to `dst`. One contiguous allocation,
    /// cache-friendly row scans.
    occupied: Vec<u32>,
}

impl OccupancyBoard {
    /// Create an all-idle board for `mcm_count` MCMs.
    pub fn new(mcm_count: u32) -> Self {
        OccupancyBoard {
            mcm_count,
            occupied: vec![0; (mcm_count as usize) * (mcm_count as usize)],
        }
    }

    /// Number of MCMs.
    pub fn mcm_count(&self) -> u32 {
        self.mcm_count
    }

    /// The flat row-major index of an `(src, dst)` pair.
    #[inline]
    fn index(&self, src: u32, dst: u32) -> usize {
        src as usize * self.mcm_count as usize + dst as usize
    }

    /// Wavelengths currently occupied from `src` to `dst`.
    pub fn occupied(&self, src: u32, dst: u32) -> u32 {
        self.occupied[self.index(src, dst)]
    }

    /// Mark `n` additional wavelengths busy from `src` to `dst`.
    pub fn occupy(&mut self, src: u32, dst: u32, n: u32) {
        let i = self.index(src, dst);
        self.occupied[i] += n;
    }

    /// Release `n` wavelengths from `src` to `dst`.
    pub fn release(&mut self, src: u32, dst: u32, n: u32) {
        let i = self.index(src, dst);
        let v = &mut self.occupied[i];
        *v = v.saturating_sub(n);
    }

    /// Reset every entry to idle in place, keeping the allocation. This is
    /// the arena-reuse path: a board sized for the same rack is recycled
    /// across simulator runs instead of reallocated.
    ///
    /// ```
    /// use fabric::OccupancyBoard;
    ///
    /// let mut board = OccupancyBoard::new(8);
    /// board.occupy(0, 1, 3);
    /// board.reset(8);
    /// assert_eq!(board.occupied(0, 1), 0);
    /// // Resizing to a different rack reuses the same board value.
    /// board.reset(16);
    /// assert_eq!(board.mcm_count(), 16);
    /// ```
    pub fn reset(&mut self, mcm_count: u32) {
        let cells = (mcm_count as usize) * (mcm_count as usize);
        self.mcm_count = mcm_count;
        self.occupied.clear();
        self.occupied.resize(cells, 0);
    }

    /// Set one pair back to idle (an O(1) targeted clear, used by the
    /// arena's touched-pair delta-reset instead of wiping the whole board).
    pub fn clear_pair(&mut self, src: u32, dst: u32) {
        let i = self.index(src, dst);
        self.occupied[i] = 0;
    }

    /// Free direct wavelengths from `src` to `dst` on the given fabric.
    pub fn free_wavelengths(&self, fabric: &RackFabric, src: u32, dst: u32) -> u32 {
        fabric
            .direct_wavelengths(src, dst)
            .saturating_sub(self.occupied(src, dst))
    }

    /// The per-source occupancy bit-vector that would be piggybacked on
    /// outgoing traffic (one bit per destination: any wavelength busy).
    /// The paper notes this is ~256 bytes per source even with 8 bits per
    /// wavelength — negligible bandwidth.
    pub fn piggyback_vector(&self, src: u32) -> Vec<bool> {
        let row = src as usize * self.mcm_count as usize;
        self.occupied[row..row + self.mcm_count as usize]
            .iter()
            .map(|&o| o > 0)
            .collect()
    }

    /// Size in bytes of the piggybacked status vector with `bits_per_entry`
    /// bits per destination.
    pub fn piggyback_bytes(&self, bits_per_entry: u32) -> u64 {
        (self.mcm_count as u64 * bits_per_entry as u64).div_ceil(8)
    }
}

/// Statistics accumulated by the router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Flows routed directly.
    pub direct: u64,
    /// Flows routed through one intermediate.
    pub indirect: u64,
    /// Flows routed indirectly that needed a second indirection because the
    /// piggybacked state was stale.
    pub second_indirections: u64,
    /// Flows that could not be routed at all.
    pub blocked: u64,
}

impl RoutingStats {
    /// Total routed (direct + indirect).
    pub fn routed(&self) -> u64 {
        self.direct + self.indirect
    }

    /// Fraction of routed flows that went indirect.
    pub fn indirect_fraction(&self) -> f64 {
        let total = self.routed();
        if total == 0 {
            0.0
        } else {
            self.indirect as f64 / total as f64
        }
    }
}

/// The per-source indirect router.
#[derive(Debug)]
pub struct IndirectRouter {
    rng: StdRng,
    /// Probability that the source's view of a remote wavelength is stale
    /// (the piggybacked state has not caught up with reality).
    staleness_probability: f64,
    stats: RoutingStats,
}

impl IndirectRouter {
    /// Create a router with the given RNG seed and staleness probability.
    pub fn new(seed: u64, staleness_probability: f64) -> Self {
        IndirectRouter {
            rng: StdRng::seed_from_u64(seed),
            staleness_probability: staleness_probability.clamp(0.0, 1.0),
            stats: RoutingStats::default(),
        }
    }

    /// Router with fresh (never stale) state.
    pub fn with_fresh_state(seed: u64) -> Self {
        Self::new(seed, 0.0)
    }

    /// Statistics so far.
    pub fn stats(&self) -> RoutingStats {
        self.stats
    }

    /// Route one flow of `wavelengths_needed` wavelengths from `src` to
    /// `dst`, updating the occupancy board with whatever is allocated.
    ///
    /// Sources only consider indirect paths when the direct wavelengths do
    /// not suffice (Section IV-A); indirect candidates must have a free
    /// wavelength both from `src` to the intermediate and from the
    /// intermediate to `dst`, and the choice among candidates is uniform
    /// (Valiant).
    pub fn route(
        &mut self,
        fabric: &RackFabric,
        board: &mut OccupancyBoard,
        src: u32,
        dst: u32,
        wavelengths_needed: u32,
    ) -> RouteDecision {
        if src == dst || wavelengths_needed == 0 {
            return RouteDecision::Direct;
        }
        // Direct path first.
        let free_direct = board.free_wavelengths(fabric, src, dst);
        if free_direct >= wavelengths_needed {
            board.occupy(src, dst, wavelengths_needed);
            self.stats.direct += 1;
            return RouteDecision::Direct;
        }

        // Collect productive intermediates: src->m and m->dst both free.
        let n = board.mcm_count();
        let deficit = wavelengths_needed - free_direct;
        let candidates: Vec<u32> = (0..n)
            .filter(|&m| m != src && m != dst)
            .filter(|&m| {
                board.free_wavelengths(fabric, src, m) >= deficit
                    && board.free_wavelengths(fabric, m, dst) >= deficit
            })
            .collect();

        if candidates.is_empty() {
            self.stats.blocked += 1;
            return RouteDecision::Blocked;
        }

        let intermediate = candidates[self.rng.gen_range(0..candidates.len())];
        // Allocate: whatever direct capacity exists plus the indirect legs.
        if free_direct > 0 {
            board.occupy(src, dst, free_direct);
        }
        board.occupy(src, intermediate, deficit);
        board.occupy(intermediate, dst, deficit);
        self.stats.indirect += 1;

        // Stale state: with some probability the intermediate's wavelength to
        // the destination was actually busy and the intermediate has to
        // perform a second indirection (extra hop, accounted statistically).
        if self.rng.gen_bool(self.staleness_probability) {
            self.stats.second_indirections += 1;
        }
        RouteDecision::Indirect { intermediate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rackfabric::{FabricKind, RackFabric, RackFabricConfig};

    fn small_awgr_fabric() -> RackFabric {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = 32;
        RackFabric::new(cfg)
    }

    #[test]
    fn direct_when_capacity_available() {
        let fabric = small_awgr_fabric();
        let mut board = OccupancyBoard::new(32);
        let mut router = IndirectRouter::with_fresh_state(1);
        let d = router.route(&fabric, &mut board, 0, 5, 3);
        assert_eq!(d, RouteDecision::Direct);
        assert_eq!(board.occupied(0, 5), 3);
        assert_eq!(router.stats().direct, 1);
    }

    #[test]
    fn indirect_when_direct_exhausted() {
        let fabric = small_awgr_fabric();
        let direct = fabric.direct_wavelengths(0, 5);
        let mut board = OccupancyBoard::new(32);
        let mut router = IndirectRouter::with_fresh_state(2);
        // Saturate the direct wavelengths.
        board.occupy(0, 5, direct);
        let d = router.route(&fabric, &mut board, 0, 5, 2);
        match d {
            RouteDecision::Indirect { intermediate } => {
                assert_ne!(intermediate, 0);
                assert_ne!(intermediate, 5);
                assert_eq!(board.occupied(0, intermediate), 2);
                assert_eq!(board.occupied(intermediate, 5), 2);
            }
            other => panic!("expected indirect, got {other:?}"),
        }
        assert_eq!(d.hops(), 2);
        assert_eq!(router.stats().indirect, 1);
    }

    #[test]
    fn blocked_when_everything_saturated() {
        let fabric = small_awgr_fabric();
        let mut board = OccupancyBoard::new(32);
        // Saturate every wavelength in the fabric.
        for a in 0..32 {
            for b in 0..32 {
                if a != b {
                    board.occupy(a, b, fabric.direct_wavelengths(a, b));
                }
            }
        }
        let mut router = IndirectRouter::with_fresh_state(3);
        let d = router.route(&fabric, &mut board, 0, 5, 1);
        assert_eq!(d, RouteDecision::Blocked);
        assert_eq!(router.stats().blocked, 1);
        assert_eq!(d.hops(), 0);
    }

    #[test]
    fn partial_direct_plus_indirect_allocation() {
        let fabric = small_awgr_fabric();
        let direct = fabric.direct_wavelengths(0, 5);
        let mut board = OccupancyBoard::new(32);
        let mut router = IndirectRouter::with_fresh_state(4);
        // Leave one direct wavelength free, ask for three.
        board.occupy(0, 5, direct - 1);
        let d = router.route(&fabric, &mut board, 0, 5, 3);
        assert!(matches!(d, RouteDecision::Indirect { .. }));
        // The free direct wavelength is used plus two indirect.
        assert_eq!(board.occupied(0, 5), direct);
    }

    #[test]
    fn valiant_choice_varies_with_seed() {
        let fabric = small_awgr_fabric();
        let direct = fabric.direct_wavelengths(0, 5);
        let pick = |seed: u64| {
            let mut board = OccupancyBoard::new(32);
            board.occupy(0, 5, direct);
            let mut router = IndirectRouter::with_fresh_state(seed);
            match router.route(&fabric, &mut board, 0, 5, 1) {
                RouteDecision::Indirect { intermediate } => intermediate,
                other => panic!("expected indirect, got {other:?}"),
            }
        };
        let picks: std::collections::HashSet<u32> = (0..16).map(pick).collect();
        assert!(picks.len() > 1, "Valiant choice should vary across seeds");
    }

    #[test]
    fn stale_state_triggers_second_indirections() {
        let fabric = small_awgr_fabric();
        let mut board = OccupancyBoard::new(32);
        let mut router = IndirectRouter::new(7, 0.5);
        let direct = fabric.direct_wavelengths(0, 5);
        board.occupy(0, 5, direct);
        for _ in 0..200 {
            // Re-route repeatedly without releasing; eventually blocked, so
            // release the indirect legs each time to keep capacity.
            let d = router.route(&fabric, &mut board, 0, 5, 1);
            if let RouteDecision::Indirect { intermediate } = d {
                board.release(0, intermediate, 1);
                board.release(intermediate, 5, 1);
            }
        }
        let s = router.stats();
        assert!(s.second_indirections > 30);
        assert!(s.second_indirections < s.indirect);
    }

    #[test]
    fn fresh_state_never_second_indirects() {
        let fabric = small_awgr_fabric();
        let mut board = OccupancyBoard::new(32);
        let mut router = IndirectRouter::with_fresh_state(9);
        let direct = fabric.direct_wavelengths(0, 5);
        board.occupy(0, 5, direct);
        for _ in 0..50 {
            if let RouteDecision::Indirect { intermediate } =
                router.route(&fabric, &mut board, 0, 5, 1)
            {
                board.release(0, intermediate, 1);
                board.release(intermediate, 5, 1);
            }
        }
        assert_eq!(router.stats().second_indirections, 0);
    }

    #[test]
    fn occupancy_release_saturates_at_zero() {
        let mut board = OccupancyBoard::new(4);
        board.occupy(0, 1, 2);
        board.release(0, 1, 5);
        assert_eq!(board.occupied(0, 1), 0);
    }

    #[test]
    fn piggyback_vector_and_size() {
        let mut board = OccupancyBoard::new(350);
        board.occupy(0, 7, 1);
        let v = board.piggyback_vector(0);
        assert_eq!(v.len(), 350);
        assert!(v[7]);
        assert!(!v[8]);
        // One bit per destination: 350 bits = 44 bytes; 8 bits per entry
        // (the paper's multi-flow example) ~ 350 bytes, i.e. negligible.
        assert_eq!(board.piggyback_bytes(1), 44);
        assert_eq!(board.piggyback_bytes(8), 350);
    }

    #[test]
    fn routing_stats_fractions() {
        let mut s = RoutingStats::default();
        assert_eq!(s.indirect_fraction(), 0.0);
        s.direct = 3;
        s.indirect = 1;
        assert_eq!(s.routed(), 4);
        assert!((s.indirect_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_wavelength_or_self_route_is_trivially_direct() {
        let fabric = small_awgr_fabric();
        let mut board = OccupancyBoard::new(32);
        let mut router = IndirectRouter::with_fresh_state(11);
        assert_eq!(
            router.route(&fabric, &mut board, 3, 3, 5),
            RouteDecision::Direct
        );
        assert_eq!(
            router.route(&fabric, &mut board, 0, 1, 0),
            RouteDecision::Direct
        );
    }
}
