//! The full rack fabric construction of Section V-B.
//!
//! The rack holds 350 MCMs, each with 32 fibers of 64 wavelengths at
//! 25 Gbps (6.4 TB/s escape bandwidth per MCM). Two constructions connect
//! them:
//!
//! * **Case (A) — six parallel cascaded AWGRs.** MCM fibers are combined in
//!   five groups of six and each group feeds one port of five parallel
//!   370-port AWGRs; the leftover wavelengths and two remaining fibers feed
//!   a sixth, partially-populated AWGR. Every MCM pair is connected by at
//!   least five direct 25 Gbps wavelengths (125 Gbps), with no
//!   reconfiguration ever needed.
//! * **Case (B) — eleven staggered wave-selective (or spatial) switches** of
//!   radix 256. Switch `I` connects MCMs `(32*I) mod 350` through
//!   `(32*I + 255) mod 350`; each MCM attaches to eight of the eleven
//!   switches (its 2048 wavelengths divided into 256-wavelength ports), and
//!   every MCM pair shares at least three switches, giving
//!   `3 x 256 x 25 = 2304 Gbps` of direct bandwidth after reconfiguration.

use photonics::switch::SwitchConfig;
use photonics::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// Which fabric construction is instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricKind {
    /// Case (A): six parallel cascaded AWGRs, distributed indirect routing,
    /// no reconfiguration.
    ParallelAwgrs,
    /// Case (B): eleven parallel wave-selective switches with a centralized
    /// reconfiguration scheduler.
    WaveSelective,
    /// Case (B'): spatial switches (same port arithmetic as wave-selective
    /// in the paper's analysis).
    Spatial,
}

impl FabricKind {
    /// The corresponding Table IV switch configuration.
    pub fn switch_config(self) -> SwitchConfig {
        match self {
            FabricKind::ParallelAwgrs => SwitchConfig::CascadedAwgr,
            FabricKind::WaveSelective => SwitchConfig::WaveSelective,
            FabricKind::Spatial => SwitchConfig::Spatial,
        }
    }

    /// Whether this fabric needs a centralized scheduler for reconfiguration.
    pub fn needs_scheduler(self) -> bool {
        self.switch_config().needs_scheduler()
    }
}

/// Configuration of the rack fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackFabricConfig {
    /// Number of MCMs in the rack.
    pub mcm_count: u32,
    /// Optical fibers per MCM.
    pub fibers_per_mcm: u32,
    /// Wavelengths per fiber.
    pub wavelengths_per_fiber: u32,
    /// Data rate per wavelength in Gbps.
    pub gbps_per_wavelength: f64,
    /// Fabric construction.
    pub kind: FabricKind,
}

impl RackFabricConfig {
    /// The paper's rack: 350 MCMs, 32 fibers, 64 wavelengths, 25 Gbps.
    pub fn paper_rack(kind: FabricKind) -> Self {
        RackFabricConfig {
            mcm_count: 350,
            fibers_per_mcm: 32,
            wavelengths_per_fiber: 64,
            gbps_per_wavelength: 25.0,
            kind,
        }
    }

    /// Escape wavelengths per MCM.
    pub fn wavelengths_per_mcm(&self) -> u32 {
        self.fibers_per_mcm * self.wavelengths_per_fiber
    }

    /// Escape bandwidth per MCM.
    pub fn escape_bandwidth_per_mcm(&self) -> Bandwidth {
        Bandwidth::from_gbps(self.gbps_per_wavelength) * self.wavelengths_per_mcm() as f64
    }
}

/// Summary of the fabric's connectivity guarantees (what Fig. 5 and
/// Section V-B assert).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricReport {
    /// Fabric kind.
    pub kind: FabricKind,
    /// Number of parallel switch/AWGR planes instantiated.
    pub planes: u32,
    /// Minimum direct wavelengths between any MCM pair.
    pub min_direct_wavelengths: u32,
    /// Maximum direct wavelengths between any MCM pair.
    pub max_direct_wavelengths: u32,
    /// Minimum direct bandwidth between any MCM pair (Gbps).
    pub min_direct_bandwidth_gbps: f64,
    /// Escape bandwidth per MCM (Gbps).
    pub escape_bandwidth_gbps: f64,
    /// Whether a centralized reconfiguration scheduler is required.
    pub needs_scheduler: bool,
}

/// The instantiated rack fabric.
#[derive(Debug, Clone)]
pub struct RackFabric {
    config: RackFabricConfig,
    /// For AWGR fabrics: the number of full all-to-all planes.
    full_planes: u32,
    /// For AWGR fabrics: reach (number of nearest destinations) of the
    /// partial extra plane.
    partial_plane_reach: u32,
    /// For switch fabrics: per-switch list of attached MCMs (as a boolean
    /// membership table switch-major).
    switch_membership: Vec<Vec<bool>>,
    /// Ports (256-wavelength bundles) available per MCM for switch fabrics.
    ports_per_mcm: u32,
}

impl RackFabric {
    /// Build the fabric described by `config`.
    pub fn new(config: RackFabricConfig) -> Self {
        match config.kind {
            FabricKind::ParallelAwgrs => Self::build_awgr(config),
            FabricKind::WaveSelective | FabricKind::Spatial => Self::build_switched(config),
        }
    }

    /// The paper's case (A) fabric.
    pub fn paper_awgr() -> Self {
        Self::new(RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs))
    }

    /// The paper's case (B) fabric.
    pub fn paper_wave_selective() -> Self {
        Self::new(RackFabricConfig::paper_rack(FabricKind::WaveSelective))
    }

    fn build_awgr(config: RackFabricConfig) -> Self {
        let awgr_ports = SwitchConfig::CascadedAwgr.effective_radix();
        // Wavelengths per MCM divided into groups that saturate one AWGR port
        // each (370 wavelengths per port): five full planes for the paper's
        // 2048 wavelengths, plus one partial plane with the remainder.
        let per_port = awgr_ports;
        let total = config.wavelengths_per_mcm();
        let full_planes = total / per_port;
        let remainder = total % per_port;
        // The partial plane's port only carries `remainder` wavelengths, so
        // through it an MCM reaches only its `remainder` cyclically-nearest
        // destinations (the AWGR shuffle maps wavelength w from port i to
        // port (i+w) mod N).
        let partial_plane_reach = remainder.min(config.mcm_count.saturating_sub(1));
        RackFabric {
            config,
            full_planes,
            partial_plane_reach,
            switch_membership: Vec::new(),
            ports_per_mcm: 0,
        }
    }

    fn build_switched(config: RackFabricConfig) -> Self {
        let radix = config.kind.switch_config().effective_radix();
        let wavelengths_per_port = config.kind.switch_config().effective_wavelengths_per_port();
        let ports_per_mcm = (config.wavelengths_per_mcm() / wavelengths_per_port).max(1);
        // Instantiate enough switches that every MCM can use all of its
        // ports: ceil(mcm_count * ports_per_mcm / radix), which is 11 for the
        // paper's 350 x 8 / 256.
        let switch_count =
            ((config.mcm_count as u64 * ports_per_mcm as u64).div_ceil(radix as u64)) as u32;
        let mut membership = vec![vec![false; config.mcm_count as usize]; switch_count as usize];
        let mut ports_used = vec![0u32; config.mcm_count as usize];
        // Staggered attachment: switch I connects MCMs (32*I) mod N through
        // (32*I + radix - 1) mod N, skipping MCMs that have exhausted their
        // ports so no MCM exceeds `ports_per_mcm` attachments.
        let stagger = 32u32;
        for i in 0..switch_count {
            let start = (stagger as u64 * i as u64 % config.mcm_count as u64) as u32;
            let mut attached = 0u32;
            let mut offset = 0u32;
            while attached < radix && offset < config.mcm_count {
                let mcm = ((start + offset) % config.mcm_count) as usize;
                offset += 1;
                if ports_used[mcm] < ports_per_mcm && !membership[i as usize][mcm] {
                    membership[i as usize][mcm] = true;
                    ports_used[mcm] += 1;
                    attached += 1;
                }
            }
        }
        RackFabric {
            config,
            full_planes: 0,
            partial_plane_reach: 0,
            switch_membership: membership,
            ports_per_mcm,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RackFabricConfig {
        &self.config
    }

    /// Number of parallel planes (AWGRs or switches).
    pub fn planes(&self) -> u32 {
        match self.config.kind {
            FabricKind::ParallelAwgrs => {
                self.full_planes + if self.partial_plane_reach > 0 { 1 } else { 0 }
            }
            _ => self.switch_membership.len() as u32,
        }
    }

    /// Direct wavelengths between two distinct MCMs.
    pub fn direct_wavelengths(&self, a: u32, b: u32) -> u32 {
        assert!(a < self.config.mcm_count && b < self.config.mcm_count);
        if a == b {
            return 0;
        }
        match self.config.kind {
            FabricKind::ParallelAwgrs => {
                // One wavelength per full plane, plus one more if `b` falls
                // within the partial plane's cyclic reach from `a`.
                let n = self.config.mcm_count;
                let forward = (b + n - a) % n;
                let extra = u32::from(forward <= self.partial_plane_reach);
                self.full_planes + extra
            }
            _ => {
                let shared = self.shared_switches(a, b);
                shared
                    * self
                        .config
                        .kind
                        .switch_config()
                        .effective_wavelengths_per_port()
            }
        }
    }

    /// Number of switches both MCMs attach to (switch fabrics only; 0 for
    /// AWGR fabrics, which have no notion of shared switches).
    pub fn shared_switches(&self, a: u32, b: u32) -> u32 {
        self.switch_membership
            .iter()
            .filter(|sw| sw[a as usize] && sw[b as usize])
            .count() as u32
    }

    /// Number of switches (or AWGR planes) an MCM attaches to.
    pub fn attachments(&self, mcm: u32) -> u32 {
        match self.config.kind {
            FabricKind::ParallelAwgrs => self.planes(),
            _ => self
                .switch_membership
                .iter()
                .filter(|sw| sw[mcm as usize])
                .count() as u32,
        }
    }

    /// Direct bandwidth between two MCMs.
    pub fn direct_bandwidth(&self, a: u32, b: u32) -> Bandwidth {
        Bandwidth::from_gbps(self.config.gbps_per_wavelength) * self.direct_wavelengths(a, b) as f64
    }

    /// Maximum ports (256-wavelength bundles) per MCM for switch fabrics.
    pub fn ports_per_mcm(&self) -> u32 {
        self.ports_per_mcm
    }

    /// Compute the connectivity report over all MCM pairs.
    ///
    /// For the paper's 350-MCM rack this is ~61k pairs — cheap for the AWGR
    /// closed form, and still fast for the switch membership table.
    pub fn report(&self) -> FabricReport {
        let n = self.config.mcm_count;
        let mut min_w = u32::MAX;
        let mut max_w = 0u32;
        for a in 0..n {
            for b in (a + 1)..n {
                let w = self.direct_wavelengths(a, b);
                min_w = min_w.min(w);
                max_w = max_w.max(w);
            }
        }
        if n < 2 {
            min_w = 0;
        }
        FabricReport {
            kind: self.config.kind,
            planes: self.planes(),
            min_direct_wavelengths: min_w,
            max_direct_wavelengths: max_w,
            min_direct_bandwidth_gbps: min_w as f64 * self.config.gbps_per_wavelength,
            escape_bandwidth_gbps: self.config.escape_bandwidth_per_mcm().gbps(),
            needs_scheduler: self.config.kind.needs_scheduler(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_awgr_fabric_has_six_planes() {
        let f = RackFabric::paper_awgr();
        assert_eq!(f.planes(), 6);
        // 2048 wavelengths / 370 per port = 5 full planes + 198-wavelength
        // partial plane.
        assert_eq!(f.full_planes, 5);
        assert!(f.partial_plane_reach > 0);
    }

    #[test]
    fn paper_awgr_guarantees_at_least_five_direct_wavelengths() {
        let f = RackFabric::paper_awgr();
        let r = f.report();
        assert_eq!(r.min_direct_wavelengths, 5);
        assert!(r.max_direct_wavelengths >= 6);
        // 5 x 25 Gbps = 125 Gbps minimum direct bandwidth (Section VI-A1).
        assert!((r.min_direct_bandwidth_gbps - 125.0).abs() < 1e-9);
        assert!(!r.needs_scheduler);
    }

    #[test]
    fn paper_wave_selective_fabric_has_eleven_switches() {
        let f = RackFabric::paper_wave_selective();
        assert_eq!(f.planes(), 11);
        assert_eq!(f.ports_per_mcm(), 8);
    }

    #[test]
    fn wave_selective_mcms_attach_to_at_most_eight_switches() {
        let f = RackFabric::paper_wave_selective();
        for mcm in 0..350 {
            let a = f.attachments(mcm);
            assert!(a <= 8, "MCM {mcm} attaches to {a} switches");
            assert!(a >= 7, "MCM {mcm} attaches to only {a} switches");
        }
    }

    #[test]
    fn wave_selective_guarantees_at_least_three_shared_switches() {
        let f = RackFabric::paper_wave_selective();
        let r = f.report();
        // >= 3 direct paths x 256 wavelengths each.
        assert!(
            r.min_direct_wavelengths >= 3 * 256,
            "minimum direct wavelengths {} should be >= 768",
            r.min_direct_wavelengths
        );
        // 2304 Gbps direct bandwidth quoted in the paper (3 paths).
        assert!(r.min_direct_bandwidth_gbps >= 2304.0 * 25.0 / 25.0 * 1.0 - 1e-9);
        assert!(r.needs_scheduler);
    }

    #[test]
    fn escape_bandwidth_is_6_4_terabytes_per_second() {
        for kind in [FabricKind::ParallelAwgrs, FabricKind::WaveSelective] {
            let cfg = RackFabricConfig::paper_rack(kind);
            assert_eq!(cfg.wavelengths_per_mcm(), 2048);
            assert!((cfg.escape_bandwidth_per_mcm().tbytes_per_s() - 6.4).abs() < 1e-9);
        }
    }

    #[test]
    fn direct_wavelengths_zero_for_self() {
        let f = RackFabric::paper_awgr();
        assert_eq!(f.direct_wavelengths(5, 5), 0);
    }

    #[test]
    fn awgr_direct_wavelengths_symmetric_within_one() {
        // The partial plane reach is directional (cyclically forward), so a
        // pair can differ by at most the one extra wavelength.
        let f = RackFabric::paper_awgr();
        for (a, b) in [(0u32, 1u32), (0, 349), (10, 200), (349, 0), (100, 101)] {
            let ab = f.direct_wavelengths(a, b);
            let ba = f.direct_wavelengths(b, a);
            assert!(ab.abs_diff(ba) <= 1, "({a},{b}): {ab} vs {ba}");
            assert!((5..=6).contains(&ab));
        }
    }

    #[test]
    fn spatial_fabric_matches_wave_selective_arithmetic() {
        let f = RackFabric::new(RackFabricConfig::paper_rack(FabricKind::Spatial));
        assert_eq!(f.planes(), 11);
        let r = f.report();
        assert!(r.min_direct_wavelengths >= 3 * 256);
        assert!(r.needs_scheduler);
    }

    #[test]
    fn smaller_rack_still_connects_everyone() {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = 64;
        let f = RackFabric::new(cfg);
        let r = f.report();
        assert!(r.min_direct_wavelengths >= 5);
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::WaveSelective);
        cfg.mcm_count = 64;
        let f = RackFabric::new(cfg);
        let r = f.report();
        assert!(r.min_direct_wavelengths >= 256);
    }

    #[test]
    fn report_is_consistent_with_direct_bandwidth() {
        let f = RackFabric::paper_awgr();
        let r = f.report();
        let bw = f.direct_bandwidth(0, 175);
        assert!(bw.gbps() >= r.min_direct_bandwidth_gbps - 1e-9);
    }

    #[test]
    fn fabric_kind_scheduler_requirements() {
        assert!(!FabricKind::ParallelAwgrs.needs_scheduler());
        assert!(FabricKind::WaveSelective.needs_scheduler());
        assert!(FabricKind::Spatial.needs_scheduler());
    }
}
