//! Flat row-major demand matrices.
//!
//! The quadratic per-pair state of the fabric simulators — offered demand,
//! granted capacity, wavelength occupancy — is conceptually an `N x N`
//! matrix over MCM pairs. This module provides the canonical dense
//! representation: one contiguous row-major `Vec<f64>` indexed as
//! `src * nodes + dst`, which the simulators index directly instead of
//! hashing `(u32, u32)` pair keys or chasing nested `Vec<Vec<..>>` rows.
//!
//! A [`DemandMatrix`] is a *pair-aggregated* view of a flow list: multiple
//! flows on the same ordered pair collapse into one summed entry. That is
//! exactly the granularity at which the timeline simulator's steering state
//! operates, but it is **not** equivalent input for
//! [`FlowSimulator::run`](crate::flowsim::FlowSimulator::run), whose
//! per-flow fractions and allocation order distinguish duplicate pairs —
//! which is why flow lists remain the simulators' canonical input and the
//! dense form is the canonical *state* representation.

use crate::flowsim::Flow;
use serde::{Deserialize, Serialize};

/// A dense row-major demand matrix over `nodes x nodes` ordered MCM pairs,
/// in Gbps.
///
/// # Example
///
/// ```
/// use fabric::{DemandMatrix, Flow};
///
/// let flows = [Flow::new(0, 1, 100.0), Flow::new(0, 1, 50.0), Flow::new(2, 0, 25.0)];
/// let m = DemandMatrix::from_flows(4, &flows);
///
/// // Duplicate pairs aggregate; storage is flat row-major.
/// assert_eq!(m.get(0, 1), 150.0);
/// assert_eq!(m.as_slice()[m.index(2, 0)], 25.0);
/// assert_eq!(m.as_slice().len(), 16);
/// assert_eq!(m.total_gbps(), 175.0);
///
/// // Round-trip back to a (pair-aggregated, row-major-ordered) flow list.
/// let back = m.to_flows();
/// assert_eq!(back, vec![Flow::new(0, 1, 150.0), Flow::new(2, 0, 25.0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandMatrix {
    nodes: u32,
    /// Row-major demand: `demand[src * nodes + dst]` in Gbps.
    demand: Vec<f64>,
}

impl DemandMatrix {
    /// An all-zero matrix over `nodes` MCMs.
    pub fn zeros(nodes: u32) -> Self {
        DemandMatrix {
            nodes,
            demand: vec![0.0; (nodes as usize) * (nodes as usize)],
        }
    }

    /// Aggregate a flow list into a dense matrix: each flow's sanitized
    /// demand (per [`Flow::sanitized`]) adds onto its ordered pair's entry.
    /// Flows whose endpoints fall outside `nodes` are ignored.
    pub fn from_flows(nodes: u32, flows: &[Flow]) -> Self {
        let mut m = DemandMatrix::zeros(nodes);
        for f in flows {
            if f.src < nodes && f.dst < nodes {
                let i = m.index(f.src, f.dst);
                m.demand[i] += f.sanitized().demand_gbps;
            }
        }
        m
    }

    /// Number of MCMs (the matrix is `nodes x nodes`).
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// The flat row-major index of an ordered pair.
    #[inline]
    pub fn index(&self, src: u32, dst: u32) -> usize {
        src as usize * self.nodes as usize + dst as usize
    }

    /// Demand from `src` to `dst` in Gbps.
    #[inline]
    pub fn get(&self, src: u32, dst: u32) -> f64 {
        self.demand[self.index(src, dst)]
    }

    /// Set the demand of one ordered pair.
    pub fn set(&mut self, src: u32, dst: u32, gbps: f64) {
        let i = self.index(src, dst);
        self.demand[i] = gbps;
    }

    /// Add demand onto one ordered pair.
    pub fn add(&mut self, src: u32, dst: u32, gbps: f64) {
        let i = self.index(src, dst);
        self.demand[i] += gbps;
    }

    /// The raw flat row-major storage (length `nodes * nodes`).
    pub fn as_slice(&self) -> &[f64] {
        &self.demand
    }

    /// One source's outgoing demand row.
    pub fn row(&self, src: u32) -> &[f64] {
        let start = src as usize * self.nodes as usize;
        &self.demand[start..start + self.nodes as usize]
    }

    /// Total demand over all pairs in Gbps.
    pub fn total_gbps(&self) -> f64 {
        self.demand.iter().sum()
    }

    /// Expand the nonzero entries back into a flow list, in row-major
    /// order. Self-pairs on the diagonal are emitted like any other
    /// nonzero entry.
    pub fn to_flows(&self) -> Vec<Flow> {
        let mut flows = Vec::new();
        for src in 0..self.nodes {
            for dst in 0..self.nodes {
                let d = self.get(src, dst);
                if d > 0.0 {
                    flows.push(Flow::new(src, dst, d));
                }
            }
        }
        flows
    }

    /// Multiply every entry by `scale` in place.
    pub fn scale(&mut self, scale: f64) {
        for d in &mut self.demand {
            *d *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_accessors() {
        let mut m = DemandMatrix::zeros(3);
        assert_eq!(m.nodes(), 3);
        assert_eq!(m.as_slice(), &[0.0; 9]);
        m.set(1, 2, 40.0);
        m.add(1, 2, 10.0);
        assert_eq!(m.get(1, 2), 50.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 50.0]);
        assert_eq!(m.total_gbps(), 50.0);
        m.scale(2.0);
        assert_eq!(m.get(1, 2), 100.0);
    }

    #[test]
    fn from_flows_aggregates_and_sanitizes() {
        let flows = [
            Flow::new(0, 1, 100.0),
            Flow::new(0, 1, 50.0),
            Flow::new(1, 0, f64::NAN),
            Flow::new(1, 0, -5.0),
            Flow::new(9, 0, 10.0), // out of range: ignored
        ];
        let m = DemandMatrix::from_flows(2, &flows);
        assert_eq!(m.get(0, 1), 150.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.total_gbps(), 150.0);
    }

    #[test]
    fn to_flows_is_row_major_and_skips_zeros() {
        let mut m = DemandMatrix::zeros(3);
        m.set(2, 0, 5.0);
        m.set(0, 2, 7.0);
        m.set(1, 1, 3.0);
        assert_eq!(
            m.to_flows(),
            vec![
                Flow::new(0, 2, 7.0),
                Flow::new(1, 1, 3.0),
                Flow::new(2, 0, 5.0),
            ]
        );
    }
}
