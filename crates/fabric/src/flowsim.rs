//! Flow-level wavelength-allocation simulator.
//!
//! The paper's bandwidth argument (Section VI-A1) is made at the level of
//! flows between MCM pairs: how much of each pair's demand can be satisfied
//! by the direct wavelengths, and how much needs indirect routing through
//! intermediates with spare capacity. This simulator takes a demand matrix
//! (a set of [`Flow`]s in Gbps), allocates direct capacity first and then
//! two-hop indirect capacity, and reports satisfaction, hop statistics, and
//! the latency each flow sees (direct fabric latency plus one extra
//! traversal for indirect hops).

use crate::rackfabric::RackFabric;
use crate::routing::OccupancyBoard;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One flow of the demand matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Source MCM.
    pub src: u32,
    /// Destination MCM.
    pub dst: u32,
    /// Offered load in Gbps.
    pub demand_gbps: f64,
}

impl Flow {
    /// Convenience constructor.
    pub fn new(src: u32, dst: u32, demand_gbps: f64) -> Self {
        Flow {
            src,
            dst,
            demand_gbps,
        }
    }

    /// The flow with its demand sanitized per the simulator contract:
    /// non-finite or negative demands become zero (trivially satisfied).
    /// Both [`FlowSimulator`] and the timeline simulator apply exactly this
    /// rule, so they always agree on what a matrix offers.
    pub fn sanitized(self) -> Self {
        Flow {
            demand_gbps: if self.demand_gbps.is_finite() {
                self.demand_gbps.max(0.0)
            } else {
                0.0
            },
            ..self
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSimConfig {
    /// One-way fabric latency for a direct hop, in nanoseconds (the paper's
    /// 35 ns photonic budget).
    pub direct_latency_ns: f64,
    /// Additional latency per extra (indirect) hop, in nanoseconds: another
    /// OEO conversion plus intra-rack propagation ("a few extra ns").
    pub indirect_hop_latency_ns: f64,
    /// RNG seed for the Valiant intermediate choice.
    pub seed: u64,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            direct_latency_ns: 35.0,
            indirect_hop_latency_ns: 8.0,
            seed: 0xF10,
        }
    }
}

/// Per-flow allocation result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowAllocation {
    /// The flow.
    pub flow: Flow,
    /// Gbps satisfied over the direct wavelengths.
    pub direct_gbps: f64,
    /// Gbps satisfied over indirect two-hop paths.
    pub indirect_gbps: f64,
    /// Average latency seen by the flow's traffic in nanoseconds (weighted
    /// over direct and indirect shares); zero if nothing was allocated.
    pub latency_ns: f64,
}

impl FlowAllocation {
    /// Total satisfied bandwidth.
    pub fn satisfied_gbps(&self) -> f64 {
        self.direct_gbps + self.indirect_gbps
    }

    /// Fraction of the demand satisfied, always in `[0, 1]`.
    ///
    /// A flow with no positive finite demand (zero, negative, NaN, or
    /// infinite) asks for nothing and is trivially satisfied: this returns
    /// `1.0`, never NaN.
    pub fn satisfaction(&self) -> f64 {
        // NaN demands fail the comparison and take the trivial branch.
        if self.flow.demand_gbps.is_finite() && self.flow.demand_gbps > 0.0 {
            (self.satisfied_gbps() / self.flow.demand_gbps).min(1.0)
        } else {
            1.0
        }
    }
}

/// Aggregate report over all flows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSimReport {
    /// Per-flow allocations.
    pub allocations: Vec<FlowAllocation>,
    /// Total offered demand (Gbps).
    pub offered_gbps: f64,
    /// Total satisfied (Gbps).
    pub satisfied_gbps: f64,
    /// Satisfied bandwidth carried over direct fabric wavelengths (Gbps).
    /// Excludes MCM-local self-flows, which never touch the fabric, so
    /// `fabric_direct_gbps + fabric_indirect_gbps` can be less than
    /// `satisfied_gbps`. The energy layer charges transceiver energy on
    /// exactly these fabric-crossing bits.
    pub fabric_direct_gbps: f64,
    /// Satisfied bandwidth carried over two-hop indirect paths (Gbps). Each
    /// indirect bit traverses two fabric links, which the energy layer
    /// charges at twice the per-bit transceiver energy.
    pub fabric_indirect_gbps: f64,
    /// Fraction of flows fully satisfied by direct wavelengths alone.
    pub direct_only_fraction: f64,
    /// Fraction of flows that needed indirect routing.
    pub indirect_fraction: f64,
    /// Fraction of flows left with unmet demand.
    pub unsatisfied_fraction: f64,
    /// Demand-weighted average latency in nanoseconds.
    pub mean_latency_ns: f64,
}

impl FlowSimReport {
    /// Overall throughput satisfaction (satisfied / offered), always a
    /// defined value in `[0, 1]`.
    ///
    /// With nothing offered — an empty flow list, or only zero-demand
    /// flows — there is nothing to fail, so this returns `1.0` by
    /// definition (never NaN from the `0/0` it would otherwise compute).
    pub fn satisfaction(&self) -> f64 {
        // NaN offered demand fails the comparison and takes the trivial
        // branch.
        if self.offered_gbps > 0.0 {
            self.satisfied_gbps / self.offered_gbps
        } else {
            1.0
        }
    }
}

/// Reusable scratch state for [`FlowSimulator`] runs: the wavelength
/// occupancy board, sanitized-flow and candidate buffers, and the
/// allocation vector, all kept warm across runs so the steady path
/// allocates nothing.
///
/// An arena is plain scratch — it never changes results. Running through a
/// fresh arena, a reused arena, or [`FlowSimulator::run`] (which builds a
/// throwaway arena internally) produces bit-identical reports; the sweep
/// engine keeps one arena per worker thread and threads it through every
/// scenario that worker executes.
///
/// # Example
///
/// ```
/// use fabric::{Flow, FlowArena, FlowSimConfig, FlowSimulator, RackFabric};
///
/// let fabric = RackFabric::paper_awgr();
/// let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
/// let flows = [Flow::new(0, 1, 100.0), Flow::new(1, 2, 400.0)];
///
/// let mut arena = FlowArena::new();
/// let first = sim.run_in(&mut arena, &flows);
/// // Recycling the report returns its allocation buffer to the arena, so
/// // the next run on this arena allocates nothing at all.
/// arena.recycle(first.clone());
/// let second = sim.run_in(&mut arena, &flows);
/// assert_eq!(first, second);
/// assert_eq!(second, sim.run(&flows)); // identical to the arena-free path
/// ```
#[derive(Debug)]
pub struct FlowArena {
    board: OccupancyBoard,
    /// Pairs occupied on the board by the previous run; cleared entry by
    /// entry on reuse instead of wiping (or reallocating) the whole
    /// `N x N` board.
    touched: Vec<(u32, u32)>,
    sanitized: Vec<Flow>,
    direct_shares: Vec<f64>,
    candidates: Vec<u32>,
    /// The identity permutation `0..mcm_count`, kept warm across runs so
    /// the indirect pass can build each flow's candidate list with three
    /// slice copies (everything below, between, and above the endpoints)
    /// instead of a filtered element-by-element rebuild. The contents are
    /// identical to the filtered build, so the Valiant shuffle consumes the
    /// same RNG draws either way.
    ident: Vec<u32>,
    allocations: Vec<FlowAllocation>,
}

impl FlowArena {
    /// An empty arena; buffers grow on first use and stay allocated.
    pub fn new() -> Self {
        FlowArena {
            board: OccupancyBoard::new(0),
            touched: Vec::new(),
            sanitized: Vec::new(),
            direct_shares: Vec::new(),
            candidates: Vec::new(),
            ident: Vec::new(),
            allocations: Vec::new(),
        }
    }

    /// Reclaim the allocation buffer of a report produced by
    /// [`FlowSimulator::run_in`] on this arena, once the caller is done
    /// with it. Purely an allocation-reuse hook: skipping it never changes
    /// results, it just costs one `Vec` per run.
    pub fn recycle(&mut self, mut report: FlowSimReport) {
        report.allocations.clear();
        self.allocations = report.allocations;
    }

    /// Ready the board for a run on a rack of `mcm_count` MCMs: same-size
    /// boards are delta-cleared via the touched-pair list from the previous
    /// run when that list is sparse; a dense touch list (or a size change)
    /// wipes the whole board instead. The crossover matters: scattered
    /// single-cell clears cost a cache miss each, so past ~1/8 board
    /// coverage the sequential memset is cheaper than chasing the list —
    /// exactly the regime indirect-heavy patterns (hotspot) put the arena
    /// in.
    fn prepare(&mut self, mcm_count: u32) {
        let cells = mcm_count as usize * mcm_count as usize;
        if self.board.mcm_count() == mcm_count && self.touched.len() < cells / 8 {
            for &(src, dst) in &self.touched {
                self.board.clear_pair(src, dst);
            }
        } else {
            self.board.reset(mcm_count);
        }
        self.touched.clear();
        if self.ident.len() != mcm_count as usize {
            self.ident.clear();
            self.ident.extend(0..mcm_count);
        }
    }
}

impl Default for FlowArena {
    fn default() -> Self {
        FlowArena::new()
    }
}

/// The flow-level simulator.
#[derive(Debug)]
pub struct FlowSimulator<'a> {
    fabric: &'a RackFabric,
    config: FlowSimConfig,
}

impl<'a> FlowSimulator<'a> {
    /// Create a simulator over a fabric.
    pub fn new(fabric: &'a RackFabric, config: FlowSimConfig) -> Self {
        FlowSimulator { fabric, config }
    }

    /// Allocate wavelength capacity to the given flows and report.
    ///
    /// Direct capacity is allocated first for every flow; remaining demand is
    /// then served with two-hop indirect paths through intermediates that
    /// still have free wavelengths on both legs, chosen in a Valiant
    /// (uniformly random among productive candidates) fashion.
    ///
    /// # Contract
    ///
    /// Every field of the returned [`FlowSimReport`] is a defined (non-NaN)
    /// value for every input:
    ///
    /// * an empty flow list yields a report with zero offered/satisfied
    ///   bandwidth, zero fractions and latency, and
    ///   [`satisfaction()`](FlowSimReport::satisfaction) equal to `1.0`;
    /// * self-flows (`src == dst`) are served MCM-locally and never touch
    ///   fabric wavelengths;
    /// * non-finite or negative demands are sanitized to zero demand before
    ///   allocation, so they count as trivially satisfied.
    ///
    /// # Example
    ///
    /// ```
    /// use fabric::{Flow, FlowSimConfig, FlowSimulator, RackFabric};
    ///
    /// let fabric = RackFabric::paper_awgr();
    /// let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
    ///
    /// // A 100 Gbps flow fits in the >= 125 Gbps direct wavelengths.
    /// let report = sim.run(&[Flow::new(0, 1, 100.0)]);
    /// assert!((report.satisfaction() - 1.0).abs() < 1e-9);
    /// assert_eq!(report.indirect_fraction, 0.0);
    ///
    /// // The empty demand matrix is trivially satisfied, never NaN.
    /// let empty = sim.run(&[]);
    /// assert_eq!(empty.satisfaction(), 1.0);
    /// assert_eq!(empty.mean_latency_ns, 0.0);
    /// ```
    pub fn run(&self, flows: &[Flow]) -> FlowSimReport {
        // `run` keeps the original filtered candidate build: it is the
        // independent oracle the bench floors and equivalence tests pin the
        // arena fast path against (the same role `run_exhaustive` plays for
        // the incremental timeline).
        self.run_core(&mut FlowArena::new(), flows, false)
    }

    /// [`run`](FlowSimulator::run) through a caller-provided scratch
    /// [`FlowArena`], reusing its buffers instead of allocating fresh state
    /// per run. Results are bit-identical to `run` — the arena is pure
    /// scratch (see the [`FlowArena`] docs for the reuse pattern, including
    /// [`FlowArena::recycle`] for the returned report's allocation buffer).
    /// This is the hot path: the indirect pass builds candidate lists from
    /// the arena's identity buffer with three slice copies per flow instead
    /// of the filtered rebuild `run` uses, with identical contents and
    /// therefore identical shuffle draws.
    pub fn run_in(&self, arena: &mut FlowArena, flows: &[Flow]) -> FlowSimReport {
        self.run_core(arena, flows, true)
    }

    fn run_core(
        &self,
        arena: &mut FlowArena,
        flows: &[Flow],
        fast_candidates: bool,
    ) -> FlowSimReport {
        let gbps_per_wavelength = self.fabric.config().gbps_per_wavelength;
        let mcm_count = self.fabric.config().mcm_count;
        arena.prepare(mcm_count);
        // Sanitize the demand matrix per the contract above.
        arena.sanitized.clear();
        arena.sanitized.extend(flows.iter().map(|f| f.sanitized()));
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        arena.allocations.clear();
        arena.allocations.reserve(arena.sanitized.len());

        // Pass 1: direct allocation.
        arena.direct_shares.clear();
        arena.direct_shares.reserve(arena.sanitized.len());
        for flow in &arena.sanitized {
            if flow.src == flow.dst || flow.demand_gbps <= 0.0 {
                arena.direct_shares.push(flow.demand_gbps.max(0.0));
                continue;
            }
            let needed = (flow.demand_gbps / gbps_per_wavelength).ceil().max(0.0) as u32;
            let free = arena
                .board
                .free_wavelengths(self.fabric, flow.src, flow.dst);
            let granted = needed.min(free);
            // A zero grant leaves the board untouched: recording it would
            // only lengthen the delta-clear list.
            if granted > 0 {
                arena.board.occupy(flow.src, flow.dst, granted);
                arena.touched.push((flow.src, flow.dst));
            }
            let granted_gbps = (granted as f64 * gbps_per_wavelength).min(flow.demand_gbps);
            arena.direct_shares.push(granted_gbps);
        }

        // Pass 2: indirect allocation of the residual demand.
        for (flow, &direct_gbps) in arena.sanitized.iter().zip(arena.direct_shares.iter()) {
            let mut indirect_gbps = 0.0;
            let residual = flow.demand_gbps - direct_gbps;
            if residual > 1e-9 && flow.src != flow.dst {
                let mut remaining_wavelengths = (residual / gbps_per_wavelength).ceil() as u32;
                // Candidate intermediates in random (Valiant) order. The
                // shuffle consumes the same RNG draws whatever buffer backs
                // the candidate list, so arena reuse cannot perturb it.
                arena.candidates.clear();
                if fast_candidates {
                    // Ascending MCM ids minus the two endpoints, as three
                    // contiguous copies of the identity buffer — the exact
                    // sequence the filtered build below produces.
                    let lo = flow.src.min(flow.dst) as usize;
                    let hi = flow.src.max(flow.dst) as usize;
                    let ident = &arena.ident;
                    arena.candidates.extend_from_slice(&ident[..lo]);
                    arena.candidates.extend_from_slice(&ident[lo + 1..hi]);
                    arena.candidates.extend_from_slice(&ident[hi + 1..]);
                } else {
                    arena
                        .candidates
                        .extend((0..mcm_count).filter(|&m| m != flow.src && m != flow.dst));
                }
                arena.candidates.shuffle(&mut rng);
                for &m in &arena.candidates {
                    if remaining_wavelengths == 0 {
                        break;
                    }
                    let leg1 = arena.board.free_wavelengths(self.fabric, flow.src, m);
                    let leg2 = arena.board.free_wavelengths(self.fabric, m, flow.dst);
                    let usable = leg1.min(leg2).min(remaining_wavelengths);
                    if usable == 0 {
                        continue;
                    }
                    arena.board.occupy(flow.src, m, usable);
                    arena.board.occupy(m, flow.dst, usable);
                    arena.touched.push((flow.src, m));
                    arena.touched.push((m, flow.dst));
                    remaining_wavelengths -= usable;
                    indirect_gbps += usable as f64 * gbps_per_wavelength;
                }
                indirect_gbps = indirect_gbps.min(residual);
            }

            let satisfied = direct_gbps + indirect_gbps;
            let latency = if satisfied > 0.0 {
                (direct_gbps * self.config.direct_latency_ns
                    + indirect_gbps
                        * (self.config.direct_latency_ns + self.config.indirect_hop_latency_ns))
                    / satisfied
            } else {
                0.0
            };
            arena.allocations.push(FlowAllocation {
                flow: *flow,
                direct_gbps,
                indirect_gbps,
                latency_ns: latency,
            });
        }

        self.summarize(std::mem::take(&mut arena.allocations))
    }

    fn summarize(&self, allocations: Vec<FlowAllocation>) -> FlowSimReport {
        let offered: f64 = allocations.iter().map(|a| a.flow.demand_gbps).sum();
        let satisfied: f64 = allocations.iter().map(|a| a.satisfied_gbps()).sum();
        // Fabric-crossing traffic only: self-flows are served MCM-locally.
        let crossing = || allocations.iter().filter(|a| a.flow.src != a.flow.dst);
        let fabric_direct: f64 = crossing().map(|a| a.direct_gbps).sum();
        let fabric_indirect: f64 = crossing().map(|a| a.indirect_gbps).sum();
        let n = allocations.len().max(1) as f64;
        let direct_only = allocations
            .iter()
            .filter(|a| a.indirect_gbps <= 0.0 && a.satisfaction() >= 1.0 - 1e-9)
            .count() as f64
            / n;
        let indirect = allocations.iter().filter(|a| a.indirect_gbps > 0.0).count() as f64 / n;
        let unsatisfied = allocations
            .iter()
            .filter(|a| a.satisfaction() < 1.0 - 1e-9)
            .count() as f64
            / n;
        let weighted_latency: f64 = allocations
            .iter()
            .map(|a| a.latency_ns * a.satisfied_gbps())
            .sum();
        let mean_latency = if satisfied > 0.0 {
            weighted_latency / satisfied
        } else {
            0.0
        };
        FlowSimReport {
            allocations,
            offered_gbps: offered,
            satisfied_gbps: satisfied,
            fabric_direct_gbps: fabric_direct,
            fabric_indirect_gbps: fabric_indirect,
            direct_only_fraction: direct_only,
            indirect_fraction: indirect,
            unsatisfied_fraction: unsatisfied,
            mean_latency_ns: mean_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rackfabric::{FabricKind, RackFabric, RackFabricConfig};

    fn awgr_fabric(mcms: u32) -> RackFabric {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = mcms;
        RackFabric::new(cfg)
    }

    #[test]
    fn small_demands_are_served_directly() {
        let fabric = awgr_fabric(64);
        let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
        // Each pair's direct bandwidth is >= 125 Gbps; offer 100 Gbps flows.
        let flows: Vec<Flow> = (0..32).map(|i| Flow::new(i, i + 32, 100.0)).collect();
        let report = sim.run(&flows);
        assert!((report.satisfaction() - 1.0).abs() < 1e-9);
        assert_eq!(report.direct_only_fraction, 1.0);
        assert_eq!(report.indirect_fraction, 0.0);
        assert!((report.mean_latency_ns - 35.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_demand_uses_indirect_routing() {
        let fabric = awgr_fabric(64);
        let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
        // 1000 Gbps >> 125-150 Gbps direct: needs indirect wavelengths.
        let report = sim.run(&[Flow::new(0, 1, 1000.0)]);
        assert!((report.satisfaction() - 1.0).abs() < 1e-9);
        assert_eq!(report.indirect_fraction, 1.0);
        let a = &report.allocations[0];
        assert!(a.indirect_gbps > a.direct_gbps);
        // Indirect traffic pays the extra hop latency.
        assert!(report.mean_latency_ns > 35.0);
        assert!(report.mean_latency_ns < 35.0 + 8.0 + 1e-9);
    }

    #[test]
    fn full_escape_bandwidth_reachable_to_single_destination() {
        // Section VI-A1: "any one particular MCM can use its full escape
        // bandwidth to reach a single destination MCM" via indirect routing.
        // With a small rack the same holds proportionally: the limit is the
        // number of intermediates times per-pair direct bandwidth.
        let fabric = awgr_fabric(32);
        let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
        // 30 intermediates x ~125 Gbps + direct ~150 Gbps ≈ 3900 Gbps.
        let report = sim.run(&[Flow::new(0, 1, 3000.0)]);
        assert!(
            report.satisfaction() > 0.99,
            "satisfaction {} for a large single-destination flow",
            report.satisfaction()
        );
    }

    #[test]
    fn saturated_fabric_reports_unsatisfied_flows() {
        let fabric = awgr_fabric(8);
        let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
        // Every pair asks for far more than the fabric can carry.
        let mut flows = Vec::new();
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    flows.push(Flow::new(a, b, 10_000.0));
                }
            }
        }
        let report = sim.run(&flows);
        assert!(report.satisfaction() < 1.0);
        assert!(report.unsatisfied_fraction > 0.0);
        assert!(report.satisfied_gbps > 0.0);
    }

    #[test]
    fn wavelength_capacity_is_conserved() {
        // Total satisfied bandwidth can never exceed the fabric's aggregate
        // wavelength capacity (escape bandwidth x MCM count).
        let fabric = awgr_fabric(16);
        let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
        let mut flows = Vec::new();
        for a in 0..16 {
            for b in 0..16 {
                if a != b {
                    flows.push(Flow::new(a, b, 5_000.0));
                }
            }
        }
        let report = sim.run(&flows);
        // Aggregate direct capacity of the fabric: sum over ordered pairs of
        // direct wavelengths x 25 Gbps. Indirect routing cannot add capacity,
        // it only moves it, so satisfied <= aggregate.
        let mut aggregate = 0.0;
        for a in 0..16 {
            for b in 0..16 {
                if a != b {
                    aggregate += fabric.direct_bandwidth(a, b).gbps();
                }
            }
        }
        assert!(
            report.satisfied_gbps <= aggregate + 1e-6,
            "satisfied {} exceeds aggregate capacity {}",
            report.satisfied_gbps,
            aggregate
        );
    }

    #[test]
    fn zero_and_self_flows_are_trivially_satisfied() {
        let fabric = awgr_fabric(8);
        let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
        let report = sim.run(&[Flow::new(0, 0, 100.0), Flow::new(1, 2, 0.0)]);
        assert!((report.satisfaction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fabric_aggregates_exclude_local_traffic() {
        let fabric = awgr_fabric(16);
        let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
        // One self-flow (served locally), one direct-only flow, one flow
        // large enough to need indirect help.
        let report = sim.run(&[
            Flow::new(3, 3, 200.0),
            Flow::new(0, 1, 100.0),
            Flow::new(4, 5, 1000.0),
        ]);
        assert!((report.satisfaction() - 1.0).abs() < 1e-9);
        // Local traffic is satisfied but not carried by the fabric.
        assert!(
            (report.fabric_direct_gbps + report.fabric_indirect_gbps
                - (report.satisfied_gbps - 200.0))
                .abs()
                < 1e-9
        );
        assert!(report.fabric_indirect_gbps > 0.0);
        // Per-flow direct/indirect splits sum to the aggregates.
        let direct: f64 = report
            .allocations
            .iter()
            .filter(|a| a.flow.src != a.flow.dst)
            .map(|a| a.direct_gbps)
            .sum();
        assert!((report.fabric_direct_gbps - direct).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let fabric = awgr_fabric(32);
        let cfg = FlowSimConfig::default();
        let flows: Vec<Flow> = (0..16).map(|i| Flow::new(i, (i + 7) % 32, 400.0)).collect();
        let a = FlowSimulator::new(&fabric, cfg).run(&flows);
        let b = FlowSimulator::new(&fabric, cfg).run(&flows);
        assert_eq!(a, b);
    }

    #[test]
    fn arena_runs_are_identical_to_allocating_runs() {
        let fabric = awgr_fabric(32);
        let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
        // Mix of direct-only, indirect-heavy, self, zero, and duplicate-pair
        // flows so both passes and the touched-pair reset all get exercised.
        let flows: Vec<Flow> = (0..16)
            .map(|i| Flow::new(i, (i + 7) % 32, 400.0))
            .chain([
                Flow::new(3, 3, 120.0),
                Flow::new(0, 7, 0.0),
                Flow::new(0, 7, 900.0),
            ])
            .collect();
        let baseline = sim.run(&flows);
        let mut arena = FlowArena::new();
        assert_eq!(sim.run_in(&mut arena, &flows), baseline);
        // The dirty arena must give the same answer again, with and without
        // recycling the previous report.
        let second = sim.run_in(&mut arena, &flows);
        assert_eq!(second, baseline);
        arena.recycle(second);
        assert_eq!(sim.run_in(&mut arena, &flows), baseline);
        // And on a different matrix afterwards.
        let other = vec![Flow::new(5, 6, 2000.0)];
        assert_eq!(sim.run_in(&mut arena, &other), sim.run(&other));
    }

    #[test]
    fn one_arena_serves_different_rack_sizes() {
        let mut arena = FlowArena::new();
        for mcms in [16u32, 64, 8] {
            let fabric = awgr_fabric(mcms);
            let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
            let flows: Vec<Flow> = (0..mcms / 2)
                .map(|i| Flow::new(i, mcms - 1 - i, 500.0))
                .collect();
            assert_eq!(sim.run_in(&mut arena, &flows), sim.run(&flows));
        }
    }

    #[test]
    fn empty_flow_list_is_fully_defined() {
        let fabric = awgr_fabric(8);
        let report = FlowSimulator::new(&fabric, FlowSimConfig::default()).run(&[]);
        assert_eq!(report.offered_gbps, 0.0);
        assert_eq!(report.satisfied_gbps, 0.0);
        assert_eq!(report.satisfaction(), 1.0);
        assert_eq!(report.direct_only_fraction, 0.0);
        assert_eq!(report.indirect_fraction, 0.0);
        assert_eq!(report.unsatisfied_fraction, 0.0);
        assert_eq!(report.mean_latency_ns, 0.0);
    }

    #[test]
    fn degenerate_demands_are_sanitized_not_nan() {
        let fabric = awgr_fabric(8);
        let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
        let report = sim.run(&[
            Flow::new(0, 1, 0.0),
            Flow::new(1, 2, -50.0),
            Flow::new(2, 3, f64::NAN),
            Flow::new(3, 4, f64::INFINITY),
        ]);
        assert_eq!(report.offered_gbps, 0.0);
        assert_eq!(report.satisfaction(), 1.0);
        for a in &report.allocations {
            assert_eq!(a.satisfied_gbps(), 0.0);
            assert_eq!(a.satisfaction(), 1.0);
            assert!(!a.latency_ns.is_nan());
        }
        // The raw accessor is also NaN-safe on unsanitized flows.
        let raw = FlowAllocation {
            flow: Flow::new(0, 1, f64::NAN),
            direct_gbps: 0.0,
            indirect_gbps: 0.0,
            latency_ns: 0.0,
        };
        assert_eq!(raw.satisfaction(), 1.0);
    }
}
