//! Epoch-based temporal simulation with wavelength-reallocation policies.
//!
//! The paper's bandwidth-steering argument (Section VI-A) is temporal: HPC
//! traffic shifts over an application's lifetime, and the photonic fabric
//! can re-steer wavelengths to follow it. [`TimelineSimulator`] makes that
//! argument quantitative: it consumes one demand matrix per *epoch* (a
//! reconfiguration interval), maintains a persistent wavelength *steering
//! state* — the per-pair capacity granted by running the flow-level
//! allocator ([`FlowSimulator`]) on some reference matrix — and evaluates
//! each epoch's actual demand against it under a configurable
//! [`ReallocationPolicy`]:
//!
//! * [`Static`](ReallocationPolicy::Static) — wavelengths are assigned once
//!   for the first epoch's demand and never move (no reconfiguration
//!   machinery, but the assignment goes stale as traffic shifts);
//! * [`GreedyResteer`](ReallocationPolicy::GreedyResteer) — the assignment
//!   is recomputed whenever the offered matrix changes (an upper bound on
//!   steering agility, at one reconfiguration per change);
//! * [`Hysteresis`](ReallocationPolicy::Hysteresis) — the assignment is
//!   kept until its delivered satisfaction drops below a threshold, trading
//!   a bounded satisfaction loss for fewer reconfigurations.
//!
//! Per-epoch and aggregate satisfaction, latency, and reconfiguration
//! counts land in [`TimelineReport`]. Demand matrices typically come from
//! `workloads::timeline::DemandTimeline`; this module stays
//! workload-agnostic by taking plain `&[Vec<Flow>]`.

use std::collections::HashMap;

use crate::flowsim::{Flow, FlowArena, FlowSimConfig, FlowSimulator};
use crate::rackfabric::RackFabric;
use serde::{Deserialize, Serialize};

/// When (and whether) the fabric recomputes its wavelength assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReallocationPolicy {
    /// Assign wavelengths for the first epoch's demand, then never move
    /// them.
    Static,
    /// Re-run the wavelength allocator every time the offered matrix
    /// changes.
    GreedyResteer,
    /// Keep the current assignment until its delivered satisfaction drops
    /// below `min_satisfaction`, then re-steer for the current matrix.
    Hysteresis {
        /// Satisfaction threshold in `[0, 1]` below which the fabric
        /// re-steers.
        min_satisfaction: f64,
    },
}

impl ReallocationPolicy {
    /// Short stable label for report rows and CLI parsing.
    pub fn label(&self) -> String {
        match self {
            ReallocationPolicy::Static => "static".to_string(),
            ReallocationPolicy::GreedyResteer => "greedy".to_string(),
            ReallocationPolicy::Hysteresis { min_satisfaction } => {
                format!("hyst{min_satisfaction}")
            }
        }
    }
}

/// Configuration of one timeline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineConfig {
    /// Flow-level allocator parameters (latencies and the steering seed).
    pub flow: FlowSimConfig,
    /// Reallocation policy across epochs.
    pub policy: ReallocationPolicy,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            flow: FlowSimConfig::default(),
            policy: ReallocationPolicy::GreedyResteer,
        }
    }
}

/// One epoch's delivered service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochResult {
    /// Epoch index.
    pub epoch: usize,
    /// Number of flows offered.
    pub flows: usize,
    /// Total offered demand (Gbps), after the flow simulator's demand
    /// sanitization.
    pub offered_gbps: f64,
    /// Total satisfied demand (Gbps).
    pub satisfied_gbps: f64,
    /// Satisfied bandwidth served from the assignment's direct-wavelength
    /// grants (Gbps). Excludes MCM-local self-flows, which never cross the
    /// fabric.
    pub fabric_direct_gbps: f64,
    /// Satisfied bandwidth served from two-hop indirect grants (Gbps); each
    /// such bit traverses two fabric links, which energy accounting charges
    /// at twice the per-bit transceiver energy.
    pub fabric_indirect_gbps: f64,
    /// Satisfied-weighted mean latency (ns); zero if nothing was satisfied.
    pub mean_latency_ns: f64,
    /// Fraction of flows fully served without indirect capacity.
    pub direct_only_fraction: f64,
    /// Fraction of flows served partly over indirect two-hop grants.
    pub indirect_fraction: f64,
    /// Fraction of flows with unmet demand.
    pub unsatisfied_fraction: f64,
    /// Whether the wavelength assignment was recomputed *for* this epoch
    /// (always `false` for epoch 0, whose initial assignment is not counted
    /// as a reconfiguration).
    pub reconfigured: bool,
}

impl EpochResult {
    /// Satisfied over offered, `1.0` when nothing was offered.
    pub fn satisfaction(&self) -> f64 {
        if self.offered_gbps > 0.0 {
            self.satisfied_gbps / self.offered_gbps
        } else {
            1.0
        }
    }
}

/// Aggregate service over a whole timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineReport {
    /// Per-epoch results, in temporal order.
    pub epochs: Vec<EpochResult>,
    /// Total offered demand across all epochs (Gbps).
    pub offered_gbps: f64,
    /// Total satisfied demand across all epochs (Gbps).
    pub satisfied_gbps: f64,
    /// Total satisfied demand carried over direct grants across all epochs
    /// (Gbps, fabric-crossing traffic only).
    pub fabric_direct_gbps: f64,
    /// Total satisfied demand carried over indirect two-hop grants across
    /// all epochs (Gbps, fabric-crossing traffic only).
    pub fabric_indirect_gbps: f64,
    /// Satisfied-weighted mean latency across all epochs (ns).
    pub mean_latency_ns: f64,
    /// Number of wavelength reconfigurations after the initial assignment.
    pub reconfigurations: usize,
    /// Flow-weighted direct-only fraction across all epochs.
    pub direct_only_fraction: f64,
    /// Flow-weighted indirect fraction across all epochs.
    pub indirect_fraction: f64,
    /// Flow-weighted unsatisfied fraction across all epochs.
    pub unsatisfied_fraction: f64,
}

impl TimelineReport {
    /// Aggregate satisfaction: total satisfied over total offered, which
    /// equals the offered-demand-weighted mean of the per-epoch
    /// satisfactions. `1.0` when nothing was offered.
    pub fn satisfaction(&self) -> f64 {
        if self.offered_gbps > 0.0 {
            self.satisfied_gbps / self.offered_gbps
        } else {
            1.0
        }
    }
}

/// Per-pair capacity granted by one wavelength assignment.
#[derive(Debug, Clone, Copy, Default)]
struct PairGrant {
    direct_gbps: f64,
    indirect_gbps: f64,
    /// Satisfied-weighted mean latency of the pair's granted capacity.
    latency_ns: f64,
}

impl PairGrant {
    fn total_gbps(&self) -> f64 {
        self.direct_gbps + self.indirect_gbps
    }
}

/// A persistent wavelength assignment: what each MCM pair was granted the
/// last time the allocator ran.
struct Steering {
    grants: HashMap<(u32, u32), PairGrant>,
}

impl Steering {
    fn from_allocation(fabric: &RackFabric, config: FlowSimConfig, flows: &[Flow]) -> Self {
        let report = FlowSimulator::new(fabric, config).run(flows);
        let mut grants: HashMap<(u32, u32), PairGrant> = HashMap::new();
        let mut weighted: HashMap<(u32, u32), f64> = HashMap::new();
        for a in &report.allocations {
            if a.flow.src == a.flow.dst {
                continue;
            }
            let key = (a.flow.src, a.flow.dst);
            let g = grants.entry(key).or_default();
            g.direct_gbps += a.direct_gbps;
            g.indirect_gbps += a.indirect_gbps;
            *weighted.entry(key).or_default() += a.latency_ns * a.satisfied_gbps();
        }
        for (key, g) in grants.iter_mut() {
            let total = g.total_gbps();
            g.latency_ns = if total > 0.0 {
                weighted[key] / total
            } else {
                0.0
            };
        }
        Steering { grants }
    }
}

/// Reusable scratch and persistent steering state for
/// [`TimelineSimulator`] runs.
///
/// The incremental epoch solver ([`TimelineSimulator::run_in`]) keeps the
/// wavelength assignment and per-epoch pair demand in flat generation-
/// stamped `nodes x nodes` matrices inside this arena. Superseding the
/// previous epoch's assignment is a single generation bump (an O(1) bulk
/// "undo"), and each epoch costs O(flows + touched pairs) — never O(n²) —
/// with zero allocation on the steady path. The arena also embeds a
/// [`FlowArena`] so the per-steer flow solves reuse their scratch too.
///
/// Like [`FlowArena`], the arena never changes results: running through a
/// fresh arena, a reused arena, [`TimelineSimulator::run`], or the
/// exhaustive reference solver
/// ([`TimelineSimulator::run_exhaustive`]) produces identical reports.
///
/// # Example
///
/// ```
/// use fabric::{
///     Flow, RackFabric, TimelineArena, TimelineConfig, TimelineSimulator,
/// };
///
/// let mut cfg = fabric::RackFabricConfig::paper_rack(fabric::FabricKind::ParallelAwgrs);
/// cfg.mcm_count = 8;
/// let fabric = RackFabric::new(cfg);
/// let sim = TimelineSimulator::new(&fabric, TimelineConfig::default());
/// let epochs = vec![
///     vec![Flow::new(0, 1, 400.0)],
///     vec![Flow::new(2, 3, 400.0)],
/// ];
///
/// let mut arena = TimelineArena::new();
/// let first = sim.run_in(&mut arena, &epochs);
/// // Recycling returns the report's epoch buffer to the arena; the next
/// // run on this arena then allocates nothing at all.
/// arena.recycle(first.clone());
/// let second = sim.run_in(&mut arena, &epochs);
/// assert_eq!(first, second);
/// assert_eq!(second, sim.run(&epochs)); // identical to the arena-free path
/// ```
#[derive(Debug)]
pub struct TimelineArena {
    /// Scratch for the per-steer flow solves.
    flow_arena: FlowArena,
    /// Sanitized current-epoch matrix.
    sanitized: Vec<Flow>,
    /// Previous epoch's sanitized matrix (greedy change detection).
    prev: Vec<Flow>,
    /// Rack size the flat matrices below are sized for.
    nodes: u32,
    /// Persistent assignment, flat row-major per ordered pair: direct and
    /// indirect granted Gbps plus satisfied-weighted latency. Entries are
    /// live only when their stamp matches `grant_gen`.
    grant_direct: Vec<f64>,
    grant_indirect: Vec<f64>,
    grant_latency: Vec<f64>,
    grant_stamp: Vec<u64>,
    grant_gen: u64,
    /// Flat indices the current assignment populated (for finalization).
    grant_touched: Vec<usize>,
    /// Current epoch's aggregated pair demand, same stamping scheme.
    demand: Vec<f64>,
    demand_stamp: Vec<u64>,
    demand_gen: u64,
    /// Per-epoch results of the run in progress.
    results: Vec<EpochResult>,
}

impl TimelineArena {
    /// An empty arena; matrices are sized on first use and stay allocated.
    pub fn new() -> Self {
        TimelineArena {
            flow_arena: FlowArena::new(),
            sanitized: Vec::new(),
            prev: Vec::new(),
            nodes: 0,
            grant_direct: Vec::new(),
            grant_indirect: Vec::new(),
            grant_latency: Vec::new(),
            grant_stamp: Vec::new(),
            grant_gen: 0,
            grant_touched: Vec::new(),
            demand: Vec::new(),
            demand_stamp: Vec::new(),
            demand_gen: 0,
            results: Vec::new(),
        }
    }

    /// Reclaim the epoch buffer of a report produced by
    /// [`TimelineSimulator::run_in`] on this arena, once the caller is done
    /// with it. Purely an allocation-reuse hook: skipping it never changes
    /// results.
    pub fn recycle(&mut self, mut report: TimelineReport) {
        report.epochs.clear();
        self.results = report.epochs;
    }

    /// Size (or delta-reset) the flat matrices for a rack of `nodes` MCMs.
    fn prepare(&mut self, nodes: u32) {
        if self.nodes != nodes {
            let cells = (nodes as usize) * (nodes as usize);
            self.nodes = nodes;
            self.grant_direct.clear();
            self.grant_direct.resize(cells, 0.0);
            self.grant_indirect.clear();
            self.grant_indirect.resize(cells, 0.0);
            self.grant_latency.clear();
            self.grant_latency.resize(cells, 0.0);
            self.grant_stamp.clear();
            self.grant_stamp.resize(cells, 0);
            self.demand.clear();
            self.demand.resize(cells, 0.0);
            self.demand_stamp.clear();
            self.demand_stamp.resize(cells, 0);
            self.grant_gen = 0;
            self.demand_gen = 0;
        }
        // A new run must not inherit the previous run's assignment: bumping
        // the generation retires every live entry in O(1).
        self.grant_gen += 1;
        self.grant_touched.clear();
        self.results.clear();
        self.sanitized.clear();
        self.prev.clear();
    }

    /// The flat row-major index of an ordered pair.
    #[inline]
    fn index(&self, src: u32, dst: u32) -> usize {
        src as usize * self.nodes as usize + dst as usize
    }

    /// The live grant for a pair, or all-zero when the current assignment
    /// granted it nothing (the `HashMap::get(..).unwrap_or_default()` of the
    /// exhaustive solver).
    #[inline]
    fn grant(&self, src: u32, dst: u32) -> PairGrant {
        let i = self.index(src, dst);
        if self.grant_stamp[i] == self.grant_gen {
            PairGrant {
                direct_gbps: self.grant_direct[i],
                indirect_gbps: self.grant_indirect[i],
                latency_ns: self.grant_latency[i],
            }
        } else {
            PairGrant::default()
        }
    }
}

impl Default for TimelineArena {
    fn default() -> Self {
        TimelineArena::new()
    }
}

/// The epoch-based temporal simulator.
///
/// # Example
///
/// ```
/// use fabric::{
///     Flow, RackFabric, ReallocationPolicy, TimelineConfig, TimelineSimulator,
/// };
///
/// let mut cfg = fabric::RackFabricConfig::paper_rack(fabric::FabricKind::ParallelAwgrs);
/// cfg.mcm_count = 16;
/// let fabric = RackFabric::new(cfg);
///
/// // A hot spot that moves from MCM 1 to MCM 9 between epochs: every
/// // source pushes 400 Gbps at one destination, far above the ~125 Gbps
/// // direct wavelengths, so indirect grants matter and stale steering
/// // hurts.
/// let epochs: Vec<Vec<Flow>> = [1u32, 9].iter().map(|&hot| {
///     (0..16).filter(|&s| s != hot).map(|s| Flow::new(s, hot, 400.0)).collect()
/// }).collect();
///
/// let run = |policy| {
///     TimelineSimulator::new(
///         &fabric,
///         TimelineConfig { policy, ..TimelineConfig::default() },
///     )
///     .run(&epochs)
/// };
/// let greedy = run(ReallocationPolicy::GreedyResteer);
/// let fixed = run(ReallocationPolicy::Static);
///
/// // Re-steering follows the hot spot; the static assignment goes stale.
/// assert!(greedy.satisfaction() >= fixed.satisfaction());
/// assert_eq!(greedy.reconfigurations, 1);
/// assert_eq!(fixed.reconfigurations, 0);
/// ```
#[derive(Debug)]
pub struct TimelineSimulator<'a> {
    fabric: &'a RackFabric,
    config: TimelineConfig,
}

impl<'a> TimelineSimulator<'a> {
    /// Create a simulator over a fabric.
    pub fn new(fabric: &'a RackFabric, config: TimelineConfig) -> Self {
        TimelineSimulator { fabric, config }
    }

    /// Run the timeline: one demand matrix per epoch, in temporal order.
    ///
    /// Epoch 0 always computes an initial wavelength assignment from its own
    /// matrix (not counted as a reconfiguration); later epochs follow the
    /// configured [`ReallocationPolicy`]. Under
    /// [`GreedyResteer`](ReallocationPolicy::GreedyResteer), an epoch whose
    /// delivered service is evaluated against an assignment computed from
    /// its own matrix reproduces [`FlowSimulator::run`]'s aggregate
    /// satisfaction exactly.
    ///
    /// Every aggregate of the returned [`TimelineReport`] is a defined
    /// (non-NaN) value, including for an empty epoch list.
    ///
    /// This delegates to the incremental solver
    /// ([`run_in`](TimelineSimulator::run_in)) through a throwaway arena;
    /// [`run_exhaustive`](TimelineSimulator::run_exhaustive) is the
    /// from-scratch reference implementation both are tested against.
    pub fn run(&self, epochs: &[Vec<Flow>]) -> TimelineReport {
        self.run_in(&mut TimelineArena::new(), epochs)
    }

    /// [`run`](TimelineSimulator::run) through a caller-provided
    /// [`TimelineArena`]: the incremental epoch solver.
    ///
    /// Instead of rebuilding per-pair steering and demand maps from scratch
    /// each epoch, the solver delta-updates the arena's persistent flat
    /// matrices: a re-steer retires the previous epoch's assignment with a
    /// single generation bump and writes only the pairs the new allocation
    /// touches, and an epoch whose matrix is unchanged under
    /// [`GreedyResteer`](ReallocationPolicy::GreedyResteer) skips the solve
    /// entirely. Per-epoch cost is O(flows + touched pairs) — never O(n²) —
    /// with zero allocation on the steady path.
    ///
    /// Results are identical to [`run`](TimelineSimulator::run) and to
    /// [`run_exhaustive`](TimelineSimulator::run_exhaustive): the arena is
    /// scratch plus carried state, never a source of divergence.
    pub fn run_in(&self, arena: &mut TimelineArena, epochs: &[Vec<Flow>]) -> TimelineReport {
        arena.prepare(self.fabric.config().mcm_count);
        let mut have_steering = false;
        let mut have_prev = false;
        arena.results.reserve(epochs.len());

        for (epoch, raw) in epochs.iter().enumerate() {
            arena.sanitized.clear();
            arena.sanitized.extend(raw.iter().map(|f| f.sanitized()));

            // Aggregate this epoch's pair demand into the stamped flat
            // matrix (the exhaustive solver's `pair_demand` HashMap, folded
            // in the same flow order so the f64 sums are identical).
            arena.demand_gen += 1;
            for k in 0..arena.sanitized.len() {
                let f = arena.sanitized[k];
                if f.src != f.dst && f.demand_gbps > 0.0 {
                    let i = arena.index(f.src, f.dst);
                    if arena.demand_stamp[i] != arena.demand_gen {
                        arena.demand_stamp[i] = arena.demand_gen;
                        arena.demand[i] = f.demand_gbps;
                    } else {
                        arena.demand[i] += f.demand_gbps;
                    }
                }
            }

            let mut reconfigured = false;
            // The hysteresis probe is the epoch's final result whenever it
            // clears the threshold; keep it instead of evaluating twice.
            let mut probed: Option<EpochResult> = None;
            if !have_steering {
                // Initial assignment: every policy steers for epoch 0.
                self.steer_in(arena, epoch);
                have_steering = true;
            } else {
                match self.config.policy {
                    ReallocationPolicy::Static => {}
                    ReallocationPolicy::GreedyResteer => {
                        if !(have_prev && arena.prev == arena.sanitized) {
                            self.steer_in(arena, epoch);
                            reconfigured = true;
                        }
                    }
                    ReallocationPolicy::Hysteresis { min_satisfaction } => {
                        let current = self.evaluate_in(epoch, arena, false);
                        if current.satisfaction() < min_satisfaction - 1e-12 {
                            self.steer_in(arena, epoch);
                            reconfigured = true;
                        } else {
                            probed = Some(current);
                        }
                    }
                }
            }
            let result = probed.unwrap_or_else(|| self.evaluate_in(epoch, arena, reconfigured));
            arena.results.push(result);
            std::mem::swap(&mut arena.prev, &mut arena.sanitized);
            have_prev = true;
        }

        summarize(std::mem::take(&mut arena.results))
    }

    /// The from-scratch reference solver: per-pair steering and demand as
    /// freshly built hash maps, one full rebuild per epoch.
    ///
    /// This is the original (pre-arena) implementation, kept as the oracle
    /// the incremental solver is verified against — the repository's
    /// timeline tests assert `run` / `run_in` reports are *equal* (`==`,
    /// not approximately) to `run_exhaustive`'s on every policy. Prefer
    /// [`run`](TimelineSimulator::run) everywhere else; this path allocates
    /// O(pairs) per epoch.
    ///
    /// ```
    /// use fabric::flowsim::Flow;
    /// use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
    /// use fabric::timeline::{TimelineConfig, TimelineSimulator};
    ///
    /// let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
    /// cfg.mcm_count = 8;
    /// let fabric = RackFabric::new(cfg);
    /// let sim = TimelineSimulator::new(&fabric, TimelineConfig::default());
    /// let epochs = vec![
    ///     vec![Flow::new(0, 1, 200.0)],
    ///     vec![Flow::new(0, 2, 200.0)],
    /// ];
    /// // The incremental solver is bit-exact with the oracle.
    /// assert_eq!(sim.run(&epochs), sim.run_exhaustive(&epochs));
    /// ```
    pub fn run_exhaustive(&self, epochs: &[Vec<Flow>]) -> TimelineReport {
        let mut steering: Option<Steering> = None;
        let mut prev_matrix: Option<Vec<Flow>> = None;
        let mut results = Vec::with_capacity(epochs.len());

        for (epoch, raw) in epochs.iter().enumerate() {
            let flows = sanitize(raw);
            let mut reconfigured = false;
            // The hysteresis probe is the epoch's final result whenever it
            // clears the threshold; keep it instead of evaluating twice.
            let mut probed: Option<EpochResult> = None;
            if steering.is_none() {
                // Initial assignment: every policy steers for epoch 0.
                steering = Some(self.steer(epoch, &flows));
            } else {
                match self.config.policy {
                    ReallocationPolicy::Static => {}
                    ReallocationPolicy::GreedyResteer => {
                        if prev_matrix.as_deref() != Some(flows.as_slice()) {
                            steering = Some(self.steer(epoch, &flows));
                            reconfigured = true;
                        }
                    }
                    ReallocationPolicy::Hysteresis { min_satisfaction } => {
                        let current =
                            self.evaluate(epoch, &flows, steering.as_ref().unwrap(), false);
                        if current.satisfaction() < min_satisfaction - 1e-12 {
                            steering = Some(self.steer(epoch, &flows));
                            reconfigured = true;
                        } else {
                            probed = Some(current);
                        }
                    }
                }
            }
            results.push(probed.unwrap_or_else(|| {
                self.evaluate(epoch, &flows, steering.as_ref().unwrap(), reconfigured)
            }));
            prev_matrix = Some(flows);
        }

        summarize(results)
    }

    /// Recompute the assignment into the arena's flat grant matrices.
    /// Mirrors [`Steering::from_allocation`] exactly: same per-epoch seed,
    /// same allocation-order accumulation per pair, same per-pair latency
    /// finalization — only the storage differs (generation-stamped flat
    /// matrices instead of a fresh `HashMap`).
    fn steer_in(&self, arena: &mut TimelineArena, epoch: usize) {
        let config = FlowSimConfig {
            seed: self
                .config
                .flow
                .seed
                .wrapping_add((epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..self.config.flow
        };
        // Retire the previous assignment wholesale: one generation bump.
        arena.grant_gen += 1;
        arena.grant_touched.clear();
        let report =
            FlowSimulator::new(self.fabric, config).run_in(&mut arena.flow_arena, &arena.sanitized);
        for a in &report.allocations {
            if a.flow.src == a.flow.dst {
                continue;
            }
            let i = arena.index(a.flow.src, a.flow.dst);
            // `grant_latency` holds the satisfied-weighted latency *sum*
            // during the fold; finalized to a mean below.
            if arena.grant_stamp[i] != arena.grant_gen {
                arena.grant_stamp[i] = arena.grant_gen;
                arena.grant_direct[i] = a.direct_gbps;
                arena.grant_indirect[i] = a.indirect_gbps;
                arena.grant_latency[i] = a.latency_ns * a.satisfied_gbps();
                arena.grant_touched.push(i);
            } else {
                arena.grant_direct[i] += a.direct_gbps;
                arena.grant_indirect[i] += a.indirect_gbps;
                arena.grant_latency[i] += a.latency_ns * a.satisfied_gbps();
            }
        }
        for k in 0..arena.grant_touched.len() {
            let i = arena.grant_touched[k];
            let total = arena.grant_direct[i] + arena.grant_indirect[i];
            arena.grant_latency[i] = if total > 0.0 {
                arena.grant_latency[i] / total
            } else {
                0.0
            };
        }
        arena.flow_arena.recycle(report);
    }

    /// [`evaluate`](TimelineSimulator::evaluate) against the arena's flat
    /// matrices instead of hash maps; flow iteration order (and hence every
    /// f64 accumulation) is identical.
    fn evaluate_in(&self, epoch: usize, arena: &TimelineArena, reconfigured: bool) -> EpochResult {
        let flows = &arena.sanitized;
        let mut offered = 0.0;
        let mut satisfied = 0.0;
        let mut fabric_direct = 0.0;
        let mut fabric_indirect = 0.0;
        let mut weighted_latency = 0.0;
        let mut direct_only = 0usize;
        let mut indirect = 0usize;
        let mut unsatisfied = 0usize;

        for f in flows {
            offered += f.demand_gbps;
            if f.src == f.dst || f.demand_gbps <= 0.0 {
                // Served locally (or asking for nothing): fully satisfied,
                // matching FlowSimulator's contract.
                satisfied += f.demand_gbps;
                weighted_latency += f.demand_gbps * self.config.flow.direct_latency_ns;
                direct_only += 1;
                continue;
            }
            let demand_p = arena.demand[arena.index(f.src, f.dst)];
            let grant = arena.grant(f.src, f.dst);
            let served_p = demand_p.min(grant.total_gbps());
            // This flow's proportional share of the pair's service. Direct
            // grants serve first; only the remainder rides indirect hops.
            let share = f.demand_gbps / demand_p;
            let served = served_p * share;
            let direct_served = served_p.min(grant.direct_gbps) * share;
            satisfied += served;
            fabric_direct += direct_served;
            fabric_indirect += served - direct_served;
            weighted_latency += served * grant.latency_ns;
            let fully = demand_p <= grant.total_gbps() + 1e-9;
            let used_indirect = served_p > grant.direct_gbps + 1e-9;
            if !fully {
                unsatisfied += 1;
            }
            if used_indirect {
                indirect += 1;
            } else if fully {
                direct_only += 1;
            }
        }

        let n = flows.len().max(1) as f64;
        EpochResult {
            epoch,
            flows: flows.len(),
            offered_gbps: offered,
            satisfied_gbps: satisfied,
            fabric_direct_gbps: fabric_direct,
            fabric_indirect_gbps: fabric_indirect,
            mean_latency_ns: if satisfied > 0.0 {
                weighted_latency / satisfied
            } else {
                0.0
            },
            direct_only_fraction: direct_only as f64 / n,
            indirect_fraction: indirect as f64 / n,
            unsatisfied_fraction: unsatisfied as f64 / n,
            reconfigured,
        }
    }

    /// Recompute the wavelength assignment for a demand matrix. The steering
    /// seed is decorrelated per epoch but a pure function of the configured
    /// seed, so whole timelines stay deterministic.
    fn steer(&self, epoch: usize, flows: &[Flow]) -> Steering {
        let config = FlowSimConfig {
            seed: self
                .config
                .flow
                .seed
                .wrapping_add((epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..self.config.flow
        };
        Steering::from_allocation(self.fabric, config, flows)
    }

    /// Evaluate one epoch's (sanitized) demand against a wavelength
    /// assignment. Per pair, demand up to the pair's granted capacity is
    /// served at the grant's latency; self-flows are MCM-local and always
    /// served at the direct latency.
    fn evaluate(
        &self,
        epoch: usize,
        flows: &[Flow],
        steering: &Steering,
        reconfigured: bool,
    ) -> EpochResult {
        // Aggregate epoch demand per pair: grants are per pair, so flows
        // sharing a pair share its capacity (proportionally to demand).
        let mut pair_demand: HashMap<(u32, u32), f64> = HashMap::new();
        for f in flows {
            if f.src != f.dst && f.demand_gbps > 0.0 {
                *pair_demand.entry((f.src, f.dst)).or_default() += f.demand_gbps;
            }
        }

        let mut offered = 0.0;
        let mut satisfied = 0.0;
        let mut fabric_direct = 0.0;
        let mut fabric_indirect = 0.0;
        let mut weighted_latency = 0.0;
        let mut direct_only = 0usize;
        let mut indirect = 0usize;
        let mut unsatisfied = 0usize;

        for f in flows {
            offered += f.demand_gbps;
            if f.src == f.dst || f.demand_gbps <= 0.0 {
                // Served locally (or asking for nothing): fully satisfied,
                // matching FlowSimulator's contract.
                satisfied += f.demand_gbps;
                weighted_latency += f.demand_gbps * self.config.flow.direct_latency_ns;
                direct_only += 1;
                continue;
            }
            let demand_p = pair_demand[&(f.src, f.dst)];
            let grant = steering
                .grants
                .get(&(f.src, f.dst))
                .copied()
                .unwrap_or_default();
            let served_p = demand_p.min(grant.total_gbps());
            // This flow's proportional share of the pair's service. Direct
            // grants serve first; only the remainder rides indirect hops.
            let share = f.demand_gbps / demand_p;
            let served = served_p * share;
            let direct_served = served_p.min(grant.direct_gbps) * share;
            satisfied += served;
            fabric_direct += direct_served;
            fabric_indirect += served - direct_served;
            weighted_latency += served * grant.latency_ns;
            let fully = demand_p <= grant.total_gbps() + 1e-9;
            let used_indirect = served_p > grant.direct_gbps + 1e-9;
            if !fully {
                unsatisfied += 1;
            }
            if used_indirect {
                indirect += 1;
            } else if fully {
                direct_only += 1;
            }
        }

        let n = flows.len().max(1) as f64;
        EpochResult {
            epoch,
            flows: flows.len(),
            offered_gbps: offered,
            satisfied_gbps: satisfied,
            fabric_direct_gbps: fabric_direct,
            fabric_indirect_gbps: fabric_indirect,
            mean_latency_ns: if satisfied > 0.0 {
                weighted_latency / satisfied
            } else {
                0.0
            },
            direct_only_fraction: direct_only as f64 / n,
            indirect_fraction: indirect as f64 / n,
            unsatisfied_fraction: unsatisfied as f64 / n,
            reconfigured,
        }
    }
}

/// Apply [`FlowSimulator`]'s demand sanitization so evaluation, steering,
/// and change detection all see the matrix the allocator would.
fn sanitize(flows: &[Flow]) -> Vec<Flow> {
    flows.iter().map(|f| f.sanitized()).collect()
}

fn summarize(epochs: Vec<EpochResult>) -> TimelineReport {
    let offered: f64 = epochs.iter().map(|e| e.offered_gbps).sum();
    let satisfied: f64 = epochs.iter().map(|e| e.satisfied_gbps).sum();
    let weighted_latency: f64 = epochs
        .iter()
        .map(|e| e.mean_latency_ns * e.satisfied_gbps)
        .sum();
    let total_flows: usize = epochs.iter().map(|e| e.flows).sum();
    let flow_weighted = |pick: &dyn Fn(&EpochResult) -> f64| -> f64 {
        if total_flows == 0 {
            return 0.0;
        }
        epochs.iter().map(|e| pick(e) * e.flows as f64).sum::<f64>() / total_flows as f64
    };
    TimelineReport {
        offered_gbps: offered,
        satisfied_gbps: satisfied,
        fabric_direct_gbps: epochs.iter().map(|e| e.fabric_direct_gbps).sum(),
        fabric_indirect_gbps: epochs.iter().map(|e| e.fabric_indirect_gbps).sum(),
        mean_latency_ns: if satisfied > 0.0 {
            weighted_latency / satisfied
        } else {
            0.0
        },
        reconfigurations: epochs.iter().filter(|e| e.reconfigured).count(),
        direct_only_fraction: flow_weighted(&|e| e.direct_only_fraction),
        indirect_fraction: flow_weighted(&|e| e.indirect_fraction),
        unsatisfied_fraction: flow_weighted(&|e| e.unsatisfied_fraction),
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rackfabric::{FabricKind, RackFabricConfig};

    fn awgr_fabric(mcms: u32) -> RackFabric {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = mcms;
        RackFabric::new(cfg)
    }

    fn hotspot_epochs(mcms: u32, hots: &[u32], demand: f64) -> Vec<Vec<Flow>> {
        hots.iter()
            .map(|&hot| {
                (0..mcms)
                    .filter(|&s| s != hot)
                    .map(|s| Flow::new(s, hot, demand))
                    .collect()
            })
            .collect()
    }

    fn run(
        fabric: &RackFabric,
        policy: ReallocationPolicy,
        epochs: &[Vec<Flow>],
    ) -> TimelineReport {
        TimelineSimulator::new(
            fabric,
            TimelineConfig {
                policy,
                ..TimelineConfig::default()
            },
        )
        .run(epochs)
    }

    #[test]
    fn greedy_epoch_matches_flow_simulator() {
        let fabric = awgr_fabric(16);
        let epochs = hotspot_epochs(16, &[1, 9, 4], 400.0);
        let report = run(&fabric, ReallocationPolicy::GreedyResteer, &epochs);
        for (e, matrix) in report.epochs.iter().zip(&epochs) {
            let direct = FlowSimulator::new(
                &fabric,
                FlowSimConfig {
                    seed: FlowSimConfig::default()
                        .seed
                        .wrapping_add((e.epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ..FlowSimConfig::default()
                },
            )
            .run(matrix);
            assert!(
                (e.satisfaction() - direct.satisfaction()).abs() < 1e-9,
                "epoch {} satisfaction {} vs flowsim {}",
                e.epoch,
                e.satisfaction(),
                direct.satisfaction()
            );
            assert!((e.mean_latency_ns - direct.mean_latency_ns).abs() < 1e-9);
        }
    }

    #[test]
    fn greedy_beats_static_on_a_shifting_hotspot() {
        let fabric = awgr_fabric(16);
        let epochs = hotspot_epochs(16, &[1, 9, 4, 12], 400.0);
        let greedy = run(&fabric, ReallocationPolicy::GreedyResteer, &epochs);
        let fixed = run(&fabric, ReallocationPolicy::Static, &epochs);
        assert!(
            greedy.satisfaction() > fixed.satisfaction(),
            "greedy {} vs static {}",
            greedy.satisfaction(),
            fixed.satisfaction()
        );
        assert_eq!(greedy.reconfigurations, 3);
        assert_eq!(fixed.reconfigurations, 0);
    }

    #[test]
    fn static_matches_greedy_while_traffic_is_stable() {
        let fabric = awgr_fabric(16);
        let matrix: Vec<Flow> = (0..16).map(|s| Flow::new(s, (s + 5) % 16, 300.0)).collect();
        let epochs = vec![matrix.clone(), matrix.clone(), matrix];
        let greedy = run(&fabric, ReallocationPolicy::GreedyResteer, &epochs);
        let fixed = run(&fabric, ReallocationPolicy::Static, &epochs);
        assert!((greedy.satisfaction() - fixed.satisfaction()).abs() < 1e-9);
        // An unchanged matrix never triggers a greedy re-steer.
        assert_eq!(greedy.reconfigurations, 0);
    }

    #[test]
    fn hysteresis_interpolates_between_static_and_greedy() {
        let fabric = awgr_fabric(16);
        let epochs = hotspot_epochs(16, &[1, 9, 4, 12], 400.0);
        let greedy = run(&fabric, ReallocationPolicy::GreedyResteer, &epochs);
        let fixed = run(&fabric, ReallocationPolicy::Static, &epochs);
        let hyst = run(
            &fabric,
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.9,
            },
            &epochs,
        );
        assert!(hyst.satisfaction() >= fixed.satisfaction() - 1e-9);
        assert!(hyst.reconfigurations <= greedy.reconfigurations);
        // A threshold of zero never re-steers; a threshold of one always
        // re-steers when service degrades.
        let never = run(
            &fabric,
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.0,
            },
            &epochs,
        );
        assert_eq!(never.reconfigurations, 0);
        assert!((never.satisfaction() - fixed.satisfaction()).abs() < 1e-9);
    }

    #[test]
    fn fabric_direct_indirect_split_matches_flow_simulator_on_greedy_epochs() {
        let fabric = awgr_fabric(16);
        let epochs = hotspot_epochs(16, &[1, 9], 400.0);
        let report = run(&fabric, ReallocationPolicy::GreedyResteer, &epochs);
        for (e, matrix) in report.epochs.iter().zip(&epochs) {
            let direct = FlowSimulator::new(
                &fabric,
                FlowSimConfig {
                    seed: FlowSimConfig::default()
                        .seed
                        .wrapping_add((e.epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ..FlowSimConfig::default()
                },
            )
            .run(matrix);
            assert!((e.fabric_direct_gbps - direct.fabric_direct_gbps).abs() < 1e-6);
            assert!((e.fabric_indirect_gbps - direct.fabric_indirect_gbps).abs() < 1e-6);
            // No self-flows in these matrices: the split covers everything.
            assert!(
                (e.fabric_direct_gbps + e.fabric_indirect_gbps - e.satisfied_gbps).abs() < 1e-6
            );
        }
        let direct_sum: f64 = report.epochs.iter().map(|e| e.fabric_direct_gbps).sum();
        assert!((report.fabric_direct_gbps - direct_sum).abs() < 1e-9);
    }

    #[test]
    fn aggregates_are_the_weighted_mean_of_epochs() {
        let fabric = awgr_fabric(12);
        let epochs = hotspot_epochs(12, &[1, 5, 9], 350.0);
        let report = run(
            &fabric,
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.8,
            },
            &epochs,
        );
        let offered: f64 = report.epochs.iter().map(|e| e.offered_gbps).sum();
        let satisfied: f64 = report.epochs.iter().map(|e| e.satisfied_gbps).sum();
        assert!((report.offered_gbps - offered).abs() < 1e-9);
        assert!((report.satisfied_gbps - satisfied).abs() < 1e-9);
        let weighted_mean = report
            .epochs
            .iter()
            .map(|e| e.satisfaction() * e.offered_gbps)
            .sum::<f64>()
            / offered;
        assert!((report.satisfaction() - weighted_mean).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline_and_empty_epochs_are_fully_defined() {
        let fabric = awgr_fabric(8);
        let report = run(&fabric, ReallocationPolicy::Static, &[]);
        assert_eq!(report.satisfaction(), 1.0);
        assert_eq!(report.mean_latency_ns, 0.0);
        assert_eq!(report.reconfigurations, 0);

        let report = run(
            &fabric,
            ReallocationPolicy::GreedyResteer,
            &[vec![], vec![]],
        );
        assert_eq!(report.satisfaction(), 1.0);
        assert_eq!(report.epochs.len(), 2);
        for e in &report.epochs {
            assert_eq!(e.satisfaction(), 1.0);
            assert!(!e.mean_latency_ns.is_nan());
        }
    }

    #[test]
    fn degenerate_demands_are_sanitized() {
        let fabric = awgr_fabric(8);
        let epochs = vec![vec![
            Flow::new(0, 0, 100.0),
            Flow::new(1, 2, f64::NAN),
            Flow::new(2, 3, -5.0),
            Flow::new(3, 4, f64::INFINITY),
        ]];
        let report = run(&fabric, ReallocationPolicy::GreedyResteer, &epochs);
        assert_eq!(report.offered_gbps, 100.0);
        assert!((report.satisfaction() - 1.0).abs() < 1e-9);
        assert!(!report.mean_latency_ns.is_nan());
    }

    #[test]
    fn deterministic_across_runs() {
        let fabric = awgr_fabric(16);
        let epochs = hotspot_epochs(16, &[2, 11], 450.0);
        for policy in [
            ReallocationPolicy::Static,
            ReallocationPolicy::GreedyResteer,
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.85,
            },
        ] {
            assert_eq!(run(&fabric, policy, &epochs), run(&fabric, policy, &epochs));
        }
    }

    #[test]
    fn incremental_solver_equals_exhaustive_oracle() {
        // The arena-backed incremental solver must reproduce the
        // from-scratch reference implementation *exactly* (==, not
        // approximately) for every policy, including steer-skipping fast
        // paths (repeated matrices) and hysteresis probes.
        let fabric = awgr_fabric(16);
        let mut shifting = hotspot_epochs(16, &[1, 9, 9, 4, 1], 400.0);
        // Duplicate-pair flows exercise the per-pair accumulation order.
        shifting[2].push(Flow::new(0, 9, 75.0));
        shifting[2].push(Flow::new(0, 9, 25.0));
        shifting[4].push(Flow::new(3, 3, 50.0));
        for policy in [
            ReallocationPolicy::Static,
            ReallocationPolicy::GreedyResteer,
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.9,
            },
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.0,
            },
        ] {
            let sim = TimelineSimulator::new(
                &fabric,
                TimelineConfig {
                    policy,
                    ..TimelineConfig::default()
                },
            );
            let oracle = sim.run_exhaustive(&shifting);
            assert_eq!(sim.run(&shifting), oracle, "policy {policy:?}");
            let mut arena = TimelineArena::new();
            assert_eq!(sim.run_in(&mut arena, &shifting), oracle);
            // A reused (dirty) arena must not leak state between runs.
            let again = sim.run_in(&mut arena, &shifting);
            assert_eq!(again, oracle, "reused arena diverged for {policy:?}");
            arena.recycle(again);
            assert_eq!(sim.run_in(&mut arena, &shifting), oracle);
        }
    }

    #[test]
    fn one_arena_serves_different_rack_sizes() {
        let mut arena = TimelineArena::new();
        for mcms in [12u32, 16, 8] {
            let fabric = awgr_fabric(mcms);
            let epochs = hotspot_epochs(mcms, &[1, 5], 400.0);
            let sim = TimelineSimulator::new(&fabric, TimelineConfig::default());
            assert_eq!(sim.run_in(&mut arena, &epochs), sim.run_exhaustive(&epochs));
        }
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(ReallocationPolicy::Static.label(), "static");
        assert_eq!(ReallocationPolicy::GreedyResteer.label(), "greedy");
        assert_eq!(
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.9
            }
            .label(),
            "hyst0.9"
        );
    }
}
