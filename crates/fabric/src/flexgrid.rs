//! Flex-grid elastic optical spectrum allocation over [`RackFabric`]
//! topologies.
//!
//! The paper's fabric assigns whole per-pair DWDM wavelengths; an elastic
//! optical fabric instead divides each fiber into fine-grained **frequency
//! slots** (12.5 GHz each) and performs online routing **and** spectrum
//! assignment per lightpath:
//!
//! - **Slot model** — every ordered MCM pair `(src, dst)` owns a spectrum of
//!   [`link_slot_budget`] slots. A lightpath occupies a *contiguous* block of
//!   `data_slots + guard_slots` slots (the guardband trails the data block),
//!   and must find the **same** block on every link of its path (spectrum
//!   continuity).
//! - **Routing** — candidates are the direct link followed by two-hop detours
//!   `src → via → dst` in ascending `via` order, capped at
//!   [`FlexGridConfig::k_paths`] candidates.
//! - **Modulation ladder** — [`MODULATION_LADDER`] trades spectral efficiency
//!   against reach: a one-hop path carries 16QAM (4 bits/symbol), a two-hop
//!   detour falls back to 8QAM, so detours cost both extra links and extra
//!   slots, and their transceiver energy scales with
//!   [`ModulationFormat::energy_factor`].
//! - **Policy zoo** — [`SpectrumPolicy`] pairs an [`AdmissionPolicy`]
//!   (first-fit / best-fit / exact-fit block choice) with a [`DefragPolicy`]
//!   (never defragment, repack on blocking, repack every epoch), mirroring the
//!   timeline's `ReallocationPolicy` zoo.
//!
//! [`FlexGridSimulator`] evaluates a demand timeline epoch by epoch against a
//! persistent spectrum board: lightpaths whose `(src, dst, demand)` reappear
//! are kept in place, departed ones are released, and new demands are admitted
//! under the configured policy. `run`/`run_in` use an incremental flat-array
//! allocator ([`SpectrumAllocator`] inside a reusable [`FlexGridArena`]);
//! [`FlexGridSimulator::run_exhaustive`] rebuilds a from-scratch board every
//! epoch and must produce **exactly** the same report — it is the in-tree
//! oracle, precisely as `TimelineSimulator::run_exhaustive` is for the
//! wavelength layer.
//!
//! Scale note: the flat occupancy board is `mcms² × slots` bools; at the
//! paper's 350-MCM WSS rack that is ~376 MB, so sweeps and tests exercise
//! flex-grid at ≤ 64 MCMs where the board is a few MB.

use crate::flowsim::Flow;
use crate::rackfabric::RackFabric;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a contiguous free block is chosen among the candidates on a path.
///
/// ```
/// use fabric::flexgrid::AdmissionPolicy;
/// assert_eq!(AdmissionPolicy::BestFit.label(), "bestfit");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Lowest-indexed block that fits.
    FirstFit,
    /// Smallest maximal free run that fits (lowest start breaks ties).
    BestFit,
    /// First maximal free run of *exactly* the needed size; falls back to
    /// first-fit when no exact hole exists.
    ExactFit,
}

impl AdmissionPolicy {
    /// Stable label used in sweep-row params and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::FirstFit => "firstfit",
            AdmissionPolicy::BestFit => "bestfit",
            AdmissionPolicy::ExactFit => "exactfit",
        }
    }
}

/// When the spectrum board is repacked from scratch.
///
/// ```
/// use fabric::flexgrid::DefragPolicy;
/// assert_eq!(DefragPolicy::OnBlock.label_suffix(), "+defrag");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefragPolicy {
    /// Keep surviving lightpaths in place; fragmentation accumulates.
    Never,
    /// If any demand blocks, clear the board and re-admit every demand of the
    /// epoch in order (a reactive full repack).
    OnBlock,
    /// Clear the board at the start of every epoch after the first (a
    /// proactive full repack, the flex-grid analogue of greedy re-steering).
    EveryEpoch,
}

impl DefragPolicy {
    /// Stable label suffix appended to the admission label (empty for
    /// [`DefragPolicy::Never`]).
    pub fn label_suffix(self) -> &'static str {
        match self {
            DefragPolicy::Never => "",
            DefragPolicy::OnBlock => "+defrag",
            DefragPolicy::EveryEpoch => "+repack",
        }
    }
}

/// A point in the flex-grid policy zoo: block-choice × defragmentation.
///
/// ```
/// use fabric::flexgrid::{AdmissionPolicy, DefragPolicy, SpectrumPolicy};
/// let p = SpectrumPolicy {
///     admission: AdmissionPolicy::ExactFit,
///     defrag: DefragPolicy::EveryEpoch,
/// };
/// assert_eq!(p.label(), "exactfit+repack");
/// assert_eq!(SpectrumPolicy::parse("exactfit+repack"), Some(p));
/// assert_eq!(SpectrumPolicy::default().label(), "firstfit");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpectrumPolicy {
    /// How free blocks are chosen.
    pub admission: AdmissionPolicy,
    /// When the board is repacked.
    pub defrag: DefragPolicy,
}

impl Default for SpectrumPolicy {
    fn default() -> Self {
        SpectrumPolicy {
            admission: AdmissionPolicy::FirstFit,
            defrag: DefragPolicy::Never,
        }
    }
}

impl SpectrumPolicy {
    /// Stable label, e.g. `firstfit`, `bestfit+defrag`, `exactfit+repack`.
    pub fn label(self) -> String {
        format!("{}{}", self.admission.label(), self.defrag.label_suffix())
    }

    /// Parse a label produced by [`SpectrumPolicy::label`]; `None` for
    /// anything else.
    ///
    /// ```
    /// use fabric::flexgrid::SpectrumPolicy;
    /// let p = SpectrumPolicy::parse("bestfit+defrag").unwrap();
    /// assert_eq!(p.label(), "bestfit+defrag");
    /// assert_eq!(SpectrumPolicy::parse("worstfit"), None);
    /// ```
    pub fn parse(text: &str) -> Option<Self> {
        let (adm, defrag_text) = match text.split_once('+') {
            Some((a, d)) => (a, Some(d)),
            None => (text, None),
        };
        let admission = match adm {
            "firstfit" => AdmissionPolicy::FirstFit,
            "bestfit" => AdmissionPolicy::BestFit,
            "exactfit" => AdmissionPolicy::ExactFit,
            _ => return None,
        };
        let defrag = match defrag_text {
            None => DefragPolicy::Never,
            Some("defrag") => DefragPolicy::OnBlock,
            Some("repack") => DefragPolicy::EveryEpoch,
            Some(_) => return None,
        };
        Some(SpectrumPolicy { admission, defrag })
    }
}

/// One rung of the modulation ladder: spectral efficiency vs. reach.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModulationFormat {
    /// Human-readable format name.
    pub label: &'static str,
    /// Bits carried per symbol; one 12.5 GHz slot carries
    /// `bits_per_symbol × slot_gbps` Gbps.
    pub bits_per_symbol: u32,
    /// Maximum path length (in rack hops) this format can reach.
    pub reach_hops: u32,
    /// Relative transceiver energy per carried bit (denser constellations
    /// burn more power per bit).
    pub energy_factor: f64,
}

/// The modulation ladder, least to most spectrally efficient, with the
/// reach limits that pair each rung to a path length.
pub const MODULATION_LADDER: [ModulationFormat; 4] = [
    ModulationFormat {
        label: "BPSK",
        bits_per_symbol: 1,
        reach_hops: 4,
        energy_factor: 1.0,
    },
    ModulationFormat {
        label: "QPSK",
        bits_per_symbol: 2,
        reach_hops: 3,
        energy_factor: 1.25,
    },
    ModulationFormat {
        label: "8QAM",
        bits_per_symbol: 3,
        reach_hops: 2,
        energy_factor: 1.5,
    },
    ModulationFormat {
        label: "16QAM",
        bits_per_symbol: 4,
        reach_hops: 1,
        energy_factor: 2.0,
    },
];

/// Densest ladder rung whose reach covers a path of `hops` rack hops
/// (`None` beyond BPSK's reach).
///
/// ```
/// use fabric::flexgrid::modulation_for_hops;
/// assert_eq!(modulation_for_hops(1).unwrap().label, "16QAM");
/// assert_eq!(modulation_for_hops(2).unwrap().label, "8QAM");
/// assert!(modulation_for_hops(5).is_none());
/// ```
pub fn modulation_for_hops(hops: u32) -> Option<ModulationFormat> {
    MODULATION_LADDER
        .iter()
        .rev()
        .find(|m| m.reach_hops >= hops)
        .copied()
}

/// Frequency-slot budget per ordered MCM pair: four 12.5 GHz slots per
/// paper-provisioned direct wavelength, i.e. a 50 GHz fixed-grid channel
/// split into flex-grid granularity.
///
/// ```
/// use fabric::flexgrid::link_slot_budget;
/// use fabric::rackfabric::RackFabric;
/// // The paper's 350-MCM AWGR rack provisions 5 direct wavelengths per pair.
/// assert_eq!(link_slot_budget(&RackFabric::paper_awgr()), 20);
/// ```
pub fn link_slot_budget(fabric: &RackFabric) -> u32 {
    4 * fabric.report().min_direct_wavelengths
}

/// Flex-grid engine parameters. The default is the 12.5 GHz grid with one
/// trailing guard slot per lightpath and four routing candidates.
///
/// ```
/// use fabric::flexgrid::FlexGridConfig;
/// let cfg = FlexGridConfig::default();
/// assert_eq!(cfg.slot_gbps, 12.5);
/// assert_eq!(cfg.guard_slots, 1);
/// assert_eq!(cfg.k_paths, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlexGridConfig {
    /// Gbps carried per slot per bit of modulation (12.5 GHz grid ⇒ 12.5).
    pub slot_gbps: f64,
    /// Guard slots appended after each lightpath's data block.
    pub guard_slots: u32,
    /// Maximum routing candidates considered (direct + two-hop detours).
    pub k_paths: usize,
    /// Admission/defragmentation policy.
    pub policy: SpectrumPolicy,
}

impl Default for FlexGridConfig {
    fn default() -> Self {
        FlexGridConfig {
            slot_gbps: 12.5,
            guard_slots: 1,
            k_paths: 4,
            policy: SpectrumPolicy::default(),
        }
    }
}

/// An admitted lightpath: route, modulation, and the contiguous slot block
/// (data + trailing guard) it occupies on every link of its path.
///
/// ```
/// use fabric::flexgrid::{FlexGridConfig, SpectrumAllocator};
/// use fabric::flowsim::Flow;
/// use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
/// let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
/// cfg.mcm_count = 8;
/// let fabric = RackFabric::new(cfg);
/// let mut alloc = SpectrumAllocator::new(&fabric, FlexGridConfig::default());
/// let lp = alloc.admit(Flow::new(0, 1, 200.0)).unwrap();
/// assert_eq!(lp.hops(), 1);
/// assert_eq!(lp.modulation.label, "16QAM");
/// assert_eq!((lp.first_slot, lp.data_slots, lp.slot_count), (0, 4, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lightpath {
    /// Source MCM.
    pub src: u32,
    /// Destination MCM.
    pub dst: u32,
    /// Two-hop detour midpoint, `None` for the direct link.
    pub via: Option<u32>,
    /// Sanitized demand this lightpath carries, in Gbps.
    pub demand_gbps: f64,
    /// Modulation format chosen for the path length.
    pub modulation: ModulationFormat,
    /// First slot of the contiguous block (same on every link of the path).
    pub first_slot: u32,
    /// Data slots in the block.
    pub data_slots: u32,
    /// Total block size: `data_slots + guard_slots`.
    pub slot_count: u32,
}

impl Lightpath {
    /// Number of rack links the path traverses (1 direct, 2 via a detour).
    pub fn hops(self) -> u32 {
        if self.via.is_some() {
            2
        } else {
            1
        }
    }

    /// The ordered links of the path as a fixed array plus its live length.
    fn link_pairs(self) -> ([(u32, u32); 2], usize) {
        match self.via {
            None => ([(self.src, self.dst), (0, 0)], 1),
            Some(m) => ([(self.src, m), (m, self.dst)], 2),
        }
    }
}

/// Lowest-indexed run of `needed` free slots, scanning with `free_at`.
fn first_fit(needed: u32, slots: u32, free_at: &impl Fn(u32) -> bool) -> Option<u32> {
    let mut run = 0u32;
    for s in 0..slots {
        if free_at(s) {
            run += 1;
            if run == needed {
                return Some(s + 1 - needed);
            }
        } else {
            run = 0;
        }
    }
    None
}

/// Start of the smallest maximal free run that still fits `needed` slots
/// (first such run on ties). With `exact`, only runs of exactly `needed`
/// qualify and the first one wins.
fn fitted_run(needed: u32, slots: u32, exact: bool, free_at: &impl Fn(u32) -> bool) -> Option<u32> {
    let mut best: Option<(u32, u32)> = None; // (len, start)
    let mut start = 0u32;
    let mut len = 0u32;
    for s in 0..=slots {
        if s < slots && free_at(s) {
            if len == 0 {
                start = s;
            }
            len += 1;
        } else {
            if exact {
                if len == needed {
                    return Some(start);
                }
            } else if len >= needed && best.is_none_or(|(bl, _)| len < bl) {
                best = Some((len, start));
            }
            len = 0;
        }
    }
    best.map(|(_, st)| st)
}

/// Choose a contiguous block of `needed` slots under `admission`.
fn choose_block(
    admission: AdmissionPolicy,
    needed: u32,
    slots: u32,
    free_at: impl Fn(u32) -> bool,
) -> Option<u32> {
    if needed == 0 || needed > slots {
        return None;
    }
    match admission {
        AdmissionPolicy::FirstFit => first_fit(needed, slots, &free_at),
        AdmissionPolicy::BestFit => fitted_run(needed, slots, false, &free_at),
        AdmissionPolicy::ExactFit => {
            fitted_run(needed, slots, true, &free_at).or_else(|| first_fit(needed, slots, &free_at))
        }
    }
}

/// Plan a lightpath for `flow`: walk the candidate paths (direct first, then
/// ascending two-hop detours, `k_paths` total), pick each candidate's
/// modulation from its hop count, and take the first candidate with a free
/// contiguous block on **every** link (`is_free(src, dst, slot)`).
fn plan_lightpath(
    config: &FlexGridConfig,
    nodes: u32,
    slots: u32,
    flow: Flow,
    is_free: &dyn Fn(u32, u32, u32) -> bool,
) -> Option<Lightpath> {
    let (src, dst) = (flow.src, flow.dst);
    // partial_cmp rather than `<= 0.0`: a NaN demand must also be rejected.
    if src == dst
        || flow.demand_gbps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || src >= nodes
        || dst >= nodes
    {
        return None;
    }
    let candidates = std::iter::once(None)
        .chain((0..nodes).filter(|&m| m != src && m != dst).map(Some))
        .take(config.k_paths);
    for via in candidates {
        let hops = if via.is_some() { 2 } else { 1 };
        let Some(modulation) = modulation_for_hops(hops) else {
            continue;
        };
        let per_slot_gbps = modulation.bits_per_symbol as f64 * config.slot_gbps;
        let data_slots = ((flow.demand_gbps / per_slot_gbps).ceil() as u32).max(1);
        let slot_count = data_slots + config.guard_slots;
        if slot_count > slots {
            continue;
        }
        let template = Lightpath {
            src,
            dst,
            via,
            demand_gbps: flow.demand_gbps,
            modulation,
            first_slot: 0,
            data_slots,
            slot_count,
        };
        let (links, n) = template.link_pairs();
        let free_at = |s: u32| links[..n].iter().all(|&(a, b)| is_free(a, b, s));
        if let Some(first_slot) = choose_block(config.policy.admission, slot_count, slots, free_at)
        {
            return Some(Lightpath {
                first_slot,
                ..template
            });
        }
    }
    None
}

/// Per-link external fragmentation: `1 − largest_free_run / free_total`
/// (0 when the link is completely full — nothing left to fragment).
fn link_fragmentation(slots: u32, is_occupied: impl Fn(u32) -> bool) -> f64 {
    let mut free_total = 0u32;
    let mut largest = 0u32;
    let mut run = 0u32;
    for s in 0..slots {
        if is_occupied(s) {
            run = 0;
        } else {
            run += 1;
            free_total += 1;
            largest = largest.max(run);
        }
    }
    if free_total > 0 {
        1.0 - largest as f64 / free_total as f64
    } else {
        0.0
    }
}

/// Storage substrate for per-link spectrum occupancy plus the active
/// lightpath list. Implemented by the incremental flat-array
/// [`SpectrumAllocator`] and the per-epoch-rebuilt [`MapBoard`] oracle so the
/// epoch logic ([`run_epoch`]) exists exactly once — the two paths can only
/// diverge through state leaks, which the oracle tests then catch.
trait SpectrumBoard {
    /// `(nodes, slots_per_link)`.
    fn dims(&self) -> (u32, u32);
    /// The engine configuration this board was built with.
    fn grid_config(&self) -> &FlexGridConfig;
    /// Is `slot` free on link `(src, dst)`?
    fn is_free(&self, src: u32, dst: u32, slot: u32) -> bool;
    /// Book a planned lightpath (its block must currently be free).
    fn place(&mut self, lp: Lightpath);
    /// Release every active lightpath whose index is not claimed, compacting
    /// the active list in order.
    fn release_unclaimed(&mut self, claimed: &[bool]);
    /// Release everything (full repack precursor).
    fn clear_all(&mut self);
    /// Active lightpaths in admission order.
    fn active(&self) -> &[Lightpath];
    /// Sum of [`link_fragmentation`] over links, in ascending link order.
    fn fragmentation_sum(&self) -> f64;
}

/// Incremental flat-array spectrum board: occupancy is one `Vec<bool>`
/// indexed `(src·nodes + dst)·slots + slot`, with a sorted touched-link list
/// so fragmentation sums only visit links that ever carried a lightpath
/// (untouched links contribute an exact `0.0`, keeping the sum bit-identical
/// to the oracle's all-links scan).
///
/// ```
/// use fabric::flexgrid::{FlexGridConfig, SpectrumAllocator};
/// use fabric::flowsim::Flow;
/// use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
/// let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
/// cfg.mcm_count = 8;
/// let fabric = RackFabric::new(cfg);
/// let mut alloc = SpectrumAllocator::new(&fabric, FlexGridConfig::default());
/// let a = alloc.admit(Flow::new(0, 1, 200.0)).unwrap();
/// let b = alloc.admit(Flow::new(0, 1, 200.0)).unwrap();
/// // Guardband: the second block starts after the first's data + guard.
/// assert_eq!(b.first_slot, a.first_slot + a.slot_count);
/// assert!(alloc.release(&a));
/// assert_eq!(alloc.carried_gbps(), 200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumAllocator {
    nodes: u32,
    slots: u32,
    config: FlexGridConfig,
    occ: Vec<bool>,
    links_touched: Vec<usize>,
    active: Vec<Lightpath>,
}

impl SpectrumAllocator {
    /// Board for `fabric` with the [`link_slot_budget`] slot budget.
    pub fn new(fabric: &RackFabric, config: FlexGridConfig) -> Self {
        Self::with_dims(fabric.config().mcm_count, link_slot_budget(fabric), config)
    }

    fn with_dims(nodes: u32, slots: u32, config: FlexGridConfig) -> Self {
        SpectrumAllocator {
            nodes,
            slots,
            config,
            occ: vec![false; (nodes as usize) * (nodes as usize) * (slots as usize)],
            links_touched: Vec::new(),
            active: Vec::new(),
        }
    }

    fn link_base(&self, src: u32, dst: u32) -> usize {
        ((src * self.nodes + dst) as usize) * self.slots as usize
    }

    fn clear_occ(&mut self, lp: &Lightpath) {
        let (links, n) = lp.link_pairs();
        for &(a, b) in &links[..n] {
            let base = self.link_base(a, b);
            for s in lp.first_slot..lp.first_slot + lp.slot_count {
                self.occ[base + s as usize] = false;
            }
        }
    }

    /// Sanitize `flow` and try to admit it under the configured policy,
    /// returning the booked lightpath (self-flows and non-positive demands
    /// are local, need no spectrum, and return `None`).
    ///
    /// ```
    /// use fabric::flexgrid::{FlexGridConfig, SpectrumAllocator};
    /// use fabric::flowsim::Flow;
    /// use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
    /// let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
    /// cfg.mcm_count = 8;
    /// let fabric = RackFabric::new(cfg);
    /// let mut alloc = SpectrumAllocator::new(&fabric, FlexGridConfig::default());
    /// assert!(alloc.admit(Flow::new(3, 3, 100.0)).is_none()); // MCM-local
    /// assert!(alloc.admit(Flow::new(0, 1, f64::NAN)).is_none()); // sanitized
    /// assert!(alloc.admit(Flow::new(0, 1, 100.0)).is_some());
    /// ```
    pub fn admit(&mut self, flow: Flow) -> Option<Lightpath> {
        let flow = flow.sanitized();
        let planned = {
            let probe: &Self = self;
            plan_lightpath(&self.config, self.nodes, self.slots, flow, &|a, d, s| {
                probe.is_free(a, d, s)
            })
        };
        let lp = planned?;
        SpectrumBoard::place(self, lp);
        Some(lp)
    }

    /// Release a previously admitted lightpath (matched by full equality);
    /// returns whether anything was released.
    ///
    /// ```
    /// use fabric::flexgrid::{FlexGridConfig, SpectrumAllocator};
    /// use fabric::flowsim::Flow;
    /// use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
    /// let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
    /// cfg.mcm_count = 8;
    /// let fabric = RackFabric::new(cfg);
    /// let mut alloc = SpectrumAllocator::new(&fabric, FlexGridConfig::default());
    /// let lp = alloc.admit(Flow::new(0, 1, 100.0)).unwrap();
    /// assert!(alloc.release(&lp));
    /// assert!(!alloc.release(&lp)); // already gone
    /// assert!(alloc.occupied_slots(0, 1).is_empty());
    /// ```
    pub fn release(&mut self, lp: &Lightpath) -> bool {
        match self.active.iter().position(|a| a == lp) {
            Some(j) => {
                let lp = self.active.remove(j);
                self.clear_occ(&lp);
                true
            }
            None => false,
        }
    }

    /// Release everything and forget the touched-link history, returning the
    /// board to its freshly built state.
    pub fn reset(&mut self) {
        SpectrumBoard::clear_all(self);
        self.links_touched.clear();
    }

    /// Active lightpaths in admission order.
    pub fn active_lightpaths(&self) -> &[Lightpath] {
        &self.active
    }

    /// Total demand carried by active lightpaths, in Gbps.
    pub fn carried_gbps(&self) -> f64 {
        self.active.iter().map(|lp| lp.demand_gbps).sum()
    }

    /// Total slots booked across all links (each lightpath counts its block
    /// once per hop).
    pub fn slots_in_use(&self) -> u64 {
        self.active
            .iter()
            .map(|lp| lp.slot_count as u64 * lp.hops() as u64)
            .sum()
    }

    /// Mean per-link external fragmentation over all `nodes·(nodes−1)`
    /// ordered pairs (0 for racks smaller than two MCMs).
    pub fn fragmentation_index(&self) -> f64 {
        if self.nodes >= 2 {
            self.fragmentation_sum() / (self.nodes as f64 * (self.nodes as f64 - 1.0))
        } else {
            0.0
        }
    }

    /// The occupied slot indices on link `(src, dst)`, ascending.
    ///
    /// ```
    /// use fabric::flexgrid::{FlexGridConfig, SpectrumAllocator};
    /// use fabric::flowsim::Flow;
    /// use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
    /// let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
    /// cfg.mcm_count = 8;
    /// let fabric = RackFabric::new(cfg);
    /// let mut alloc = SpectrumAllocator::new(&fabric, FlexGridConfig::default());
    /// let lp = alloc.admit(Flow::new(0, 1, 100.0)).unwrap();
    /// // Contiguous block, guard slot included.
    /// let expect: Vec<u32> = (lp.first_slot..lp.first_slot + lp.slot_count).collect();
    /// assert_eq!(alloc.occupied_slots(0, 1), expect);
    /// ```
    pub fn occupied_slots(&self, src: u32, dst: u32) -> Vec<u32> {
        let mut out = Vec::new();
        if src < self.nodes && dst < self.nodes {
            let base = self.link_base(src, dst);
            for s in 0..self.slots {
                if self.occ[base + s as usize] {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Slot budget per ordered MCM pair.
    pub fn slots_per_link(&self) -> u32 {
        self.slots
    }
}

impl SpectrumBoard for SpectrumAllocator {
    fn dims(&self) -> (u32, u32) {
        (self.nodes, self.slots)
    }

    fn grid_config(&self) -> &FlexGridConfig {
        &self.config
    }

    fn is_free(&self, src: u32, dst: u32, slot: u32) -> bool {
        !self.occ[self.link_base(src, dst) + slot as usize]
    }

    fn place(&mut self, lp: Lightpath) {
        let (links, n) = lp.link_pairs();
        for &(a, b) in &links[..n] {
            let link_idx = (a * self.nodes + b) as usize;
            if let Err(pos) = self.links_touched.binary_search(&link_idx) {
                self.links_touched.insert(pos, link_idx);
            }
            let base = self.link_base(a, b);
            for s in lp.first_slot..lp.first_slot + lp.slot_count {
                self.occ[base + s as usize] = true;
            }
        }
        self.active.push(lp);
    }

    fn release_unclaimed(&mut self, claimed: &[bool]) {
        let mut kept = 0usize;
        for j in 0..self.active.len() {
            let lp = self.active[j];
            if claimed.get(j).copied().unwrap_or(false) {
                self.active[kept] = lp;
                kept += 1;
            } else {
                self.clear_occ(&lp);
            }
        }
        self.active.truncate(kept);
    }

    fn clear_all(&mut self) {
        for j in 0..self.active.len() {
            let lp = self.active[j];
            self.clear_occ(&lp);
        }
        self.active.clear();
    }

    fn active(&self) -> &[Lightpath] {
        &self.active
    }

    fn fragmentation_sum(&self) -> f64 {
        let mut sum = 0.0;
        for &link in &self.links_touched {
            let base = link * self.slots as usize;
            sum += link_fragmentation(self.slots, |s| self.occ[base + s as usize]);
        }
        sum
    }
}

/// The oracle's board: per-link occupancy in a `HashMap`, rebuilt from
/// scratch every epoch by `run_exhaustive`. Links the map has never seen are
/// implicitly free and contribute nothing to the fragmentation sum — which is
/// bit-identical to the flat board's exact-`0.0` contributions because its
/// all-pairs scan runs in the same ascending link order.
struct MapBoard {
    nodes: u32,
    slots: u32,
    config: FlexGridConfig,
    occ: HashMap<(u32, u32), Vec<bool>>,
    active: Vec<Lightpath>,
}

impl MapBoard {
    fn new(nodes: u32, slots: u32, config: FlexGridConfig) -> Self {
        MapBoard {
            nodes,
            slots,
            config,
            occ: HashMap::new(),
            active: Vec::new(),
        }
    }

    fn clear_occ(occ: &mut HashMap<(u32, u32), Vec<bool>>, lp: &Lightpath) {
        let (links, n) = lp.link_pairs();
        for &(a, b) in &links[..n] {
            if let Some(v) = occ.get_mut(&(a, b)) {
                for s in lp.first_slot..lp.first_slot + lp.slot_count {
                    v[s as usize] = false;
                }
            }
        }
    }
}

impl SpectrumBoard for MapBoard {
    fn dims(&self) -> (u32, u32) {
        (self.nodes, self.slots)
    }

    fn grid_config(&self) -> &FlexGridConfig {
        &self.config
    }

    fn is_free(&self, src: u32, dst: u32, slot: u32) -> bool {
        self.occ.get(&(src, dst)).is_none_or(|v| !v[slot as usize])
    }

    fn place(&mut self, lp: Lightpath) {
        let (links, n) = lp.link_pairs();
        for &(a, b) in &links[..n] {
            let v = self
                .occ
                .entry((a, b))
                .or_insert_with(|| vec![false; self.slots as usize]);
            for s in lp.first_slot..lp.first_slot + lp.slot_count {
                v[s as usize] = true;
            }
        }
        self.active.push(lp);
    }

    fn release_unclaimed(&mut self, claimed: &[bool]) {
        let mut kept = 0usize;
        for j in 0..self.active.len() {
            let lp = self.active[j];
            if claimed.get(j).copied().unwrap_or(false) {
                self.active[kept] = lp;
                kept += 1;
            } else {
                Self::clear_occ(&mut self.occ, &lp);
            }
        }
        self.active.truncate(kept);
    }

    fn clear_all(&mut self) {
        for j in 0..self.active.len() {
            let lp = self.active[j];
            Self::clear_occ(&mut self.occ, &lp);
        }
        self.active.clear();
    }

    fn active(&self) -> &[Lightpath] {
        &self.active
    }

    fn fragmentation_sum(&self) -> f64 {
        let mut sum = 0.0;
        for src in 0..self.nodes {
            for dst in 0..self.nodes {
                if let Some(v) = self.occ.get(&(src, dst)) {
                    sum += link_fragmentation(self.slots, |s| v[s as usize]);
                }
            }
        }
        sum
    }
}

#[derive(Default)]
struct PassCounts {
    requests: usize,
    admitted: usize,
    blocked: usize,
    trivial: usize,
    direct_flows: usize,
    indirect_flows: usize,
}

/// One admission sweep over the epoch's flows in order. Flows whose
/// `flow_hops` entry is already non-zero were kept from the previous epoch;
/// everything else is planned and placed (or counted blocked).
fn admission_pass<B: SpectrumBoard>(
    board: &mut B,
    flows: &[Flow],
    flow_hops: &mut [u32],
) -> PassCounts {
    let (nodes, slots) = board.dims();
    let config = *board.grid_config();
    let mut counts = PassCounts::default();
    for (k, flow) in flows.iter().enumerate() {
        if flow.src == flow.dst || flow.demand_gbps <= 0.0 {
            counts.trivial += 1;
            continue;
        }
        counts.requests += 1;
        if flow_hops[k] == 0 {
            let planned = {
                let probe: &B = board;
                plan_lightpath(&config, nodes, slots, *flow, &|a, d, s| {
                    probe.is_free(a, d, s)
                })
            };
            match planned {
                Some(lp) => {
                    board.place(lp);
                    flow_hops[k] = lp.hops();
                }
                None => {
                    counts.blocked += 1;
                    continue;
                }
            }
        }
        counts.admitted += 1;
        if flow_hops[k] >= 2 {
            counts.indirect_flows += 1;
        } else {
            counts.direct_flows += 1;
        }
    }
    counts
}

/// Evaluate one epoch against a spectrum board: keep-or-release surviving
/// lightpaths (policy permitting), admit the epoch's demands in order, repack
/// if the defrag policy calls for it, and aggregate the epoch's metrics.
/// Shared verbatim by the incremental path and the exhaustive oracle.
fn run_epoch<B: SpectrumBoard>(
    board: &mut B,
    epoch: usize,
    flows: &[Flow],
    claimed: &mut Vec<bool>,
    flow_hops: &mut Vec<u32>,
) -> FlexEpochResult {
    let (nodes, _) = board.dims();
    let config = *board.grid_config();
    flow_hops.clear();
    flow_hops.resize(flows.len(), 0);
    let mut defragmented = false;
    match config.policy.defrag {
        DefragPolicy::EveryEpoch => {
            board.clear_all();
            defragmented = epoch > 0;
        }
        DefragPolicy::Never | DefragPolicy::OnBlock => {
            claimed.clear();
            claimed.resize(board.active().len(), false);
            for (k, flow) in flows.iter().enumerate() {
                if flow.src == flow.dst || flow.demand_gbps <= 0.0 {
                    continue;
                }
                let active = board.active();
                for (j, lp) in active.iter().enumerate() {
                    if claimed[j] {
                        continue;
                    }
                    if lp.src == flow.src
                        && lp.dst == flow.dst
                        && lp.demand_gbps.to_bits() == flow.demand_gbps.to_bits()
                    {
                        claimed[j] = true;
                        flow_hops[k] = lp.hops();
                        break;
                    }
                }
            }
            board.release_unclaimed(claimed);
        }
    }
    let mut counts = admission_pass(board, flows, flow_hops);
    if counts.blocked > 0 && config.policy.defrag == DefragPolicy::OnBlock {
        board.clear_all();
        defragmented = true;
        for h in flow_hops.iter_mut() {
            *h = 0;
        }
        counts = admission_pass(board, flows, flow_hops);
    }
    let mut offered = 0.0;
    let mut carried_local = 0.0;
    for flow in flows {
        offered += flow.demand_gbps;
        if flow.src == flow.dst && flow.demand_gbps > 0.0 {
            carried_local += flow.demand_gbps;
        }
    }
    let mut carried_direct = 0.0;
    let mut carried_indirect = 0.0;
    let mut wire_weighted = 0.0;
    let mut slots_in_use = 0u64;
    for lp in board.active() {
        if lp.hops() >= 2 {
            carried_indirect += lp.demand_gbps;
        } else {
            carried_direct += lp.demand_gbps;
        }
        wire_weighted += lp.demand_gbps * lp.hops() as f64 * lp.modulation.energy_factor;
        slots_in_use += lp.slot_count as u64 * lp.hops() as u64;
    }
    let fragmentation_index = if nodes >= 2 {
        board.fragmentation_sum() / (nodes as f64 * (nodes as f64 - 1.0))
    } else {
        0.0
    };
    let n = flows.len().max(1) as f64;
    FlexEpochResult {
        epoch,
        flows: flows.len(),
        requests: counts.requests,
        admitted: counts.admitted,
        blocked: counts.blocked,
        offered_gbps: offered,
        carried_local_gbps: carried_local,
        carried_direct_gbps: carried_direct,
        carried_indirect_gbps: carried_indirect,
        wire_weighted_gbps: wire_weighted,
        slots_in_use,
        fragmentation_index,
        direct_only_fraction: (counts.trivial + counts.direct_flows) as f64 / n,
        indirect_fraction: counts.indirect_flows as f64 / n,
        unsatisfied_fraction: counts.blocked as f64 / n,
        defragmented,
    }
}

/// Outcome of one flex-grid epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlexEpochResult {
    /// Epoch index within the timeline.
    pub epoch: usize,
    /// Flows offered this epoch (including MCM-local and degenerate ones).
    pub flows: usize,
    /// Non-trivial spectrum requests (fabric-crossing, positive demand).
    pub requests: usize,
    /// Requests carried on a lightpath (kept or newly admitted).
    pub admitted: usize,
    /// Requests that found no spectrum on any candidate path.
    pub blocked: usize,
    /// Total offered demand, in Gbps.
    pub offered_gbps: f64,
    /// Demand satisfied MCM-locally (self-flows), in Gbps.
    pub carried_local_gbps: f64,
    /// Demand carried on direct lightpaths, in Gbps.
    pub carried_direct_gbps: f64,
    /// Demand carried on two-hop detour lightpaths, in Gbps.
    pub carried_indirect_gbps: f64,
    /// Hop- and modulation-energy-weighted wire traffic, in Gbps (feeds the
    /// energy model's transceiver accounting).
    pub wire_weighted_gbps: f64,
    /// Slots booked across all links (block × hops per lightpath).
    pub slots_in_use: u64,
    /// Mean per-link external fragmentation over all ordered MCM pairs.
    pub fragmentation_index: f64,
    /// Fraction of flows MCM-local, degenerate, or on direct lightpaths.
    pub direct_only_fraction: f64,
    /// Fraction of flows on two-hop detour lightpaths.
    pub indirect_fraction: f64,
    /// Fraction of flows blocked.
    pub unsatisfied_fraction: f64,
    /// Whether this epoch triggered a full spectrum repack.
    pub defragmented: bool,
}

impl FlexEpochResult {
    /// Total carried demand: local + direct + detoured, in Gbps.
    pub fn carried_gbps(self) -> f64 {
        self.carried_local_gbps + self.carried_direct_gbps + self.carried_indirect_gbps
    }

    /// Carried / offered (1.0 when nothing was offered).
    pub fn satisfaction(self) -> f64 {
        if self.offered_gbps > 0.0 {
            self.carried_gbps() / self.offered_gbps
        } else {
            1.0
        }
    }

    /// Blocked / requests (0.0 when nothing was requested).
    pub fn blocking_probability(self) -> f64 {
        if self.requests > 0 {
            self.blocked as f64 / self.requests as f64
        } else {
            0.0
        }
    }
}

/// Aggregate outcome of a flex-grid timeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlexGridReport {
    /// Per-epoch results in order.
    pub epochs: Vec<FlexEpochResult>,
    /// Total offered demand across epochs, in Gbps.
    pub offered_gbps: f64,
    /// Total MCM-local carried demand, in Gbps.
    pub carried_local_gbps: f64,
    /// Total direct-lightpath carried demand, in Gbps.
    pub carried_direct_gbps: f64,
    /// Total detour-lightpath carried demand, in Gbps.
    pub carried_indirect_gbps: f64,
    /// Total hop- and modulation-weighted wire traffic, in Gbps.
    pub wire_weighted_gbps: f64,
    /// Total non-trivial spectrum requests.
    pub requests: usize,
    /// Total requests carried.
    pub admitted: usize,
    /// Total requests blocked.
    pub blocked: usize,
    /// Epochs that triggered a full spectrum repack.
    pub defrag_events: usize,
    /// Mean over epochs of the per-epoch fragmentation index.
    pub mean_fragmentation_index: f64,
    /// Mean over epochs of slots booked across all links.
    pub mean_slots_in_use: f64,
    /// Flow-weighted mean of the per-epoch direct-only fraction.
    pub direct_only_fraction: f64,
    /// Flow-weighted mean of the per-epoch detour fraction.
    pub indirect_fraction: f64,
    /// Flow-weighted mean of the per-epoch blocked fraction.
    pub unsatisfied_fraction: f64,
}

impl FlexGridReport {
    /// Total carried demand: local + direct + detoured, in Gbps.
    pub fn carried_gbps(&self) -> f64 {
        self.carried_local_gbps + self.carried_direct_gbps + self.carried_indirect_gbps
    }

    /// Carried / offered across the whole timeline (1.0 when idle).
    pub fn satisfaction(&self) -> f64 {
        if self.offered_gbps > 0.0 {
            self.carried_gbps() / self.offered_gbps
        } else {
            1.0
        }
    }

    /// Blocked / requested across the whole timeline (0.0 when idle).
    pub fn blocking_probability(&self) -> f64 {
        if self.requests > 0 {
            self.blocked as f64 / self.requests as f64
        } else {
            0.0
        }
    }
}

/// Fold per-epoch results into a [`FlexGridReport`].
fn summarize(epochs: Vec<FlexEpochResult>) -> FlexGridReport {
    let total_flows: usize = epochs.iter().map(|e| e.flows).sum();
    let flow_weighted = |pick: &dyn Fn(&FlexEpochResult) -> f64| -> f64 {
        if total_flows == 0 {
            0.0
        } else {
            epochs.iter().map(|e| pick(e) * e.flows as f64).sum::<f64>() / total_flows as f64
        }
    };
    let epoch_mean = |pick: &dyn Fn(&FlexEpochResult) -> f64| -> f64 {
        if epochs.is_empty() {
            0.0
        } else {
            epochs.iter().map(pick).sum::<f64>() / epochs.len() as f64
        }
    };
    FlexGridReport {
        offered_gbps: epochs.iter().map(|e| e.offered_gbps).sum(),
        carried_local_gbps: epochs.iter().map(|e| e.carried_local_gbps).sum(),
        carried_direct_gbps: epochs.iter().map(|e| e.carried_direct_gbps).sum(),
        carried_indirect_gbps: epochs.iter().map(|e| e.carried_indirect_gbps).sum(),
        wire_weighted_gbps: epochs.iter().map(|e| e.wire_weighted_gbps).sum(),
        requests: epochs.iter().map(|e| e.requests).sum(),
        admitted: epochs.iter().map(|e| e.admitted).sum(),
        blocked: epochs.iter().map(|e| e.blocked).sum(),
        defrag_events: epochs.iter().filter(|e| e.defragmented).count(),
        mean_fragmentation_index: epoch_mean(&|e| e.fragmentation_index),
        mean_slots_in_use: epoch_mean(&|e| e.slots_in_use as f64),
        direct_only_fraction: flow_weighted(&|e| e.direct_only_fraction),
        indirect_fraction: flow_weighted(&|e| e.indirect_fraction),
        unsatisfied_fraction: flow_weighted(&|e| e.unsatisfied_fraction),
        epochs,
    }
}

/// Reusable scratch for [`FlexGridSimulator::run_in`]: the persistent
/// spectrum board plus sanitization/claim/result buffers. One arena serves
/// any sequence of rack sizes or configs — `run_in` rebuilds or resets the
/// board as needed, so arena reuse can never change results.
///
/// ```
/// use fabric::flexgrid::{FlexGridArena, FlexGridConfig, FlexGridSimulator};
/// use fabric::flowsim::Flow;
/// use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
/// let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
/// cfg.mcm_count = 8;
/// let fabric = RackFabric::new(cfg);
/// let sim = FlexGridSimulator::new(&fabric, FlexGridConfig::default());
/// let epochs = vec![vec![Flow::new(0, 1, 200.0)]];
/// let mut arena = FlexGridArena::new();
/// let report = sim.run_in(&mut arena, &epochs);
/// assert_eq!(report, sim.run(&epochs));
/// arena.recycle(report); // reclaim the report's buffers for the next run
/// ```
#[derive(Debug, Default)]
pub struct FlexGridArena {
    alloc: Option<SpectrumAllocator>,
    sanitized: Vec<Flow>,
    claimed: Vec<bool>,
    flow_hops: Vec<u32>,
    results: Vec<FlexEpochResult>,
}

impl FlexGridArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reclaim a finished report's epoch buffer for the next `run_in`.
    pub fn recycle(&mut self, mut report: FlexGridReport) {
        report.epochs.clear();
        self.results = report.epochs;
    }

    fn prepare(&mut self, nodes: u32, slots: u32, config: FlexGridConfig) {
        let reusable = matches!(
            &self.alloc,
            Some(a) if a.nodes == nodes && a.slots == slots && a.config == config
        );
        if reusable {
            if let Some(a) = self.alloc.as_mut() {
                a.reset();
            }
        } else {
            self.alloc = Some(SpectrumAllocator::with_dims(nodes, slots, config));
        }
        self.sanitized.clear();
        self.claimed.clear();
        self.flow_hops.clear();
        self.results.clear();
    }
}

/// Epoch-by-epoch flex-grid evaluation of a demand timeline against a
/// persistent spectrum board.
///
/// ```
/// use fabric::flexgrid::{FlexGridConfig, FlexGridSimulator};
/// use fabric::flowsim::Flow;
/// use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
/// let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
/// cfg.mcm_count = 8;
/// let fabric = RackFabric::new(cfg);
/// let sim = FlexGridSimulator::new(&fabric, FlexGridConfig::default());
/// let epochs = vec![
///     vec![Flow::new(0, 1, 200.0), Flow::new(2, 3, 100.0)],
///     vec![Flow::new(0, 1, 200.0)],
/// ];
/// let report = sim.run(&epochs);
/// // The incremental path always matches the from-scratch oracle.
/// assert_eq!(report, sim.run_exhaustive(&epochs));
/// assert_eq!(report.blocked, 0);
/// assert!((report.satisfaction() - 1.0).abs() < 1e-12);
/// ```
pub struct FlexGridSimulator<'a> {
    #[allow(dead_code)]
    fabric: &'a RackFabric,
    config: FlexGridConfig,
    nodes: u32,
    slots: u32,
}

impl<'a> FlexGridSimulator<'a> {
    /// Simulator over `fabric` with the [`link_slot_budget`] slot budget.
    pub fn new(fabric: &'a RackFabric, config: FlexGridConfig) -> Self {
        FlexGridSimulator {
            fabric,
            config,
            nodes: fabric.config().mcm_count,
            slots: link_slot_budget(fabric),
        }
    }

    /// Slot budget per ordered MCM pair for this simulator's fabric.
    pub fn slots_per_link(&self) -> u32 {
        self.slots
    }

    /// Run the timeline with a throwaway arena. See
    /// [`FlexGridSimulator::run_in`].
    pub fn run(&self, epochs: &[Vec<Flow>]) -> FlexGridReport {
        self.run_in(&mut FlexGridArena::new(), epochs)
    }

    /// Run the timeline incrementally: the spectrum board persists across
    /// epochs, with surviving lightpaths kept in place and departures
    /// released. Bit-identical to [`FlexGridSimulator::run_exhaustive`] for
    /// any arena state, fresh or dirty.
    pub fn run_in(&self, arena: &mut FlexGridArena, epochs: &[Vec<Flow>]) -> FlexGridReport {
        arena.prepare(self.nodes, self.slots, self.config);
        let FlexGridArena {
            alloc,
            sanitized,
            claimed,
            flow_hops,
            results,
        } = arena;
        let board = alloc.as_mut().expect("prepare populated the allocator");
        for (epoch, raw) in epochs.iter().enumerate() {
            sanitized.clear();
            sanitized.extend(raw.iter().map(|f| f.sanitized()));
            results.push(run_epoch(board, epoch, sanitized, claimed, flow_hops));
        }
        summarize(std::mem::take(results))
    }

    /// The from-scratch oracle: rebuilds a fresh spectrum board every epoch
    /// from the carried lightpath list alone, so no incremental state can
    /// leak between epochs. Slower than [`FlexGridSimulator::run_in`] but
    /// produces exactly the same report — the oracle tests pin this.
    pub fn run_exhaustive(&self, epochs: &[Vec<Flow>]) -> FlexGridReport {
        let mut carried: Vec<Lightpath> = Vec::new();
        let mut results = Vec::new();
        let mut claimed = Vec::new();
        let mut flow_hops = Vec::new();
        for (epoch, raw) in epochs.iter().enumerate() {
            let flows: Vec<Flow> = raw.iter().map(|f| f.sanitized()).collect();
            let mut board = MapBoard::new(self.nodes, self.slots, self.config);
            for lp in &carried {
                board.place(*lp);
            }
            results.push(run_epoch(
                &mut board,
                epoch,
                &flows,
                &mut claimed,
                &mut flow_hops,
            ));
            carried = board.active;
        }
        summarize(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rackfabric::{FabricKind, RackFabricConfig};

    fn fabric(mcms: u32) -> RackFabric {
        let mut cfg = RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs);
        cfg.mcm_count = mcms;
        RackFabric::new(cfg)
    }

    fn all_policies() -> Vec<SpectrumPolicy> {
        let mut out = Vec::new();
        for admission in [
            AdmissionPolicy::FirstFit,
            AdmissionPolicy::BestFit,
            AdmissionPolicy::ExactFit,
        ] {
            for defrag in [
                DefragPolicy::Never,
                DefragPolicy::OnBlock,
                DefragPolicy::EveryEpoch,
            ] {
                out.push(SpectrumPolicy { admission, defrag });
            }
        }
        out
    }

    /// Six epochs of shifting pair demands with duplicate pairs, a self-flow,
    /// and a degenerate negative demand mixed in.
    fn canned_epochs(nodes: u32) -> Vec<Vec<Flow>> {
        let mut epochs = Vec::new();
        for e in 0..6u32 {
            let mut flows = Vec::new();
            for i in 0..nodes {
                let dst = (i + 1 + e) % nodes;
                flows.push(Flow::new(
                    i,
                    dst,
                    150.0 + 25.0 * (i % 4) as f64 + 10.0 * e as f64,
                ));
            }
            flows.push(Flow::new(0, 9 % nodes, 75.0));
            flows.push(Flow::new(0, 9 % nodes, 75.0));
            flows.push(Flow::new(3 % nodes, 3 % nodes, 50.0));
            flows.push(Flow::new(5 % nodes, 7 % nodes, -10.0));
            epochs.push(flows);
        }
        epochs
    }

    #[test]
    fn policy_labels_are_stable_and_parse_back() {
        for policy in all_policies() {
            let label = policy.label();
            assert_eq!(SpectrumPolicy::parse(&label), Some(policy), "{label}");
        }
        assert_eq!(SpectrumPolicy::default().label(), "firstfit");
        assert_eq!(
            SpectrumPolicy {
                admission: AdmissionPolicy::BestFit,
                defrag: DefragPolicy::OnBlock,
            }
            .label(),
            "bestfit+defrag"
        );
        assert_eq!(SpectrumPolicy::parse("firstfit+compact"), None);
    }

    #[test]
    fn modulation_ladder_matches_reach() {
        assert_eq!(modulation_for_hops(1).unwrap().label, "16QAM");
        assert_eq!(modulation_for_hops(2).unwrap().label, "8QAM");
        assert_eq!(modulation_for_hops(3).unwrap().label, "QPSK");
        assert_eq!(modulation_for_hops(4).unwrap().label, "BPSK");
        assert_eq!(modulation_for_hops(5), None);
        assert_eq!(modulation_for_hops(0).unwrap().label, "16QAM");
    }

    #[test]
    fn slot_budget_follows_min_direct_wavelengths() {
        let f = fabric(16);
        let budget = link_slot_budget(&f);
        assert_eq!(budget, 4 * f.report().min_direct_wavelengths);
        assert!(budget >= 20, "16-MCM AWGR budget {budget}");
    }

    #[test]
    fn guardband_separates_neighboring_lightpaths() {
        let f = fabric(8);
        let mut alloc = SpectrumAllocator::new(&f, FlexGridConfig::default());
        let a = alloc.admit(Flow::new(0, 1, 200.0)).unwrap();
        let b = alloc.admit(Flow::new(0, 1, 100.0)).unwrap();
        assert_eq!(a.first_slot, 0);
        assert_eq!(a.slot_count, a.data_slots + 1);
        assert_eq!(b.first_slot, a.first_slot + a.slot_count);
        let occupied = alloc.occupied_slots(0, 1);
        assert_eq!(occupied.len() as u32, a.slot_count + b.slot_count);
    }

    #[test]
    fn best_fit_prefers_the_tightest_hole() {
        let f = fabric(8);
        let slots = link_slot_budget(&f);
        assert!(slots >= 18, "test needs room for three 5-slot blocks");
        let make = |admission: AdmissionPolicy| {
            let config = FlexGridConfig {
                policy: SpectrumPolicy {
                    admission,
                    defrag: DefragPolicy::Never,
                },
                ..FlexGridConfig::default()
            };
            let mut alloc = SpectrumAllocator::new(&f, config);
            // Blocks at [0,5), [5,10), [10,13), [13,18); free the first and
            // third to leave a 5-slot hole at 0 and a 3-slot hole at 10.
            let a = alloc.admit(Flow::new(0, 1, 200.0)).unwrap();
            let _b = alloc.admit(Flow::new(0, 1, 200.0)).unwrap();
            let c = alloc.admit(Flow::new(0, 1, 100.0)).unwrap();
            let _d = alloc.admit(Flow::new(0, 1, 200.0)).unwrap();
            assert_eq!((c.first_slot, c.slot_count), (10, 3));
            assert!(alloc.release(&a));
            assert!(alloc.release(&c));
            alloc.admit(Flow::new(0, 1, 100.0)).unwrap()
        };
        assert_eq!(make(AdmissionPolicy::FirstFit).first_slot, 0);
        assert_eq!(make(AdmissionPolicy::BestFit).first_slot, 10);
        assert_eq!(make(AdmissionPolicy::ExactFit).first_slot, 10);
    }

    #[test]
    fn detour_falls_back_to_wider_modulation() {
        let f = fabric(8);
        let slots = link_slot_budget(&f);
        let mut alloc = SpectrumAllocator::new(&f, FlexGridConfig::default());
        // Fill the direct link 0→1 with 200 Gbps lightpaths (5 slots each).
        let direct_capacity = slots / 5;
        for _ in 0..direct_capacity {
            let lp = alloc.admit(Flow::new(0, 1, 200.0)).unwrap();
            assert_eq!(lp.hops(), 1);
        }
        let detour = alloc.admit(Flow::new(0, 1, 200.0)).unwrap();
        assert_eq!(detour.via, Some(2));
        assert_eq!(detour.hops(), 2);
        assert_eq!(detour.modulation.label, "8QAM");
        // Two links booked: the detour's block appears on (0,2) and (2,1).
        assert_eq!(alloc.occupied_slots(0, 2).len(), detour.slot_count as usize);
        assert_eq!(alloc.occupied_slots(2, 1).len(), detour.slot_count as usize);
    }

    #[test]
    fn release_then_readmit_restores_identical_state() {
        let f = fabric(8);
        let mut alloc = SpectrumAllocator::new(&f, FlexGridConfig::default());
        alloc.admit(Flow::new(0, 1, 200.0)).unwrap();
        alloc.admit(Flow::new(2, 5, 150.0)).unwrap();
        let before = alloc.clone();
        let lp = alloc.admit(Flow::new(4, 6, 300.0)).unwrap();
        assert!(alloc.release(&lp));
        assert_eq!(alloc.occupied_slots(4, 6), before.occupied_slots(4, 6));
        assert_eq!(alloc.active_lightpaths(), before.active_lightpaths());
        assert_eq!(alloc.carried_gbps(), before.carried_gbps());
        let again = alloc.admit(Flow::new(4, 6, 300.0)).unwrap();
        assert_eq!(again, lp);
    }

    #[test]
    fn admission_never_decreases_carried_gbps() {
        let f = fabric(12);
        let mut alloc = SpectrumAllocator::new(&f, FlexGridConfig::default());
        let mut carried = 0.0;
        for e in 0..40u32 {
            let flow = Flow::new(e % 12, (e * 5 + 1) % 12, 100.0 + (e % 7) as f64 * 60.0);
            alloc.admit(flow);
            let now = alloc.carried_gbps();
            assert!(now >= carried, "carried dropped: {now} < {carried}");
            carried = now;
        }
    }

    #[test]
    fn overload_blocks_and_repack_recovers_fragmentation() {
        let f = fabric(8);
        let mut overload = vec![];
        for _ in 0..10 {
            overload.push(Flow::new(0, 1, 400.0));
        }
        let sim = FlexGridSimulator::new(&f, FlexGridConfig::default());
        let report = sim.run(&[overload.clone()]);
        assert!(report.blocked > 0);
        let bp = report.blocking_probability();
        assert!(bp > 0.0 && bp <= 1.0, "blocking probability {bp}");
        // EveryEpoch repacks: defrag events counted from the second epoch on.
        let repack = FlexGridConfig {
            policy: SpectrumPolicy {
                admission: AdmissionPolicy::FirstFit,
                defrag: DefragPolicy::EveryEpoch,
            },
            ..FlexGridConfig::default()
        };
        let sim = FlexGridSimulator::new(&f, repack);
        let report = sim.run(&[overload.clone(), overload]);
        assert_eq!(report.defrag_events, 1);
    }

    #[test]
    fn incremental_solver_equals_exhaustive_oracle() {
        let f = fabric(12);
        let epochs = canned_epochs(12);
        for policy in all_policies() {
            let config = FlexGridConfig {
                policy,
                ..FlexGridConfig::default()
            };
            let sim = FlexGridSimulator::new(&f, config);
            let oracle = sim.run_exhaustive(&epochs);
            assert_eq!(sim.run(&epochs), oracle, "{}", policy.label());
            let mut arena = FlexGridArena::new();
            assert_eq!(
                sim.run_in(&mut arena, &epochs),
                oracle,
                "{}",
                policy.label()
            );
            // Dirty arena: rerun without recycling; prepare must neutralize.
            assert_eq!(
                sim.run_in(&mut arena, &epochs),
                oracle,
                "dirty arena {}",
                policy.label()
            );
        }
    }

    #[test]
    fn one_arena_serves_different_rack_sizes() {
        let mut arena = FlexGridArena::new();
        for mcms in [12u32, 16, 8] {
            let f = fabric(mcms);
            let epochs = canned_epochs(mcms);
            let sim = FlexGridSimulator::new(&f, FlexGridConfig::default());
            let report = sim.run_in(&mut arena, &epochs);
            assert_eq!(report, sim.run_exhaustive(&epochs), "{mcms} MCMs");
            arena.recycle(report);
        }
    }

    #[test]
    fn degenerate_flows_never_occupy_spectrum() {
        let f = fabric(8);
        let sim = FlexGridSimulator::new(&f, FlexGridConfig::default());
        let epochs = vec![vec![
            Flow::new(2, 2, 500.0),
            Flow::new(0, 1, f64::NAN),
            Flow::new(3, 4, -25.0),
            Flow::new(99, 1, 100.0),
        ]];
        let report = sim.run(&epochs);
        assert_eq!(report, sim.run_exhaustive(&epochs));
        let e = &report.epochs[0];
        assert_eq!(e.slots_in_use, 0);
        assert_eq!(e.carried_local_gbps, 500.0);
        // The out-of-range endpoint is a real (unroutable) request.
        assert_eq!((e.requests, e.blocked), (1, 1));
    }

    #[test]
    fn runs_are_deterministic() {
        let f = fabric(12);
        let epochs = canned_epochs(12);
        let sim = FlexGridSimulator::new(&f, FlexGridConfig::default());
        assert_eq!(sim.run(&epochs), sim.run(&epochs));
    }
}
