//! # fabric
//!
//! The rack-scale optical fabric of the paper: passive AWGR all-to-all
//! topologies, staggered spatial/wave-selective switch fabrics, distributed
//! indirect (Valiant) routing with piggybacked occupancy state, a flow-level
//! wavelength-allocation simulator, and the electronic-switch baselines the
//! paper compares against (Section V-B, Section IV, Section VI-A/D).
//!
//! * [`awgr`] — the cyclic wavelength-shuffle of a single N x N AWGR.
//! * [`rackfabric`] — the full rack construction: 350 MCMs x 32 fibers x
//!   64 wavelengths connected either to six parallel cascaded AWGRs
//!   (case A) or to eleven staggered 256-port wave-selective/spatial
//!   switches (case B), with the paper's connectivity guarantees (≥5 direct
//!   wavelengths per MCM pair for AWGRs, ≥3 direct switch paths otherwise).
//! * [`routing`] — per-source indirect routing with (possibly stale)
//!   piggybacked wavelength-occupancy state.
//! * [`flowsim`] — a flow-level simulator that allocates direct and indirect
//!   wavelength capacity to a demand matrix and reports satisfaction,
//!   hop counts, and latency.
//! * [`timeline`] — an epoch-based temporal simulator on top of [`flowsim`]:
//!   one demand matrix per reconfiguration interval, evaluated against a
//!   persistent wavelength assignment under static / greedy-re-steer /
//!   hysteresis reallocation policies (the Section VI-A bandwidth-steering
//!   argument made quantitative).
//! * [`flexgrid`] — an elastic optical spectrum layer over the same
//!   topologies: 12.5 GHz frequency slots per MCM pair, K-shortest-path
//!   candidate routing, a reach-limited modulation ladder, guardband
//!   enforcement, and a first-fit / best-fit / exact-fit × defragmentation
//!   policy zoo with an in-tree exhaustive oracle.
//! * [`electronic`] — PCIe Gen5 tree / Anton 3 / Rosetta-class electronic
//!   switch latency and bandwidth models (the 85 ns comparison point of
//!   Fig. 12).
//!
//! Demand matrices for [`flowsim`] come from `workloads::traffic`, and the
//! `core::sweep` engine sweeps this crate's topology knobs (rack size,
//! fibers, wavelengths, fabric kind) as grid axes. See the repository's
//! `ARCHITECTURE.md` for the full crate DAG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod awgr;
pub mod demand;
pub mod electronic;
pub mod flexgrid;
pub mod flowsim;
pub mod rackfabric;
pub mod routing;
pub mod timeline;

pub use awgr::Awgr;
pub use demand::DemandMatrix;
pub use electronic::{ElectronicFabric, ElectronicSwitchKind};
pub use flexgrid::{
    link_slot_budget, modulation_for_hops, AdmissionPolicy, DefragPolicy, FlexEpochResult,
    FlexGridArena, FlexGridConfig, FlexGridReport, FlexGridSimulator, Lightpath, ModulationFormat,
    SpectrumAllocator, SpectrumPolicy, MODULATION_LADDER,
};
pub use flowsim::{Flow, FlowArena, FlowSimConfig, FlowSimReport, FlowSimulator};
pub use rackfabric::{FabricKind, FabricReport, RackFabric, RackFabricConfig};
pub use routing::{IndirectRouter, OccupancyBoard, RouteDecision, RoutingStats};
pub use timeline::{
    EpochResult, ReallocationPolicy, TimelineArena, TimelineConfig, TimelineReport,
    TimelineSimulator,
};
