//! # bench
//!
//! The paper-artifact harness: one binary per table/figure of the paper's
//! evaluation plus Criterion benches over the underlying models. The
//! library itself is intentionally empty — each artifact is a standalone
//! binary in `src/bin/` so that `cargo run --bin <artifact>` regenerates
//! exactly one paper result.
//!
//! | binary | paper artifact | engine route |
//! |---|---|---|
//! | `table1` | Table I — WDM link technologies | [`disagg_core::sweep::artifacts::table1`] |
//! | `table2` | Table II — high-radix photonic switches | `disagg_core::rack_analysis` |
//! | `table3` | Table III — chips/MCM, MCMs/rack | [`disagg_core::sweep::artifacts::table3`] |
//! | `table4` | Table IV — switch candidates | `disagg_core::rack_analysis` |
//! | `fig5_connectivity` | Fig. 5 — fabric connectivity guarantees | `fabric::RackFabric::report` |
//! | `fig6` | Fig. 6 — CPU slowdown by suite at +35 ns | `disagg_core::cpu_experiments` |
//! | `fig7` | Fig. 7 — slowdown vs. LLC miss rate | [`disagg_core::sweep::artifacts::fig7`] |
//! | `fig8` | Fig. 8 — CPU 25/30/35 ns sensitivity | `disagg_core::cpu_experiments` |
//! | `fig9` | Fig. 9 — GPU slowdown 25/30/35 ns | [`disagg_core::sweep::artifacts::fig9`] |
//! | `fig10` | Fig. 10 — GPU slowdown correlations | [`disagg_core::sweep::artifacts::fig10`] |
//! | `fig11` | Fig. 11 — CPU vs GPU on shared Rodinia | [`disagg_core::sweep::artifacts::fig11`] |
//! | `fig12` | Fig. 12 — photonic vs best electronic | `disagg_core` experiments |
//! | `power_overhead` | Sec. VI-C — photonic power overhead | [`disagg_core::sweep::artifacts::power_overhead`] |
//! | `sweep` | user-defined scenario grids | [`disagg_core::sweep::SweepGrid`] |
//! | `timeline` | temporal steering sweeps | [`disagg_core::sweep::SweepGrid::timelines`] |
//! | `energy` | energy-aware sweeps + policy tradeoff | [`disagg_core::energy`] |
//!
//! Binaries with an `artifacts` route run through the `core::sweep` engine
//! and accept `--json` to emit the unified
//! [`SweepReport`](disagg_core::report::SweepReport) schema; the remaining
//! analytical binaries (`ber_fec`, `bandwidth_analysis`, `iso_performance`,
//! `calibrate`) print Section VI-A/C/D/E analyses directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
