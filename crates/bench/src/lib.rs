//! Benchmark harness support library. The interesting code lives in the bench binaries and criterion benches.
