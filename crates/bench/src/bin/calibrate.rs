//! Calibration dump: per-benchmark slowdowns, LLC miss rates, and suite
//! averages for the CPU and GPU studies. Used to check that the synthetic
//! workload parameters land the suite-level behaviour in the paper's ranges.

use disagg_core::cpu_experiments::{
    miss_rate_correlation, run_cpu_experiment, summarize_by_suite, CpuExperimentConfig,
};
use disagg_core::gpu_experiments::{
    average_slowdown, gpu_correlations, run_gpu_experiment, GpuExperimentConfig,
};
use disagg_core::report;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let accesses: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);

    let cfg = CpuExperimentConfig {
        accesses_per_benchmark: accesses,
        scale_divisor: scale,
        ..CpuExperimentConfig::default()
    };
    eprintln!("running CPU sweep: scale=1/{scale}, {accesses} accesses per benchmark ...");
    let start = std::time::Instant::now();
    let mut results = run_cpu_experiment(&cfg);
    results.sort_by(|a, b| {
        a.benchmark
            .id()
            .cmp(&b.benchmark.id())
            .then((a.core_kind as u8).cmp(&(b.core_kind as u8)))
    });
    eprintln!("CPU sweep took {:.1}s", start.elapsed().as_secs_f64());

    println!(
        "{}",
        report::format_cpu_results("Per-benchmark slowdowns", &results, &cfg.latencies_ns)
    );
    println!();
    let summaries = summarize_by_suite(&results, 35.0);
    println!(
        "{}",
        report::format_suite_summaries("Suite summaries at +35 ns", &summaries)
    );

    for kind in [cpusim::CoreKind::InOrder, cpusim::CoreKind::OutOfOrder] {
        let corr = miss_rate_correlation(&results, 35.0, |r| r.core_kind == kind);
        println!(
            "Pearson slowdown vs LLC miss rate ({kind}): {:?}",
            corr.pearson
        );
    }

    let gpu = run_gpu_experiment(&GpuExperimentConfig::default());
    println!(
        "\nGPU average slowdown @35ns: {:.2}%",
        average_slowdown(&gpu, 35.0)
    );
    let c = gpu_correlations(&gpu, 35.0);
    println!(
        "GPU correlations: miss={:?} hbm={:?} memfrac={:?}",
        c.with_l2_miss_rate, c.with_hbm_transactions, c.with_memory_fraction
    );
    println!(
        "{}",
        report::format_gpu_results("GPU slowdowns", &gpu, &[25.0, 30.0, 35.0, 85.0])
    );
}
