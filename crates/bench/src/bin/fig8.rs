//! Regenerates Fig. 8: slowdown for 25, 30, and 35 ns of additional
//! LLC-to-memory latency for in-order and out-of-order cores.

use disagg_core::cpu_experiments::{run_cpu_experiment, summarize_by_suite, CpuExperimentConfig};
use disagg_core::report::format_suite_summaries;

fn main() {
    let cfg = CpuExperimentConfig {
        latencies_ns: vec![0.0, 25.0, 30.0, 35.0],
        ..CpuExperimentConfig::default()
    };
    let results = run_cpu_experiment(&cfg);
    for latency in [25.0, 30.0, 35.0] {
        let summaries = summarize_by_suite(&results, latency);
        println!(
            "{}",
            format_suite_summaries(
                &format!("Fig. 8 — slowdown with +{latency} ns of LLC-memory latency"),
                &summaries
            )
        );
    }
}
