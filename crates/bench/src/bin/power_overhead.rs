//! Regenerates the Section VI-C power analysis: ~11 kW of photonics on a
//! ~210 kW rack, a ~5% overhead.

use rack::power::RackPowerModel;

fn main() {
    let model = RackPowerModel::paper_rack();
    let o = model.photonic_overhead();
    println!("Power overhead (Section VI-C)");
    println!("  transceiver power : {:>10.1} W", o.transceiver_power_w);
    println!("  switch power      : {:>10.1} W", o.switch_power_w);
    println!("  photonic total    : {:>10.1} W", o.photonic_power_w);
    println!("  baseline rack     : {:>10.1} W", o.baseline_rack_power_w);
    println!("  overhead          : {:>10.2} %", o.overhead_percent());
}
