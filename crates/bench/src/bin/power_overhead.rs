//! Regenerates the Section VI-C power analysis: ~11 kW of photonics on a
//! ~210 kW rack, a ~5% overhead — computed through the sweep engine's
//! energy layer (`core::energy`). Pass `--json` for the `SweepReport` with
//! the full `EnergyStats` block, including the utilization-scaled
//! counterpoint to the paper's always-on assumption.

use disagg_core::sweep::artifacts;

fn main() {
    artifacts::power_overhead().emit();
}
