//! Regenerates the Section VI-E iso-performance comparison: 4x fewer memory
//! modules, 2x fewer NICs, ~44% fewer chips at equal throughput; or ~7% more
//! chips for double the computational throughput.

use rack::isoperf::IsoPerformanceAnalysis;

fn main() {
    let a = IsoPerformanceAnalysis::paper();
    println!("Iso-performance comparison (Section VI-E)");
    println!(
        "{:<16} {:>10} {:>16}",
        "resource", "baseline", "disaggregated"
    );
    println!(
        "{:<16} {:>10} {:>16}",
        "CPUs", a.baseline.cpus, a.disaggregated.cpus
    );
    println!(
        "{:<16} {:>10} {:>16}",
        "GPUs", a.baseline.gpus, a.disaggregated.gpus
    );
    println!(
        "{:<16} {:>10} {:>16}",
        "NICs", a.baseline.nics, a.disaggregated.nics
    );
    println!(
        "{:<16} {:>10} {:>16}",
        "DDR4 modules", a.baseline.ddr4_modules, a.disaggregated.ddr4_modules
    );
    println!(
        "{:<16} {:>10} {:>16}",
        "total modules",
        a.baseline.total(),
        a.disaggregated.total()
    );
    println!("chip reduction: {:.1}%", a.chip_reduction() * 100.0);
    let (increase, throughput) = a.throughput_doubling_alternative(128);
    println!(
        "alternative: +128 compute packages = +{:.1}% chips for {:.1}x throughput",
        increase * 100.0,
        throughput
    );
}
