//! Regenerates Fig. 12: speedup of the photonically-disaggregated system
//! (+35 ns of memory latency) over an equivalent system built with modern
//! electronic switches (+85 ns), for CPU benchmarks (PARSEC counted once via
//! its medium inputs) and the 24 GPU applications.

use cpusim::CoreKind;
use disagg_core::cpu_experiments::{
    electronic_comparison, run_cpu_experiment, CpuExperimentConfig,
};
use disagg_core::gpu_experiments::{run_gpu_experiment, GpuExperimentConfig};

fn main() {
    let cfg = CpuExperimentConfig {
        latencies_ns: vec![0.0, 35.0, 85.0],
        ..CpuExperimentConfig::default()
    };
    let results = run_cpu_experiment(&cfg);
    let rows = electronic_comparison(&results, true);

    println!("Fig. 12 — speedup of photonic (35 ns) over electronic (85 ns) disaggregation");
    println!("\nCPU benchmarks (PARSEC/NAS deduplicated to one input size):");
    println!("{:<38} {:<9} {:>10}", "benchmark", "core", "speedup");
    for row in &rows {
        println!(
            "{:<38} {:<9} {:>9.1}%",
            row.benchmark,
            row.core_kind.to_string(),
            row.speedup_percent
        );
    }
    for kind in [CoreKind::InOrder, CoreKind::OutOfOrder] {
        let s: Vec<f64> = rows
            .iter()
            .filter(|r| r.core_kind == kind)
            .map(|r| r.speedup_percent)
            .collect();
        let avg = s.iter().sum::<f64>() / s.len().max(1) as f64;
        let max = s.iter().cloned().fold(0.0, f64::max);
        println!("{kind} CPU average speedup {avg:.1}%, maximum {max:.1}%");
    }

    let gpu = run_gpu_experiment(&GpuExperimentConfig {
        latencies_ns: vec![0.0, 35.0, 85.0],
        ..GpuExperimentConfig::default()
    });
    println!("\nGPU applications:");
    let mut speedups = Vec::new();
    for r in &gpu {
        let s = r.speedup_between(35.0, 85.0).unwrap_or(0.0);
        speedups.push(s);
        println!("{:<20} {:>9.2}%", r.name, s);
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    println!("GPU average speedup {avg:.2}%, maximum {max:.2}%");
}
