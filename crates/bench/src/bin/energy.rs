//! Energy-aware scenario sweeps: the Section VI-C power budget made
//! dynamic, plus the reconfiguration-energy tradeoff between wavelength
//! reallocation policies.
//!
//! ```text
//! cargo run --release --bin energy -- \
//!     --mcms 32 --schedule shifthot4,hpcmix --policy static,greedy,hyst0.9 \
//!     --mode always,util --demand 400 --epochs 3 --json
//! ```
//!
//! With no flags the binary prints two reports:
//!
//! 1. **headline** — the paper's 350-MCM design point under both energy
//!    modes, reproducing the ~11 kW / ~5% Section VI-C totals under the
//!    always-on assumption and showing what utilization-scaled transceivers
//!    would save.
//! 2. **tradeoff** — the PR 3 demand timelines under static / greedy /
//!    hysteresis reallocation, with per-scenario joules, watts, pJ/bit and
//!    reconfiguration energy: how much satisfaction each re-steer buys and
//!    what it costs.
//!
//! Modes: `always` (transceivers at full rate, the paper's pessimistic
//! assumption), `util` (energy follows carried bits; indirect bits pay two
//! link traversals). `--epoch-seconds` and `--reconfig-joules` tune the
//! energy knobs; `--smoke` runs the small fixed CI grid. `--threads N`
//! sets the worker-thread count (default: `PD_THREADS`, then all available
//! cores); output bytes are identical at any thread count. `--json` emits a
//! single document: `{"headline": <SweepReport>, "tradeoff": <SweepReport>}`
//! (just the one `SweepReport` in `--smoke` mode).

use std::process::exit;

use disagg_core::energy::{EnergyConfig, EnergyMode};
use disagg_core::report::format_sweep_report;
use disagg_core::sweep::{artifacts, configure_threads, SweepGrid};
use fabric::{FabricKind, ReallocationPolicy};
use workloads::{DemandTimeline, TrafficPattern};

fn usage() -> ! {
    eprintln!(
        "usage: energy [--mcms N,..] [--fabric awgr|wave|spatial,..] [--schedule S,..]\n\
         \x20             [--policy static|greedy|hystX,..] [--mode always|util,..]\n\
         \x20             [--demand GBPS] [--epochs N] [--epoch-seconds S]\n\
         \x20             [--reconfig-joules J] [--seed N] [--threads N] [--json] [--smoke]\n\
         schedules: shifthotN | hpcmix | steady"
    );
    exit(2);
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Vec<T> {
    value
        .split(',')
        .map(|v| {
            v.trim().parse().unwrap_or_else(|_| {
                eprintln!("energy: invalid value {v:?} for {flag}");
                exit(2);
            })
        })
        .collect()
}

fn parse_scalar<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    if value.contains(',') {
        eprintln!("energy: {flag} takes a single value, got list {value:?}");
        exit(2);
    }
    value.trim().parse().unwrap_or_else(|_| {
        eprintln!("energy: invalid value {value:?} for {flag}");
        exit(2);
    })
}

fn parse_fabric(value: &str) -> Vec<FabricKind> {
    value
        .split(',')
        .map(|v| match v.trim() {
            "awgr" => FabricKind::ParallelAwgrs,
            "wave" => FabricKind::WaveSelective,
            "spatial" => FabricKind::Spatial,
            other => {
                eprintln!("energy: unknown fabric {other:?} (awgr|wave|spatial)");
                exit(2);
            }
        })
        .collect()
}

fn parse_policies(value: &str) -> Vec<ReallocationPolicy> {
    value
        .split(',')
        .map(|v| {
            let v = v.trim();
            match v {
                "static" => ReallocationPolicy::Static,
                "greedy" => ReallocationPolicy::GreedyResteer,
                _ => {
                    let threshold = v
                        .strip_prefix("hyst")
                        .and_then(|t| t.parse::<f64>().ok())
                        .filter(|t| (0.0..=1.0).contains(t));
                    match threshold {
                        Some(min_satisfaction) => {
                            ReallocationPolicy::Hysteresis { min_satisfaction }
                        }
                        None => {
                            eprintln!(
                                "energy: unknown policy {v:?} (static|greedy|hystX, 0<=X<=1)"
                            );
                            exit(2);
                        }
                    }
                }
            }
        })
        .collect()
}

fn parse_modes(value: &str) -> Vec<EnergyMode> {
    value
        .split(',')
        .map(|v| match v.trim() {
            "always" | "always-on" => EnergyMode::AlwaysOn,
            "util" | "utilization" => EnergyMode::UtilizationScaled,
            other => {
                eprintln!("energy: unknown mode {other:?} (always|util)");
                exit(2);
            }
        })
        .collect()
}

fn parse_schedules(value: &str, demand_gbps: f64, epochs_per_phase: u32) -> Vec<DemandTimeline> {
    value
        .split(',')
        .map(|v| {
            let v = v.trim();
            if let Some(hot) = v
                .strip_prefix("shifthot")
                .and_then(|n| n.parse::<u32>().ok())
            {
                DemandTimeline::shifting_hotspot(hot, demand_gbps, 4, epochs_per_phase, 5)
            } else if v == "hpcmix" {
                DemandTimeline::hpc_mix(demand_gbps, epochs_per_phase)
            } else if v == "steady" {
                DemandTimeline::steady(
                    TrafficPattern::Permutation { demand_gbps },
                    epochs_per_phase * 4,
                )
            } else {
                eprintln!("energy: unknown schedule {v:?} (shifthotN|hpcmix|steady)");
                exit(2);
            }
        })
        .collect()
}

/// The Section VI-C headline grid: the paper design point under both
/// energy modes.
fn headline_grid(config: EnergyConfig) -> SweepGrid {
    SweepGrid::named("energy-headline")
        .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
        .energy_config(config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid = SweepGrid::named("energy-tradeoff").mcm_counts([32]);
    let mut schedules = "shifthot4,hpcmix".to_string();
    let mut policies = "static,greedy,hyst0.9".to_string();
    let mut modes = "always,util".to_string();
    let mut demand = 400.0;
    let mut epochs_per_phase = 3u32;
    let mut config = EnergyConfig::default();
    let mut json = false;
    let mut smoke = false;
    let mut threads: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take = || {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| usage())
        };
        match flag {
            "--threads" => {
                threads = Some(parse_scalar::<usize>("--threads", &take()).max(1));
            }
            "--mcms" => {
                let v = take();
                grid = grid.mcm_counts(parse_list("--mcms", &v));
            }
            "--fabric" => {
                let v = take();
                grid = grid.fabric_kinds(parse_fabric(&v));
            }
            "--schedule" => schedules = take(),
            "--policy" => policies = take(),
            "--mode" => modes = take(),
            "--demand" => demand = parse_scalar("--demand", &take()),
            "--epochs" => epochs_per_phase = parse_scalar("--epochs", &take()),
            "--epoch-seconds" => {
                config.epoch_duration_s = parse_scalar("--epoch-seconds", &take());
            }
            "--reconfig-joules" => {
                config.reconfiguration_energy_j = parse_scalar("--reconfig-joules", &take());
            }
            "--seed" => {
                let v: u64 = parse_scalar("--seed", &take());
                grid = grid.base_seed(v);
            }
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("energy: unknown flag {other:?}");
                usage();
            }
        }
        i += 1;
    }

    configure_threads(threads);
    if smoke {
        // The fixed CI grid, pinned by tests/golden/energy_smoke.json.
        let artifact = artifacts::energy_smoke();
        if json {
            println!("{}", artifact.report.to_json());
        } else {
            print!("{}", artifact.text);
        }
        return;
    }

    let headline = headline_grid(config).run();
    let grid = grid
        .timelines(parse_schedules(&schedules, demand, epochs_per_phase))
        .realloc_policies(parse_policies(&policies))
        .energy_modes(parse_modes(&modes))
        .energy_config(config);
    let tradeoff = grid.run();

    if json {
        // One JSON document, like every other engine-backed binary: the two
        // reports wrapped under their names.
        println!(
            "{{\"headline\":{},\"tradeoff\":{}}}",
            headline.to_json(),
            tradeoff.to_json()
        );
        return;
    }

    print!("{}", format_sweep_report(&headline));
    if let Some((_, always_on)) = headline
        .energy
        .iter()
        .find(|(_, e)| e.mode == EnergyMode::AlwaysOn)
    {
        println!(
            "Section VI-C check: photonic power {:.1} kW, {:.1}% of compute/memory power \
             (paper: ~11 kW, ~5%)",
            always_on.watts() / 1000.0,
            always_on.photonic_compute_ratio() * 100.0
        );
    }
    println!();
    print!("{}", format_sweep_report(&tradeoff));
}
