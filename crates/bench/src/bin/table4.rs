//! Regenerates Table IV: the optical switch configurations used in the rack
//! study (cascaded AWGRs, spatial, wave-selective).

use photonics::switch::SwitchConfig;

fn main() {
    println!("Table IV — switch configurations for the rack study");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>12}",
        "switch type", "radix", "wl/port", "Gbps/wl", "scheduler?"
    );
    for cfg in SwitchConfig::ALL {
        println!(
            "{:<16} {:>8} {:>10} {:>10.0} {:>12}",
            cfg.to_string(),
            cfg.effective_radix(),
            cfg.effective_wavelengths_per_port(),
            cfg.channel_bandwidth().gbps(),
            if cfg.needs_scheduler() { "yes" } else { "no" }
        );
    }
}
