//! Regenerates Fig. 9: GPU slowdown for 25, 30, and 35 ns of additional
//! LLC (L2) to HBM latency across the 24 GPU applications.

use disagg_core::gpu_experiments::{average_slowdown, run_gpu_experiment, GpuExperimentConfig};
use disagg_core::report::format_gpu_results;

fn main() {
    let results = run_gpu_experiment(&GpuExperimentConfig::default());
    println!(
        "{}",
        format_gpu_results(
            "Fig. 9 — GPU slowdown for 25/30/35 ns of additional LLC-HBM latency",
            &results,
            &[25.0, 30.0, 35.0]
        )
    );
    println!(
        "average slowdown at +35 ns: {:.2}% (paper: 5.35%)",
        average_slowdown(&results, 35.0)
    );
}
