//! Regenerates Fig. 9: GPU slowdown for 25, 30, and 35 ns of additional
//! LLC (L2) to HBM latency across the 24 GPU applications. Pass `--json`
//! for the machine-readable sweep report.

fn main() {
    disagg_core::sweep::artifacts::fig9().emit();
}
