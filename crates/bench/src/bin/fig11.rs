//! Regenerates Fig. 11: slowdown of the Rodinia benchmarks that run on both
//! CPUs and GPUs, comparing in-order CPUs, OOO CPUs, and the A100 GPU at
//! +35 ns (the paper's point: GPUs tolerate the latency best, <=12%).

use cpusim::CoreKind;
use disagg_core::cpu_experiments::{run_cpu_experiment_subset, CpuExperimentConfig};
use disagg_core::gpu_experiments::{run_gpu_experiment, GpuExperimentConfig};
use workloads::cpu::rodinia_cpu_gpu_intersection;

fn main() {
    let shared = rodinia_cpu_gpu_intersection();
    let cfg = CpuExperimentConfig {
        latencies_ns: vec![0.0, 35.0],
        ..CpuExperimentConfig::default()
    };
    let cpu = run_cpu_experiment_subset(&cfg, |b| {
        b.suite == workloads::cpu::CpuSuite::Rodinia && shared.contains(&b.name.as_str())
    });
    let gpu = run_gpu_experiment(&GpuExperimentConfig::default());

    println!("Fig. 11 — CPU vs GPU slowdown on shared Rodinia benchmarks (+35 ns)");
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "benchmark", "in-order CPU", "OOO CPU", "GPU"
    );
    for name in &shared {
        let io = cpu
            .iter()
            .find(|r| r.benchmark.name == *name && r.core_kind == CoreKind::InOrder)
            .and_then(|r| r.slowdown_at(35.0))
            .unwrap_or(f64::NAN);
        let ooo = cpu
            .iter()
            .find(|r| r.benchmark.name == *name && r.core_kind == CoreKind::OutOfOrder)
            .and_then(|r| r.slowdown_at(35.0))
            .unwrap_or(f64::NAN);
        let g = gpu
            .iter()
            .find(|r| r.name == *name)
            .and_then(|r| r.slowdown_at(35.0))
            .unwrap_or(f64::NAN);
        println!("{name:<16} {io:>11.1}% {ooo:>11.1}% {g:>9.2}%");
    }
}
