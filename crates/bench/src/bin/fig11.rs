//! Regenerates Fig. 11: slowdown of the Rodinia benchmarks that run on both
//! CPUs and GPUs, comparing in-order CPUs, OOO CPUs, and the A100 GPU at
//! +35 ns (the paper's point: GPUs tolerate the latency best, <=12%). Pass
//! `--json` for the machine-readable sweep report.

fn main() {
    disagg_core::sweep::artifacts::fig11().emit();
}
