//! Regenerates Fig. 10: per-application GPU slowdown at +35 ns alongside the
//! LLC (L2) miss rate and HBM transactions per instruction, plus the Pearson
//! correlations (paper: 0.87 with miss rate, 0.79 with HBM transactions, no
//! significant correlation with the memory-instruction fraction).

use disagg_core::gpu_experiments::{gpu_correlations, run_gpu_experiment, GpuExperimentConfig};

fn main() {
    let results = run_gpu_experiment(&GpuExperimentConfig::default());
    println!("Fig. 10 — GPU slowdown vs LLC miss rate and HBM transactions (+35 ns)");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10}",
        "application", "slowdown%", "L2 miss%", "HBM tx/instr", "mem frac"
    );
    for r in &results {
        println!(
            "{:<16} {:>9.2}% {:>11.1}% {:>12.3} {:>10.2}",
            r.name,
            r.slowdown_at(35.0).unwrap_or(0.0),
            r.l2_miss_rate * 100.0,
            r.hbm_transactions_per_instruction,
            r.memory_instruction_fraction
        );
    }
    let c = gpu_correlations(&results, 35.0);
    println!("\nPearson correlations of slowdown with:");
    println!("  LLC (L2) miss rate          : {:?}", c.with_l2_miss_rate);
    println!(
        "  HBM transactions/instruction: {:?}",
        c.with_hbm_transactions
    );
    println!(
        "  memory instruction fraction : {:?}",
        c.with_memory_fraction
    );
}
