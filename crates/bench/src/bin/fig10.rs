//! Regenerates Fig. 10: per-application GPU slowdown at +35 ns alongside the
//! LLC (L2) miss rate and HBM transactions per instruction, plus the Pearson
//! correlations (paper: 0.87 with miss rate, 0.79 with HBM transactions, no
//! significant correlation with the memory-instruction fraction). Pass
//! `--json` for the machine-readable sweep report.

fn main() {
    disagg_core::sweep::artifacts::fig10().emit();
}
