//! Verifies the Fig. 5 / Section V-B connectivity properties: with six
//! parallel AWGRs every MCM pair has at least five direct 25 Gbps
//! wavelengths (125 Gbps); with eleven staggered wave-selective switches
//! every pair shares at least three switches (2304 Gbps after
//! reconfiguration).

use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};

fn main() {
    for kind in [
        FabricKind::ParallelAwgrs,
        FabricKind::WaveSelective,
        FabricKind::Spatial,
    ] {
        let fabric = RackFabric::new(RackFabricConfig::paper_rack(kind));
        let r = fabric.report();
        println!("{kind:?}:");
        println!("  parallel planes           : {}", r.planes);
        println!("  min direct wavelengths    : {}", r.min_direct_wavelengths);
        println!("  max direct wavelengths    : {}", r.max_direct_wavelengths);
        println!(
            "  min direct bandwidth      : {:.0} Gbps",
            r.min_direct_bandwidth_gbps
        );
        println!(
            "  escape bandwidth per MCM  : {:.0} Gbps",
            r.escape_bandwidth_gbps
        );
        println!("  needs scheduler           : {}", r.needs_scheduler);
        println!();
    }
}
