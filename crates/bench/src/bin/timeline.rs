//! Temporal bandwidth-steering sweeps: phased demand timelines under
//! wavelength-reallocation policies, through the `core::sweep` timeline
//! axis.
//!
//! ```text
//! cargo run --release --bin timeline -- \
//!     --mcms 32,64 --fabric awgr --schedule shifthot4,hpcmix,steady \
//!     --policy static,greedy,hyst0.9 --demand 400 --epochs 3 --json
//! ```
//!
//! Schedules: `shifthotN` (N-hot incast whose hot set rotates every phase),
//! `hpcmix` (halo -> ramp -> GPU burst -> drain, scales derived from the
//! GPU workload registry), `steady` (a single flat permutation phase).
//! Policies: `static`, `greedy`, `hystX` (re-steer below satisfaction X).
//! `--epochs` sets the epochs per phase; `--smoke` runs a small fixed grid
//! and exits (the CI rot-check mode). `--threads N` sets the worker-thread
//! count (default: `PD_THREADS`, then all available cores); output bytes
//! are identical at any thread count.

use std::process::exit;

use disagg_core::report::format_sweep_report;
use disagg_core::sweep::{configure_threads, SweepGrid};
use fabric::{FabricKind, ReallocationPolicy};
use workloads::{DemandTimeline, TrafficPattern};

fn usage() -> ! {
    eprintln!(
        "usage: timeline [--mcms N,..] [--fabric awgr|wave|spatial,..] [--schedule S,..]\n\
         \x20               [--policy static|greedy|hystX,..] [--demand GBPS] [--epochs N]\n\
         \x20               [--latency NS,..] [--replicates N] [--seed N] [--threads N]\n\
         \x20               [--json] [--smoke]\n\
         schedules: shifthotN | hpcmix | steady"
    );
    exit(2);
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Vec<T> {
    value
        .split(',')
        .map(|v| {
            v.trim().parse().unwrap_or_else(|_| {
                eprintln!("timeline: invalid value {v:?} for {flag}");
                exit(2);
            })
        })
        .collect()
}

fn parse_scalar<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    if value.contains(',') {
        eprintln!("timeline: {flag} takes a single value, got list {value:?}");
        exit(2);
    }
    value.trim().parse().unwrap_or_else(|_| {
        eprintln!("timeline: invalid value {value:?} for {flag}");
        exit(2);
    })
}

fn parse_fabric(value: &str) -> Vec<FabricKind> {
    value
        .split(',')
        .map(|v| match v.trim() {
            "awgr" => FabricKind::ParallelAwgrs,
            "wave" => FabricKind::WaveSelective,
            "spatial" => FabricKind::Spatial,
            other => {
                eprintln!("timeline: unknown fabric {other:?} (awgr|wave|spatial)");
                exit(2);
            }
        })
        .collect()
}

fn parse_policies(value: &str) -> Vec<ReallocationPolicy> {
    value
        .split(',')
        .map(|v| {
            let v = v.trim();
            match v {
                "static" => ReallocationPolicy::Static,
                "greedy" => ReallocationPolicy::GreedyResteer,
                _ => {
                    let threshold = v
                        .strip_prefix("hyst")
                        .and_then(|t| t.parse::<f64>().ok())
                        .filter(|t| (0.0..=1.0).contains(t));
                    match threshold {
                        Some(min_satisfaction) => {
                            ReallocationPolicy::Hysteresis { min_satisfaction }
                        }
                        None => {
                            eprintln!(
                                "timeline: unknown policy {v:?} (static|greedy|hystX, 0<=X<=1)"
                            );
                            exit(2);
                        }
                    }
                }
            }
        })
        .collect()
}

fn parse_schedules(value: &str, demand_gbps: f64, epochs_per_phase: u32) -> Vec<DemandTimeline> {
    value
        .split(',')
        .map(|v| {
            let v = v.trim();
            if let Some(hot) = v
                .strip_prefix("shifthot")
                .and_then(|n| n.parse::<u32>().ok())
            {
                // Four phases, rotating the hot set by a fixed stride of
                // 5 MCMs per phase (coprime with the default rack sizes, so
                // successive hot sets never land on each other).
                DemandTimeline::shifting_hotspot(hot, demand_gbps, 4, epochs_per_phase, 5)
            } else if v == "hpcmix" {
                DemandTimeline::hpc_mix(demand_gbps, epochs_per_phase)
            } else if v == "steady" {
                DemandTimeline::steady(
                    TrafficPattern::Permutation { demand_gbps },
                    epochs_per_phase * 4,
                )
            } else {
                eprintln!("timeline: unknown schedule {v:?} (shifthotN|hpcmix|steady)");
                exit(2);
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid = SweepGrid::named("timeline").mcm_counts([32]);
    let mut schedules = "shifthot4,hpcmix".to_string();
    let mut policies = "static,greedy".to_string();
    let mut demand = 400.0;
    let mut epochs_per_phase = 3u32;
    let mut json = false;
    let mut smoke = false;
    let mut threads: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take = || {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| usage())
        };
        match flag {
            "--threads" => {
                threads = Some(parse_scalar::<usize>("--threads", &take()).max(1));
            }
            "--mcms" => {
                let v = take();
                grid = grid.mcm_counts(parse_list("--mcms", &v));
            }
            "--fabric" => {
                let v = take();
                grid = grid.fabric_kinds(parse_fabric(&v));
            }
            "--schedule" => schedules = take(),
            "--policy" => policies = take(),
            "--demand" => demand = parse_scalar("--demand", &take()),
            "--epochs" => epochs_per_phase = parse_scalar("--epochs", &take()),
            "--latency" => {
                let v = take();
                grid = grid.direct_latencies_ns(parse_list("--latency", &v));
            }
            "--replicates" => {
                let v: u32 = parse_scalar("--replicates", &take());
                grid = grid.replicates(v);
            }
            "--seed" => {
                let v: u64 = parse_scalar("--seed", &take());
                grid = grid.base_seed(v);
            }
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("timeline: unknown flag {other:?}");
                usage();
            }
        }
        i += 1;
    }

    configure_threads(threads);
    if smoke {
        grid = grid.mcm_counts([16]);
        schedules = "shifthot2,steady".to_string();
        policies = "static,greedy".to_string();
        epochs_per_phase = 2;
    }

    let grid = grid
        .timelines(parse_schedules(&schedules, demand, epochs_per_phase))
        .realloc_policies(parse_policies(&policies));
    let report = grid.run();
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", format_sweep_report(&report));
    }
}
