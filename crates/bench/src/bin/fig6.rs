//! Regenerates Fig. 6: average and maximum slowdown for each benchmark suite
//! and input-set size with 35 ns of additional LLC-to-memory latency, for
//! in-order (left panel) and out-of-order (right panel) cores.

use disagg_core::cpu_experiments::{run_cpu_experiment, summarize_by_suite, CpuExperimentConfig};
use disagg_core::report::format_suite_summaries;

fn main() {
    let cfg = CpuExperimentConfig {
        latencies_ns: vec![0.0, 35.0],
        ..CpuExperimentConfig::default()
    };
    let results = run_cpu_experiment(&cfg);
    let summaries = summarize_by_suite(&results, 35.0);
    println!(
        "{}",
        format_suite_summaries(
            "Fig. 6 — average / maximum slowdown per suite and input size (+35 ns)",
            &summaries
        )
    );
}
