//! Regenerates the Section VI-A1 bandwidth-sufficiency analysis: how often
//! the 125 Gbps direct MCM-MCM bandwidth (and a single 25 Gbps wavelength)
//! satisfies observed CPU-memory traffic, and the GPU bandwidth budget with
//! indirect routing. Also exercises the flow-level simulator on a rack-wide
//! demand matrix sampled from the production distributions.

use fabric::flowsim::{Flow, FlowSimConfig, FlowSimulator};
use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
use rack::bandwidth::{BandwidthSufficiency, GpuBandwidthBudget};
use workloads::production::ProductionDistributions;

fn main() {
    let s = BandwidthSufficiency::paper(200_000, 0xBEEF);
    println!(
        "Bandwidth sufficiency (Section VI-A1, {} samples)",
        s.samples
    );
    println!(
        "  direct 125 Gbps sufficient      : {:.3} % of the time",
        s.direct_125gbps_sufficient * 100.0
    );
    println!(
        "  single 25 Gbps wavelength enough: {:.3} % of the time",
        s.single_wavelength_sufficient * 100.0
    );

    let b = GpuBandwidthBudget::paper_awgr();
    println!("\nGPU bandwidth budget with indirect routing");
    println!(
        "  indirect reach              : {:.0} GB/s",
        b.indirect_reach_gbs
    );
    println!(
        "  HBM demand                  : {:.1} GB/s",
        b.hbm_demand_gbs
    );
    println!(
        "  headroom after HBM          : {:.1} GB/s",
        b.headroom_after_hbm_gbs
    );
    println!(
        "  GPU-GPU demand              : {:.1} GB/s",
        b.gpu_to_gpu_demand_gbs
    );
    println!(
        "  headroom after GPU traffic  : {:.1} GB/s",
        b.headroom_after_gpu_traffic_gbs
    );

    // Flow-level check: CPU-memory demand sampled from the production
    // distributions, one flow per CPU<->DDR4 MCM pair.
    let fabric = RackFabric::new(RackFabricConfig::paper_rack(FabricKind::ParallelAwgrs));
    let dist = ProductionDistributions::cori_haswell();
    let nodes = dist.sample_nodes_stable(128, 7);
    let flows: Vec<Flow> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            // CPU MCMs occupy indices 0..10, DDR4 MCMs 312..350 in Table III
            // order; spread node i's CPU->memory demand across them.
            let src = (i % 10) as u32;
            let dst = 312 + (i % 38) as u32;
            Flow::new(src, dst, n.memory_bandwidth_gbs * 8.0)
        })
        .collect();
    let report = FlowSimulator::new(&fabric, FlowSimConfig::default()).run(&flows);
    println!("\nFlow-level simulation of sampled CPU->DDR4 demand (128 nodes)");
    println!("  offered      : {:.1} Gbps", report.offered_gbps);
    println!(
        "  satisfied    : {:.1} Gbps ({:.2}%)",
        report.satisfied_gbps,
        report.satisfaction() * 100.0
    );
    println!(
        "  direct only  : {:.1}% of flows",
        report.direct_only_fraction * 100.0
    );
    println!(
        "  indirect     : {:.1}% of flows",
        report.indirect_fraction * 100.0
    );
    println!("  mean latency : {:.1} ns", report.mean_latency_ns);
}
