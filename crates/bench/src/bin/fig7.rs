//! Regenerates Fig. 7: per-benchmark slowdown vs. LLC miss rate for PARSEC
//! (large inputs) and Rodinia on in-order cores, with the Pearson
//! correlation coefficients the paper quotes (0.89 / 0.76, and 0.822 across
//! all PARSEC inputs). Pass `--json` for the machine-readable sweep report.

fn main() {
    disagg_core::sweep::artifacts::fig7().emit();
}
