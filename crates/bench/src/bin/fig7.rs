//! Regenerates Fig. 7: per-benchmark slowdown vs. LLC miss rate for PARSEC
//! (large inputs) and Rodinia on in-order cores, with the Pearson
//! correlation coefficients the paper quotes (0.89 / 0.76, and 0.822 across
//! all PARSEC inputs).

use cpusim::CoreKind;
use disagg_core::cpu_experiments::{
    miss_rate_correlation, run_cpu_experiment, CpuExperimentConfig,
};
use disagg_core::report::format_miss_rate_rows;
use workloads::cpu::{CpuSuite, InputSize};

fn main() {
    let cfg = CpuExperimentConfig {
        latencies_ns: vec![0.0, 35.0],
        ..CpuExperimentConfig::default()
    };
    let results = run_cpu_experiment(&cfg);

    let parsec_large = miss_rate_correlation(&results, 35.0, |r| {
        r.core_kind == CoreKind::InOrder
            && r.benchmark.suite == CpuSuite::Parsec
            && r.benchmark.input == InputSize::Large
    });
    println!(
        "{}",
        format_miss_rate_rows(
            "Fig. 7 (left) — PARSEC large, in-order",
            &parsec_large.points
        )
    );
    println!("Pearson r = {:?}\n", parsec_large.pearson);

    let rodinia = miss_rate_correlation(&results, 35.0, |r| {
        r.core_kind == CoreKind::InOrder && r.benchmark.suite == CpuSuite::Rodinia
    });
    println!(
        "{}",
        format_miss_rate_rows("Fig. 7 (right) — Rodinia, in-order", &rodinia.points)
    );
    println!("Pearson r = {:?}\n", rodinia.pearson);

    let parsec_all = miss_rate_correlation(&results, 35.0, |r| {
        r.core_kind == CoreKind::InOrder && r.benchmark.suite == CpuSuite::Parsec
    });
    println!(
        "PARSEC all inputs, in-order: Pearson r = {:?}",
        parsec_all.pearson
    );
    for kind in [CoreKind::InOrder, CoreKind::OutOfOrder] {
        let all = miss_rate_correlation(&results, 35.0, |r| r.core_kind == kind);
        println!("All suites, {kind}: Pearson r = {:?}", all.pearson);
    }
}
