//! Run an arbitrary user-defined scenario grid through the `core::sweep`
//! engine.
//!
//! Every axis takes a comma-separated list; unspecified axes stay at the
//! paper's design point (350-MCM AWGR rack, 64 x 25 Gbps wavelengths per
//! fiber, uniform 4-flows-per-MCM traffic at 100 Gbps, 35 ns latency).
//!
//! ```text
//! cargo run --release --bin sweep -- \
//!     --mcms 64,128,350 --fabric awgr,wave --pattern permutation,hotspot4 \
//!     --demand 400 --latency 25,35 --replicates 3 --json
//! ```
//!
//! Patterns: `uniformN` (N flows per MCM), `permutation`, `hotspotN`
//! (N hot destinations), `neighborN` (N neighbours per side), `alltoall`.
//! `--demand` sets the per-flow Gbps for every listed pattern. `--energy`
//! adds the energy-accounting axis (`always` and/or `util`), attaching
//! per-scenario joules/watts/pJ-per-bit metrics and the report's
//! `EnergyStats` block.

use std::process::exit;

use disagg_core::energy::EnergyMode;
use disagg_core::report::format_sweep_report;
use disagg_core::sweep::SweepGrid;
use fabric::FabricKind;
use workloads::TrafficPattern;

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--mcms N,..] [--fibers N,..] [--wavelengths N,..] [--gbps X,..]\n\
         \x20            [--fabric awgr|wave|spatial,..] [--pattern P,..] [--demand GBPS]\n\
         \x20            [--latency NS,..] [--energy always|util,..] [--replicates N]\n\
         \x20            [--seed N] [--json]\n\
         patterns: uniformN | permutation | hotspotN | neighborN | alltoall"
    );
    exit(2);
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Vec<T> {
    value
        .split(',')
        .map(|v| {
            v.trim().parse().unwrap_or_else(|_| {
                eprintln!("sweep: invalid value {v:?} for {flag}");
                exit(2);
            })
        })
        .collect()
}

/// For flags that take exactly one value: reject comma lists instead of
/// silently using the first element.
fn parse_scalar<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    if value.contains(',') {
        eprintln!("sweep: {flag} takes a single value, got list {value:?}");
        exit(2);
    }
    value.trim().parse().unwrap_or_else(|_| {
        eprintln!("sweep: invalid value {value:?} for {flag}");
        exit(2);
    })
}

fn parse_fabric(value: &str) -> Vec<FabricKind> {
    value
        .split(',')
        .map(|v| match v.trim() {
            "awgr" => FabricKind::ParallelAwgrs,
            "wave" => FabricKind::WaveSelective,
            "spatial" => FabricKind::Spatial,
            other => {
                eprintln!("sweep: unknown fabric {other:?} (awgr|wave|spatial)");
                exit(2);
            }
        })
        .collect()
}

fn parse_patterns(value: &str, demand_gbps: f64) -> Vec<TrafficPattern> {
    value
        .split(',')
        .map(|v| {
            let v = v.trim();
            let numbered = |prefix: &str| -> Option<u32> {
                v.strip_prefix(prefix).and_then(|n| n.parse().ok())
            };
            if v == "permutation" {
                TrafficPattern::Permutation { demand_gbps }
            } else if v == "alltoall" {
                TrafficPattern::AllToAll { demand_gbps }
            } else if let Some(n) = numbered("uniform") {
                TrafficPattern::Uniform {
                    flows_per_mcm: n,
                    demand_gbps,
                }
            } else if let Some(n) = numbered("hotspot") {
                TrafficPattern::HotSpot {
                    hot_mcms: n,
                    demand_gbps,
                }
            } else if let Some(n) = numbered("neighbor") {
                TrafficPattern::NearestNeighbor {
                    neighbors: n,
                    demand_gbps,
                }
            } else {
                eprintln!("sweep: unknown pattern {v:?}");
                exit(2);
            }
        })
        .collect()
}

fn parse_energy(value: &str) -> Vec<EnergyMode> {
    value
        .split(',')
        .map(|v| match v.trim() {
            "always" | "always-on" => EnergyMode::AlwaysOn,
            "util" | "utilization" => EnergyMode::UtilizationScaled,
            other => {
                eprintln!("sweep: unknown energy mode {other:?} (always|util)");
                exit(2);
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid = SweepGrid::named("sweep");
    let mut json = false;
    let mut demand_gbps = 100.0;
    let mut pattern_spec: Option<String> = None;

    // `--demand` must apply to the patterns no matter the flag order, so
    // patterns are parsed after the full argument scan.
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--json" {
            json = true;
            i += 1;
            continue;
        }
        if flag == "--help" || flag == "-h" {
            usage();
        }
        let Some(value) = args.get(i + 1) else {
            usage()
        };
        match flag {
            "--mcms" => grid.mcm_counts = parse_list(flag, value),
            "--fibers" => grid.fibers_per_mcm = parse_list(flag, value),
            "--wavelengths" => grid.wavelengths_per_fiber = parse_list(flag, value),
            "--gbps" => grid.gbps_per_wavelength = parse_list(flag, value),
            "--fabric" => grid.fabric_kinds = parse_fabric(value),
            "--pattern" => pattern_spec = Some(value.clone()),
            "--demand" => demand_gbps = parse_scalar::<f64>(flag, value),
            "--latency" => grid.direct_latencies_ns = parse_list(flag, value),
            "--energy" => grid.energy_modes = parse_energy(value),
            "--replicates" => grid.replicates = parse_scalar::<u32>(flag, value).max(1),
            "--seed" => grid.base_seed = parse_scalar::<u64>(flag, value),
            _ => usage(),
        }
        i += 2;
    }
    if let Some(spec) = pattern_spec {
        grid.patterns = parse_patterns(&spec, demand_gbps);
    } else {
        grid.patterns = vec![TrafficPattern::Uniform {
            flows_per_mcm: 4,
            demand_gbps,
        }];
    }

    let report = grid.run();
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", format_sweep_report(&report));
    }
}
