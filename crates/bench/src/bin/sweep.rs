//! Run an arbitrary user-defined scenario grid through the `core::sweep`
//! engine.
//!
//! Every axis takes a comma-separated list; unspecified axes stay at the
//! paper's design point (350-MCM AWGR rack, 64 x 25 Gbps wavelengths per
//! fiber, uniform 4-flows-per-MCM traffic at 100 Gbps, 35 ns latency).
//!
//! ```text
//! cargo run --release --bin sweep -- \
//!     --mcms 64,128,350 --fabric awgr,wave --pattern permutation,hotspot4 \
//!     --demand 400 --latency 25,35 --replicates 3 --json
//! ```
//!
//! Patterns: `uniformN` (N flows per MCM), `permutation`, `hotspotN`
//! (N hot destinations), `neighborN` (N neighbours per side), `alltoall`.
//! `--demand` sets the per-flow Gbps for every listed pattern. `--energy`
//! adds the energy-accounting axis (`always` and/or `util`), attaching
//! per-scenario joules/watts/pJ-per-bit metrics and the report's
//! `EnergyStats` block.
//!
//! Execution control: `--threads N` sets the worker-thread count (default:
//! the `PD_THREADS` environment variable, then all available cores) —
//! output bytes are identical at any thread count. For grids too large to
//! hold in memory, `--row-cap N` keeps only the first N rows (the summary
//! still aggregates everything) and `--shard-rows N` emits the rows as
//! self-contained report shards of N rows each (one JSON document per line
//! with `--json`), followed by the summary-only master report.
//!
//! `--sample K` runs the grid through the representative-scenario sampler
//! (`SweepGrid::run_sampled`): at most K scenarios are simulated, one
//! weighted representative per feature-space cluster, and the printed
//! summary reconstructs the full grid with declared error bounds.
//! `--sample-report` appends the `SamplingStats` block as one extra JSON
//! line (reduction factor, mean dispersion, per-metric bounds).
//!
//! `--bench FILE` times the fixed reference grid at 1 thread vs the
//! configured count and writes a versioned JSON record (wall clocks,
//! speedup, `parallel_efficiency` over the effective core count, and
//! scenarios/sec at both thread counts) to FILE (`BENCH_sweep.json` in
//! CI). A measurement taken on a machine with fewer cores than requested
//! (`degraded: true`) refuses to overwrite a non-degraded FILE unless
//! `--bench-force` is given. `--bench-floor EFF` fails the run when
//! parallel efficiency lands below EFF; `--bench-sps-floor SPS` fails it
//! when single-thread throughput drops below SPS scenarios/sec.
//! `--bench-sample FILE` times sampled vs exhaustive execution of the
//! replicate-inflated reference grid, verifies every reconstructed summary
//! metric against its declared error bound, and writes the record to FILE
//! (`BENCH_sample.json` in CI); any bound violation exits 1.
//!
//! Cross-scenario computation reuse (dedup-planned solving plus
//! demand-matrix memoization) is on by default and byte-exact;
//! `--no-reuse` disables it, solving every scenario independently —
//! useful for timing comparisons and as a paranoia switch. `--bench-reuse
//! FILE` times reuse-on vs reuse-off execution of the energy/latency
//! -inflated reference grid, verifies the two outputs are byte-identical,
//! and writes the record to FILE (`BENCH_reuse.json` in CI); a speedup
//! below 1.5x or any output divergence exits 1.

use std::process::exit;
use std::time::Instant;

use disagg_core::energy::EnergyMode;
use disagg_core::report::format_sweep_report;
use disagg_core::sample::{reference_grid, SampleConfig};
use disagg_core::sweep::{configure_threads, StreamConfig, SweepGrid};
use fabric::FabricKind;
use workloads::TrafficPattern;

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--mcms N,..] [--fibers N,..] [--wavelengths N,..] [--gbps X,..]\n\
         \x20            [--fabric awgr|wave|spatial,..] [--pattern P,..] [--demand GBPS]\n\
         \x20            [--latency NS,..] [--energy always|util,..] [--replicates N]\n\
         \x20            [--seed N] [--threads N] [--row-cap N] [--shard-rows N]\n\
         \x20            [--sample K] [--sample-report] [--no-reuse]\n\
         \x20            [--bench FILE] [--bench-floor EFF] [--bench-sps-floor SPS]\n\
         \x20            [--bench-force] [--bench-sample FILE] [--bench-reuse FILE] [--json]\n\
         patterns: uniformN | permutation | hotspotN | neighborN | alltoall"
    );
    exit(2);
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Vec<T> {
    value
        .split(',')
        .map(|v| {
            v.trim().parse().unwrap_or_else(|_| {
                eprintln!("sweep: invalid value {v:?} for {flag}");
                exit(2);
            })
        })
        .collect()
}

/// For flags that take exactly one value: reject comma lists instead of
/// silently using the first element.
fn parse_scalar<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    if value.contains(',') {
        eprintln!("sweep: {flag} takes a single value, got list {value:?}");
        exit(2);
    }
    value.trim().parse().unwrap_or_else(|_| {
        eprintln!("sweep: invalid value {value:?} for {flag}");
        exit(2);
    })
}

fn parse_fabric(value: &str) -> Vec<FabricKind> {
    value
        .split(',')
        .map(|v| match v.trim() {
            "awgr" => FabricKind::ParallelAwgrs,
            "wave" => FabricKind::WaveSelective,
            "spatial" => FabricKind::Spatial,
            other => {
                eprintln!("sweep: unknown fabric {other:?} (awgr|wave|spatial)");
                exit(2);
            }
        })
        .collect()
}

fn parse_patterns(value: &str, demand_gbps: f64) -> Vec<TrafficPattern> {
    value
        .split(',')
        .map(|v| {
            let v = v.trim();
            let numbered = |prefix: &str| -> Option<u32> {
                v.strip_prefix(prefix).and_then(|n| n.parse().ok())
            };
            if v == "permutation" {
                TrafficPattern::Permutation { demand_gbps }
            } else if v == "alltoall" {
                TrafficPattern::AllToAll { demand_gbps }
            } else if let Some(n) = numbered("uniform") {
                TrafficPattern::Uniform {
                    flows_per_mcm: n,
                    demand_gbps,
                }
            } else if let Some(n) = numbered("hotspot") {
                TrafficPattern::HotSpot {
                    hot_mcms: n,
                    demand_gbps,
                }
            } else if let Some(n) = numbered("neighbor") {
                TrafficPattern::NearestNeighbor {
                    neighbors: n,
                    demand_gbps,
                }
            } else {
                eprintln!("sweep: unknown pattern {v:?}");
                exit(2);
            }
        })
        .collect()
}

fn parse_energy(value: &str) -> Vec<EnergyMode> {
    value
        .split(',')
        .map(|v| match v.trim() {
            "always" | "always-on" => EnergyMode::AlwaysOn,
            "util" | "utilization" => EnergyMode::UtilizationScaled,
            other => {
                eprintln!("sweep: unknown energy mode {other:?} (always|util)");
                exit(2);
            }
        })
        .collect()
}

/// Time the reference grid at 1 thread vs the *effective* thread count
/// `min(threads, available_cores)`, verify the outputs are byte-identical,
/// and write the numbers to `path` as one versioned JSON object
/// (`"version":4`, which adds the `matrices_reused` counter from the
/// serial run's [`ReuseStats`](disagg_core::ReuseStats) — the plain reference grid has no energy
/// axis, so dedup finds no groups, but seed-insensitive patterns still
/// share demand matrices across replicates). Requesting more threads than
/// the machine has cannot
/// buy parallelism — the pool would just time context-switch overhead — so
/// the parallel measurement is clamped to the cores that exist: `threads`
/// reports the clamped count actually benchmarked, `requested_threads` the
/// CLI request, and `degraded` is true when the clamp bit (cores <
/// requested). `parallel_efficiency` is speedup over the effective count,
/// so the file can never claim, say, 4-thread/0.97-efficiency numbers from
/// a 1-core container. When set, `efficiency_floor` / `sps_floor` fail the
/// run (exit 1) if `parallel_efficiency` or `scenarios_per_sec_1_thread`
/// lands below them.
///
/// A degraded measurement (cores < requested threads) is a property of the
/// machine, not the code: committing one over a healthy snapshot would make
/// the trajectory read as a regression. Unless `force` is set, a degraded
/// run refuses to overwrite an existing FILE whose record says
/// `"degraded":false` (exit 1).
fn run_bench(
    path: &str,
    threads: usize,
    efficiency_floor: Option<f64>,
    sps_floor: Option<f64>,
    force: bool,
) {
    let grid = reference_grid();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let effective = threads.min(cores).max(1);
    let degraded = cores < threads;
    if degraded && !force {
        if let Ok(existing) = std::fs::read_to_string(path) {
            if existing.contains("\"degraded\":false") {
                eprintln!(
                    "sweep: refusing to overwrite non-degraded {path} with a degraded \
                     measurement ({cores} core(s) for {threads} requested thread(s)); \
                     pass --bench-force to override"
                );
                exit(1);
            }
        }
    }
    // Brief warm-up (one replicate of the grid) so the timed runs don't
    // charge cold allocator/page-cache effects to the serial measurement.
    let _ = rayon::with_max_threads(1, || reference_grid().replicates(1).run());
    let start = Instant::now();
    let serial = rayon::with_max_threads(1, || grid.run());
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let parallel = rayon::with_max_threads(effective, || grid.run());
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
    let identical = serial.to_json() == parallel.to_json();
    let scenarios = serial.rows.len();
    let speedup = serial_ms / parallel_ms;
    let efficiency = speedup / effective as f64;
    let sps_serial = scenarios as f64 / (serial_ms / 1e3);
    let sps_parallel = scenarios as f64 / (parallel_ms / 1e3);
    let matrices_reused = serial.reuse.map_or(0, |r| r.matrices_reused);
    let json = format!(
        "{{\"version\":4,\"grid\":\"{}\",\"scenarios\":{scenarios},\
         \"available_cores\":{cores},\
         \"wall_ms_1_thread\":{serial_ms:.1},\"threads\":{effective},\
         \"requested_threads\":{threads},\"degraded\":{degraded},\
         \"wall_ms_n_threads\":{parallel_ms:.1},\"speedup\":{speedup:.2},\
         \"parallel_efficiency\":{efficiency:.2},\
         \"scenarios_per_sec_1_thread\":{sps_serial:.1},\
         \"scenarios_per_sec_n_threads\":{sps_parallel:.1},\
         \"matrices_reused\":{matrices_reused},\
         \"identical_output\":{identical}}}",
        serial.name,
    );
    std::fs::write(path, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("sweep: cannot write {path}: {e}");
        exit(1);
    });
    println!("{json}");
    if !identical {
        eprintln!("sweep: parallel output diverged from serial — determinism bug");
        exit(1);
    }
    if let Some(floor) = efficiency_floor {
        if efficiency < floor {
            eprintln!(
                "sweep: parallel efficiency {efficiency:.2} below floor {floor} \
                 (speedup {speedup:.2} over {effective} effective core(s))"
            );
            exit(1);
        }
    }
    if let Some(floor) = sps_floor {
        if sps_serial < floor {
            eprintln!(
                "sweep: single-thread throughput {sps_serial:.1} scenarios/s \
                 below floor {floor}"
            );
            exit(1);
        }
    }
}

/// Time sampled vs exhaustive execution of the replicate-inflated
/// reference grid (16x: 3072 scenarios) and verify the accuracy contract
/// end to end: every reconstructed summary metric must land within its
/// declared error bound of the exhaustive oracle, and the sampler must
/// evaluate at least 10x fewer scenarios. Writes one versioned JSON record
/// to `path` (`BENCH_sample.json` in CI) and exits 1 on any violation.
fn run_bench_sample(path: &str, threads: usize) {
    let grid = reference_grid().replicates(512);
    let config = SampleConfig::with_clusters(48);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let effective = threads.min(cores).max(1);
    let _ = rayon::with_max_threads(effective, || reference_grid().replicates(1).run());
    let start = Instant::now();
    let exhaustive = rayon::with_max_threads(effective, || grid.run());
    let exhaustive_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let sampled = rayon::with_max_threads(effective, || grid.run_sampled(&config));
    let sampled_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = sampled
        .sampling
        .clone()
        .expect("run_sampled attaches SamplingStats");

    let mut within_bounds = true;
    for (key, bound) in &stats.error_bounds {
        let estimate = sampled.summary_metric(key).unwrap_or(f64::NAN);
        let oracle = exhaustive.summary_metric(key).unwrap_or(f64::NAN);
        let error = (estimate - oracle).abs();
        // NaN (a missing metric) must count as a violation, not pass.
        if error.is_nan() || error > *bound {
            within_bounds = false;
            eprintln!(
                "sweep: {key} error {error:.6} exceeds declared bound {bound:.6} \
                 (sampled {estimate:.6} vs exhaustive {oracle:.6})"
            );
        }
    }
    let reduction = stats.reduction();
    let speedup = exhaustive_ms / sampled_ms;
    let json = format!(
        "{{\"version\":1,\"grid\":\"{}\",\"scenarios\":{},\"clusters\":{},\
         \"evaluated\":{},\"reduction\":{reduction:.1},\
         \"wall_ms_exhaustive\":{exhaustive_ms:.1},\"wall_ms_sampled\":{sampled_ms:.1},\
         \"sample_speedup\":{speedup:.2},\"threads\":{effective},\
         \"mean_dispersion\":{:.4},\"within_bounds\":{within_bounds}}}",
        sampled.name, stats.total, stats.clusters, stats.evaluated, stats.mean_dispersion,
    );
    std::fs::write(path, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("sweep: cannot write {path}: {e}");
        exit(1);
    });
    println!("{json}");
    if !within_bounds {
        eprintln!("sweep: sampled summary violated its declared error bounds");
        exit(1);
    }
    if reduction < 10.0 {
        eprintln!("sweep: sampling reduction {reduction:.1}x below the 10x floor");
        exit(1);
    }
}

/// Time reuse-on vs reuse-off execution of the energy/latency-inflated
/// reference grid (two energy modes x two latencies: 768 scenarios, every
/// dedup group holding the two energy-mode variants of one physical
/// solve), verify the two reports are byte-identical, and write one
/// versioned JSON record to `path` (`BENCH_reuse.json` in CI). A speedup
/// below 1.5x — dedup halves the solver work on this grid, so healthy
/// numbers sit near 2x — or any output divergence exits 1.
fn run_bench_reuse(path: &str, threads: usize) {
    let grid = reference_grid()
        .energy_modes([EnergyMode::AlwaysOn, EnergyMode::UtilizationScaled])
        .direct_latencies_ns([25.0, 35.0]);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let effective = threads.min(cores).max(1);
    let _ = rayon::with_max_threads(effective, || reference_grid().replicates(1).run());
    let start = Instant::now();
    let off = rayon::with_max_threads(effective, || {
        grid.run_streaming(&StreamConfig {
            reuse: false,
            ..StreamConfig::default()
        })
    });
    let off_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let on = rayon::with_max_threads(effective, || grid.run_streaming(&StreamConfig::default()));
    let on_ms = start.elapsed().as_secs_f64() * 1e3;
    let identical = on.to_json() == off.to_json();
    let stats = on.reuse.expect("reuse-on run attaches ReuseStats");
    let scenarios = on.rows.len();
    let speedup = off_ms / on_ms;
    let json = format!(
        "{{\"version\":1,\"grid\":\"{}\",\"scenarios\":{scenarios},\
         \"threads\":{effective},\
         \"wall_ms_reuse_off\":{off_ms:.1},\"wall_ms_reuse_on\":{on_ms:.1},\
         \"reuse_speedup\":{speedup:.2},\
         \"groups\":{},\"leaders_solved\":{},\"followers_replayed\":{},\
         \"matrices_reused\":{},\"hit_rate\":{:.3},\
         \"solver_s_saved\":{:.3},\
         \"identical_output\":{identical}}}",
        on.name,
        stats.groups,
        stats.leaders_solved,
        stats.followers_replayed,
        stats.matrices_reused,
        stats.hit_rate(),
        stats.solver_s_saved,
    );
    std::fs::write(path, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("sweep: cannot write {path}: {e}");
        exit(1);
    });
    println!("{json}");
    if !identical {
        eprintln!("sweep: reuse-on output diverged from reuse-off — exactness bug");
        exit(1);
    }
    if speedup < 1.5 {
        eprintln!("sweep: reuse speedup {speedup:.2}x below the 1.5x floor");
        exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid = SweepGrid::named("sweep");
    let mut json = false;
    let mut demand_gbps = 100.0;
    let mut pattern_spec: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut row_cap: Option<usize> = None;
    let mut shard_rows: Option<usize> = None;
    let mut bench_path: Option<String> = None;
    let mut bench_floor: Option<f64> = None;
    let mut bench_sps_floor: Option<f64> = None;
    let mut bench_force = false;
    let mut bench_sample_path: Option<String> = None;
    let mut bench_reuse_path: Option<String> = None;
    let mut sample_clusters: Option<usize> = None;
    let mut sample_report = false;
    let mut reuse = true;

    // `--demand` must apply to the patterns no matter the flag order, so
    // patterns are parsed after the full argument scan.
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--json" {
            json = true;
            i += 1;
            continue;
        }
        if flag == "--sample-report" {
            sample_report = true;
            i += 1;
            continue;
        }
        if flag == "--bench-force" {
            bench_force = true;
            i += 1;
            continue;
        }
        if flag == "--no-reuse" {
            reuse = false;
            i += 1;
            continue;
        }
        if flag == "--help" || flag == "-h" {
            usage();
        }
        let Some(value) = args.get(i + 1) else {
            usage()
        };
        match flag {
            "--mcms" => grid.mcm_counts = parse_list(flag, value),
            "--fibers" => grid.fibers_per_mcm = parse_list(flag, value),
            "--wavelengths" => grid.wavelengths_per_fiber = parse_list(flag, value),
            "--gbps" => grid.gbps_per_wavelength = parse_list(flag, value),
            "--fabric" => grid.fabric_kinds = parse_fabric(value),
            "--pattern" => pattern_spec = Some(value.clone()),
            "--demand" => demand_gbps = parse_scalar::<f64>(flag, value),
            "--latency" => grid.direct_latencies_ns = parse_list(flag, value),
            "--energy" => grid.energy_modes = parse_energy(value),
            "--replicates" => grid.replicates = parse_scalar::<u32>(flag, value).max(1),
            "--seed" => grid.base_seed = parse_scalar::<u64>(flag, value),
            "--threads" => threads = Some(parse_scalar::<usize>(flag, value).max(1)),
            "--row-cap" => row_cap = Some(parse_scalar::<usize>(flag, value)),
            "--shard-rows" => shard_rows = Some(parse_scalar::<usize>(flag, value).max(1)),
            "--bench" => bench_path = Some(value.clone()),
            "--bench-floor" => bench_floor = Some(parse_scalar::<f64>(flag, value)),
            "--bench-sps-floor" => bench_sps_floor = Some(parse_scalar::<f64>(flag, value)),
            "--bench-sample" => bench_sample_path = Some(value.clone()),
            "--bench-reuse" => bench_reuse_path = Some(value.clone()),
            "--sample" => sample_clusters = Some(parse_scalar::<usize>(flag, value).max(1)),
            _ => usage(),
        }
        i += 2;
    }
    let threads = configure_threads(threads);
    if sample_clusters.is_some()
        && (row_cap.is_some() || shard_rows.is_some() || bench_path.is_some())
    {
        eprintln!("sweep: --sample conflicts with --row-cap/--shard-rows/--bench");
        exit(2);
    }
    if sample_report && sample_clusters.is_none() {
        eprintln!("sweep: --sample-report requires --sample K");
        exit(2);
    }
    if let Some(path) = bench_reuse_path {
        run_bench_reuse(&path, threads);
        return;
    }
    if let Some(path) = bench_sample_path {
        run_bench_sample(&path, threads);
        return;
    }
    if let Some(path) = bench_path {
        run_bench(&path, threads, bench_floor, bench_sps_floor, bench_force);
        return;
    }
    if let Some(spec) = pattern_spec {
        grid.patterns = parse_patterns(&spec, demand_gbps);
    } else {
        grid.patterns = vec![TrafficPattern::Uniform {
            flows_per_mcm: 4,
            demand_gbps,
        }];
    }

    if let Some(clusters) = sample_clusters {
        let report = grid.run_sampled(&SampleConfig::with_clusters(clusters));
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", format_sweep_report(&report));
        }
        if sample_report {
            let stats = report.sampling.expect("run_sampled attaches SamplingStats");
            println!("{}", stats.to_json());
        }
        return;
    }
    let stream = StreamConfig {
        row_cap,
        reuse,
        ..StreamConfig::default()
    };
    if let Some(rows_per_shard) = shard_rows {
        // Sharded emission: each shard is a self-contained report, then the
        // summary-only master closes the stream.
        let master = grid.run_sharded(&stream, rows_per_shard, &mut |shard| {
            if json {
                println!("{}", shard.to_json());
            } else {
                print!("{}", format_sweep_report(&shard));
            }
        });
        if json {
            println!("{}", master.to_json());
        } else {
            print!("{}", format_sweep_report(&master));
        }
        return;
    }
    let report = grid.run_streaming(&stream);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", format_sweep_report(&report));
    }
}
