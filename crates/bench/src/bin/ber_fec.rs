//! Regenerates the Section III-C3 BER/FEC analysis: the lightweight
//! CXL/PCIe-Gen6 FEC turns a 1e-6 flit error probability into ~1e-12,
//! retransmissions absorb the rest, and the effective BER meets the 1e-18
//! memory requirement at <0.1% bandwidth cost and 2-3 ns latency.

use photonics::fec::{FecConfig, LinkErrorModel};

fn main() {
    println!("BER / FEC analysis (Section III-C3)");
    for (label, model) in [
        ("CXL lightweight FEC", LinkErrorModel::paper_nominal()),
        (
            "FEC disabled",
            LinkErrorModel::new(1e-6 / 2048.0, FecConfig::disabled()),
        ),
    ] {
        let out = model.analyze();
        println!("\n  {label}");
        println!(
            "    flit error probability      : {:.3e}",
            out.flit_error_probability
        );
        println!(
            "    post-FEC flit error prob.   : {:.3e}",
            out.post_fec_flit_error_probability
        );
        println!(
            "    retransmission probability  : {:.3e}",
            out.retransmission_probability
        );
        println!(
            "    silent error probability    : {:.3e}",
            out.silent_error_probability
        );
        println!(
            "    effective BER               : {:.3e}",
            out.effective_ber
        );
        println!(
            "    meets 1e-18 memory target   : {}",
            model.meets_ber_target(LinkErrorModel::MEMORY_BER_TARGET)
        );
        println!(
            "    FEC latency                 : {:.1} ns",
            model.fec.latency().ns()
        );
        println!(
            "    bandwidth overhead          : {:.3} %",
            model.fec.bandwidth_overhead() * 100.0
        );
    }
}
