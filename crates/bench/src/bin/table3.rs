//! Regenerates Table III: chips per MCM and MCMs per rack for the paper's
//! 128-node GPU-accelerated HPE/Cray EX rack under a 6.4 TB/s per-MCM escape
//! bandwidth budget. Pass `--json` for the machine-readable sweep report.

fn main() {
    disagg_core::sweep::artifacts::table3().emit();
}
