//! Regenerates Table III: chips per MCM and MCMs per rack for the paper's
//! 128-node GPU-accelerated HPE/Cray EX rack under a 6.4 TB/s per-MCM escape
//! bandwidth budget.

use rack::mcm::RackComposition;

fn main() {
    let c = RackComposition::paper_rack();
    println!("Table III — chips per MCM and MCMs per rack (6.4 TB/s escape per MCM)");
    println!(
        "{:<6} {:>13} {:>13} {:>12} {:>18}",
        "chip", "chips/MCM", "MCMs/rack", "chips", "GB/s per chip"
    );
    for p in &c.packings {
        println!(
            "{:<6} {:>13} {:>13} {:>12} {:>18.1}",
            p.kind.to_string(),
            p.chips_per_mcm,
            p.mcms_per_rack,
            p.total_chips,
            p.escape_per_chip.gbytes_per_s()
        );
    }
    println!("Total MCMs: {}", c.total_mcms());
}
