//! Regenerates Table II: high-radix CMOS-compatible photonic switches.

use photonics::switch::OpticalSwitch;

fn main() {
    println!("Table II — high-radix CMOS-compatible photonic switches");
    println!(
        "{:<22} {:>9} {:>10} {:>12} {:>10} {:>10}",
        "switch", "radix", "wl/port", "Gbps/wl", "IL (dB)", "XT (dB)"
    );
    for sw in OpticalSwitch::table_ii() {
        println!(
            "{:<22} {:>5}x{:<4} {:>10} {:>12.0} {:>10.1} {:>10.1}",
            sw.kind.to_string(),
            sw.radix,
            sw.radix,
            sw.wavelengths_per_port,
            sw.channel_bandwidth.gbps(),
            sw.insertion_loss.db(),
            sw.crosstalk.db()
        );
    }
}
