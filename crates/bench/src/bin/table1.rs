//! Regenerates Table I: WDM photonic link technologies and their sizing for
//! a 2 TB/s escape-bandwidth target.

use photonics::link::EscapeSizing;

fn main() {
    println!("Table I — WDM photonic link technologies (2 TB/s escape target)");
    println!(
        "{:<18} {:>10} {:>10} {:>16} {:>7} {:>10}",
        "technology", "Gbps/link", "pJ/bit", "Gbps x channels", "#links", "agg. W"
    );
    for row in EscapeSizing::table_i_rows() {
        let t = row.technology;
        println!(
            "{:<18} {:>10.0} {:>10.2} {:>9.0} x {:<4} {:>7} {:>10.1}",
            t.kind.to_string(),
            t.bandwidth.gbps(),
            t.energy_per_bit.pj(),
            t.channel_rate.gbps(),
            t.channels,
            row.links,
            row.aggregate_power_w
        );
    }
}
