//! Regenerates Table I: WDM photonic link technologies and their sizing for
//! a 2 TB/s escape-bandwidth target. Pass `--json` for the machine-readable
//! sweep report.

fn main() {
    disagg_core::sweep::artifacts::table1().emit();
}
