//! Flex-grid spectrum-allocation sweeps: phased demand timelines admitted
//! onto per-fiber 12.5 GHz frequency-slot boards under swept admission and
//! defragmentation policies, through the `core::sweep` spectrum axis.
//!
//! ```text
//! cargo run --release --bin flexgrid -- \
//!     --mcms 32,64 --fabric awgr --schedule churn,shifthot4 \
//!     --spectrum firstfit,bestfit+defrag,exactfit+repack \
//!     --demand 400 --epochs 3 --json
//! ```
//!
//! Schedules: `churn` (the elastic-churn spectrum workload: ramps change
//! the demand bit-patterns every epoch, forcing release/re-admit cycles),
//! `shifthotN` (N-hot incast whose hot set rotates every phase), `hpcmix`
//! (halo -> ramp -> GPU burst -> drain), `steady` (one flat permutation
//! phase). Spectrum policies are `SpectrumPolicy` labels: an admission rule
//! (`firstfit` | `bestfit` | `exactfit`) optionally suffixed with a
//! defragmentation rule (`+defrag` re-packs the board when an epoch blocks,
//! `+repack` re-packs every epoch). `--epochs` sets the epochs per phase;
//! `--smoke` emits the small fixed CI grid pinned by
//! `tests/golden/flexgrid_smoke.json` and exits. `--threads N` sets the
//! worker-thread count (default: `PD_THREADS`, then all available cores);
//! output bytes are identical at any thread count.

use std::process::exit;

use disagg_core::report::format_sweep_report;
use disagg_core::sweep::{artifacts, configure_threads, SweepGrid};
use fabric::{FabricKind, SpectrumPolicy};
use workloads::{DemandTimeline, TrafficPattern};

fn usage() -> ! {
    eprintln!(
        "usage: flexgrid [--mcms N,..] [--fabric awgr|wave|spatial,..] [--schedule S,..]\n\
         \x20               [--spectrum P,..] [--demand GBPS] [--epochs N]\n\
         \x20               [--latency NS,..] [--replicates N] [--seed N] [--threads N]\n\
         \x20               [--json] [--smoke]\n\
         schedules: churn | shifthotN | hpcmix | steady\n\
         spectrum : firstfit|bestfit|exactfit, optionally +defrag or +repack"
    );
    exit(2);
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Vec<T> {
    value
        .split(',')
        .map(|v| {
            v.trim().parse().unwrap_or_else(|_| {
                eprintln!("flexgrid: invalid value {v:?} for {flag}");
                exit(2);
            })
        })
        .collect()
}

fn parse_scalar<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    if value.contains(',') {
        eprintln!("flexgrid: {flag} takes a single value, got list {value:?}");
        exit(2);
    }
    value.trim().parse().unwrap_or_else(|_| {
        eprintln!("flexgrid: invalid value {value:?} for {flag}");
        exit(2);
    })
}

fn parse_fabric(value: &str) -> Vec<FabricKind> {
    value
        .split(',')
        .map(|v| match v.trim() {
            "awgr" => FabricKind::ParallelAwgrs,
            "wave" => FabricKind::WaveSelective,
            "spatial" => FabricKind::Spatial,
            other => {
                eprintln!("flexgrid: unknown fabric {other:?} (awgr|wave|spatial)");
                exit(2);
            }
        })
        .collect()
}

fn parse_spectrum(value: &str) -> Vec<SpectrumPolicy> {
    value
        .split(',')
        .map(|v| {
            let v = v.trim();
            SpectrumPolicy::parse(v).unwrap_or_else(|| {
                eprintln!(
                    "flexgrid: unknown spectrum policy {v:?} \
                     (firstfit|bestfit|exactfit[+defrag|+repack])"
                );
                exit(2);
            })
        })
        .collect()
}

fn parse_schedules(value: &str, demand_gbps: f64, epochs_per_phase: u32) -> Vec<DemandTimeline> {
    value
        .split(',')
        .map(|v| {
            let v = v.trim();
            if let Some(hot) = v
                .strip_prefix("shifthot")
                .and_then(|n| n.parse::<u32>().ok())
            {
                DemandTimeline::shifting_hotspot(hot, demand_gbps, 4, epochs_per_phase, 5)
            } else if v == "churn" {
                DemandTimeline::elastic_churn(demand_gbps, epochs_per_phase)
            } else if v == "hpcmix" {
                DemandTimeline::hpc_mix(demand_gbps, epochs_per_phase)
            } else if v == "steady" {
                DemandTimeline::steady(
                    TrafficPattern::Permutation { demand_gbps },
                    epochs_per_phase * 4,
                )
            } else {
                eprintln!("flexgrid: unknown schedule {v:?} (churn|shifthotN|hpcmix|steady)");
                exit(2);
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid = SweepGrid::named("flexgrid").mcm_counts([32]);
    let mut schedules = "churn,shifthot4".to_string();
    let mut spectrum = "firstfit,bestfit+defrag,exactfit+repack".to_string();
    let mut demand = 400.0;
    let mut epochs_per_phase = 3u32;
    let mut json = false;
    let mut smoke = false;
    let mut threads: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut take = || {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| usage())
        };
        match flag {
            "--threads" => {
                threads = Some(parse_scalar::<usize>("--threads", &take()).max(1));
            }
            "--mcms" => {
                let v = take();
                grid = grid.mcm_counts(parse_list("--mcms", &v));
            }
            "--fabric" => {
                let v = take();
                grid = grid.fabric_kinds(parse_fabric(&v));
            }
            "--schedule" => schedules = take(),
            "--spectrum" => spectrum = take(),
            "--demand" => demand = parse_scalar("--demand", &take()),
            "--epochs" => epochs_per_phase = parse_scalar("--epochs", &take()),
            "--latency" => {
                let v = take();
                grid = grid.direct_latencies_ns(parse_list("--latency", &v));
            }
            "--replicates" => {
                let v: u32 = parse_scalar("--replicates", &take());
                grid = grid.replicates(v);
            }
            "--seed" => {
                let v: u64 = parse_scalar("--seed", &take());
                grid = grid.base_seed(v);
            }
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("flexgrid: unknown flag {other:?}");
                usage();
            }
        }
        i += 1;
    }

    configure_threads(threads);
    if smoke {
        // The fixed CI grid, pinned by tests/golden/flexgrid_smoke.json.
        let artifact = artifacts::flexgrid_smoke();
        if json {
            println!("{}", artifact.report.to_json());
        } else {
            print!("{}", artifact.text);
        }
        return;
    }

    let grid = grid
        .timelines(parse_schedules(&schedules, demand, epochs_per_phase))
        .spectrum_policies(parse_spectrum(&spectrum));
    let report = grid.run();
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", format_sweep_report(&report));
    }
}
