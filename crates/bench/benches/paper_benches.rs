//! Criterion benchmarks: one group per paper artifact, timing the kernels
//! that regenerate it. The bench binaries in `src/bin/` print the actual
//! table/figure contents; these groups measure how long the underlying
//! models and simulators take, which is what a downstream user of the
//! library cares about when embedding them.

use cpusim::{CoreKind, CpuConfig, Simulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disagg_core::cpu_experiments::{run_cpu_experiment_subset, CpuExperimentConfig};
use disagg_core::gpu_experiments::{run_gpu_experiment, GpuExperimentConfig};
use disagg_core::rack_analysis::RackAnalysis;
use fabric::flowsim::{Flow, FlowSimConfig, FlowSimulator};
use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
use fabric::routing::{IndirectRouter, OccupancyBoard};
use gpusim::{GpuConfig, GpuTimingModel};
use photonics::fec::LinkErrorModel;
use photonics::link::EscapeSizing;
use rack::isoperf::IsoPerformanceAnalysis;
use rack::mcm::RackComposition;
use rack::power::RackPowerModel;
use workloads::cpu::cpu_benchmarks;
use workloads::gpu::gpu_applications;
use workloads::production::ProductionDistributions;

/// Tables I-IV: analytical sizing models.
fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1_link_sizing", |b| b.iter(EscapeSizing::table_i_rows));
    g.bench_function("table3_mcm_packing", |b| {
        b.iter(RackComposition::paper_rack)
    });
    g.finish();
}

/// Fig. 5: fabric construction and the all-pairs connectivity report.
fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fabric");
    g.sample_size(10);
    for kind in [FabricKind::ParallelAwgrs, FabricKind::WaveSelective] {
        g.bench_with_input(
            BenchmarkId::new("connectivity_report", format!("{kind:?}")),
            &kind,
            |b, &kind| b.iter(|| RackFabric::new(RackFabricConfig::paper_rack(kind)).report()),
        );
    }
    g.bench_function("indirect_routing_1000_flows", |b| {
        let fabric = RackFabric::paper_awgr();
        b.iter(|| {
            let mut board = OccupancyBoard::new(350);
            let mut router = IndirectRouter::with_fresh_state(7);
            for i in 0..1000u32 {
                let src = i % 350;
                let dst = (i * 7 + 13) % 350;
                router.route(&fabric, &mut board, src, dst, 6);
            }
            router.stats()
        })
    });
    g.bench_function("flow_simulator_rack_demand", |b| {
        let fabric = RackFabric::paper_awgr();
        let dist = ProductionDistributions::cori_haswell();
        let nodes = dist.sample_nodes_stable(128, 7);
        let flows: Vec<Flow> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Flow::new(
                    (i % 10) as u32,
                    312 + (i % 38) as u32,
                    n.memory_bandwidth_gbs * 8.0,
                )
            })
            .collect();
        b.iter(|| FlowSimulator::new(&fabric, FlowSimConfig::default()).run(&flows))
    });
    g.finish();
}

/// Figs. 6-8, 12 (CPU): the trace-driven CPU simulator.
fn bench_cpu_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_simulation");
    g.sample_size(10);
    let benchmarks = cpu_benchmarks();
    let nw = benchmarks.iter().find(|b| b.name == "nw").unwrap();
    let trace = nw.trace(100_000);
    for kind in [CoreKind::InOrder, CoreKind::OutOfOrder] {
        g.bench_with_input(
            BenchmarkId::new("nw_100k_accesses", format!("{kind}")),
            &kind,
            |b, &kind| {
                let sim = Simulator::new(CpuConfig::baseline(kind).with_extra_latency_ns(35.0))
                    .with_warmup(true);
                b.iter(|| sim.run(&trace))
            },
        );
    }
    g.bench_function("fig6_quick_sweep_rodinia", |b| {
        let cfg = CpuExperimentConfig::quick();
        b.iter(|| {
            run_cpu_experiment_subset(&cfg, |bench| {
                bench.suite == workloads::cpu::CpuSuite::Rodinia
            })
        })
    });
    g.finish();
}

/// Figs. 9-11, 12 (GPU): the analytical GPU model.
fn bench_gpu_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_simulation");
    g.bench_function("fig9_all_24_applications", |b| {
        let cfg = GpuExperimentConfig::default();
        b.iter(|| run_gpu_experiment(&cfg))
    });
    g.bench_function("single_application_sweep", |b| {
        let model = GpuTimingModel::new(GpuConfig::a100());
        let apps = gpu_applications();
        let app = &apps[0];
        b.iter(|| model.latency_sweep(app, &[0.0, 25.0, 30.0, 35.0, 85.0]))
    });
    g.finish();
}

/// Section VI-A1/C/E and III-C3: the analytical studies.
fn bench_analytics(c: &mut Criterion) {
    let mut g = c.benchmark_group("analytics");
    g.bench_function("ber_fec_analysis", |b| {
        b.iter(|| LinkErrorModel::paper_nominal().analyze())
    });
    g.bench_function("power_overhead", |b| {
        b.iter(|| RackPowerModel::paper_rack().photonic_overhead())
    });
    g.bench_function("iso_performance", |b| b.iter(IsoPerformanceAnalysis::paper));
    g.bench_function("production_sampling_10k_nodes", |b| {
        let dist = ProductionDistributions::cori_haswell();
        b.iter(|| dist.sample_nodes_stable(10_000, 42))
    });
    g.sample_size(10);
    g.bench_function("full_rack_analysis", |b| b.iter(RackAnalysis::paper));
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_fabric,
    bench_cpu_simulation,
    bench_gpu_simulation,
    bench_analytics
);
criterion_main!(benches);
