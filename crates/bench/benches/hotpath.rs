//! Hot-path micro-benchmarks: the five kernels the sweep engine spends its
//! time in, grouped so the criterion shim's `PD_BENCH_DIR` writer emits one
//! trajectory snapshot per group (`BENCH_flowsim.json`,
//! `BENCH_timeline.json`, `BENCH_flexgrid.json`, `BENCH_decode.json`,
//! `BENCH_grid.json`).
//!
//! Each group pairs the allocating entry point with its arena-reusing
//! counterpart (or, for the timeline, the incremental solver with the
//! exhaustive oracle), so a regression in either the steady-state path or
//! the reuse machinery shows up as a relative shift inside the same file.
//! `docs/PERFORMANCE.md` explains how to run these and read the snapshots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disagg_core::sweep::SweepGrid;
use fabric::flexgrid::{
    AdmissionPolicy, DefragPolicy, FlexGridArena, FlexGridConfig, FlexGridSimulator, SpectrumPolicy,
};
use fabric::flowsim::{Flow, FlowArena, FlowSimConfig, FlowSimulator};
use fabric::rackfabric::{FabricKind, RackFabric, RackFabricConfig};
use fabric::timeline::{ReallocationPolicy, TimelineArena, TimelineConfig, TimelineSimulator};
use workloads::timeline::DemandTimeline;
use workloads::TrafficPattern;

/// A fabric at `mcm_count` MCMs with the paper's per-MCM link provisioning.
fn fabric_with(mcm_count: u32, kind: FabricKind) -> RackFabric {
    RackFabric::new(RackFabricConfig {
        mcm_count,
        ..RackFabricConfig::paper_rack(kind)
    })
}

/// The flowsim bench cases, shared by the measurement loop and the
/// relative-performance floor so neither can drift to a different set.
fn flowsim_cases() -> [(&'static str, TrafficPattern); 2] {
    [
        (
            "permutation_350mcm",
            TrafficPattern::Permutation { demand_gbps: 600.0 },
        ),
        (
            "hotspot8_350mcm",
            TrafficPattern::HotSpot {
                hot_mcms: 8,
                demand_gbps: 500.0,
            },
        ),
    ]
}

/// `FlowSimulator::run` vs `run_in` with a warm [`FlowArena`]: the per-call
/// cost of the wavelength allocator, with and without steady-state reuse.
fn bench_flowsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("flowsim");
    let fabric = RackFabric::paper_awgr();
    for (label, pattern) in flowsim_cases() {
        let flows = pattern.flows(350, 7);
        g.bench_with_input(
            BenchmarkId::new("run_alloc", label),
            &flows,
            |b, flows: &Vec<Flow>| {
                let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
                b.iter(|| sim.run(flows))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("run_in_arena", label),
            &flows,
            |b, flows: &Vec<Flow>| {
                let sim = FlowSimulator::new(&fabric, FlowSimConfig::default());
                let mut arena = FlowArena::new();
                b.iter(|| {
                    let report = sim.run_in(&mut arena, flows);
                    arena.recycle(report)
                })
            },
        );
    }
    g.finish();
    // Relative-performance floor, applied to every flowsim pair: arena
    // reuse must never cost more than 5% over the allocating path on the
    // same pattern (it exists to be cheaper). Guards both the
    // delta-clear-vs-wipe crossover in `FlowArena::prepare` and the
    // identity-slice candidate fast path in `run_in` (which once lost to
    // the allocating path's filter-built candidates on permutation — the
    // inversion a recorded BENCH_flowsim.json would have pinned).
    for (label, _) in flowsim_cases() {
        let alloc = criterion::recorded_mean_ns("flowsim", &format!("run_alloc/{label}"))
            .expect("run_alloc recorded");
        let arena = criterion::recorded_mean_ns("flowsim", &format!("run_in_arena/{label}"))
            .expect("run_in_arena recorded");
        assert!(
            arena <= alloc * 1.05,
            "arena floor: run_in_arena/{label} {arena:.0} ns > 1.05x run_alloc {alloc:.0} ns"
        );
    }
}

/// `TimelineSimulator` across the canned schedules: the incremental solver
/// (`run` / warm-arena `run_in`) against the exhaustive re-solve oracle.
fn bench_timeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("timeline");
    g.sample_size(10);
    let fabric = fabric_with(64, FabricKind::ParallelAwgrs);
    let epochs = DemandTimeline::shifting_hotspot(8, 400.0, 4, 3, 8).epoch_matrices(64, 11);
    for (label, policy) in [
        ("static", ReallocationPolicy::Static),
        ("greedy", ReallocationPolicy::GreedyResteer),
        (
            "hysteresis90",
            ReallocationPolicy::Hysteresis {
                min_satisfaction: 0.9,
            },
        ),
    ] {
        let config = TimelineConfig {
            policy,
            ..TimelineConfig::default()
        };
        g.bench_with_input(
            BenchmarkId::new("incremental", label),
            &epochs,
            |b, epochs: &Vec<Vec<Flow>>| {
                let sim = TimelineSimulator::new(&fabric, config);
                let mut arena = TimelineArena::new();
                b.iter(|| {
                    let report = sim.run_in(&mut arena, epochs);
                    arena.recycle(report)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("exhaustive_oracle", label),
            &epochs,
            |b, epochs: &Vec<Vec<Flow>>| {
                let sim = TimelineSimulator::new(&fabric, config);
                b.iter(|| sim.run_exhaustive(epochs))
            },
        );
    }
    g.finish();
}

/// `FlexGridSimulator` across the spectrum policies on the elastic-churn
/// schedule: the incremental spectrum solver (warm-arena `run_in`) against
/// the from-scratch exhaustive re-solve oracle.
fn bench_flexgrid(c: &mut Criterion) {
    let mut g = c.benchmark_group("flexgrid");
    g.sample_size(10);
    let fabric = fabric_with(64, FabricKind::ParallelAwgrs);
    let epochs = DemandTimeline::elastic_churn(600.0, 3).epoch_matrices(64, 11);
    for policy in [
        SpectrumPolicy::default(),
        SpectrumPolicy {
            admission: AdmissionPolicy::BestFit,
            defrag: DefragPolicy::OnBlock,
        },
        SpectrumPolicy {
            admission: AdmissionPolicy::ExactFit,
            defrag: DefragPolicy::EveryEpoch,
        },
    ] {
        let label = policy.label();
        let config = FlexGridConfig {
            policy,
            ..FlexGridConfig::default()
        };
        g.bench_with_input(
            BenchmarkId::new("incremental", &label),
            &epochs,
            |b, epochs: &Vec<Vec<Flow>>| {
                let sim = FlexGridSimulator::new(&fabric, config);
                let mut arena = FlexGridArena::new();
                b.iter(|| {
                    let report = sim.run_in(&mut arena, epochs);
                    arena.recycle(report)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("exhaustive_oracle", &label),
            &epochs,
            |b, epochs: &Vec<Vec<Flow>>| {
                let sim = FlexGridSimulator::new(&fabric, config);
                b.iter(|| sim.run_exhaustive(epochs))
            },
        );
    }
    g.finish();
}

/// Scenario decode: expanding a grid's cartesian axes into [`Scenario`]
/// values and generating each pattern's flow list — the sweep's per-scenario
/// setup cost before any fabric work runs.
fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    let grid = reference_grid(350, 32);
    g.bench_function("scenario_iter_reference_grid", |b| {
        b.iter(|| grid.scenarios().count())
    });
    for (label, pattern) in [
        (
            "alltoall8_350mcm",
            TrafficPattern::AllToAll { demand_gbps: 8.0 },
        ),
        (
            "permutation_350mcm",
            TrafficPattern::Permutation { demand_gbps: 600.0 },
        ),
    ] {
        g.bench_with_input(
            BenchmarkId::new("pattern_flows", label),
            &pattern,
            |b, pattern: &TrafficPattern| b.iter(|| pattern.flows(350, 7)),
        );
    }
    g.finish();
}

/// The same axes `sweep --bench` times, parameterized so the micro-bench
/// copy stays small enough for the shim's per-bench budget.
fn reference_grid(mcms: u32, replicates: u32) -> SweepGrid {
    SweepGrid::named("bench-reference")
        .mcm_counts([mcms])
        .fabric_kinds([FabricKind::ParallelAwgrs, FabricKind::WaveSelective])
        .patterns([
            TrafficPattern::AllToAll { demand_gbps: 8.0 },
            TrafficPattern::Permutation { demand_gbps: 600.0 },
            TrafficPattern::HotSpot {
                hot_mcms: 8,
                demand_gbps: 500.0,
            },
        ])
        .direct_latencies_ns([35.0])
        .replicates(replicates)
}

/// End-to-end sweep over a scaled-down reference grid (64 MCMs, 4
/// replicates = 24 scenarios): decode + memoized fabric builds + flow
/// solves + fold, through the same executor `sweep --bench` exercises at
/// full scale.
fn bench_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid");
    g.sample_size(10);
    let grid = reference_grid(64, 4);
    g.bench_function("reference_grid_64mcm_serial", |b| {
        b.iter(|| rayon::with_max_threads(1, || grid.run()))
    });
    g.finish();
}

criterion_group!(
    hotpath,
    bench_flowsim,
    bench_timeline,
    bench_flexgrid,
    bench_decode,
    bench_grid
);
criterion_main!(hotpath);
