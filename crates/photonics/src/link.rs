//! The WDM photonic link-technology catalogue of Table I and the escape
//! bandwidth sizing arithmetic.
//!
//! Table I of the paper lists five link technologies spanning conventional
//! 100 Gbps Ethernet physical interfaces up to 2 Tbps comb-driven DWDM links
//! from the DARPA PIPES program. For each it reports the per-link bandwidth,
//! energy per bit, the channel organisation (`Gbps x channels`), and — for a
//! 2 TB/s escape-bandwidth target — how many links are needed and the
//! aggregate power they draw.

use crate::units::{Bandwidth, Energy};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The named link technologies evaluated in Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkTechnologyKind {
    /// Conventional 100 Gbps Ethernet physical interface (4 x 25 Gbps).
    Ethernet100G,
    /// 400 Gbps Ethernet (4 x 100 Gbps).
    Ethernet400G,
    /// Ayar Labs TeraPHY chiplet: 24 channels of 32 Gbps (768 Gbps).
    TeraPhy768,
    /// Comb-driven DWDM research link: 64 channels of 16 Gbps (1.024 Tbps).
    Comb1024,
    /// Comb-driven DWDM research link: 128 channels of 16 Gbps (2.048 Tbps).
    Comb2048,
}

impl LinkTechnologyKind {
    /// All technologies in the order Table I lists them.
    pub const ALL: [LinkTechnologyKind; 5] = [
        LinkTechnologyKind::Ethernet100G,
        LinkTechnologyKind::Ethernet400G,
        LinkTechnologyKind::TeraPhy768,
        LinkTechnologyKind::Comb1024,
        LinkTechnologyKind::Comb2048,
    ];
}

impl fmt::Display for LinkTechnologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkTechnologyKind::Ethernet100G => "100G Ethernet",
            LinkTechnologyKind::Ethernet400G => "400G Ethernet",
            LinkTechnologyKind::TeraPhy768 => "TeraPHY 768G",
            LinkTechnologyKind::Comb1024 => "Comb DWDM 1.024T",
            LinkTechnologyKind::Comb2048 => "Comb DWDM 2.048T",
        };
        f.write_str(s)
    }
}

/// A photonic link technology: one row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkTechnology {
    /// Which named technology this is.
    pub kind: LinkTechnologyKind,
    /// Total bandwidth of one link.
    pub bandwidth: Bandwidth,
    /// Energy per bit (transceiver, including laser where applicable).
    pub energy_per_bit: Energy,
    /// Per-channel (per-wavelength) data rate.
    pub channel_rate: Bandwidth,
    /// Number of wavelength channels multiplexed on the link.
    pub channels: u32,
    /// Whether the link requires co-packaging with the compute die to reach
    /// its bandwidth density (true for the DWDM technologies).
    pub requires_copackaging: bool,
}

impl LinkTechnology {
    /// Look up the Table I parameters for a named technology.
    pub fn table_i(kind: LinkTechnologyKind) -> Self {
        match kind {
            LinkTechnologyKind::Ethernet100G => LinkTechnology {
                kind,
                bandwidth: Bandwidth::from_gbps(100.0),
                energy_per_bit: Energy::from_pj(30.0),
                channel_rate: Bandwidth::from_gbps(25.0),
                channels: 4,
                requires_copackaging: false,
            },
            LinkTechnologyKind::Ethernet400G => LinkTechnology {
                kind,
                bandwidth: Bandwidth::from_gbps(400.0),
                energy_per_bit: Energy::from_pj(30.0),
                channel_rate: Bandwidth::from_gbps(100.0),
                channels: 4,
                requires_copackaging: false,
            },
            LinkTechnologyKind::TeraPhy768 => LinkTechnology {
                kind,
                bandwidth: Bandwidth::from_gbps(768.0),
                energy_per_bit: Energy::from_pj(1.0),
                channel_rate: Bandwidth::from_gbps(32.0),
                channels: 24,
                requires_copackaging: true,
            },
            LinkTechnologyKind::Comb1024 => LinkTechnology {
                kind,
                bandwidth: Bandwidth::from_gbps(1024.0),
                energy_per_bit: Energy::from_pj(0.45),
                channel_rate: Bandwidth::from_gbps(16.0),
                channels: 64,
                requires_copackaging: true,
            },
            LinkTechnologyKind::Comb2048 => LinkTechnology {
                kind,
                bandwidth: Bandwidth::from_gbps(2048.0),
                energy_per_bit: Energy::from_pj(0.3),
                channel_rate: Bandwidth::from_gbps(16.0),
                channels: 128,
                requires_copackaging: true,
            },
        }
    }

    /// The full Table I catalogue.
    pub fn catalogue() -> Vec<LinkTechnology> {
        LinkTechnologyKind::ALL
            .iter()
            .map(|&k| LinkTechnology::table_i(k))
            .collect()
    }

    /// Number of links of this technology needed to provide `escape`
    /// bandwidth out of a package (rounded up).
    pub fn links_for_escape(&self, escape: Bandwidth) -> u32 {
        (escape.bps() / self.bandwidth.bps()).ceil() as u32
    }

    /// Aggregate power (watts) of the links needed to provide `escape`
    /// bandwidth, assuming all links run at full rate (the paper's
    /// pessimistic always-on assumption).
    pub fn aggregate_power_for_escape(&self, escape: Bandwidth) -> f64 {
        let links = self.links_for_escape(escape) as f64;
        self.energy_per_bit.power_at(self.bandwidth) * links
    }

    /// Sizing summary for a given escape-bandwidth target: one Table I row.
    pub fn escape_sizing(&self, escape: Bandwidth) -> EscapeSizing {
        EscapeSizing {
            technology: *self,
            escape_target: escape,
            links: self.links_for_escape(escape),
            aggregate_power_w: self.aggregate_power_for_escape(escape),
        }
    }
}

/// The escape-bandwidth sizing for one link technology (the last two columns
/// of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EscapeSizing {
    /// The technology being sized.
    pub technology: LinkTechnology,
    /// The escape-bandwidth target (2 TB/s in the paper).
    pub escape_target: Bandwidth,
    /// Number of links required.
    pub links: u32,
    /// Aggregate power in watts of those links.
    pub aggregate_power_w: f64,
}

impl EscapeSizing {
    /// The canonical 2 TB/s escape target used in Table I.
    pub fn paper_escape_target() -> Bandwidth {
        Bandwidth::from_tbytes_per_s(2.0)
    }

    /// Compute the full Table I for the paper's 2 TB/s escape target.
    pub fn table_i_rows() -> Vec<EscapeSizing> {
        let target = Self::paper_escape_target();
        LinkTechnology::catalogue()
            .into_iter()
            .map(|t| t.escape_sizing(target))
            .collect()
    }
}

impl fmt::Display for EscapeSizing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} {:>9.0} Gbps  {:>6.2} pJ/b  {:>3} ch x {:>5.0} Gbps  {:>4} links  {:>7.1} W",
            self.technology.kind.to_string(),
            self.technology.bandwidth.gbps(),
            self.technology.energy_per_bit.pj(),
            self.technology.channels,
            self.technology.channel_rate.gbps(),
            self.links,
            self.aggregate_power_w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_five_rows() {
        assert_eq!(LinkTechnology::catalogue().len(), 5);
    }

    #[test]
    fn channel_math_is_consistent() {
        // channel_rate * channels should equal the link bandwidth for every row.
        for t in LinkTechnology::catalogue() {
            let derived = t.channel_rate.gbps() * t.channels as f64;
            assert!(
                (derived - t.bandwidth.gbps()).abs() < 1e-6,
                "{:?}: {derived} != {}",
                t.kind,
                t.bandwidth.gbps()
            );
        }
    }

    #[test]
    fn table_i_link_counts_match_paper() {
        // Table I: #links for 2 TB/s escape = 160, 40, 21, 16, 8.
        let rows = EscapeSizing::table_i_rows();
        let links: Vec<u32> = rows.iter().map(|r| r.links).collect();
        assert_eq!(links, vec![160, 40, 21, 16, 8]);
    }

    #[test]
    fn table_i_aggregate_power_matches_paper() {
        // Table I aggregate watts: 480, ~197(480 for exact 40 links*400G*30pJ=480?),
        // the paper rounds: 100G->480 W, 400G->197... The paper's 400G row is
        // computed from 16.384 Tbps effective (41 links in their rounding);
        // our model uses exact escape bits: 40 links * 400 Gbps * 30 pJ = 480 W
        // for the traffic-proportional bound use energy * escape instead.
        let rows = EscapeSizing::table_i_rows();
        // 100G Ethernet: 160 links * 100 Gbps * 30 pJ/bit = 480 W.
        assert!((rows[0].aggregate_power_w - 480.0).abs() < 1.0);
        // TeraPHY: 21 * 768 Gbps * 1 pJ/bit = 16.1 W (paper rounds to 14.4 W
        // using the 2 TB/s payload rather than installed capacity).
        assert!(rows[2].aggregate_power_w > 14.0 && rows[2].aggregate_power_w < 17.0);
        // Comb 1.024T: 16 * 1024 Gbps * 0.45 pJ = 7.37 W (paper: 7.2 W).
        assert!((rows[3].aggregate_power_w - 7.37).abs() < 0.1);
        // Comb 2.048T: 8 * 2048 Gbps * 0.3 pJ = 4.9 W (paper: 4.8 W).
        assert!((rows[4].aggregate_power_w - 4.92).abs() < 0.1);
    }

    #[test]
    fn dwdm_links_require_copackaging() {
        for t in LinkTechnology::catalogue() {
            let expect = matches!(
                t.kind,
                LinkTechnologyKind::TeraPhy768
                    | LinkTechnologyKind::Comb1024
                    | LinkTechnologyKind::Comb2048
            );
            assert_eq!(t.requires_copackaging, expect);
        }
    }

    #[test]
    fn higher_bandwidth_links_use_less_energy_per_bit() {
        // The ordering that motivates the paper: DWDM links are at least an
        // order of magnitude more efficient per bit than Ethernet optics.
        let cat = LinkTechnology::catalogue();
        let eth = cat[0].energy_per_bit.pj();
        for t in &cat[2..] {
            assert!(t.energy_per_bit.pj() * 10.0 < eth);
        }
    }

    #[test]
    fn links_for_escape_rounds_up() {
        let t = LinkTechnology::table_i(LinkTechnologyKind::Comb2048);
        // 2.1 TB/s needs 9 links of 2.048 Tbps (16.8 Tbps / 2.048).
        assert_eq!(t.links_for_escape(Bandwidth::from_tbytes_per_s(2.1)), 9);
        assert_eq!(t.links_for_escape(Bandwidth::from_gbps(1.0)), 1);
    }

    #[test]
    fn display_row_contains_key_fields() {
        let row = LinkTechnology::table_i(LinkTechnologyKind::TeraPhy768)
            .escape_sizing(EscapeSizing::paper_escape_target());
        let s = row.to_string();
        assert!(s.contains("TeraPHY"));
        assert!(s.contains("21 links"));
    }
}
