//! Strongly typed scalar units shared by the photonic and rack models.
//!
//! The paper mixes Gbps, GBps, pJ/bit, ns and dB freely; these newtypes keep
//! the arithmetic honest (in particular the bits-vs-bytes distinction that
//! matters when comparing the 25 Gbps wavelength rate against the
//! 1555.2 GB/s HBM bandwidth of an A100).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A bandwidth value, stored internally as bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Construct from bits per second.
    pub fn from_bps(bps: f64) -> Self {
        Bandwidth(bps)
    }

    /// Construct from gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Bandwidth(gbps * 1e9)
    }

    /// Construct from gigabytes per second.
    pub fn from_gbytes_per_s(gbs: f64) -> Self {
        Bandwidth(gbs * 8e9)
    }

    /// Construct from terabits per second.
    pub fn from_tbps(tbps: f64) -> Self {
        Bandwidth(tbps * 1e12)
    }

    /// Construct from terabytes per second.
    pub fn from_tbytes_per_s(tbs: f64) -> Self {
        Bandwidth(tbs * 8e12)
    }

    /// Value in bits per second.
    pub fn bps(self) -> f64 {
        self.0
    }

    /// Value in gigabits per second.
    pub fn gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Value in gigabytes per second.
    pub fn gbytes_per_s(self) -> f64 {
        self.0 / 8e9
    }

    /// Value in terabits per second.
    pub fn tbps(self) -> f64 {
        self.0 / 1e12
    }

    /// Value in terabytes per second.
    pub fn tbytes_per_s(self) -> f64 {
        self.0 / 8e12
    }

    /// Saturating subtraction: never goes below zero.
    pub fn saturating_sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth((self.0 - rhs.0).max(0.0))
    }

    /// True if this bandwidth is (numerically) zero or negative.
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }

    /// Minimum of two bandwidth values.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// Maximum of two bandwidth values.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }

    /// Ratio of `self` to `other` (dimensionless).
    pub fn ratio(self, other: Bandwidth) -> f64 {
        self.0 / other.0
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}

impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl Div<Bandwidth> for Bandwidth {
    type Output = f64;
    fn div(self, rhs: Bandwidth) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e12 {
            write!(f, "{:.2} Tbps", self.tbps())
        } else if self.0 >= 1e9 {
            write!(f, "{:.2} Gbps", self.gbps())
        } else {
            write!(f, "{:.0} bps", self.0)
        }
    }
}

/// An energy-per-bit or absolute energy value, stored in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Construct from picojoules.
    pub fn from_pj(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// Construct from joules.
    pub fn from_joules(j: f64) -> Self {
        Energy(j)
    }

    /// Value in picojoules.
    pub fn pj(self) -> f64 {
        self.0 * 1e12
    }

    /// Value in joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Power (watts) when this energy is spent per bit at rate `bw`.
    pub fn power_at(self, bw: Bandwidth) -> f64 {
        self.0 * bw.bps()
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} pJ", self.pj())
    }
}

/// A latency value, stored in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Latency(f64);

impl Latency {
    /// Zero latency.
    pub const ZERO: Latency = Latency(0.0);

    /// Construct from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        Latency(ns * 1e-9)
    }

    /// Construct from microseconds.
    pub fn from_us(us: f64) -> Self {
        Latency(us * 1e-6)
    }

    /// Construct from milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        Latency(ms * 1e-3)
    }

    /// Construct from seconds.
    pub fn from_secs(s: f64) -> Self {
        Latency(s)
    }

    /// Value in nanoseconds.
    pub fn ns(self) -> f64 {
        self.0 * 1e9
    }

    /// Value in seconds.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// Convert to integer cycles at a clock frequency in GHz (rounded up).
    pub fn cycles_at_ghz(self, ghz: f64) -> u64 {
        (self.0 * ghz * 1e9).ceil() as u64
    }

    /// Minimum of two latencies.
    pub fn min(self, other: Latency) -> Latency {
        Latency(self.0.min(other.0))
    }

    /// Maximum of two latencies.
    pub fn max(self, other: Latency) -> Latency {
        Latency(self.0.max(other.0))
    }
}

impl Add for Latency {
    type Output = Latency;
    fn add(self, rhs: Latency) -> Latency {
        Latency(self.0 + rhs.0)
    }
}

impl AddAssign for Latency {
    fn add_assign(&mut self, rhs: Latency) {
        self.0 += rhs.0;
    }
}

impl Sub for Latency {
    type Output = Latency;
    fn sub(self, rhs: Latency) -> Latency {
        Latency(self.0 - rhs.0)
    }
}

impl Mul<f64> for Latency {
    type Output = Latency;
    fn mul(self, rhs: f64) -> Latency {
        Latency(self.0 * rhs)
    }
}

impl Sum for Latency {
    fn sum<I: Iterator<Item = Latency>>(iter: I) -> Latency {
        iter.fold(Latency::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ns", self.ns())
    }
}

/// Optical power or loss in decibels (positive = loss for insertion loss,
/// negative values are used for crosstalk suppression figures).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct OpticalPowerDb(f64);

impl OpticalPowerDb {
    /// Construct from a dB value.
    pub fn from_db(db: f64) -> Self {
        OpticalPowerDb(db)
    }

    /// The dB value.
    pub fn db(self) -> f64 {
        self.0
    }

    /// Convert to a linear power ratio (10^(dB/10)).
    pub fn linear_ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Combine two losses in series (dB values add).
    pub fn cascade(self, other: OpticalPowerDb) -> OpticalPowerDb {
        OpticalPowerDb(self.0 + other.0)
    }
}

impl Add for OpticalPowerDb {
    type Output = OpticalPowerDb;
    fn add(self, rhs: OpticalPowerDb) -> OpticalPowerDb {
        OpticalPowerDb(self.0 + rhs.0)
    }
}

impl Neg for OpticalPowerDb {
    type Output = OpticalPowerDb;
    fn neg(self) -> OpticalPowerDb {
        OpticalPowerDb(-self.0)
    }
}

impl fmt::Display for OpticalPowerDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions_round_trip() {
        let bw = Bandwidth::from_gbps(25.0);
        assert!((bw.bps() - 25e9).abs() < 1.0);
        assert!((bw.gbps() - 25.0).abs() < 1e-9);
        let bytes = Bandwidth::from_gbytes_per_s(1555.2);
        assert!((bytes.gbps() - 12441.6).abs() < 1e-6);
        assert!((bytes.gbytes_per_s() - 1555.2).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_tb_conversions() {
        let two_tb = Bandwidth::from_tbytes_per_s(2.0);
        assert!((two_tb.tbps() - 16.0).abs() < 1e-12);
        assert!((two_tb.gbps() - 16000.0).abs() < 1e-6);
    }

    #[test]
    fn bandwidth_arithmetic() {
        let a = Bandwidth::from_gbps(100.0);
        let b = Bandwidth::from_gbps(25.0);
        assert!(((a + b).gbps() - 125.0).abs() < 1e-9);
        assert!(((a - b).gbps() - 75.0).abs() < 1e-9);
        assert!(((a * 2.0).gbps() - 200.0).abs() < 1e-9);
        assert!(((a / 4.0).gbps() - 25.0).abs() < 1e-9);
        assert!((a / b - 4.0).abs() < 1e-12);
        assert!(b.saturating_sub(a).is_zero());
        assert!((a.ratio(b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_sum_min_max() {
        let parts = vec![Bandwidth::from_gbps(25.0); 5];
        let total: Bandwidth = parts.into_iter().sum();
        assert!((total.gbps() - 125.0).abs() < 1e-9);
        let a = Bandwidth::from_gbps(10.0);
        let b = Bandwidth::from_gbps(20.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn energy_power_at_bandwidth() {
        // 0.5 pJ/bit at 25 Gbps = 12.5 mW
        let e = Energy::from_pj(0.5);
        let p = e.power_at(Bandwidth::from_gbps(25.0));
        assert!((p - 0.0125).abs() < 1e-9);
    }

    #[test]
    fn energy_display_and_sum() {
        let e: Energy = vec![Energy::from_pj(0.25); 4].into_iter().sum();
        assert!((e.pj() - 1.0).abs() < 1e-9);
        assert_eq!(format!("{e}"), "1.000 pJ");
    }

    #[test]
    fn latency_conversions() {
        let l = Latency::from_ns(35.0);
        assert!((l.ns() - 35.0).abs() < 1e-9);
        assert!((l.secs() - 35e-9).abs() < 1e-18);
        // 35 ns at 2 GHz = 70 cycles
        assert_eq!(l.cycles_at_ghz(2.0), 70);
        let l2 = Latency::from_us(1.0);
        assert!((l2.ns() - 1000.0).abs() < 1e-9);
        let l3 = Latency::from_ms(1.0);
        assert!((l3.ns() - 1e6).abs() < 1e-6);
    }

    #[test]
    fn latency_arithmetic() {
        let a = Latency::from_ns(15.0);
        let b = Latency::from_ns(20.0);
        assert!(((a + b).ns() - 35.0).abs() < 1e-9);
        assert!(((b - a).ns() - 5.0).abs() < 1e-9);
        assert!(((a * 2.0).ns() - 30.0).abs() < 1e-9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let sum: Latency = vec![a, b].into_iter().sum();
        assert!((sum.ns() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn optical_db_cascade_and_linear() {
        let a = OpticalPowerDb::from_db(3.0);
        let b = OpticalPowerDb::from_db(7.0);
        assert!((a.cascade(b).db() - 10.0).abs() < 1e-12);
        assert!((OpticalPowerDb::from_db(10.0).linear_ratio() - 10.0).abs() < 1e-9);
        assert!((OpticalPowerDb::from_db(0.0).linear_ratio() - 1.0).abs() < 1e-12);
        assert!(((-a).db() + 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bandwidth::from_gbps(25.0)), "25.00 Gbps");
        assert_eq!(format!("{}", Bandwidth::from_tbps(2.048)), "2.05 Tbps");
        assert_eq!(format!("{}", Latency::from_ns(35.0)), "35.00 ns");
        assert_eq!(format!("{}", OpticalPowerDb::from_db(-35.0)), "-35.0 dB");
    }
}
