//! # photonics
//!
//! Photonic device, link, and switch models for intra-rack resource
//! disaggregation, reproducing the technology survey and analysis of
//! *"Efficient Intra-Rack Resource Disaggregation for HPC Using Co-Packaged
//! DWDM Photonics"* (CLUSTER 2023).
//!
//! The crate provides:
//!
//! * [`link`] — the WDM link-technology catalogue of Table I (100 Gbps
//!   Ethernet up to 2 Tbps comb-driven DWDM links) and the arithmetic used to
//!   size escape bandwidth (number of links and aggregate power to reach a
//!   2 TB/s escape target).
//! * [`dwdm`] — a latency/energy model of a co-packaged DWDM link: comb-laser
//!   source, per-wavelength ring modulators, SERDES/serialization,
//!   fiber propagation at 5 ns/m, and FEC.
//! * [`fec`] — the bit-error-rate and forward-error-correction model of
//!   Section III-C3: burst correction, mis-corrected double bursts, CRC
//!   escapes, retransmission overheads, and the resulting effective BER.
//! * [`switch`] — the optical switch catalogue of Tables II and IV (MZI,
//!   MEMS-actuated, microring-resonator, cascaded AWGR, and wave-selective
//!   switches), including the cascaded-AWGR construction `K*M*N = 3*12*11`.
//! * [`power`] — transceiver and switch power accounting used by the rack
//!   power-overhead analysis (Section VI-C).
//! * [`units`] — small strongly-typed helpers for bandwidth, energy, latency
//!   and optical power used throughout the workspace.
//!
//! All models are deterministic and allocation-light; they are intended to be
//! embedded both in analytical sizing code (the `rack` crate) and in the
//! flow-level fabric simulator (the `fabric` crate).
//!
//! Upstream of everything: the `fabric` and `rack` crates parameterize
//! their topologies and budgets from these models, and the `core::sweep`
//! engine exposes the DWDM wavelength/rate and FEC knobs as sweep axes.
//! See the repository's `ARCHITECTURE.md` for the full crate DAG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dwdm;
pub mod fec;
pub mod link;
pub mod power;
pub mod switch;
pub mod units;

pub use dwdm::{DwdmLink, DwdmLinkBuilder, LinkLatencyBreakdown};
pub use fec::{FecConfig, FecOutcome, LinkErrorModel};
pub use link::{EscapeSizing, LinkTechnology, LinkTechnologyKind};
pub use power::{PhotonicPowerModel, RackPhotonicPower};
pub use switch::{CascadedAwgr, OpticalSwitch, OpticalSwitchKind, SwitchConfig, SwitchPortBudget};
pub use units::{Bandwidth, Energy, Latency, OpticalPowerDb};
