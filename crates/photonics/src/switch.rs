//! Optical switch technology models: Tables II and IV of the paper.
//!
//! Three families of all-optical-path switches are modelled:
//!
//! * **Spatial switches** (MEMS-actuated couplers, Mach-Zehnder
//!   interferometers, tiled planar photonics): broadband, one configurable
//!   circuit per port, require reconfiguration to change connectivity.
//! * **Wavelength-selective switches** (microring-resonator crossbars and
//!   Clos fabrics, push-pull space-and-wavelength selective switches): can
//!   steer arbitrary subsets of wavelengths per port.
//! * **Arrayed waveguide grating routers (AWGRs)**: passive cyclic
//!   wavelength shufflers that give an N x N all-to-all with one wavelength
//!   per source–destination pair and need no reconfiguration at all. Large
//!   radices are reached by cascading small AWGRs (`K*M*N` construction of
//!   Sato et al., 3 x 12 x 11 = 396 for this paper's rack).

use crate::units::{Bandwidth, Latency, OpticalPowerDb};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The switch families considered in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpticalSwitchKind {
    /// Mach-Zehnder interferometer based spatial switch.
    MachZehnder,
    /// MEMS-actuated spatial switch.
    MemsActuated,
    /// Microring-resonator based wavelength-selective switch (crossbar /
    /// switch-and-select / Clos).
    MicroringResonator,
    /// Cascaded arrayed-waveguide-grating router.
    CascadedAwgr,
    /// Push-pull microring-assisted space-and-wavelength selective switch.
    WaveSelective,
}

impl OpticalSwitchKind {
    /// True for switches that need active reconfiguration (and therefore a
    /// scheduler) to change which destination a source can reach.
    pub fn requires_reconfiguration(self) -> bool {
        !matches!(self, OpticalSwitchKind::CascadedAwgr)
    }

    /// True for switches that can steer individual wavelengths (rather than
    /// whole fibers) to different destinations.
    pub fn is_wavelength_selective(self) -> bool {
        matches!(
            self,
            OpticalSwitchKind::MicroringResonator
                | OpticalSwitchKind::CascadedAwgr
                | OpticalSwitchKind::WaveSelective
        )
    }
}

impl fmt::Display for OpticalSwitchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpticalSwitchKind::MachZehnder => "Mach-Zehnder",
            OpticalSwitchKind::MemsActuated => "MEMS-actuated",
            OpticalSwitchKind::MicroringResonator => "Microring resonator",
            OpticalSwitchKind::CascadedAwgr => "Cascaded AWGRs",
            OpticalSwitchKind::WaveSelective => "Wave-selective",
        };
        f.write_str(s)
    }
}

/// One row of Table II: a high-radix CMOS-compatible photonic switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticalSwitch {
    /// Switch family.
    pub kind: OpticalSwitchKind,
    /// Port count (radix): the switch connects `radix` endpoints.
    pub radix: u32,
    /// Wavelengths usable per port.
    pub wavelengths_per_port: u32,
    /// Per-wavelength (channel) bandwidth.
    pub channel_bandwidth: Bandwidth,
    /// Worst-case insertion loss through the switch.
    pub insertion_loss: OpticalPowerDb,
    /// Crosstalk suppression (negative dB; more negative is better).
    pub crosstalk: OpticalPowerDb,
    /// Time to reconfigure the switch (zero for passive AWGRs).
    pub reconfiguration_time: Latency,
}

impl OpticalSwitch {
    /// Table II row: 32x32 Mach-Zehnder based switch.
    pub fn mach_zehnder_32() -> Self {
        OpticalSwitch {
            kind: OpticalSwitchKind::MachZehnder,
            radix: 32,
            wavelengths_per_port: 1,
            channel_bandwidth: Bandwidth::from_gbps(439.0),
            insertion_loss: OpticalPowerDb::from_db(12.8),
            crosstalk: OpticalPowerDb::from_db(-26.6),
            reconfiguration_time: Latency::from_us(10.0),
        }
    }

    /// Table II row: 240x240 MEMS-actuated wafer-scale switch.
    pub fn mems_240() -> Self {
        OpticalSwitch {
            kind: OpticalSwitchKind::MemsActuated,
            radix: 240,
            wavelengths_per_port: 1,
            channel_bandwidth: Bandwidth::from_gbps(25.0),
            insertion_loss: OpticalPowerDb::from_db(9.8),
            crosstalk: OpticalPowerDb::from_db(-70.0),
            reconfiguration_time: Latency::from_us(50.0),
        }
    }

    /// Table II row: 8x8 microring-resonator crossbar (demonstrated).
    pub fn microring_8() -> Self {
        OpticalSwitch {
            kind: OpticalSwitchKind::MicroringResonator,
            radix: 8,
            wavelengths_per_port: 8,
            channel_bandwidth: Bandwidth::from_gbps(100.0),
            insertion_loss: OpticalPowerDb::from_db(5.0),
            crosstalk: OpticalPowerDb::from_db(-35.0),
            reconfiguration_time: Latency::from_us(1.0),
        }
    }

    /// Table II row: projected 128x128 microring-resonator Clos fabric.
    pub fn microring_128_projected() -> Self {
        OpticalSwitch {
            kind: OpticalSwitchKind::MicroringResonator,
            radix: 128,
            wavelengths_per_port: 128,
            channel_bandwidth: Bandwidth::from_gbps(42.0),
            insertion_loss: OpticalPowerDb::from_db(10.0),
            crosstalk: OpticalPowerDb::from_db(-35.0),
            reconfiguration_time: Latency::from_us(1.0),
        }
    }

    /// Table II / IV row: 370x370 cascaded AWGR (built from the 3 x 12 x 11
    /// construction), 370 wavelengths per port, 25 Gbps per wavelength.
    pub fn cascaded_awgr_370() -> Self {
        OpticalSwitch {
            kind: OpticalSwitchKind::CascadedAwgr,
            radix: 370,
            wavelengths_per_port: 370,
            channel_bandwidth: Bandwidth::from_gbps(25.0),
            insertion_loss: OpticalPowerDb::from_db(15.0),
            crosstalk: OpticalPowerDb::from_db(-35.0),
            // Passive device: no reconfiguration at all.
            reconfiguration_time: Latency::ZERO,
        }
    }

    /// Table IV row: wave-selective switch modelled at 256 ports with 256
    /// wavelengths per port and 25 Gbps per wavelength (projected from
    /// demonstrated building blocks).
    pub fn wave_selective_256() -> Self {
        OpticalSwitch {
            kind: OpticalSwitchKind::WaveSelective,
            radix: 256,
            wavelengths_per_port: 256,
            channel_bandwidth: Bandwidth::from_gbps(25.0),
            insertion_loss: OpticalPowerDb::from_db(12.0),
            crosstalk: OpticalPowerDb::from_db(-30.0),
            reconfiguration_time: Latency::from_us(5.0),
        }
    }

    /// Table IV row: spatial switch treated (like the wave-selective one)
    /// as 240 ports — the paper rounds both to 256 ports / 256 wavelengths
    /// for the fabric analysis; the physical device is the MEMS switch.
    pub fn spatial_240() -> Self {
        OpticalSwitch {
            kind: OpticalSwitchKind::MemsActuated,
            radix: 240,
            wavelengths_per_port: 240,
            channel_bandwidth: Bandwidth::from_gbps(25.0),
            insertion_loss: OpticalPowerDb::from_db(9.8),
            crosstalk: OpticalPowerDb::from_db(-70.0),
            reconfiguration_time: Latency::from_us(50.0),
        }
    }

    /// The full Table II catalogue.
    pub fn table_ii() -> Vec<OpticalSwitch> {
        vec![
            Self::mach_zehnder_32(),
            Self::mems_240(),
            Self::microring_8(),
            Self::microring_128_projected(),
            Self::cascaded_awgr_370(),
        ]
    }

    /// Per-port bandwidth (wavelengths x channel bandwidth).
    pub fn port_bandwidth(&self) -> Bandwidth {
        self.channel_bandwidth * self.wavelengths_per_port as f64
    }

    /// Total switching capacity (all ports).
    pub fn bisection_capacity(&self) -> Bandwidth {
        self.port_bandwidth() * self.radix as f64
    }
}

/// The three switch configurations of Table IV used in the rack study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchConfig {
    /// Case (A): six parallel cascaded AWGRs, no reconfiguration.
    CascadedAwgr,
    /// Case (B): eleven parallel wave-selective switches.
    WaveSelective,
    /// Spatial switches (treated like wave-selective for fabric sizing).
    Spatial,
}

impl SwitchConfig {
    /// The representative device of this configuration (Table IV).
    pub fn device(self) -> OpticalSwitch {
        match self {
            SwitchConfig::CascadedAwgr => OpticalSwitch::cascaded_awgr_370(),
            SwitchConfig::WaveSelective => OpticalSwitch::wave_selective_256(),
            SwitchConfig::Spatial => OpticalSwitch::spatial_240(),
        }
    }

    /// Radix used by the fabric analysis (the paper treats both spatial and
    /// wave-selective switches as 256 ports / 256 wavelengths).
    pub fn effective_radix(self) -> u32 {
        match self {
            SwitchConfig::CascadedAwgr => 370,
            SwitchConfig::WaveSelective | SwitchConfig::Spatial => 256,
        }
    }

    /// Wavelengths per port used by the fabric analysis.
    pub fn effective_wavelengths_per_port(self) -> u32 {
        self.effective_radix()
    }

    /// Per-wavelength rate used by the fabric analysis (conservative
    /// 25 Gbps everywhere).
    pub fn channel_bandwidth(self) -> Bandwidth {
        Bandwidth::from_gbps(25.0)
    }

    /// Whether the configuration needs a centralized scheduler to
    /// reconfigure.
    pub fn needs_scheduler(self) -> bool {
        self.device().kind.requires_reconfiguration()
    }

    /// All Table IV configurations.
    pub const ALL: [SwitchConfig; 3] = [
        SwitchConfig::CascadedAwgr,
        SwitchConfig::WaveSelective,
        SwitchConfig::Spatial,
    ];
}

impl fmt::Display for SwitchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SwitchConfig::CascadedAwgr => "Cascaded AWGRs",
            SwitchConfig::WaveSelective => "Wave-Selective",
            SwitchConfig::Spatial => "Spatial",
        };
        f.write_str(s)
    }
}

/// The cascaded-AWGR construction of Sato et al. used to reach large radix:
/// `N` front `M x M` AWGRs interconnected with `M` rear `N x N` AWGRs act as
/// an `M*N x M*N` AWGR; `K` copies joined by `K x K` delivery-coupling
/// switches scale this to `K*M*N x K*M*N`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadedAwgr {
    /// Number of AWGR planes joined by delivery-coupling switches.
    pub k: u32,
    /// Front-AWGR size (M x M).
    pub m: u32,
    /// Rear-AWGR size (N x N).
    pub n: u32,
    /// Per-stage insertion loss of a small AWGR.
    pub stage_loss: OpticalPowerDb,
    /// Insertion loss of the delivery-coupling switch stage.
    pub dc_switch_loss: OpticalPowerDb,
}

impl CascadedAwgr {
    /// The paper's configuration for a 350-MCM rack: `K*M*N = 3*12*11 = 396`,
    /// yielding a practical 370-port device with 370 wavelengths per port.
    pub fn paper_rack_configuration() -> Self {
        CascadedAwgr {
            k: 3,
            m: 12,
            n: 11,
            // Hardware prototypes of 270x270 and 1440x1440 show ~15 dB total;
            // apportion it across the two AWGR stages and the DC switch.
            stage_loss: OpticalPowerDb::from_db(5.5),
            dc_switch_loss: OpticalPowerDb::from_db(4.0),
        }
    }

    /// Theoretical port count of the construction (`K*M*N`).
    pub fn theoretical_radix(&self) -> u32 {
        self.k * self.m * self.n
    }

    /// Usable port count after guard channels for passband walk-off (the
    /// paper derates 396 to 370 usable ports).
    pub fn usable_radix(&self) -> u32 {
        // Derate by the same ~6.5% margin the paper applies (396 -> 370).
        (self.theoretical_radix() as f64 * (370.0 / 396.0)).floor() as u32
    }

    /// Wavelengths per port (equal to the usable radix for an AWGR).
    pub fn wavelengths_per_port(&self) -> u32 {
        self.usable_radix()
    }

    /// End-to-end worst-case insertion loss: front AWGR + rear AWGR + DC
    /// switch.
    pub fn end_to_end_loss(&self) -> OpticalPowerDb {
        self.stage_loss
            .cascade(self.stage_loss)
            .cascade(self.dc_switch_loss)
    }

    /// Materialize as an [`OpticalSwitch`] row.
    pub fn as_switch(&self) -> OpticalSwitch {
        OpticalSwitch {
            kind: OpticalSwitchKind::CascadedAwgr,
            radix: self.usable_radix(),
            wavelengths_per_port: self.wavelengths_per_port(),
            channel_bandwidth: Bandwidth::from_gbps(25.0),
            insertion_loss: self.end_to_end_loss(),
            crosstalk: OpticalPowerDb::from_db(-35.0),
            reconfiguration_time: Latency::ZERO,
        }
    }

    /// Number of fibers needed to realize the all-to-all: `O(N)` fibers each
    /// carrying `N` wavelengths, versus `N^2` wires for a copper all-to-all.
    pub fn fibers_for_all_to_all(&self) -> u64 {
        self.usable_radix() as u64
    }

    /// Number of point-to-point copper wires an electrical all-to-all of the
    /// same radix would need (each endpoint pair gets a dedicated wire).
    pub fn copper_wires_for_all_to_all(&self) -> u64 {
        let n = self.usable_radix() as u64;
        n * n
    }
}

/// How many switch ports and wavelengths a fabric of `switch_count` parallel
/// switches offers to each attached MCM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchPortBudget {
    /// Parallel switches in the fabric.
    pub switch_count: u32,
    /// Ports per switch.
    pub radix: u32,
    /// Wavelengths per port.
    pub wavelengths_per_port: u32,
    /// Per-wavelength bandwidth.
    pub channel_bandwidth: Bandwidth,
}

impl SwitchPortBudget {
    /// Total wavelengths available to one MCM that connects one port to each
    /// parallel switch.
    pub fn wavelengths_per_mcm(&self) -> u32 {
        self.switch_count * self.wavelengths_per_port
    }

    /// Escape bandwidth one MCM can push through the fabric.
    pub fn escape_bandwidth_per_mcm(&self) -> Bandwidth {
        self.channel_bandwidth * self.wavelengths_per_mcm() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_has_expected_rows() {
        let t = OpticalSwitch::table_ii();
        assert_eq!(t.len(), 5);
        assert_eq!(t[0].radix, 32);
        assert_eq!(t[1].radix, 240);
        assert_eq!(t[4].radix, 370);
    }

    #[test]
    fn awgr_is_passive_and_needs_no_scheduler() {
        let awgr = OpticalSwitch::cascaded_awgr_370();
        assert_eq!(awgr.reconfiguration_time, Latency::ZERO);
        assert!(!awgr.kind.requires_reconfiguration());
        assert!(!SwitchConfig::CascadedAwgr.needs_scheduler());
        assert!(SwitchConfig::WaveSelective.needs_scheduler());
        assert!(SwitchConfig::Spatial.needs_scheduler());
    }

    #[test]
    fn cascaded_awgr_paper_configuration() {
        let c = CascadedAwgr::paper_rack_configuration();
        assert_eq!(c.theoretical_radix(), 396);
        assert_eq!(c.usable_radix(), 370);
        assert_eq!(c.wavelengths_per_port(), 370);
        // ~15 dB insertion loss as in the hardware prototypes.
        assert!((c.end_to_end_loss().db() - 15.0).abs() < 0.1);
    }

    #[test]
    fn awgr_fiber_savings_vs_copper() {
        let c = CascadedAwgr::paper_rack_configuration();
        let fibers = c.fibers_for_all_to_all();
        let wires = c.copper_wires_for_all_to_all();
        assert_eq!(fibers, 370);
        assert_eq!(wires, 370 * 370);
        assert!(wires / fibers == 370);
    }

    #[test]
    fn table_iv_effective_parameters() {
        assert_eq!(SwitchConfig::CascadedAwgr.effective_radix(), 370);
        assert_eq!(SwitchConfig::WaveSelective.effective_radix(), 256);
        assert_eq!(SwitchConfig::Spatial.effective_radix(), 256);
        for cfg in SwitchConfig::ALL {
            assert!((cfg.channel_bandwidth().gbps() - 25.0).abs() < 1e-9);
            assert_eq!(cfg.effective_wavelengths_per_port(), cfg.effective_radix());
        }
    }

    #[test]
    fn awgr_port_bandwidth_is_370_wavelengths() {
        let awgr = OpticalSwitch::cascaded_awgr_370();
        // 370 x 25 Gbps = 9250 Gbps per port.
        assert!((awgr.port_bandwidth().gbps() - 9250.0).abs() < 1e-6);
    }

    #[test]
    fn wave_selective_port_budget_matches_paper() {
        // Each MCM can connect to 2048/256 = 8 parallel wave-selective
        // switches; the fabric instantiates 11 and staggers them.
        let budget = SwitchPortBudget {
            switch_count: 8,
            radix: 256,
            wavelengths_per_port: 256,
            channel_bandwidth: Bandwidth::from_gbps(25.0),
        };
        assert_eq!(budget.wavelengths_per_mcm(), 2048);
        // 2048 x 25 Gbps = 51.2 Tbps = 6.4 TB/s escape, matching the MCM.
        assert!((budget.escape_bandwidth_per_mcm().tbytes_per_s() - 6.4).abs() < 1e-9);
    }

    #[test]
    fn wavelength_selectivity_classification() {
        assert!(!OpticalSwitchKind::MachZehnder.is_wavelength_selective());
        assert!(!OpticalSwitchKind::MemsActuated.is_wavelength_selective());
        assert!(OpticalSwitchKind::MicroringResonator.is_wavelength_selective());
        assert!(OpticalSwitchKind::CascadedAwgr.is_wavelength_selective());
        assert!(OpticalSwitchKind::WaveSelective.is_wavelength_selective());
    }

    #[test]
    fn bisection_capacity_scales_with_radix() {
        let a = OpticalSwitch::microring_8();
        let b = OpticalSwitch::microring_128_projected();
        assert!(b.bisection_capacity().bps() > a.bisection_capacity().bps());
    }

    #[test]
    fn insertion_loss_of_cascade_exceeds_single_stage() {
        let c = CascadedAwgr::paper_rack_configuration();
        assert!(c.end_to_end_loss().db() > c.stage_loss.db());
        let sw = c.as_switch();
        assert_eq!(sw.radix, 370);
        assert_eq!(sw.kind, OpticalSwitchKind::CascadedAwgr);
    }

    #[test]
    fn display_names() {
        assert_eq!(SwitchConfig::CascadedAwgr.to_string(), "Cascaded AWGRs");
        assert_eq!(
            OpticalSwitchKind::MicroringResonator.to_string(),
            "Microring resonator"
        );
    }
}
