//! Photonic power accounting (Section VI-C of the paper).
//!
//! The paper's per-rack power overhead calculation:
//!
//! * 350 MCMs, each with 2048 escape wavelengths of 25 Gbps;
//! * demonstrated comb-laser transceiver pairs at ~0.5 pJ/bit including the
//!   laser;
//! * all parallel optical switches together consume no more than 1 kW;
//! * photonic components are pessimistically assumed always on;
//! * total ≈ 11 kW, which is ~5% of the power of the rack's compute and
//!   memory components.

use crate::units::{Bandwidth, Energy};
use serde::{Deserialize, Serialize};

/// Power model of the photonic components of a disaggregated rack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhotonicPowerModel {
    /// Number of MCMs in the rack.
    pub mcm_count: u32,
    /// Escape wavelengths per MCM.
    pub wavelengths_per_mcm: u32,
    /// Per-wavelength data rate.
    pub channel_rate: Bandwidth,
    /// Transceiver (and laser) energy per bit.
    pub transceiver_energy_per_bit: Energy,
    /// Total power of all parallel optical switches (watts).
    pub switch_power_w: f64,
    /// If true, transceivers are assumed always on at full rate (the paper's
    /// pessimistic assumption); if false, power scales with `utilization`.
    pub always_on: bool,
    /// Average link utilization used when `always_on` is false.
    ///
    /// Stored as given; every power computation reads it through
    /// [`effective_utilization`](PhotonicPowerModel::effective_utilization),
    /// which sanitizes degenerate values the same way `FlowSimulator`
    /// sanitizes degenerate demands: non-finite utilization becomes `0.0`
    /// (an unmeasurable link draws no traffic-proportional power) and finite
    /// values are clamped to `[0, 1]`.
    pub utilization: f64,
}

impl PhotonicPowerModel {
    /// The paper's rack configuration (Section VI-C).
    pub fn paper_rack() -> Self {
        PhotonicPowerModel {
            mcm_count: 350,
            wavelengths_per_mcm: 2048,
            channel_rate: Bandwidth::from_gbps(25.0),
            transceiver_energy_per_bit: Energy::from_pj(0.5),
            switch_power_w: 1000.0,
            always_on: true,
            utilization: 1.0,
        }
    }

    /// The same model in utilization-scaled mode: transceiver power follows
    /// the offered traffic instead of the pessimistic always-on assumption.
    ///
    /// The given utilization is stored verbatim and sanitized on read by
    /// [`effective_utilization`](PhotonicPowerModel::effective_utilization).
    ///
    /// # Example
    ///
    /// ```
    /// use photonics::power::PhotonicPowerModel;
    ///
    /// let always_on = PhotonicPowerModel::paper_rack();
    /// let quarter = always_on.utilization_scaled(0.25);
    /// // A quarter-utilized rack draws a quarter of the transceiver power.
    /// let ratio = quarter.transceiver_power_w() / always_on.transceiver_power_w();
    /// assert!((ratio - 0.25).abs() < 1e-9);
    ///
    /// // Degenerate utilization is sanitized, never propagated as NaN.
    /// let broken = always_on.utilization_scaled(f64::NAN);
    /// assert_eq!(broken.transceiver_power_w(), 0.0);
    /// ```
    pub fn utilization_scaled(mut self, utilization: f64) -> Self {
        self.always_on = false;
        self.utilization = utilization;
        self
    }

    /// The sanitized value of [`utilization`](PhotonicPowerModel::utilization)
    /// used by every power computation: non-finite values (NaN, ±infinity)
    /// become `0.0`, finite values are clamped to `[0, 1]`. This mirrors the
    /// `FlowSimulator` demand contract, so a degenerate measurement can never
    /// produce a NaN or negative watt figure downstream.
    pub fn effective_utilization(&self) -> f64 {
        if self.utilization.is_finite() {
            self.utilization.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Escape bandwidth of one MCM.
    pub fn escape_per_mcm(&self) -> Bandwidth {
        self.channel_rate * self.wavelengths_per_mcm as f64
    }

    /// Aggregate escape bandwidth of the whole rack.
    pub fn rack_escape_bandwidth(&self) -> Bandwidth {
        self.escape_per_mcm() * self.mcm_count as f64
    }

    /// Power drawn by all transceivers (watts). In utilization-scaled mode
    /// the utilization is sanitized via
    /// [`effective_utilization`](PhotonicPowerModel::effective_utilization).
    pub fn transceiver_power_w(&self) -> f64 {
        let active = if self.always_on {
            1.0
        } else {
            self.effective_utilization()
        };
        self.transceiver_energy_per_bit
            .power_at(self.rack_escape_bandwidth())
            * active
    }

    /// Total photonic power: transceivers plus switches (watts).
    pub fn total_power_w(&self) -> f64 {
        self.transceiver_power_w() + self.switch_power_w
    }

    /// Full per-rack accounting against a baseline rack power.
    pub fn rack_overhead(&self, baseline_rack_power_w: f64) -> RackPhotonicPower {
        let photonic = self.total_power_w();
        RackPhotonicPower {
            transceiver_power_w: self.transceiver_power_w(),
            switch_power_w: self.switch_power_w,
            photonic_power_w: photonic,
            baseline_rack_power_w,
            overhead_fraction: photonic / baseline_rack_power_w,
        }
    }
}

/// Result of the rack-level power overhead analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackPhotonicPower {
    /// Power of all transceivers (watts).
    pub transceiver_power_w: f64,
    /// Power of all optical switches (watts).
    pub switch_power_w: f64,
    /// Total photonic power (watts).
    pub photonic_power_w: f64,
    /// Power of the baseline (non-photonic) rack components (watts).
    pub baseline_rack_power_w: f64,
    /// Photonic power as a fraction of the baseline rack power.
    pub overhead_fraction: f64,
}

impl RackPhotonicPower {
    /// Overhead as a percentage.
    pub fn overhead_percent(&self) -> f64 {
        self.overhead_fraction * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rack_escape_bandwidth() {
        let m = PhotonicPowerModel::paper_rack();
        // 2048 x 25 Gbps = 51.2 Tbps = 6.4 TB/s per MCM.
        assert!((m.escape_per_mcm().tbytes_per_s() - 6.4).abs() < 1e-9);
        // 350 MCMs -> 17.92 Pbps total.
        assert!((m.rack_escape_bandwidth().tbps() - 17920.0).abs() < 1e-6);
    }

    #[test]
    fn paper_rack_power_is_about_11_kw() {
        let m = PhotonicPowerModel::paper_rack();
        // Transceivers: 17.92e15 b/s * 0.5e-12 J/b = 8.96 kW; + 1 kW switches.
        let total = m.total_power_w();
        assert!(
            total > 9_500.0 && total < 11_500.0,
            "total photonic power {total} W should be ~10-11 kW"
        );
    }

    #[test]
    fn overhead_is_about_five_percent_of_paper_rack() {
        // Baseline rack: 128 nodes x (1 CPU @250 W + 4 GPUs @300 W + 192 W DDR4)
        // = 128 * 1642 = 210 kW.
        let baseline = 128.0 * (250.0 + 4.0 * 300.0 + 192.0);
        let m = PhotonicPowerModel::paper_rack();
        let o = m.rack_overhead(baseline);
        assert!(
            o.overhead_percent() > 4.0 && o.overhead_percent() < 6.0,
            "overhead {}% should be ~5%",
            o.overhead_percent()
        );
    }

    #[test]
    fn utilization_scaling_reduces_power_when_not_always_on() {
        let mut m = PhotonicPowerModel::paper_rack();
        m.always_on = false;
        m.utilization = 0.25;
        let quarter = m.transceiver_power_w();
        m.utilization = 1.0;
        let full = m.transceiver_power_w();
        assert!((quarter * 4.0 - full).abs() < 1e-6);
    }

    #[test]
    fn always_on_ignores_utilization() {
        let mut m = PhotonicPowerModel::paper_rack();
        m.utilization = 0.1;
        assert!((m.transceiver_power_w() - 8960.0).abs() < 1.0);
    }

    #[test]
    fn degenerate_utilization_is_sanitized() {
        let m = PhotonicPowerModel::paper_rack();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let broken = m.utilization_scaled(bad);
            assert_eq!(broken.effective_utilization(), 0.0);
            assert_eq!(broken.transceiver_power_w(), 0.0);
            assert!(broken.total_power_w().is_finite());
        }
        assert_eq!(m.utilization_scaled(-0.5).effective_utilization(), 0.0);
        assert_eq!(m.utilization_scaled(1.5).effective_utilization(), 1.0);
        // Over-unity utilization caps at the always-on power.
        let capped = m.utilization_scaled(7.0);
        assert!((capped.transceiver_power_w() - m.transceiver_power_w()).abs() < 1e-9);
    }

    #[test]
    fn utilization_scaled_builder_disables_always_on() {
        let m = PhotonicPowerModel::paper_rack().utilization_scaled(0.5);
        assert!(!m.always_on);
        assert!((m.transceiver_power_w() - 4480.0).abs() < 1.0);
    }

    #[test]
    fn switch_power_adds_to_total() {
        let m = PhotonicPowerModel::paper_rack();
        assert!((m.total_power_w() - m.transceiver_power_w() - 1000.0).abs() < 1e-9);
    }
}
