//! Bit-error-rate and forward-error-correction model (Section III-C3).
//!
//! Server-class memories require raw BERs below 1e-18 to keep failure-in-time
//! rates tolerable with SEC-DED protection. Photonic links do not natively
//! reach that, so the paper adopts the lightweight FEC proposed for CXL /
//! PCIe Gen6:
//!
//! * the code corrects any single burst of up to 16 bits per flit;
//! * double bursts are likely mis-corrected, so the flit failure probability
//!   falls *quadratically* with the flit error rate (a 1e-6 flit BER becomes
//!   ~1e-12);
//! * each flit additionally carries a strong CRC spanning 64 flits so that
//!   CRC escapes are below one part per billion of the residual errors;
//! * FEC escapes become link-level retransmissions, so the ASIC-to-ASIC
//!   connection sees close to zero errors;
//! * all of this costs 2–3 ns of latency and well under 0.1% of bandwidth.

use crate::units::Latency;
use serde::{Deserialize, Serialize};

/// Configuration of the link FEC + CRC + retransmission pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FecConfig {
    /// Flit size in bits that the FEC protects.
    pub flit_bits: u32,
    /// Maximum correctable burst length in bits.
    pub correctable_burst_bits: u32,
    /// Number of flits covered by one CRC group.
    pub crc_group_flits: u32,
    /// Probability that a residual (mis-corrected) flit escapes the CRC.
    pub crc_escape_probability: f64,
    /// Encode + decode latency.
    pub latency_ns: f64,
    /// Fraction of raw bandwidth spent on FEC + CRC overhead bits.
    pub bandwidth_overhead: f64,
}

impl FecConfig {
    /// The lightweight CXL / PCIe-Gen6 style FEC the paper assumes.
    pub fn cxl_lightweight() -> Self {
        FecConfig {
            flit_bits: 256 * 8,
            correctable_burst_bits: 16,
            crc_group_flits: 64,
            // "flit FIT rate (CRC escapes) significantly less than 1e-9".
            crc_escape_probability: 1e-9,
            latency_ns: 2.5,
            // "<0.1% bandwidth loss".
            bandwidth_overhead: 0.0008,
        }
    }

    /// A "no FEC" configuration used by ablation studies: raw link BER passes
    /// straight through, no latency or bandwidth cost.
    pub fn disabled() -> Self {
        FecConfig {
            flit_bits: 256 * 8,
            correctable_burst_bits: 0,
            crc_group_flits: 1,
            crc_escape_probability: 1.0,
            latency_ns: 0.0,
            bandwidth_overhead: 0.0,
        }
    }

    /// FEC latency as a [`Latency`].
    pub fn latency(&self) -> Latency {
        Latency::from_ns(self.latency_ns)
    }

    /// Fraction of bandwidth lost to FEC/CRC bits.
    pub fn bandwidth_overhead(&self) -> f64 {
        self.bandwidth_overhead
    }
}

/// The error model of a photonic link protected by [`FecConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkErrorModel {
    /// Raw (pre-FEC) bit error rate of the optical channel.
    pub raw_ber: f64,
    /// FEC configuration.
    pub fec: FecConfig,
}

/// Outcome of the error analysis for a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FecOutcome {
    /// Probability an individual flit contains at least one error burst
    /// before correction.
    pub flit_error_probability: f64,
    /// Probability a flit still carries an error after FEC (requires at
    /// least two bursts; falls quadratically).
    pub post_fec_flit_error_probability: f64,
    /// Probability an erroneous flit escapes the CRC and silently corrupts
    /// data (this is what must stay below the memory FIT budget).
    pub silent_error_probability: f64,
    /// Probability a flit must be retransmitted (detected but uncorrectable).
    pub retransmission_probability: f64,
    /// Effective bit error rate seen by the memory protocol after FEC, CRC
    /// and retransmission.
    pub effective_ber: f64,
    /// Expected bandwidth lost to retransmissions (fraction).
    pub retransmission_bandwidth_overhead: f64,
}

impl LinkErrorModel {
    /// Create a new error model from a raw BER and a FEC configuration.
    pub fn new(raw_ber: f64, fec: FecConfig) -> Self {
        LinkErrorModel { raw_ber, fec }
    }

    /// The paper's nominal operating point: a raw channel BER of 1e-6 per
    /// flit (the example used in Section III-C3) protected by CXL FEC.
    pub fn paper_nominal() -> Self {
        LinkErrorModel::new(1e-6 / (256.0 * 8.0), FecConfig::cxl_lightweight())
    }

    /// Probability that a flit contains at least one error burst.
    ///
    /// With independent bit errors at rate `p` and `n` bits per flit this is
    /// `1 - (1-p)^n`; we use the numerically stable `-expm1(n * ln(1-p))`.
    pub fn flit_error_probability(&self) -> f64 {
        let n = self.fec.flit_bits as f64;
        let p = self.raw_ber;
        if p <= 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return 1.0;
        }
        -(n * (1.0 - p).ln()).exp_m1()
    }

    /// Run the full analysis.
    pub fn analyze(&self) -> FecOutcome {
        let p_flit = self.flit_error_probability();
        if self.fec.correctable_burst_bits == 0 {
            // FEC disabled: every flit error is visible, none corrected.
            return FecOutcome {
                flit_error_probability: p_flit,
                post_fec_flit_error_probability: p_flit,
                silent_error_probability: p_flit * self.fec.crc_escape_probability,
                retransmission_probability: p_flit,
                effective_ber: self.raw_ber,
                retransmission_bandwidth_overhead: p_flit,
            };
        }

        // Single bursts are corrected; a residual error needs two independent
        // bursts in the same flit, so the probability falls quadratically
        // (e.g. 1e-6 -> 1e-12), exactly the paper's argument.
        let post_fec = p_flit * p_flit;
        // Mis-corrected double bursts are caught by the 64-flit CRC with very
        // high probability; the tiny remainder is the silent-error rate.
        let silent = post_fec * self.fec.crc_escape_probability;
        // Everything the CRC catches is retransmitted.
        let retransmit = post_fec * (1.0 - self.fec.crc_escape_probability);
        let effective_ber = silent / self.fec.flit_bits as f64;
        FecOutcome {
            flit_error_probability: p_flit,
            post_fec_flit_error_probability: post_fec,
            silent_error_probability: silent,
            retransmission_probability: retransmit,
            effective_ber,
            retransmission_bandwidth_overhead: retransmit,
        }
    }

    /// Does the protected link meet a target effective BER (e.g. the 1e-18
    /// requirement of server-class memory)?
    pub fn meets_ber_target(&self, target: f64) -> bool {
        self.analyze().effective_ber <= target
    }

    /// The memory-class BER requirement quoted by the paper.
    pub const MEMORY_BER_TARGET: f64 = 1e-18;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_error_probability_matches_small_p_approximation() {
        // For small p, P(flit error) ≈ n*p.
        let m = LinkErrorModel::new(1e-12, FecConfig::cxl_lightweight());
        let approx = 2048.0 * 1e-12;
        let exact = m.flit_error_probability();
        assert!((exact - approx).abs() / approx < 1e-3);
    }

    #[test]
    fn quadratic_reduction_of_flit_errors() {
        // Paper: "a flit BER of 1e-6 becomes 1e-12".
        let m = LinkErrorModel::paper_nominal();
        let out = m.analyze();
        assert!((out.flit_error_probability - 1e-6).abs() / 1e-6 < 0.01);
        assert!(out.post_fec_flit_error_probability < 2e-12);
        assert!(out.post_fec_flit_error_probability > 0.5e-12);
    }

    #[test]
    fn protected_link_meets_memory_ber_target() {
        let m = LinkErrorModel::paper_nominal();
        assert!(m.meets_ber_target(LinkErrorModel::MEMORY_BER_TARGET));
    }

    #[test]
    fn unprotected_link_fails_memory_ber_target() {
        let m = LinkErrorModel::new(1e-6 / 2048.0, FecConfig::disabled());
        assert!(!m.meets_ber_target(LinkErrorModel::MEMORY_BER_TARGET));
    }

    #[test]
    fn retransmission_overhead_is_negligible() {
        let m = LinkErrorModel::paper_nominal();
        let out = m.analyze();
        // Retransmissions are on the order of the post-FEC flit error rate:
        // utterly negligible bandwidth cost.
        assert!(out.retransmission_bandwidth_overhead < 1e-9);
    }

    #[test]
    fn fec_latency_in_2_to_3_ns_band() {
        let f = FecConfig::cxl_lightweight();
        assert!(f.latency().ns() >= 2.0 && f.latency().ns() <= 3.0);
    }

    #[test]
    fn fec_bandwidth_loss_below_point_1_percent() {
        let f = FecConfig::cxl_lightweight();
        assert!(f.bandwidth_overhead() < 0.001);
    }

    #[test]
    fn degenerate_raw_ber_bounds() {
        let zero = LinkErrorModel::new(0.0, FecConfig::cxl_lightweight());
        assert_eq!(zero.flit_error_probability(), 0.0);
        assert_eq!(zero.analyze().effective_ber, 0.0);
        let one = LinkErrorModel::new(1.0, FecConfig::cxl_lightweight());
        assert_eq!(one.flit_error_probability(), 1.0);
    }

    #[test]
    fn disabled_fec_has_no_latency_or_overhead() {
        let f = FecConfig::disabled();
        assert_eq!(f.latency().ns(), 0.0);
        assert_eq!(f.bandwidth_overhead(), 0.0);
    }

    #[test]
    fn silent_errors_much_rarer_than_retransmissions() {
        let out = LinkErrorModel::paper_nominal().analyze();
        assert!(out.silent_error_probability < out.retransmission_probability * 1e-6);
    }
}
